// Experiment E1: the Section 2.2 motivating claim (Figure 1). The queries
//   e1 = Name ⊂ Proc_header ⊂ Proc ⊂ Program
//   e2 = Name ⊂ Proc_header ⊂ Program
// are equivalent w.r.t. Figure 1's RIG, e2 has fewer operations, and the
// RIG-based optimizer finds e2 from e1. Expect identical results, fewer
// operator evaluations, and a speedup that grows with corpus size.

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "doc/srccode.h"
#include "opt/optimizer.h"
#include "query/engine.h"

namespace regal {
namespace {

Instance MakeCorpus(int num_procs) {
  ProgramGeneratorOptions options;
  options.num_procs = num_procs;
  options.max_nesting = 5;
  options.seed = 1234;
  auto instance = ParseProgram(GenerateProgramSource(options));
  if (!instance.ok()) std::abort();
  return std::move(instance).value();
}

const ExprPtr& E1() {
  static const ExprPtr e = Expr::Chain(
      OpKind::kIncluded, {"Name", "Proc_header", "Proc", "Program"});
  return e;
}

void BM_OriginalChain(benchmark::State& state) {
  Instance corpus = MakeCorpus(static_cast<int>(state.range(0)));
  Evaluator evaluator(&corpus);
  size_t result_size = 0;
  for (auto _ : state) {
    auto result = evaluator.Evaluate(E1());
    if (!result.ok()) state.SkipWithError("eval failed");
    result_size = result->size();
  }
  state.counters["procs_found"] = static_cast<double>(result_size);
  state.counters["ops"] = static_cast<double>(E1()->NumOps());
}

void BM_RewrittenChain(benchmark::State& state) {
  Instance corpus = MakeCorpus(static_cast<int>(state.range(0)));
  Digraph rig = SourceCodeRig();
  OptimizerOptions options;
  options.rig = &rig;
  options.stats = StatsFromInstance(corpus);
  ExprPtr optimized = Optimize(E1(), options).expr;
  Evaluator evaluator(&corpus);
  size_t result_size = 0;
  for (auto _ : state) {
    auto result = evaluator.Evaluate(optimized);
    if (!result.ok()) state.SkipWithError("eval failed");
    result_size = result->size();
  }
  state.counters["procs_found"] = static_cast<double>(result_size);
  state.counters["ops"] = static_cast<double>(optimized->NumOps());
}

void BM_OptimizerLatency(benchmark::State& state) {
  Digraph rig = SourceCodeRig();
  OptimizerOptions options;
  options.rig = &rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(E1(), options));
  }
}

// End-to-end through the query engine, optimizer on vs off.
void BM_EngineOptimized(benchmark::State& state) {
  ProgramGeneratorOptions gen;
  gen.num_procs = static_cast<int>(state.range(0));
  gen.max_nesting = 5;
  gen.seed = 1234;
  auto engine = QueryEngine::FromProgramSource(GenerateProgramSource(gen));
  if (!engine.ok()) {
    state.SkipWithError("corpus failed");
    return;
  }
  const char* query = "Name within Proc_header within Proc within Program";
  for (auto _ : state) {
    auto answer = engine->Run(query, /*optimize=*/true);
    benchmark::DoNotOptimize(answer);
  }
}

void BM_EngineUnoptimized(benchmark::State& state) {
  ProgramGeneratorOptions gen;
  gen.num_procs = static_cast<int>(state.range(0));
  gen.max_nesting = 5;
  gen.seed = 1234;
  auto engine = QueryEngine::FromProgramSource(GenerateProgramSource(gen));
  if (!engine.ok()) {
    state.SkipWithError("corpus failed");
    return;
  }
  const char* query = "Name within Proc_header within Proc within Program";
  for (auto _ : state) {
    auto answer = engine->Run(query, /*optimize=*/false);
    benchmark::DoNotOptimize(answer);
  }
}

BENCHMARK(BM_OriginalChain)->Range(1 << 6, 1 << 13);
BENCHMARK(BM_RewrittenChain)->Range(1 << 6, 1 << 13);
BENCHMARK(BM_OptimizerLatency);
BENCHMARK(BM_EngineOptimized)->Range(1 << 6, 1 << 11);
BENCHMARK(BM_EngineUnoptimized)->Range(1 << 6, 1 << 11);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
