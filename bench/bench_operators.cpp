// Experiment E8: operator throughput — the paper's engineering claim that
// the region algebra "can be implemented very efficiently" (Sections 1-2).
// Compares the plane-sweep/structural-join operators against the O(n*m)
// naive baselines across input sizes; expect near-linear vs quadratic
// scaling with a crossover at small inputs.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_report.h"
#include "core/algebra.h"
#include "core/simd/simd_kernels.h"
#include "doc/synthetic.h"
#include "util/random.h"

namespace regal {
namespace {

struct Inputs {
  RegionSet r;
  RegionSet s;
};

Inputs MakeInputs(int64_t n) {
  Rng rng(42);
  RandomInstanceOptions options;
  options.num_regions = static_cast<int>(2 * n);
  options.max_depth = 12;
  options.max_names = 2;
  Instance instance = RandomLaminarInstance(rng, options);
  return Inputs{**instance.Get("R0"), **instance.Get("R1")};
}

void BM_Including(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Including(in.r, in.s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.r.size() + in.s.size()));
}

void BM_IncludingNaive(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Including(in.r, in.s));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.r.size() + in.s.size()));
}

void BM_Included(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Included(in.r, in.s));
  }
}

void BM_IncludedNaive(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Included(in.r, in.s));
  }
}

void BM_Precedes(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Precedes(in.r, in.s));
  }
}

void BM_PrecedesNaive(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Precedes(in.r, in.s));
  }
}

void BM_SetOps(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(in.r, in.s));
    benchmark::DoNotOptimize(Intersect(in.r, in.s));
    benchmark::DoNotOptimize(Difference(in.r, in.s));
  }
}

void BM_SelectByTokens(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  std::vector<Token> tokens;
  Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    Offset a = static_cast<Offset>(rng.Below(
        static_cast<uint64_t>(4 * state.range(0) + 1)));
    tokens.push_back(Token{a, a + 1});
  }
  std::sort(tokens.begin(), tokens.end(), [](const Token& a, const Token& b) {
    return a.left != b.left ? a.left < b.left : a.right < b.right;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectByTokens(in.r, tokens));
  }
}

// Per-ISA variants of the span merge kernels, registered dynamically for
// every tier the CPU supports so one run produces directly comparable
// BM_Union/avx2/... vs BM_Union/scalar/... rows. Two input shapes: "runny"
// alternates 64-region blocks between R and S (long intra-side runs — the
// shape the vector bulk-append is built for), "interleaved" alternates
// single regions (the worst case for run skimming).
using MergeFn = void (*)(const Region*, const Region*, const Region*,
                         const Region*, std::vector<Region>*,
                         obs::OpCounters*);

void MergeBenchBody(benchmark::State& state, MergeFn fn, size_t block) {
  constexpr size_t kN = size_t{1} << 16;  // Regions per side.
  std::vector<Region> r, s;
  for (size_t p = 0; p < 2 * kN; ++p) {
    Region reg{static_cast<Offset>(p), static_cast<Offset>(p + 1)};
    ((p / block) % 2 == 0 ? r : s).push_back(reg);
  }
  std::vector<Region> out;
  out.reserve(r.size() + s.size());
  for (auto _ : state) {
    out.clear();
    obs::OpCounters c;
    fn(r.data(), r.data() + r.size(), s.data(), s.data() + s.size(), &out, &c);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size() + s.size()));
}

void RegisterSimdBenches() {
  constexpr simd::Isa kIsas[] = {simd::Isa::kScalar, simd::Isa::kSse4,
                                 simd::Isa::kAvx2};
  for (simd::Isa isa : kIsas) {
    const simd::KernelTable& kt = simd::KernelsFor(isa);
    if (kt.isa != isa) continue;  // Tier degraded: CPU lacks it.
    const struct {
      const char* op;
      MergeFn fn;
    } kOps[] = {{"BM_Union", kt.union_span},
                {"BM_Intersect", kt.intersect_span},
                {"BM_Difference", kt.difference_span}};
    const struct {
      const char* shape;
      size_t block;
    } kShapes[] = {{"runny", 64}, {"interleaved", 1}};
    for (const auto& op : kOps) {
      for (const auto& shape : kShapes) {
        const std::string name =
            std::string(op.op) + "/" + kt.name + "/" + shape.shape;
        const MergeFn fn = op.fn;
        const size_t block = shape.block;
        benchmark::RegisterBenchmark(
            name.c_str(), [fn, block](benchmark::State& state) {
              MergeBenchBody(state, fn, block);
            });
      }
    }
  }
}

BENCHMARK(BM_Including)->Range(1 << 8, 1 << 18);
BENCHMARK(BM_IncludingNaive)->Range(1 << 8, 1 << 12);
BENCHMARK(BM_Included)->Range(1 << 8, 1 << 18);
BENCHMARK(BM_IncludedNaive)->Range(1 << 8, 1 << 12);
BENCHMARK(BM_Precedes)->Range(1 << 8, 1 << 18);
BENCHMARK(BM_PrecedesNaive)->Range(1 << 8, 1 << 12);
BENCHMARK(BM_SetOps)->Range(1 << 8, 1 << 18);
BENCHMARK(BM_SelectByTokens)->Range(1 << 8, 1 << 16);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  regal::RegisterSimdBenches();
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_operators.json");
}
