// Experiment: the multi-tenant query service front-end must add only
// transport overhead on top of the engine it hosts, and must hold its tail
// latency when clients misbehave. BM_ConcurrentTenants is the acceptance
// configuration — 8 concurrent closed-loop clients split across 2 tenants
// and 2 hosted corpora, result cache hot, reporting p50/p99 per-request
// latency and aggregate QPS. BM_ConcurrentTenantsWithChaos runs the same
// load while a chaos thread storms the service with connections it kills
// mid-request (RST), the SIGPIPE/accept-loop regression scenario: the
// numbers should not collapse, and the run aborts if the service stops
// answering. BM_SingleClient isolates the per-request wire overhead
// (framing, JSON, governance) without concurrency.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/timer.h"

namespace regal {
namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClientPerIter = 25;
const char* const kTenants[] = {"team-a", "team-b"};
const char* const kInstances[] = {"corpus1", "corpus2"};
// Mid-weight structural query; repeated issue means the result cache
// serves it hot after the warmup pass (the paper's analyst access
// pattern, and the regime where transport overhead is visible at all).
const char* kQuery = "(quote within sense) | (def within sense)";

std::unique_ptr<server::QueryService> StartLoadedService() {
  auto service = server::QueryService::Start({});
  if (!service.ok()) std::abort();
  DictionaryGeneratorOptions corpus;
  corpus.entries = 200;
  for (const char* name : kInstances) {
    auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(corpus));
    if (!engine.ok()) std::abort();
    if (!(*service)->AddInstance(name, std::move(engine).value()).ok()) {
      std::abort();
    }
  }
  // Warm the result caches so iterations measure the steady state.
  for (const char* instance : kInstances) {
    auto client = server::Client::Connect("127.0.0.1", (*service)->port());
    if (!client.ok()) std::abort();
    server::Request request;
    request.tenant = "warmup";
    request.instance = instance;
    request.query = kQuery;
    auto response = client->Call(request);
    if (!response.ok() || !response->ok) std::abort();
  }
  return std::move(*service);
}

struct LatencySink {
  std::mutex mu;
  std::vector<double> ms;
  std::atomic<int64_t> errors{0};

  void Add(const std::vector<double>& batch) {
    std::lock_guard<std::mutex> lock(mu);
    ms.insert(ms.end(), batch.begin(), batch.end());
  }
  double Percentile(double p) {
    std::lock_guard<std::mutex> lock(mu);
    if (ms.empty()) return 0;
    std::sort(ms.begin(), ms.end());
    return ms[static_cast<size_t>(p * static_cast<double>(ms.size() - 1))];
  }
  size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return ms.size();
  }
};

// One closed-loop client: its own connection, one tenant, one corpus.
void ClientLoop(int port, int client_index, LatencySink* sink) {
  auto client = server::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    sink->errors.fetch_add(kRequestsPerClientPerIter);
    return;
  }
  server::Request request;
  request.tenant = kTenants[client_index % 2];
  request.instance = kInstances[(client_index / 2) % 2];
  request.query = kQuery;
  request.limit = 0;  // Measure evaluation + transport, not row rendering.
  std::vector<double> latencies;
  latencies.reserve(kRequestsPerClientPerIter);
  for (int i = 0; i < kRequestsPerClientPerIter; ++i) {
    Timer timer;
    auto response = client->Call(request);
    if (!response.ok() || !response->ok) {
      sink->errors.fetch_add(1);
      continue;
    }
    latencies.push_back(timer.Millis());
  }
  sink->Add(latencies);
}

void FinishCounters(benchmark::State& state, LatencySink& sink,
                    double elapsed_s) {
  state.counters["p50_ms"] = sink.Percentile(0.50);
  state.counters["p99_ms"] = sink.Percentile(0.99);
  state.counters["qps"] =
      elapsed_s > 0 ? static_cast<double>(sink.count()) / elapsed_s : 0;
  state.counters["errors"] = static_cast<double>(sink.errors.load());
  if (sink.errors.load() != 0) std::abort();  // A failed request is a bug.
}

void BM_ConcurrentTenants(benchmark::State& state) {
  auto service = StartLoadedService();
  LatencySink sink;
  Timer wall;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back(ClientLoop, service->port(), c, &sink);
    }
    for (auto& t : clients) t.join();
  }
  FinishCounters(state, sink, wall.Seconds());
}
BENCHMARK(BM_ConcurrentTenants)->Unit(benchmark::kMillisecond);

void BM_ConcurrentTenantsWithChaos(benchmark::State& state) {
  auto service = StartLoadedService();
  LatencySink sink;
  std::atomic<bool> stop_chaos{false};
  // The chaos client: connect, fire a request, RST without reading the
  // response, repeat. Forces sends onto dead sockets and aborted
  // handshakes into the accept loop for the whole measurement.
  std::thread chaos([&] {
    while (!stop_chaos.load(std::memory_order_relaxed)) {
      auto victim = server::Client::Connect("127.0.0.1", service->port());
      if (!victim.ok()) continue;
      server::Request request;
      request.tenant = "chaos";
      request.instance = kInstances[0];
      request.query = kQuery;
      victim->SendRaw(server::EncodeFrame(server::RenderRequest(request)));
      victim->Close(/*rst=*/true);
    }
  });
  Timer wall;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back(ClientLoop, service->port(), c, &sink);
    }
    for (auto& t : clients) t.join();
  }
  const double elapsed_s = wall.Seconds();
  stop_chaos.store(true, std::memory_order_relaxed);
  chaos.join();
  // The whole point: after the storm the service must still answer.
  auto probe = server::Client::Connect("127.0.0.1", service->port());
  if (!probe.ok()) std::abort();
  server::Request request;
  request.tenant = "probe";
  request.instance = kInstances[0];
  request.query = kQuery;
  auto response = probe->Call(request);
  if (!response.ok() || !response->ok) std::abort();
  FinishCounters(state, sink, elapsed_s);
}
BENCHMARK(BM_ConcurrentTenantsWithChaos)->Unit(benchmark::kMillisecond);

void BM_SingleClient(benchmark::State& state) {
  auto service = StartLoadedService();
  auto client = server::Client::Connect("127.0.0.1", service->port());
  if (!client.ok()) std::abort();
  server::Request request;
  request.tenant = "solo";
  request.instance = kInstances[0];
  request.query = kQuery;
  request.limit = 0;
  for (auto _ : state) {
    auto response = client->Call(request);
    if (!response.ok() || !response->ok) std::abort();
    benchmark::DoNotOptimize(response->row_count);
  }
}
BENCHMARK(BM_SingleClient)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_server.json");
}
