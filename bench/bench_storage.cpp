// Experiment: durability must not price snapshots out of use. The write
// path gained framing CRCs, a whole-file checksum and the atomic
// temp+fsync+rename protocol; this bench quantifies each layer against the
// pre-durability baseline (REGAL1 text through a plain buffered stream, no
// fsync — what SaveInstanceToFile did before the storage engine existed):
//
//   BM_SaveRegal1Raw     the seed baseline
//   BM_SaveRegal1Atomic  same bytes, atomic commit protocol
//   BM_SaveRegal2        REGAL2 binary + checksums + atomic commit
//   BM_EncodeRegal2 /    serialization alone (no filesystem), isolating
//   BM_SaveRegal1Format  the format cost from the fsync cost
//   BM_LoadRegal1 /      the read path, where REGAL2 also pays full
//   BM_LoadRegal2        checksum verification
//   BM_Crc32c            raw checksum throughput (bytes_per_second)
//
// The acceptance bar: BM_SaveRegal2 within ~10% of BM_SaveRegal1Raw on the
// largest bench corpus. REGAL2's binary encoding is considerably cheaper
// than REGAL1's decimal formatting and produces fewer bytes, which is what
// pays for the checksums and fsyncs.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "storage/checksum.h"
#include "storage/serialize.h"
#include "storage/snapshot.h"

namespace regal {
namespace {

// The largest corpus the benches use: a 2000-entry dictionary (~1 MB of
// text plus several hundred thousand regions).
Instance MakeCorpus() {
  DictionaryGeneratorOptions options;
  options.entries = 2000;
  auto instance = ParseSgml(GenerateDictionarySource(options));
  if (!instance.ok()) std::abort();
  return std::move(*instance);
}

std::string BenchPath(const char* name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + name;
}

// The pre-durability write path: format REGAL1 and push it through a plain
// buffered ofstream. No temp file, no fsync — and no crash consistency.
void BM_SaveRegal1Raw(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  const std::string path = BenchPath("bench_regal1_raw.regal");
  int64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream buffer;
    if (!SaveInstance(corpus, buffer).ok()) std::abort();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << buffer.str();
    out.close();
    if (!out) std::abort();
    bytes += static_cast<int64_t>(buffer.str().size());
  }
  state.SetBytesProcessed(bytes);
}

void BM_SaveRegal1Atomic(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  const std::string path = BenchPath("bench_regal1_atomic.regal");
  for (auto _ : state) {
    if (!SaveInstanceToFile(corpus, path).ok()) std::abort();
  }
}

void BM_SaveRegal2(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  const std::string path = BenchPath("bench_regal2.regal2");
  for (auto _ : state) {
    if (!storage::SaveSnapshotToFile(corpus, path).ok()) std::abort();
  }
}

// Format cost alone: REGAL1 decimal text vs REGAL2 binary + checksums.
void BM_SaveRegal1Format(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  int64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream buffer;
    if (!SaveInstance(corpus, buffer).ok()) std::abort();
    bytes += static_cast<int64_t>(buffer.str().size());
  }
  state.SetBytesProcessed(bytes);
}

void BM_EncodeRegal2(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  int64_t bytes = 0;
  for (auto _ : state) {
    auto encoded = storage::EncodeSnapshot(corpus);
    if (!encoded.ok()) std::abort();
    bytes += static_cast<int64_t>(encoded->size());
  }
  state.SetBytesProcessed(bytes);
}

void BM_DecodeRegal2(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  auto encoded = storage::EncodeSnapshot(corpus);
  if (!encoded.ok()) std::abort();
  int64_t bytes = 0;
  for (auto _ : state) {
    auto decoded = storage::DecodeSnapshot(*encoded);
    if (!decoded.ok()) std::abort();
    benchmark::DoNotOptimize(decoded->NumRegions());
    bytes += static_cast<int64_t>(encoded->size());
  }
  state.SetBytesProcessed(bytes);
}

void BM_LoadRegal1(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  const std::string path = BenchPath("bench_load.regal");
  if (!SaveInstanceToFile(corpus, path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = LoadInstanceFromFile(path);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded->NumRegions());
  }
}

void BM_LoadRegal2(benchmark::State& state) {
  const Instance corpus = MakeCorpus();
  const std::string path = BenchPath("bench_load.regal2");
  if (!storage::SaveSnapshotToFile(corpus, path).ok()) std::abort();
  for (auto _ : state) {
    auto loaded = storage::LoadSnapshotFromFile(path);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded->NumRegions());
  }
}

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

BENCHMARK(BM_SaveRegal1Raw);
BENCHMARK(BM_SaveRegal1Atomic);
BENCHMARK(BM_SaveRegal2);
BENCHMARK(BM_SaveRegal1Format);
BENCHMARK(BM_EncodeRegal2);
BENCHMARK(BM_DecodeRegal2);
BENCHMARK(BM_LoadRegal1);
BENCHMARK(BM_LoadRegal2);
BENCHMARK(BM_Crc32c)->Arg(1 << 12)->Arg(1 << 20);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_storage.json");
}
