// Experiment E11: end-to-end engine throughput — parse + validate +
// optimize + evaluate over realistic document corpora, including view
// resolution. Complements E1 (which isolates the rewrite effect).

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"

namespace regal {
namespace {

QueryEngine MakeDictionaryEngine(int entries) {
  DictionaryGeneratorOptions options;
  options.entries = entries;
  options.seed = 4;
  auto engine =
      QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  if (!engine.ok()) std::abort();
  return std::move(engine).value();
}

void BM_StructuralQuery(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto answer = engine.Run("sense within entry within dictionary");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

// BM_StructuralQuery runs with tracing disabled (the null-sink fast path);
// this is the same query under `explain analyze`. The gap between the two is
// the full cost of span tracing — the disabled path itself is checked against
// the seed numbers of bench_operators, which never construct a tracer.
void BM_StructuralQueryProfiled(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto answer =
        engine.Run("explain analyze sense within entry within dictionary");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

void BM_ContentQuery(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto answer =
        engine.Run("entry including (author matching \"SHAKESPEARE\")");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

void BM_BothIncludedQuery(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto answer = engine.Run(
        "bi(entry, def matching \"term1\", qtext matching \"term2\")");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

void BM_ViewQuery(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(static_cast<int>(state.range(0)));
  if (!engine
           .DefineView("bard",
                       "entry including (author matching \"SHAKESPEARE\")")
           .ok()) {
    state.SkipWithError("view definition failed");
    return;
  }
  for (auto _ : state) {
    auto answer = engine.Run("headword within bard");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

void BM_ParseOnly(benchmark::State& state) {
  QueryEngine engine = MakeDictionaryEngine(16);
  (void)state.range(0);
  for (auto _ : state) {
    auto answer = engine.Run(
        "(headword | pos) within (entry - (entry including "
        "(qtext matching \"term9\")))");
    if (!answer.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(answer);
  }
}

void BM_IndexBuild(benchmark::State& state) {
  DictionaryGeneratorOptions options;
  options.entries = static_cast<int>(state.range(0));
  options.seed = 4;
  std::string source = GenerateDictionarySource(options);
  for (auto _ : state) {
    auto engine = QueryEngine::FromSgmlSource(source);
    if (!engine.ok()) state.SkipWithError("index build failed");
    benchmark::DoNotOptimize(engine);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(source.size()));
}

BENCHMARK(BM_StructuralQuery)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_StructuralQueryProfiled)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_ContentQuery)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_BothIncludedQuery)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_ViewQuery)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_ParseOnly)->Arg(1);
BENCHMARK(BM_IndexBuild)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_query_engine.json");
}
