// Experiment: the overload-resilience acceptance run. A service under 3x
// its measured peak load must keep goodput (successful answers per second)
// at >= 80% of that peak by shedding excess work with typed OVERLOADED
// replies carrying retry_after_ms hints — never by collapsing into
// timeouts — and must return to error-free service the moment load drops
// back to 1x. BM_OverloadGoodput runs those three phases (calibrate peak
// closed-loop, overload open-loop at 3x, recover at 1x) against an
// in-process service with a deliberately small admission capacity, using
// an open-loop fixed-arrival-rate generator (the same discipline as
// regal_loadgen --open-loop) so the overload phase cannot throttle itself
// to match the server. Every request carries a unique query string, which
// defeats the result cache and keeps the bottleneck in evaluation where
// admission control can see it. BM_ShedFastPath isolates the cost of
// saying no: with the admission queue wedged full, a shed round trip
// should cost microseconds — orders of magnitude below serving — because
// cheap refusal is what makes shedding a defense instead of an amplifier.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/timer.h"

namespace regal {
namespace {

const char* const kTenant = "bench";
const char* const kInstance = "corpus";

// Unique per request: a fresh cache key every time, so each request costs
// a real evaluation of the structural left side (the never-matching word
// literal on the right only perturbs the key).
std::atomic<int64_t> g_next_id{0};
server::Request MakeRequest() {
  server::Request request;
  request.tenant = kTenant;
  request.instance = kInstance;
  request.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  request.query = "((quote within sense) | (def within sense)) | (word \"nonce" +
                  std::to_string(request.id) + "\")";
  request.limit = 0;
  return request;
}

std::unique_ptr<server::QueryService> StartSmallService(
    server::ServiceOptions options, int corpus_entries) {
  auto service = server::QueryService::Start(std::move(options));
  if (!service.ok()) std::abort();
  DictionaryGeneratorOptions corpus;
  corpus.entries = corpus_entries;
  auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(corpus));
  if (!engine.ok()) std::abort();
  if (!(*service)->AddInstance(kInstance, std::move(engine).value()).ok()) {
    std::abort();
  }
  return std::move(*service);
}

server::ServiceOptions OverloadServiceOptions() {
  server::ServiceOptions options;
  // One execution slot over a heavyweight corpus: a peak low enough that
  // the open-loop generator on the same machine can offer a true 3x while
  // refusals stay a small fraction of the box (shedding only protects
  // goodput when saying no is much cheaper than saying yes).
  options.governance.max_concurrent_total = 2;
  options.admission.capacity = 1;
  options.admission.max_queue = 24;
  options.admission.max_wait_ms = 100;
  // The CoDel target must sit above the sojourn a healthy queue of one
  // or two produces (executions here run a couple of milliseconds), or
  // the controller can never leave the dropping state even at 1x load.
  options.admission.target_ms = 10;
  options.admission.interval_ms = 50;
  // The phases here measure shedding, not degraded mode; park brownout
  // out of reach so the goodput numbers are not mode-dependent.
  options.admission.brownout_after_ms = 1'000'000'000;
  return options;
}

struct PhaseResult {
  int64_t sent = 0;
  int64_t ok = 0;
  int64_t shed = 0;           // Typed OVERLOADED replies.
  int64_t shed_hintless = 0;  // OVERLOADED without retry_after_ms: a bug.
  int64_t rejected = 0;       // Governor RESOURCE_EXHAUSTED.
  int64_t failed = 0;
  int64_t transport = 0;
  std::vector<double> latencies_ms;
  double elapsed_s = 0;

  double goodput_qps() const {
    return elapsed_s > 0 ? static_cast<double>(ok) / elapsed_s : 0;
  }
  double Percentile(double p) {
    if (latencies_ms.empty()) return 0;
    std::sort(latencies_ms.begin(), latencies_ms.end());
    return latencies_ms[static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1))];
  }
  void Merge(const PhaseResult& other) {
    sent += other.sent;
    ok += other.ok;
    shed += other.shed;
    shed_hintless += other.shed_hintless;
    rejected += other.rejected;
    failed += other.failed;
    transport += other.transport;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

void DumpPhase(const char* phase, const PhaseResult& result) {
  std::fprintf(stderr,
               "bench_resilience %s: sent=%lld ok=%lld shed=%lld "
               "hintless=%lld rejected=%lld failed=%lld transport=%lld "
               "elapsed_s=%.3f goodput_qps=%.1f\n",
               phase, static_cast<long long>(result.sent),
               static_cast<long long>(result.ok),
               static_cast<long long>(result.shed),
               static_cast<long long>(result.shed_hintless),
               static_cast<long long>(result.rejected),
               static_cast<long long>(result.failed),
               static_cast<long long>(result.transport), result.elapsed_s,
               result.goodput_qps());
}

void Classify(const server::Response& response, PhaseResult* out) {
  if (response.ok) {
    ++out->ok;
  } else if (response.code == "OVERLOADED") {
    ++out->shed;
    if (response.retry_after_ms <= 0) ++out->shed_hintless;
  } else if (response.code == "RESOURCE_EXHAUSTED") {
    ++out->rejected;
  } else {
    ++out->failed;
  }
}

// Closed-loop peak: a couple of clients firing back-to-back against the
// single execution slot — offered load matches capacity, nothing queues
// long enough to shed, and the measured goodput is the top of the
// service's goodput curve: the denominator for the overload phase's
// >= 80% requirement.
PhaseResult RunClosedPeak(int port, int connections, int requests_per_conn) {
  PhaseResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      PhaseResult local;
      auto client = server::Client::Connect("127.0.0.1", port);
      if (!client.ok()) std::abort();
      for (int i = 0; i < requests_per_conn; ++i) {
        Timer timer;
        auto response = client->Call(MakeRequest());
        if (!response.ok()) {
          ++local.transport;
          continue;
        }
        ++local.sent;
        local.latencies_ms.push_back(timer.Millis());
        Classify(*response, &local);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.Merge(local);
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.Seconds();
  return result;
}

// Open-loop phase: requests depart on a fixed schedule split across the
// connections; a reader per connection consumes the (in-order) responses
// and attributes latency to the scheduled departure, so server-side
// queueing lands in the tail instead of slowing the offered load.
PhaseResult RunOpenPhase(int port, double rate, double seconds,
                         int connections) {
  PhaseResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&] {
      const double per_conn_rate = rate / static_cast<double>(connections);
      const double gap_ms = 1000.0 / per_conn_rate;
      const int64_t to_send = std::max<int64_t>(
          1, static_cast<int64_t>(per_conn_rate * seconds));
      auto client = server::Client::Connect("127.0.0.1", port);
      if (!client.ok()) std::abort();

      PhaseResult reader_stats;
      std::atomic<int64_t> sent{0};
      std::atomic<bool> sender_done{false};
      Timer clock;
      std::thread reader([&] {
        int64_t consumed = 0;
        while (true) {
          if (consumed >= sent.load(std::memory_order_acquire)) {
            if (sender_done.load(std::memory_order_acquire) &&
                consumed >= sent.load(std::memory_order_acquire)) {
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          auto response = client->ReadResponse();
          if (!response.ok()) {
            ++reader_stats.transport;
            break;
          }
          reader_stats.latencies_ms.push_back(
              clock.Millis() - static_cast<double>(consumed) * gap_ms);
          ++consumed;
          Classify(*response, &reader_stats);
        }
      });
      int64_t send_transport = 0;
      for (int64_t i = 0; i < to_send; ++i) {
        const double depart_ms = static_cast<double>(i) * gap_ms;
        for (double now = clock.Millis(); now < depart_ms;
             now = clock.Millis()) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  std::min(depart_ms - now, 5.0)));
        }
        if (!client->SendRaw(
                server::EncodeFrame(server::RenderRequest(MakeRequest())))) {
          ++send_transport;
          break;
        }
        sent.fetch_add(1, std::memory_order_release);
      }
      sender_done.store(true, std::memory_order_release);
      reader.join();

      reader_stats.sent = sent.load(std::memory_order_relaxed);
      reader_stats.transport += send_transport;
      std::lock_guard<std::mutex> lock(mu);
      result.Merge(reader_stats);
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.Seconds();
  return result;
}

void BM_OverloadGoodput(benchmark::State& state) {
  for (auto _ : state) {
    // A corpus heavy enough that evaluating one query dwarfs the cost of
    // refusing one — the regime where shedding can defend goodput.
    auto service = StartSmallService(OverloadServiceOptions(),
                                     /*corpus_entries=*/50000);

    // Phase 1a: rough capacity, closed loop at the slot count — an upper
    // bound measured with almost no generator running.
    PhaseResult rough = RunClosedPeak(service->port(), /*connections=*/2,
                                      /*requests_per_conn=*/300);
    DumpPhase("rough", rough);
    if (rough.failed != 0 || rough.transport != 0 || rough.ok == 0) {
      std::abort();
    }

    // Phase 1b: the real denominator. Same generator population as the
    // overload phase (the generator and the service share this box, so
    // peak must be measured under the same client-side CPU tax), offered
    // just under the rough capacity so nothing stands in queue.
    PhaseResult peak = RunOpenPhase(service->port(),
                                    0.9 * rough.goodput_qps(),
                                    /*seconds=*/1.5, /*connections=*/32);
    DumpPhase("calibrate", peak);
    if (peak.failed != 0 || peak.transport != 0 || peak.ok == 0) std::abort();
    const double peak_qps = peak.goodput_qps();

    // Phase 2: overload. Open loop at 3x the measured peak; goodput must
    // hold >= 80% of peak, the excess must come back as typed sheds with
    // retry hints, and nothing may fail.
    // Enough connections that a standing queue can actually form: with a
    // thread-per-connection server, the admission queue is bounded by the
    // number of connections concurrently presenting a frame.
    PhaseResult over = RunOpenPhase(service->port(), 3.0 * peak_qps,
                                    /*seconds=*/2.0, /*connections=*/32);
    DumpPhase("overload", over);
    if (over.failed != 0 || over.transport != 0) std::abort();
    if (over.shed == 0 || over.shed_hintless != 0) std::abort();
    const double ratio = peak_qps > 0 ? over.goodput_qps() / peak_qps : 0;
    if (ratio < 0.8) std::abort();

    // Phase 3: recovery. Back to 1x; sheds may taper off but every
    // answer must be clean — no residual failures from the storm.
    PhaseResult recovery = RunOpenPhase(service->port(), peak_qps,
                                        /*seconds=*/1.5, /*connections=*/32);
    DumpPhase("recovery", recovery);
    if (recovery.failed != 0 || recovery.transport != 0 || recovery.ok == 0) {
      std::abort();
    }

    state.counters["peak_qps"] = peak_qps;
    state.counters["overload_goodput_qps"] = over.goodput_qps();
    state.counters["goodput_ratio"] = ratio;
    state.counters["overload_shed"] = static_cast<double>(over.shed);
    state.counters["overload_p50_ms"] = over.Percentile(0.50);
    state.counters["overload_p99_ms"] = over.Percentile(0.99);
    state.counters["recovery_goodput_qps"] = recovery.goodput_qps();
    state.counters["recovery_errors"] =
        static_cast<double>(recovery.failed + recovery.transport);

    service->Stop();
  }
}
BENCHMARK(BM_OverloadGoodput)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ShedFastPath(benchmark::State& state) {
  server::ServiceOptions options;
  options.governance.max_concurrent_total = 1;
  options.admission.capacity = 1;
  options.admission.max_queue = 1;
  // The parked waiter below must out-wait the whole measurement.
  options.admission.max_wait_ms = 300'000;
  options.admission.brownout_after_ms = 1'000'000'000;
  // A shed never touches the corpus, so a small one keeps setup instant.
  auto service = StartSmallService(std::move(options), /*corpus_entries=*/300);

  // Wedge the admission path: occupy the only slot directly, then park a
  // non-sheddable request in the only queue seat. Every further request
  // is refused at the door — the fast path this benchmark times.
  service->admission().Admit(1);
  std::thread parked([&] {
    auto client =
        server::Client::Connect("127.0.0.1", service->port(), 300'000);
    if (!client.ok()) std::abort();
    server::Request request = MakeRequest();
    request.priority = 1;  // Never CoDel-shed: holds the queue seat.
    auto response = client->Call(request);
    if (!response.ok() || !response->ok) std::abort();
  });
  while (true) {
    auto snapshot = service->admission().Snapshot();
    if (snapshot.queued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto client = server::Client::Connect("127.0.0.1", service->port());
  if (!client.ok()) std::abort();
  for (auto _ : state) {
    auto response = client->Call(MakeRequest());
    if (!response.ok() || response->code != "OVERLOADED" ||
        response->retry_after_ms <= 0) {
      std::abort();
    }
    benchmark::DoNotOptimize(response->retry_after_ms);
  }

  // Release the slot: the parked request executes, answers, and the
  // waiter thread joins — proving the wedge was a queue, not a wreck.
  service->admission().Leave();
  parked.join();
  service->Stop();
}
// Fixed iteration count: the function builds a service per invocation,
// so google-benchmark's usual iteration probing would rebuild it over
// and over for nothing.
BENCHMARK(BM_ShedFastPath)->Iterations(5000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_resilience.json");
}
