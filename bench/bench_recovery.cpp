// Experiment: durability must not price mutations out of use. Every engine
// mutation now writes a CRC-framed record to the write-ahead log before
// touching the catalog, and recovery replays the log tail over the last
// snapshot on open. This bench quantifies both sides of that bargain:
//
//   BM_ApplyNoWal          the in-memory baseline (no durable store)
//   BM_ApplyWalNever       + WAL framing and buffered appends, no fsync
//   BM_ApplyWalInterval    + the background flusher fsyncing on its time
//                            cadence (the default policy, and the
//                            production recommendation: the mutator never
//                            waits on the device)
//   BM_ApplyWalAlways      + one fsync per record (zero acked loss)
//   BM_ApplyBatchWalAlways   group commit: 32 mutations, ONE fsync
//   BM_EncodeWalRecord     serialization alone, no filesystem
//   BM_WalReplay           decode + apply throughput (items_per_second is
//                            records/s; the recovery bar is >= 100k/s)
//   BM_RecoveryOpen        full DurableStore::Open against a WAL tail of
//                            N records (arg), snapshot present
//   BM_Checkpoint          snapshot + manifest + WAL reset round-trip
//
// Acceptance bars from the recovery work: BM_ApplyWalInterval within ~15%
// of BM_ApplyNoWal, and BM_WalReplay >= 100k records/s. Sync::always is
// expected to cost whatever an fsync costs on the device — that is the
// point of offering the policy knob rather than picking for the user.
//
// On a single-CPU box the flusher time-slices with the mutator, so run-to-
// run drift swamps a sub-15% margin unless repetitions are interleaved:
//   bench_recovery --benchmark_repetitions=5 \
//       --benchmark_enable_random_interleaving=true \
//       --benchmark_report_aggregates_only=true
// and compare medians (the committed BENCH_recovery.json is such a run).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"
#include "recovery/durable.h"
#include "recovery/wal.h"
#include "storage/env.h"

namespace regal {
namespace {

// The same production-sized catalog the other benches mutate against: a
// 2000-entry dictionary (~1 MB of text, several hundred thousand regions).
// Overhead percentages are only meaningful against a mutation that does
// real work on a real catalog.
Instance MakeCorpus() {
  DictionaryGeneratorOptions options;
  options.entries = 2000;
  auto instance = ParseSgml(GenerateDictionarySource(options));
  if (!instance.ok()) std::abort();
  return std::move(*instance);
}

std::string BenchDir(const char* name) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// The mutation workload: replace one of 8 named region sets with 32 fresh
// regions — the steady-state shape of a live catalog under edits (text
// rebinds are dominated by suffix-array construction, not by the WAL).
recovery::Mutation WorkloadMutation(int64_t i) {
  std::vector<Region> regions;
  regions.reserve(32);
  Offset left = static_cast<Offset>(i % 97);
  for (int r = 0; r < 32; ++r) {
    left += 11;
    regions.push_back(Region{left, left + 7});
  }
  return recovery::Mutation::ReplaceRegions(
      "set" + std::to_string(i % 8), RegionSet::FromUnsorted(std::move(regions)));
}

// The corpus as a mutation batch, for seeding a durable engine with the
// same catalog the no-WAL baseline holds.
std::vector<recovery::Mutation> CorpusMutations(const Instance& corpus) {
  std::vector<recovery::Mutation> out;
  if (corpus.text() != nullptr) {
    out.push_back(recovery::Mutation::BindText(corpus.text()->content()));
  }
  for (const std::string& name : corpus.names()) {
    auto set = corpus.Get(name);
    if (!set.ok()) std::abort();
    out.push_back(recovery::Mutation::ReplaceRegions(name, **set));
  }
  return out;
}

recovery::DurableOptions OptionsFor(recovery::SyncPolicy sync) {
  recovery::DurableOptions options;
  options.wal.sync = sync;
  // The bench measures the journaling path, not snapshot rewrites.
  options.checkpoint_every_records = 1e12;
  return options;
}

void ApplyLoop(benchmark::State& state, QueryEngine* engine) {
  int64_t i = 0;
  for (auto _ : state) {
    if (!engine->Apply(WorkloadMutation(i++)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ApplyNoWal(benchmark::State& state) {
  QueryEngine engine{MakeCorpus()};
  ApplyLoop(state, &engine);
}

void ApplyWithPolicy(benchmark::State& state, recovery::SyncPolicy sync,
                     const char* name) {
  auto engine = QueryEngine::OpenDurable(BenchDir(name), OptionsFor(sync));
  if (!engine.ok()) std::abort();
  if (!engine->ApplyBatch(CorpusMutations(MakeCorpus())).ok()) std::abort();
  if (!engine->Checkpoint().ok()) std::abort();
  ApplyLoop(state, &*engine);
}

void BM_ApplyWalNever(benchmark::State& state) {
  ApplyWithPolicy(state, recovery::SyncPolicy::kNever, "bench_wal_never");
}

void BM_ApplyWalInterval(benchmark::State& state) {
  ApplyWithPolicy(state, recovery::SyncPolicy::kInterval,
                  "bench_wal_interval");
}

void BM_ApplyWalAlways(benchmark::State& state) {
  ApplyWithPolicy(state, recovery::SyncPolicy::kAlways, "bench_wal_always");
}

// Group commit: a 32-mutation batch is one append and one fsync, so the
// per-mutation cost under Sync::always amortizes by the batch width.
void BM_ApplyBatchWalAlways(benchmark::State& state) {
  auto engine = QueryEngine::OpenDurable(
      BenchDir("bench_wal_batch"), OptionsFor(recovery::SyncPolicy::kAlways));
  if (!engine.ok()) std::abort();
  if (!engine->ApplyBatch(CorpusMutations(MakeCorpus())).ok()) std::abort();
  if (!engine->Checkpoint().ok()) std::abort();
  int64_t i = 0;
  for (auto _ : state) {
    std::vector<recovery::Mutation> batch;
    batch.reserve(32);
    for (int b = 0; b < 32; ++b) batch.push_back(WorkloadMutation(i++));
    if (!engine->ApplyBatch(batch).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}

void BM_EncodeWalRecord(benchmark::State& state) {
  const recovery::Mutation m = WorkloadMutation(0);
  int64_t bytes = 0;
  uint64_t lsn = 1;
  for (auto _ : state) {
    auto frame = recovery::EncodeWalRecord(lsn++, m);
    if (!frame.ok()) std::abort();
    bytes += static_cast<int64_t>(frame->size());
  }
  state.SetBytesProcessed(bytes);
}

void BM_WalReplay(benchmark::State& state) {
  const int64_t records = state.range(0);
  std::string log = recovery::WalHeader();
  for (int64_t i = 0; i < records; ++i) {
    auto frame =
        recovery::EncodeWalRecord(static_cast<uint64_t>(i + 1),
                                  WorkloadMutation(i));
    if (!frame.ok()) std::abort();
    log += *frame;
  }
  for (auto _ : state) {
    auto read = recovery::ReadWalBytes(log);
    if (!read.ok() ||
        read->records.size() != static_cast<size_t>(records)) {
      std::abort();
    }
    Instance instance;
    for (const auto& [lsn, m] : read->records) {
      if (!recovery::ApplyMutation(&instance, m).ok()) std::abort();
    }
    benchmark::DoNotOptimize(instance.NumRegions());
  }
  state.SetItemsProcessed(state.iterations() * records);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}

void BM_RecoveryOpen(benchmark::State& state) {
  const int64_t tail = state.range(0);
  const std::string dir = BenchDir("bench_recovery_open");
  {
    auto engine = QueryEngine::OpenDurable(
        dir, OptionsFor(recovery::SyncPolicy::kNever));
    if (!engine.ok()) std::abort();
    // A checkpointed base catalog, then `tail` un-checkpointed records.
    for (int64_t i = 0; i < 8; ++i) {
      if (!engine->Apply(WorkloadMutation(i)).ok()) std::abort();
    }
    if (!engine->Checkpoint().ok()) std::abort();
    for (int64_t i = 0; i < tail; ++i) {
      if (!engine->Apply(WorkloadMutation(i)).ok()) std::abort();
    }
  }
  for (auto _ : state) {
    Instance instance;
    auto store = recovery::DurableStore::Open(storage::Env::Default(), dir,
                                              {}, &instance);
    if (!store.ok() ||
        (*store)->health().replayed_records != static_cast<uint64_t>(tail)) {
      std::abort();
    }
    benchmark::DoNotOptimize(instance.NumRegions());
  }
  state.SetItemsProcessed(state.iterations() * tail);
}

void BM_Checkpoint(benchmark::State& state) {
  auto engine = QueryEngine::OpenDurable(
      BenchDir("bench_checkpoint"), OptionsFor(recovery::SyncPolicy::kNever));
  if (!engine.ok()) std::abort();
  int64_t i = 0;
  for (auto _ : state) {
    // A few journaled records between checkpoints keeps the WAL reset on
    // the measured path.
    for (int b = 0; b < 4; ++b) {
      if (!engine->Apply(WorkloadMutation(i++)).ok()) std::abort();
    }
    if (!engine->Checkpoint().ok()) std::abort();
  }
}

BENCHMARK(BM_ApplyNoWal);
BENCHMARK(BM_ApplyWalNever);
BENCHMARK(BM_ApplyWalInterval);
BENCHMARK(BM_ApplyWalAlways);
BENCHMARK(BM_ApplyBatchWalAlways);
BENCHMARK(BM_EncodeWalRecord);
BENCHMARK(BM_WalReplay)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_RecoveryOpen)->Arg(0)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_Checkpoint);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_recovery.json");
}
