// Experiment E5: inclusion expressions are optimizable in polynomial time
// (Section 5.1, citing [CM94]). Sweeps chain length and RIG size; expect
// near-linear growth in both — in sharp contrast to E4's exponential
// general-case emptiness testing.

#include <benchmark/benchmark.h>

#include "opt/chain.h"
#include "util/random.h"

namespace regal {
namespace {

// A layered random DAG RIG of `layers` levels with `width` names each;
// consecutive layers are densely connected, so many middles are separators.
Digraph LayeredRig(int layers, int width, double density, uint64_t seed) {
  Rng rng(seed);
  Digraph rig;
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      rig.AddNode("L" + std::to_string(l) + "_" + std::to_string(w));
    }
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        if (rng.Chance(density)) {
          rig.AddEdge("L" + std::to_string(l) + "_" + std::to_string(a),
                      "L" + std::to_string(l + 1) + "_" + std::to_string(b));
        }
      }
    }
  }
  return rig;
}

void BM_ChainOptimizeByLength(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Digraph rig = LayeredRig(length, 3, 0.7, 99);
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  for (int l = length - 1; l >= 0; --l) {
    chain.names.push_back("L" + std::to_string(l) + "_0");
  }
  size_t optimized_length = 0;
  for (auto _ : state) {
    InclusionChain optimized = OptimizeInclusionChain(rig, chain);
    optimized_length = optimized.names.size();
    benchmark::DoNotOptimize(optimized);
  }
  state.counters["chain_in"] = static_cast<double>(chain.names.size());
  state.counters["chain_out"] = static_cast<double>(optimized_length);
}

void BM_ChainOptimizeByRigSize(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Digraph rig = LayeredRig(6, width, 0.5, 7);
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  for (int l = 5; l >= 0; --l) {
    chain.names.push_back("L" + std::to_string(l) + "_0");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeInclusionChain(rig, chain));
  }
  state.counters["rig_nodes"] = static_cast<double>(rig.NumNodes());
  state.counters["rig_edges"] = static_cast<double>(rig.NumEdges());
}

void BM_SeparatorTest(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Digraph rig = LayeredRig(4, width, 0.5, 11);
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  chain.names = {"L3_0", "L2_0", "L1_0", "L0_0"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsRedundantChainElement(rig, chain, 1));
    benchmark::DoNotOptimize(IsRedundantChainElement(rig, chain, 2));
  }
}

BENCHMARK(BM_ChainOptimizeByLength)->RangeMultiplier(2)->Range(4, 64);
BENCHMARK(BM_ChainOptimizeByRigSize)->RangeMultiplier(2)->Range(4, 256);
BENCHMARK(BM_SeparatorTest)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
