// Experiment E6: "one loop is sufficient" (Section 6). On deep instances
// from the chain program's validity class, compares the stepwise strategy
// (one loop program per ⊃_d, the "very expensive" naive computation) with
// the paper's single-loop chain program, sweeping R1-nesting depth and
// chain length. Also measures the RIG-restricted `All` optimization.

#include <benchmark/benchmark.h>

#include "core/extended.h"
#include "doc/synthetic.h"
#include "rig/minimal_set.h"

namespace regal {
namespace {

// A P-spine of the given depth; each P directly holds an M holding an X
// holding a V (a 4-name chain per level), plus sibling noise regions N.
Instance DeepChainInstance(int depth) {
  NodeSpec node{"P",
                {NodeSpec{"M", {NodeSpec{"X", {NodeSpec{"V", {}}}}}},
                 NodeSpec{"N", {}}}};
  for (int i = 1; i < depth; ++i) {
    NodeSpec p{"P",
               {NodeSpec{"M", {NodeSpec{"X", {NodeSpec{"V", {}}}}}},
                NodeSpec{"N", {}}, std::move(node)}};
    node = std::move(p);
  }
  Instance instance = FromForest({std::move(node)});
  for (const char* name : {"P", "M", "X", "V", "N"}) {
    if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
  }
  return instance;
}

const std::vector<std::string>& Chain() {
  static const std::vector<std::string> chain{"P", "M", "X", "V"};
  return chain;
}

void BM_StepwiseChain(benchmark::State& state) {
  Instance instance = DeepChainInstance(static_cast<int>(state.range(0)));
  int iterations = 0;
  for (auto _ : state) {
    auto result = DirectChainStepwise(instance, Chain(), &iterations);
    if (!result.ok()) state.SkipWithError("chain failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["loop_iterations"] = iterations;
}

void BM_SingleLoopChain(benchmark::State& state) {
  Instance instance = DeepChainInstance(static_cast<int>(state.range(0)));
  int iterations = 0;
  for (auto _ : state) {
    auto result = DirectChainLoop(instance, Chain(), &iterations);
    if (!result.ok()) state.SkipWithError("chain failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["loop_iterations"] = iterations;
}

void BM_SingleLoopChainRestrictedAll(benchmark::State& state) {
  Instance instance = DeepChainInstance(static_cast<int>(state.range(0)));
  // The separator-based restriction of `All` (Section 6 / Prop 6.1):
  // computed once from the derived RIG via per-pair min cuts.
  Digraph rig = instance.DeriveRig();
  auto separators = MinimalSetPairwiseCuts(rig, Chain());
  if (!separators.ok()) {
    state.SkipWithError("separator computation failed");
    return;
  }
  // The restricted All must still include the chain's own middle names
  // (their ⊂-powers define the legitimate-witness filter).
  std::vector<std::string> restricted = *separators;
  for (const std::string& name : {std::string("M"), std::string("X")}) {
    if (std::find(restricted.begin(), restricted.end(), name) ==
        restricted.end()) {
      restricted.push_back(name);
    }
  }
  for (auto _ : state) {
    auto result = DirectChainLoop(instance, Chain(), nullptr, restricted);
    if (!result.ok()) state.SkipWithError("chain failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["all_names"] = static_cast<double>(restricted.size());
}

void BM_NativeChain(benchmark::State& state) {
  Instance instance = DeepChainInstance(static_cast<int>(state.range(0)));
  instance.TreeSize();
  for (auto _ : state) {
    RegionSet current = **instance.Get("V");
    const char* lefts[] = {"X", "M", "P"};
    for (const char* name : lefts) {
      current = DirectIncluding(instance, **instance.Get(name), current);
    }
    benchmark::DoNotOptimize(current);
  }
}

BENCHMARK(BM_StepwiseChain)->RangeMultiplier(2)->Range(4, 256);
BENCHMARK(BM_SingleLoopChain)->RangeMultiplier(2)->Range(4, 256);
BENCHMARK(BM_SingleLoopChainRestrictedAll)->RangeMultiplier(2)->Range(4, 256);
BENCHMARK(BM_NativeChain)->RangeMultiplier(2)->Range(4, 256);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
