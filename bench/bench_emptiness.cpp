// Experiment E4: emptiness testing is Co-NP-Hard (Theorem 3.5). Runs the
// 3-CNF -> emptiness reduction on random formulas near the hard m/n ≈ 4.2
// ratio and measures (a) emptiness by assignment search (exponential in n,
// the Co-NP-hardness shape), (b) DPLL on the same formulas (fast on these
// sizes), and (c) the generic bounded-model checker on small fixed queries.

#include <benchmark/benchmark.h>

#include "fmft/emptiness.h"
#include "fmft/reduction3cnf.h"
#include "logic/dpll.h"
#include "util/random.h"

namespace regal {
namespace {

Cnf MakeCnf(int num_vars) {
  Rng rng(2024);
  return RandomKCnf(rng, num_vars, static_cast<int>(num_vars * 4.2), 3);
}

void BM_EmptinessByAssignmentSearch(benchmark::State& state) {
  Cnf cnf = MakeCnf(static_cast<int>(state.range(0)));
  CnfEmptinessReduction reduction = CnfToEmptinessExpr(cnf);
  int64_t checked = 0;
  bool empty = false;
  for (auto _ : state) {
    empty = EmptinessByAssignmentSearch(cnf, reduction.expr, &checked);
    benchmark::DoNotOptimize(empty);
  }
  state.counters["instances_checked"] = static_cast<double>(checked);
  state.counters["empty"] = empty ? 1 : 0;
  state.counters["expr_ops"] = reduction.expr->NumOps();
}

void BM_DpllOnSameFormula(benchmark::State& state) {
  Cnf cnf = MakeCnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpllSolve(cnf));
  }
}

void BM_GenericBoundedEmptiness(benchmark::State& state) {
  // A fixed satisfiable query; the checker must discover a witness
  // instance from scratch. range = max_nodes bound.
  ExprPtr e = Expr::Including(
      Expr::Name("A"),
      Expr::Precedes(Expr::Name("B"), Expr::Name("C")));
  EmptinessOptions options;
  options.max_nodes = static_cast<int>(state.range(0));
  options.max_depth = 3;
  options.random_samples = 0;
  int64_t checked = 0;
  for (auto _ : state) {
    auto report = CheckEmptiness(e, options);
    if (!report.ok()) state.SkipWithError("check failed");
    checked = report->instances_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["instances_checked"] = static_cast<double>(checked);
}

void BM_GenericBoundedEmptinessUnsat(benchmark::State& state) {
  // An unsatisfiable query: the checker must exhaust the whole bounded
  // space — the worst case.
  ExprPtr a = Expr::Name("A");
  ExprPtr e = Expr::Difference(a, a);
  EmptinessOptions options;
  options.max_nodes = static_cast<int>(state.range(0));
  options.max_depth = 3;
  options.random_samples = 0;
  int64_t checked = 0;
  for (auto _ : state) {
    auto report = CheckEmptiness(e, options);
    if (!report.ok()) state.SkipWithError("check failed");
    checked = report->instances_checked;
  }
  state.counters["instances_checked"] = static_cast<double>(checked);
}

BENCHMARK(BM_EmptinessByAssignmentSearch)->DenseRange(4, 16, 2);
BENCHMARK(BM_DpllOnSameFormula)->DenseRange(4, 16, 2);
BENCHMARK(BM_GenericBoundedEmptiness)->DenseRange(2, 6, 1);
BENCHMARK(BM_GenericBoundedEmptinessUnsat)->DenseRange(2, 6, 1);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
