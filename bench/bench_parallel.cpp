// Experiment: scaling of the exec/ parallel execution layer. Sweeps thread
// counts over the partitioned operator kernels and the parallel index
// builds; each configuration is compared against the sequential operators
// (threads = 1 uses a one-lane pool, which is exactly the sequential path).
// Interpret speedups against the "num_cpus" recorded in the JSON context —
// thread counts beyond the physical cores measure oversubscription, not
// scaling.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_report.h"
#include "core/algebra.h"
#include "doc/dictionary.h"
#include "doc/synthetic.h"
#include "exec/parallel_algebra.h"
#include "exec/thread_pool.h"
#include "index/word_index.h"
#include "text/text.h"
#include "util/random.h"

namespace regal {
namespace {

struct Inputs {
  RegionSet r;
  RegionSet s;
};

Inputs MakeInputs(int64_t n) {
  Rng rng(42);
  RandomInstanceOptions options;
  options.num_regions = static_cast<int>(2 * n);
  options.max_depth = 12;
  options.max_names = 2;
  Instance instance = RandomLaminarInstance(rng, options);
  return Inputs{**instance.Get("R0"), **instance.Get("R1")};
}

// One pool per thread count, reused across iterations (pool startup is not
// the quantity under test).
exec::ThreadPool& PoolFor(int threads) {
  static exec::ThreadPool* pools[] = {
      new exec::ThreadPool(1), new exec::ThreadPool(2),
      new exec::ThreadPool(4), new exec::ThreadPool(8)};
  switch (threads) {
    case 1: return *pools[0];
    case 2: return *pools[1];
    case 4: return *pools[2];
    default: return *pools[3];
  }
}

exec::ParallelConfig ConfigFor(int threads) {
  exec::ParallelConfig cfg;
  cfg.pool = &PoolFor(threads);
  cfg.min_rows = 0;  // Always take the partitioned path, even at size 2^8.
  return cfg;
}

void BM_ParallelIncluding(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  exec::ParallelConfig cfg = ConfigFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::ParallelIncluding(in.r, in.s, cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.r.size() + in.s.size()));
}

void BM_ParallelUnion(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  exec::ParallelConfig cfg = ConfigFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::ParallelUnion(in.r, in.s, cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.r.size() + in.s.size()));
}

void BM_ParallelDifference(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  exec::ParallelConfig cfg = ConfigFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::ParallelDifference(in.r, in.s, cfg));
  }
}

void BM_ParallelPrecedes(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  exec::ParallelConfig cfg = ConfigFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::ParallelPrecedes(in.r, in.s, cfg));
  }
}

// Sequential baselines at the same sizes, for the speedup denominator.
void BM_SequentialIncluding(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Including(in.r, in.s));
  }
}

void BM_SequentialUnion(benchmark::State& state) {
  Inputs in = MakeInputs(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Union(in.r, in.s));
  }
}

std::string IndexSource(int entries) {
  DictionaryGeneratorOptions options;
  options.entries = entries;
  return GenerateDictionarySource(options);
}

void BM_IndexBuild(benchmark::State& state) {
  Text text(IndexSource(static_cast<int>(state.range(0))));
  exec::ThreadPool& pool = PoolFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    SuffixArrayWordIndex index(&text, &pool);
    benchmark::DoNotOptimize(index.NumTokens());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.content().size()));
}

void BM_IndexBuildSequential(benchmark::State& state) {
  Text text(IndexSource(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    SuffixArrayWordIndex index(&text, /*pool=*/nullptr);
    benchmark::DoNotOptimize(index.NumTokens());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.content().size()));
}

void BM_InvertedIndexBuild(benchmark::State& state) {
  Text text(IndexSource(static_cast<int>(state.range(0))));
  exec::ThreadPool& pool = PoolFor(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    InvertedWordIndex index(&text, &pool);
    benchmark::DoNotOptimize(index.NumTokens());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.content().size()));
}

const std::vector<int64_t> kSizes = {1 << 14, 1 << 16, 1 << 18};
const std::vector<int64_t> kThreads = {1, 2, 4, 8};

BENCHMARK(BM_ParallelIncluding)->ArgsProduct({kSizes, kThreads});
BENCHMARK(BM_ParallelUnion)->ArgsProduct({kSizes, kThreads});
BENCHMARK(BM_ParallelDifference)->ArgsProduct({kSizes, kThreads});
BENCHMARK(BM_ParallelPrecedes)->ArgsProduct({kSizes, kThreads});
BENCHMARK(BM_SequentialIncluding)->Arg(1 << 18);
BENCHMARK(BM_SequentialUnion)->Arg(1 << 18);
BENCHMARK(BM_IndexBuild)->ArgsProduct({{256, 1024}, kThreads});
BENCHMARK(BM_IndexBuildSequential)->Arg(1024);
BENCHMARK(BM_InvertedIndexBuild)->ArgsProduct({{1024}, kThreads});

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_parallel.json");
}
