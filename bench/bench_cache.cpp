// Experiment: the cross-query result cache must be free when it cannot help
// and decisive when it can. Three engines run the same heavy dictionary
// query: (a) cache disabled — the pre-cache engine; (b) cache enabled but
// cleared every iteration — the cold path, which pays canonical
// fingerprinting, probes and inserts on top of full evaluation and must
// stay within ~2% of (a); (c) cache warm — the steady state for the
// paper's assumed access pattern (analysts re-issuing structural
// sub-queries), which must be at least ~5x faster than (a) because the
// whole tree short-circuits at the root probe. BM_WarmCommuted shows the
// canonical fingerprint doing the work a textual key cannot: a commuted
// spelling of the query still hits. BM_Canonicalize isolates the
// per-query fingerprinting cost the cold path pays.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_report.h"
#include "core/expr.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"
#include "query/parser.h"

namespace regal {
namespace {

// One mid-sized text-backed catalog per engine mode; construction is not
// the quantity under test.
QueryEngine MakeEngine() {
  DictionaryGeneratorOptions options;
  options.entries = 400;
  auto built = QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  if (!built.ok()) std::abort();
  return std::move(*built);
}

const char* kQuery =
    "(quote within sense) | (def within sense) | "
    "entry including (headword matching \"term*\")";

// The same query modulo commutativity of | — textually different, same
// canonical fingerprint.
const char* kCommutedQuery =
    "entry including (headword matching \"term*\") | "
    "(def within sense) | (quote within sense)";

void RunQuery(benchmark::State& state, QueryEngine& engine,
              const char* query) {
  for (auto _ : state) {
    auto answer = engine.Run(query);
    if (!answer.ok()) std::abort();
    benchmark::DoNotOptimize(answer->regions.size());
  }
}

void BM_CacheDisabled(benchmark::State& state) {
  QueryEngine engine = MakeEngine();
  engine.set_result_cache_enabled(false);
  RunQuery(state, engine, kQuery);
}

void BM_ColdCache(benchmark::State& state) {
  // Every iteration starts from an empty cache: full evaluation plus the
  // cache's bookkeeping (fingerprints, probes, inserts, byte accounting).
  QueryEngine engine = MakeEngine();
  for (auto _ : state) {
    engine.result_cache().Clear();
    auto answer = engine.Run(kQuery);
    if (!answer.ok()) std::abort();
    benchmark::DoNotOptimize(answer->regions.size());
  }
}

void BM_WarmCache(benchmark::State& state) {
  QueryEngine engine = MakeEngine();
  if (!engine.Run(kQuery).ok()) std::abort();  // Warm.
  RunQuery(state, engine, kQuery);
}

void BM_WarmCommuted(benchmark::State& state) {
  // Warmed with one spelling, measured with another: the hit comes from the
  // canonical fingerprint, not the query text.
  QueryEngine engine = MakeEngine();
  if (!engine.Run(kQuery).ok()) std::abort();
  RunQuery(state, engine, kCommutedQuery);
}

void BM_Canonicalize(benchmark::State& state) {
  auto parsed = ParseQuery(kQuery);
  if (!parsed.ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize((*parsed)->CanonicalHash());
  }
}

BENCHMARK(BM_CacheDisabled);
BENCHMARK(BM_ColdCache);
BENCHMARK(BM_WarmCache);
BENCHMARK(BM_WarmCommuted);
BENCHMARK(BM_Canonicalize);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_cache.json");
}
