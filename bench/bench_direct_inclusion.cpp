// Experiment E2: direct inclusion (Theorem 5.1 / Figure 2 / Prop 5.2 / §6).
// On the alternating-nesting Figure 2 family, compares:
//  * the native tree-based ⊃_d,
//  * the paper's Section 6 while-loop program (base ops only),
//  * the Prop 5.2 bounded expansion (a pure expression sized to the depth).
// Expect native ~linear, the loop program ~depth * cost(⊃), and the bounded
// expansion growing with depth * |catalog| — the price of staying inside
// the base algebra.

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"

namespace regal {
namespace {

void BM_NativeDirectIncluding(benchmark::State& state) {
  Instance instance = MakeFigure2Instance(static_cast<int>(state.range(0)));
  RegionSet b = **instance.Get("B");
  RegionSet a = **instance.Get("A");
  instance.TreeSize();  // Pre-build the tree outside the loop.
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectIncluding(instance, b, a));
  }
}

void BM_LoopProgramDirectIncluding(benchmark::State& state) {
  Instance instance = MakeFigure2Instance(static_cast<int>(state.range(0)));
  RegionSet b = **instance.Get("B");
  RegionSet a = **instance.Get("A");
  int iterations = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DirectIncludingLoop(instance, b, a, &iterations));
  }
  state.counters["loop_iterations"] = iterations;
}

void BM_BoundedExpansionDirectIncluding(benchmark::State& state) {
  Instance instance = MakeFigure2Instance(static_cast<int>(state.range(0)));
  ExprPtr bounded =
      DirectIncludingBounded(Expr::Name("B"), Expr::Name("A"),
                             instance.TreeDepth(), instance.names());
  Evaluator evaluator(&instance);
  for (auto _ : state) {
    auto result = evaluator.Evaluate(bounded);
    if (!result.ok()) state.SkipWithError("eval failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["expr_ops"] = bounded->NumOps();
}

void BM_NaiveDirectIncluding(benchmark::State& state) {
  Instance instance = MakeFigure2Instance(static_cast<int>(state.range(0)));
  RegionSet b = **instance.Get("B");
  RegionSet a = **instance.Get("A");
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::DirectIncluding(instance, b, a));
  }
}

BENCHMARK(BM_NativeDirectIncluding)->Range(1 << 2, 1 << 12);
BENCHMARK(BM_LoopProgramDirectIncluding)->Range(1 << 2, 1 << 10);
BENCHMARK(BM_BoundedExpansionDirectIncluding)->Range(1 << 2, 1 << 8);
BENCHMARK(BM_NaiveDirectIncluding)->Range(1 << 2, 1 << 8);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
