// Experiment: the <2% always-on budget of the telemetry layer. Telemetry is
// not a feature flag — the recorder, the latency histogram and the in-flight
// gauge run on every query — so the layer is only shippable if an engine with
// telemetry at default sampling is indistinguishable from one with it off.
// The three engine benches measure the same query stream with (a) telemetry
// disabled, (b) telemetry on at the default 1-in-16 sampling, and (c) every
// query sampled and traced — (a) vs (b) must stay within ~2%; (c) bounds the
// "record everything" debug mode. The result cache is disabled so every run
// pays full evaluation and the timing is stable.
//
// The micro benches isolate the three per-event primitives the budget is
// built from: one Histogram::Observe (lock-free CAS loop), the recorder's
// not-kept path (id draw + sampling modulo + threshold compare), and one
// EventLog::Log emission.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string_view>

#include "bench_report.h"
#include "doc/dictionary.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "query/engine.h"

namespace regal {
namespace {

// Discards every line: the engine benches must measure telemetry, not
// stderr throughput, and the log bench must measure encoding, not I/O.
class NullSink : public obs::LogSink {
 public:
  void Write(std::string_view line) override {
    benchmark::DoNotOptimize(line.data());
  }
};

obs::EventLog& QuietLog() {
  static obs::EventLog* log = [] {
    obs::EventLogOptions options;
    options.max_records_per_second = 0;  // Unlimited; drops are not the
                                         // quantity under test here.
    return new obs::EventLog(std::make_shared<NullSink>(), options);
  }();
  return *log;
}

// One mid-sized text-backed catalog shared by every benchmark; construction
// is not the quantity under test. The result cache is off so repeated runs
// of the same query keep exercising the full evaluation pipeline.
QueryEngine& Engine() {
  static QueryEngine* engine = [] {
    DictionaryGeneratorOptions options;
    options.entries = 400;
    auto built = QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
    if (!built.ok()) std::abort();
    auto* e = new QueryEngine(std::move(*built));
    e->set_result_cache_enabled(false);
    return e;
  }();
  return *engine;
}

const char* kQuery =
    "(quote within sense) | (def within sense) | "
    "entry including (headword matching \"term*\")";

void RunQueries(benchmark::State& state) {
  for (auto _ : state) {
    auto answer = Engine().Run(kQuery);
    if (!answer.ok()) std::abort();
    benchmark::DoNotOptimize(answer->regions.size());
  }
}

void BM_EngineTelemetryOff(benchmark::State& state) {
  Engine().set_telemetry_enabled(false);
  RunQueries(state);
  Engine().set_telemetry_enabled(true);
}

// A private recorder per configuration: Default()'s ring would otherwise
// accumulate bench traffic, and the quiet log keeps any slow-query echo off
// stderr. Default options: 1-in-16 sampling, 100 ms slow threshold.
void BM_EngineTelemetryDefault(benchmark::State& state) {
  obs::FlightRecorderOptions options;
  options.log = &QuietLog();
  obs::FlightRecorder recorder(options);
  Engine().set_flight_recorder(&recorder);
  RunQueries(state);
  Engine().set_flight_recorder(nullptr);
}

// Cost ceiling: every query is sampled, so every query runs with a live
// Tracer and lands in the ring — the "record everything" debug mode.
void BM_EngineSampleEvery(benchmark::State& state) {
  obs::FlightRecorderOptions options;
  options.sample_period = 1;
  options.log = &QuietLog();
  obs::FlightRecorder recorder(options);
  Engine().set_flight_recorder(&recorder);
  RunQueries(state);
  Engine().set_flight_recorder(nullptr);
}

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram =
      obs::Registry::Default().GetHistogram("regal_bench_observe_latency_ms");
  double value = 0;
  for (auto _ : state) {
    histogram->Observe(value);
    value = value < 512 ? value + 1 : 0;  // Walk the buckets.
  }
}

// The per-query cost when nothing is kept: one atomic id draw, the sampling
// modulo, and the threshold compare. This is what every un-kept query pays.
void BM_RecorderSkipPath(benchmark::State& state) {
  obs::FlightRecorderOptions options;
  options.sample_period = 0;  // Never sample: stay on the skip path.
  options.log = &QuietLog();
  obs::FlightRecorder recorder(options);
  for (auto _ : state) {
    uint64_t id = recorder.NextQueryId();
    bool sampled = recorder.ShouldSample(id);
    benchmark::DoNotOptimize(recorder.WouldKeep(/*ok=*/true,
                                                /*elapsed_ms=*/0.05, sampled));
  }
}

void BM_EventLogLog(benchmark::State& state) {
  uint64_t id = 0;
  for (auto _ : state) {
    QuietLog().Log(obs::Severity::kInfo, "bench", "event", ++id,
                   {{"elapsed_ms", "0.05"}, {"rows_out", "12"}});
  }
}

// The drop path: a saturated token bucket turns Log() into a counter bump —
// the cost a misbehaving caller pays once the limiter engages.
void BM_EventLogRateLimitedDrop(benchmark::State& state) {
  obs::EventLogOptions options;
  options.max_records_per_second = 1;
  obs::EventLog log(std::make_shared<NullSink>(), options);
  log.Log(obs::Severity::kInfo, "bench", "drain the bucket");
  for (auto _ : state) {
    log.Log(obs::Severity::kInfo, "bench", "dropped");
  }
}

BENCHMARK(BM_EngineTelemetryOff);
BENCHMARK(BM_EngineTelemetryDefault);
BENCHMARK(BM_EngineSampleEvery);
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_RecorderSkipPath);
BENCHMARK(BM_EventLogLog);
BENCHMARK(BM_EventLogRateLimitedDrop);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_obs.json");
}
