// Experiment E10 (ablation of DESIGN.md decision #2): the same extended
// operator computed four ways —
//   native tree algorithm,
//   §6 loop program (base ops, imperative loop),
//   Prop 5.2 bounded expansion (pure base expression; optimizer lowering),
//   §7 relational plan (θ-joins + difference).
// Measures what each representation costs on document-shaped corpora.

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "opt/optimizer.h"
#include "relational/extended_via_relational.h"

namespace regal {
namespace {

Instance MakeDictionary(int entries) {
  DictionaryGeneratorOptions options;
  options.entries = entries;
  options.seed = 99;
  auto instance = ParseSgml(GenerateDictionarySource(options));
  if (!instance.ok()) std::abort();
  return std::move(instance).value();
}

void BM_AblationNative(benchmark::State& state) {
  Instance instance = MakeDictionary(static_cast<int>(state.range(0)));
  RegionSet entry = **instance.Get("entry");
  RegionSet sense = **instance.Get("sense");
  instance.TreeSize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectIncluding(instance, entry, sense));
  }
}

void BM_AblationLoopProgram(benchmark::State& state) {
  Instance instance = MakeDictionary(static_cast<int>(state.range(0)));
  RegionSet entry = **instance.Get("entry");
  RegionSet sense = **instance.Get("sense");
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectIncludingLoop(instance, entry, sense));
  }
}

void BM_AblationLoweredExpression(benchmark::State& state) {
  Instance instance = MakeDictionary(static_cast<int>(state.range(0)));
  Digraph rig = DictionaryRig();
  OptimizerOptions options;
  options.rig = &rig;
  options.lower_extended_operators = true;
  ExprPtr lowered =
      Optimize(Expr::DirectIncluding(Expr::Name("entry"), Expr::Name("sense")),
               options)
          .expr;
  Evaluator evaluator(&instance);
  for (auto _ : state) {
    auto result = evaluator.Evaluate(lowered);
    if (!result.ok()) state.SkipWithError("eval failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["expr_ops"] = lowered->NumOps();
}

void BM_AblationRelationalPlan(benchmark::State& state) {
  Instance instance = MakeDictionary(static_cast<int>(state.range(0)));
  RegionSet entry = **instance.Get("entry");
  RegionSet sense = **instance.Get("sense");
  for (auto _ : state) {
    auto result = DirectIncludingRelational(instance, entry, sense);
    if (!result.ok()) state.SkipWithError("relational plan failed");
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_AblationNative)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_AblationLoopProgram)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_AblationLoweredExpression)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_AblationRelationalPlan)->RangeMultiplier(4)->Range(16, 256);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
