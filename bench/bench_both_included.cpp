// Experiment E3: both-included (Theorem 5.3 / Figure 3 / Prop 5.4). On the
// Figure 3 family, compares the native BI against the naive-but-wrong
// base-algebra attempt C ⊃ (B < A) (which over-selects — counted as false
// positives) and the Prop 5.4 bounded expansion (correct on antichains but
// quadratic in the width bound).

#include <benchmark/benchmark.h>

#include "core/algebra.h"
#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"

namespace regal {
namespace {

void BM_NativeBothIncluded(benchmark::State& state) {
  Instance instance = MakeFigure3Instance(static_cast<int>(state.range(0)));
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  RegionSet b = **instance.Get("B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BothIncluded(c, b, a));
  }
  state.counters["true_hits"] = static_cast<double>(BothIncluded(c, b, a).size());
}

void BM_NaiveBaseAlgebraAttempt(benchmark::State& state) {
  Instance instance = MakeFigure3Instance(static_cast<int>(state.range(0)));
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  RegionSet b = **instance.Get("B");
  size_t wrong = 0;
  for (auto _ : state) {
    RegionSet attempt = Including(c, Precedes(b, a));
    wrong = attempt.size();
    benchmark::DoNotOptimize(attempt);
  }
  RegionSet truth = BothIncluded(c, b, a);
  state.counters["false_positives"] =
      static_cast<double>(wrong - truth.size());
}

void BM_BoundedExpansionBothIncluded(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Instance instance = MakeFigure3Instance(k);
  // Width bound: the pairwise-disjoint A/B regions, 2*(4k+1)+1 of them.
  int width = 2 * (4 * k + 1) + 1;
  ExprPtr bounded = BothIncludedBounded(Expr::Name("C"), Expr::Name("B"),
                                        Expr::Name("A"), width);
  Evaluator evaluator(&instance);
  for (auto _ : state) {
    auto result = evaluator.Evaluate(bounded);
    if (!result.ok()) state.SkipWithError("eval failed");
    benchmark::DoNotOptimize(result);
  }
  state.counters["expr_ops"] = bounded->NumOps();
}

void BM_NaiveReferenceBothIncluded(benchmark::State& state) {
  Instance instance = MakeFigure3Instance(static_cast<int>(state.range(0)));
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  RegionSet b = **instance.Get("B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::BothIncluded(c, b, a));
  }
}

BENCHMARK(BM_NativeBothIncluded)->Range(1, 1 << 10);
BENCHMARK(BM_NaiveBaseAlgebraAttempt)->Range(1, 1 << 10);
BENCHMARK(BM_BoundedExpansionBothIncluded)->Range(1, 8);
BENCHMARK(BM_NaiveReferenceBothIncluded)->Range(1, 1 << 7);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
