// Experiment E7: the minimal-set problem (Prop 6.1). Exact search is
// exponential (the problem is NP-complete — the harness uses the vertex
// cover reduction), while the single-operation case solves in polynomial
// time via min vertex cut. Expect exact time exploding with graph size and
// min-cut staying flat.

#include <benchmark/benchmark.h>

#include "rig/minimal_set.h"
#include "util/random.h"

namespace regal {
namespace {

std::vector<std::pair<int, int>> RandomEdges(int vertices, double density,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < vertices; ++u) {
    for (int w = u + 1; w < vertices; ++w) {
      if (rng.Chance(density)) edges.emplace_back(u, w);
    }
  }
  return edges;
}

void BM_ExactMinimalSetFromVertexCover(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  auto edges = RandomEdges(vertices, 0.4, 3);
  auto [rig, chain] = VertexCoverToMinimalSet(vertices, edges);
  size_t size = 0;
  for (auto _ : state) {
    auto result = MinimalSetExact(rig, chain);
    if (!result.ok()) state.SkipWithError("exact search failed");
    size = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["minimal_size"] = static_cast<double>(size);
  state.counters["rig_nodes"] = static_cast<double>(rig.NumNodes());
}

void BM_PairwiseCutsOnSameInstances(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  auto edges = RandomEdges(vertices, 0.4, 3);
  auto [rig, chain] = VertexCoverToMinimalSet(vertices, edges);
  size_t size = 0;
  for (auto _ : state) {
    auto result = MinimalSetPairwiseCuts(rig, chain);
    if (!result.ok()) state.SkipWithError("pairwise cuts failed");
    size = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["approx_size"] = static_cast<double>(size);
}

// The polynomial single-operation case on layered DAGs of growing size.
void BM_SingleOpMinCut(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  Rng rng(5);
  Digraph rig;
  rig.AddNode("S");
  rig.AddNode("T");
  for (int w = 0; w < width; ++w) {
    std::string mid = "m" + std::to_string(w);
    rig.AddEdge("S", mid);
    rig.AddEdge(mid, "T");
    // Cross edges for density.
    if (w > 0 && rng.Chance(0.5)) {
      rig.AddEdge("m" + std::to_string(w - 1), mid);
    }
  }
  size_t size = 0;
  for (auto _ : state) {
    auto cut = MinimalSetSingleOp(rig, "S", "T");
    if (!cut.ok()) state.SkipWithError("min cut failed");
    size = cut->size();
    benchmark::DoNotOptimize(cut);
  }
  state.counters["cut_size"] = static_cast<double>(size);
}

BENCHMARK(BM_ExactMinimalSetFromVertexCover)->DenseRange(3, 9, 1);
BENCHMARK(BM_PairwiseCutsOnSameInstances)->DenseRange(3, 9, 1);
BENCHMARK(BM_SingleOpMinCut)->RangeMultiplier(4)->Range(4, 4096);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
