// Experiment: the zero-cost-when-idle contract of the safety layer. Every
// query pays the governance probes (one null-context branch per evaluator
// node, one relaxed atomic load per failpoint site), so the layer is only
// shippable if an ungoverned run is indistinguishable from the pre-safety
// engine. The pairs below measure the same evaluation with (a) no context,
// (b) an idle QueryContext (constructed, no limits set), and (c) a fully
// limited context — (a) vs (b) must stay within ~2%; (c) bounds the cost of
// actually enforcing limits. BM_DisabledFailpointProbe isolates the per-site
// cost of an unarmed failpoint.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_report.h"
#include "core/eval.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"
#include "query/parser.h"
#include "safety/context.h"
#include "safety/failpoint.h"

namespace regal {
namespace {

// One mid-sized text-backed catalog shared by every benchmark; construction
// is not the quantity under test.
QueryEngine& Engine() {
  static QueryEngine* engine = [] {
    DictionaryGeneratorOptions options;
    options.entries = 400;
    auto built = QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
    if (!built.ok()) std::abort();
    return new QueryEngine(std::move(*built));
  }();
  return *engine;
}

const char* kQuery =
    "(quote within sense) | (def within sense) | "
    "entry including (headword matching \"term*\")";

ExprPtr Query() {
  static ExprPtr expr = [] {
    auto parsed = ParseQuery(kQuery);
    if (!parsed.ok()) std::abort();
    return *parsed;
  }();
  return expr;
}

void RunEval(benchmark::State& state, safety::QueryContext* context) {
  const Instance& instance = Engine().instance();
  for (auto _ : state) {
    EvalOptions options;
    options.context = context;
    Evaluator evaluator(&instance, options);
    auto result = evaluator.Evaluate(Query());
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result.value().size());
  }
}

void BM_EvalNoContext(benchmark::State& state) { RunEval(state, nullptr); }

void BM_EvalIdleContext(benchmark::State& state) {
  // A context with no limits set: every Check() short-circuits, but the
  // evaluator still takes the governed branch and charges memory.
  safety::QueryContext context(safety::QueryLimits{});
  RunEval(state, &context);
}

void BM_EvalFullLimits(benchmark::State& state) {
  safety::QueryLimits limits;
  limits.deadline_ms = 1e9;                  // Never hit, always checked.
  limits.memory_limit_bytes = int64_t{1} << 40;
  limits.cancel = std::make_shared<safety::CancelToken>();
  safety::QueryContext context(limits);
  RunEval(state, &context);
}

void BM_EngineUngoverned(benchmark::State& state) {
  for (auto _ : state) {
    auto answer = Engine().Run(kQuery);
    if (!answer.ok()) std::abort();
    benchmark::DoNotOptimize(answer->regions.size());
  }
}

void BM_EngineGoverned(benchmark::State& state) {
  safety::QueryLimits limits;
  limits.deadline_ms = 1e9;
  limits.memory_limit_bytes = int64_t{1} << 40;
  for (auto _ : state) {
    auto answer = Engine().Run(kQuery, limits);
    if (!answer.ok()) std::abort();
    benchmark::DoNotOptimize(answer->regions.size());
  }
}

void BM_DisabledFailpointProbe(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(safety::FailpointFires("bench.never.armed"));
  }
}

void BM_ArmedMissFailpointProbe(benchmark::State& state) {
  // Some unrelated failpoint armed: the probe takes the slow path (mutex +
  // map miss) — the cost ceiling for sites while any stress test runs.
  safety::FailpointRegistry::Default().Arm("bench.other.site");
  for (auto _ : state) {
    benchmark::DoNotOptimize(safety::FailpointFires("bench.never.armed"));
  }
  safety::FailpointRegistry::Default().DisarmAll();
}

BENCHMARK(BM_EvalNoContext);
BENCHMARK(BM_EvalIdleContext);
BENCHMARK(BM_EvalFullLimits);
BENCHMARK(BM_EngineUngoverned);
BENCHMARK(BM_EngineGoverned);
BENCHMARK(BM_DisabledFailpointProbe);
BENCHMARK(BM_ArmedMissFailpointProbe);

}  // namespace
}  // namespace regal

int main(int argc, char** argv) {
  return regal::RunBenchmarksWithJson(argc, argv, "BENCH_safety.json");
}
