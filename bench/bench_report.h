// Shared bench harness: runs google-benchmark with the usual console output
// plus a machine-readable JSON report (the BENCH_*.json files referenced by
// EXPERIMENTS.md), written with the obs JSON writer so the bench binaries add
// no dependencies.

#ifndef REGAL_BENCH_BENCH_REPORT_H_
#define REGAL_BENCH_BENCH_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simd/simd_kernels.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "util/cpu.h"

// Build provenance, injected by bench/CMakeLists.txt so that every BENCH_*.json
// records which revision and build type produced it.
#ifndef REGAL_GIT_REVISION
#define REGAL_GIT_REVISION "unknown"
#endif
#ifndef REGAL_BUILD_TYPE
#define REGAL_BUILD_TYPE "unknown"
#endif

namespace regal {

/// Display reporter that keeps the normal console output and additionally
/// streams every run into one JSON document:
///   {"context": {...}, "benchmarks": [{"name": ..., "iterations": ...,
///    "real_time_ns": ..., "cpu_time_ns": ..., <user counters>...}, ...]}
/// Times are in each run's time unit (nanoseconds for every bench here).
/// Wrapping the console reporter (instead of using the file-reporter slot)
/// sidesteps google-benchmark's requirement that file reporters come with an
/// explicit --benchmark_out flag.
class BenchJsonReporter : public benchmark::BenchmarkReporter {
 public:
  explicit BenchJsonReporter(std::string path) : path_(std::move(path)) {}

  bool ReportContext(const Context& context) override {
    console_.SetOutputStream(&GetOutputStream());
    console_.SetErrorStream(&GetErrorStream());
    const benchmark::CPUInfo& cpu = benchmark::CPUInfo::Get();
    writer_.BeginObject();
    writer_.Key("context").BeginObject();
    writer_.Key("num_cpus").Int(cpu.num_cpus);
    writer_.Key("mhz_per_cpu").Double(cpu.cycles_per_second / 1e6);
    // Numbers from different thread counts / revisions / build types are not
    // comparable; record all three so stale baselines are detectable.
    writer_.Key("num_threads").Int(exec::ThreadPool::DefaultNumThreads());
    writer_.Key("git_revision").String(REGAL_GIT_REVISION);
    writer_.Key("build_type").String(REGAL_BUILD_TYPE);
    // The ISA tier the operator kernels dispatched to (after the REGAL_SIMD
    // override, if any) plus the raw CPU features; numbers from different
    // tiers are not comparable either.
    writer_.Key("simd_isa").String(simd::ActiveKernels().name);
    writer_.Key("cpu_sse42").Bool(util::CpuInfo().sse42);
    writer_.Key("cpu_avx2").Bool(util::CpuInfo().avx2);
    writer_.EndObject();
    writer_.Key("benchmarks").BeginArray();
    return console_.ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      writer_.BeginObject();
      writer_.Key("name").String(run.benchmark_name());
      writer_.Key("iterations").Int(run.iterations);
      writer_.Key("real_time_ns").Double(run.GetAdjustedRealTime());
      writer_.Key("cpu_time_ns").Double(run.GetAdjustedCPUTime());
      for (const auto& [counter_name, counter] : run.counters) {
        writer_.Key(counter_name).Double(counter.value);
      }
      writer_.EndObject();
    }
    console_.ReportRuns(runs);
  }

  void Finalize() override {
    console_.Finalize();
    writer_.EndArray().EndObject();
    std::string doc = writer_.Take();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot open %s for writing\n",
                   path_.c_str());
      return;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench_report: wrote %s\n", path_.c_str());
  }

 private:
  std::string path_;
  obs::JsonWriter writer_;
  // Colorless tabular output: these binaries are usually logged or piped.
  benchmark::ConsoleReporter console_{benchmark::ConsoleReporter::OO_Tabular};
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body. The JSON report lands at
/// `default_path` (relative to the working directory) unless the
/// REGAL_BENCH_JSON environment variable overrides it.
inline int RunBenchmarksWithJson(int argc, char** argv,
                                 const char* default_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* override_path = std::getenv("REGAL_BENCH_JSON");
  BenchJsonReporter reporter(override_path != nullptr ? override_path
                                                      : default_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace regal

#endif  // REGAL_BENCH_BENCH_REPORT_H_
