// Experiment E9: the PAT substrate [Gon87, Ope93]. Suffix-array
// construction and pattern search throughput over synthetic corpora, plus
// the σ_p word-index path both indexes implement. Establishes that the
// selection operator runs against a real index.

#include <benchmark/benchmark.h>

#include "doc/sgml.h"
#include "index/suffix_array.h"
#include "index/word_index.h"
#include "util/random.h"

namespace regal {
namespace {

std::string MakeCorpus(int64_t target_bytes) {
  PlayGeneratorOptions options;
  options.acts = 1;
  options.scenes_per_act = 1;
  options.speeches_per_scene = static_cast<int>(target_bytes / 400 + 1);
  options.lines_per_speech = 3;
  options.vocabulary = 200;
  return GeneratePlaySource(options);
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  std::string corpus = MakeCorpus(state.range(0));
  for (auto _ : state) {
    SuffixArray sa(corpus);
    benchmark::DoNotOptimize(sa.sa().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}

void BM_SuffixArraySearch(benchmark::State& state) {
  std::string corpus = MakeCorpus(state.range(0));
  SuffixArray sa(corpus);
  Rng rng(1);
  for (auto _ : state) {
    std::string needle = "word" + std::to_string(rng.Below(200));
    benchmark::DoNotOptimize(sa.Count(needle));
  }
}

void BM_SuffixArrayOccurrences(benchmark::State& state) {
  std::string corpus = MakeCorpus(state.range(0));
  SuffixArray sa(corpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.Occurrences("word1"));
  }
}

void BM_WordIndexExact(benchmark::State& state) {
  Text text(MakeCorpus(state.range(0)));
  SuffixArrayWordIndex index(&text);
  Pattern p = *Pattern::Parse("word42");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Matches(p));
  }
}

void BM_WordIndexPrefix(benchmark::State& state) {
  Text text(MakeCorpus(state.range(0)));
  SuffixArrayWordIndex index(&text);
  Pattern p = *Pattern::Parse("word1*");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Matches(p));
  }
}

void BM_InvertedIndexPrefix(benchmark::State& state) {
  Text text(MakeCorpus(state.range(0)));
  InvertedWordIndex index(&text);
  Pattern p = *Pattern::Parse("word1*");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Matches(p));
  }
}

BENCHMARK(BM_SuffixArrayBuild)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_SuffixArraySearch)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_SuffixArrayOccurrences)->Range(1 << 12, 1 << 20);
BENCHMARK(BM_WordIndexExact)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_WordIndexPrefix)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_InvertedIndexPrefix)->Range(1 << 12, 1 << 18);

}  // namespace
}  // namespace regal

BENCHMARK_MAIN();
