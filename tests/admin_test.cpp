// Integration suite for the embedded admin endpoint (label `admin`): a real
// QueryEngine serves real HTTP on a loopback socket, and the tests scrape
// /metrics, /statusz and /tracez the way a Prometheus collector or an
// operator's curl would.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "admin/admin_server.h"
#include "json_checker.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "server/net.h"
#include "util/timer.h"

namespace regal {
namespace {

using testutil::ValidJson;

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta epsilon</para></sec></doc>";

// Checks the Prometheus text exposition format line by line: comment lines
// must be well-formed HELP/TYPE, sample lines must be
// `name[{labels}] value`, and every sample's family must have been
// announced by a preceding # TYPE.
bool ValidPrometheus(const std::string& text, std::string* why) {
  std::set<std::string> typed_families;
  size_t start = 0;
  auto fail = [&](const std::string& line, const char* what) {
    *why = std::string(what) + ": " + line;
    return false;
  };
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      *why = "missing trailing newline";
      return false;
    }
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return fail(line, "unknown comment");
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        size_t name_end = line.find(' ', 7);
        if (name_end == std::string::npos) return fail(line, "bad TYPE");
        std::string kind = line.substr(name_end + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "untyped") {
          return fail(line, "bad TYPE kind");
        }
        typed_families.insert(line.substr(7, name_end - 7));
      }
      continue;
    }
    // Sample line: name, optional {...} (quotes may hide '}'), space, value.
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    if (pos == 0) return fail(line, "no metric name");
    std::string name = line.substr(0, pos);
    if (pos < line.size() && line[pos] == '{') {
      bool in_quotes = false;
      ++pos;
      while (pos < line.size()) {
        char c = line[pos];
        if (in_quotes) {
          if (c == '\\') ++pos;
          else if (c == '"') in_quotes = false;
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
        ++pos;
      }
      if (pos >= line.size()) return fail(line, "unterminated labels");
      ++pos;  // '}'
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail(line, "no sample value");
    }
    std::string value = line.substr(pos + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      size_t parsed = 0;
      try {
        std::stod(value, &parsed);
      } catch (...) {
        return fail(line, "unparseable value");
      }
      if (parsed != value.size()) return fail(line, "trailing junk in value");
    }
    // Histogram series carry the family name plus a suffix.
    bool announced = false;
    for (const char* suffix : {"", "_bucket", "_sum", "_count"}) {
      std::string family = name;
      std::string s(suffix);
      if (!s.empty() && family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0) {
        family.resize(family.size() - s.size());
      }
      if (typed_families.count(family) > 0) {
        announced = true;
        break;
      }
    }
    if (!announced) return fail(line, "sample without # TYPE");
  }
  return true;
}

// One engine + admin server + private flight recorder per fixture, so tests
// never race each other's records through the process-wide default.
class AdminEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    quiet_log_ = std::make_unique<obs::EventLog>(
        std::make_shared<obs::CaptureSink>());
    obs::FlightRecorderOptions options;
    options.capacity = 64;
    // Threshold 0: every completed query counts as slow, so /tracez must
    // show all of them — the acceptance property under mixed traffic.
    options.slow_threshold_ms = 0;
    options.sample_period = 0;
    options.log = quiet_log_.get();
    recorder_ = std::make_unique<obs::FlightRecorder>(options);

    auto engine = QueryEngine::FromSgmlSource(kDoc);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::make_unique<QueryEngine>(std::move(engine).value());
    engine_->set_flight_recorder(recorder_.get());
    Status started = engine_->EnableAdminServer();
    ASSERT_TRUE(started.ok()) << started;
    port_ = engine_->admin_server()->port();
    ASSERT_GT(port_, 0);
  }

  std::string Get(const std::string& path, int* status = nullptr,
                  std::string* content_type = nullptr) {
    auto body = admin::HttpGet("127.0.0.1", port_, path, status, content_type);
    EXPECT_TRUE(body.ok()) << body.status();
    return body.ok() ? *body : std::string();
  }

  // A probe with an orchestrator's patience: a connection storm may leave
  // the endpoint momentarily at its connection cap (dropped probes there
  // are fine — kubelet retries), but it must answer again within a beat.
  std::string GetWithRetry(const std::string& path, int* status) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      auto body = admin::HttpGet("127.0.0.1", port_, path, status);
      if (body.ok()) return *body;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "endpoint never recovered serving " << path;
    return std::string();
  }

  // Mixed traffic: plain runs, a profiled run, and a failing query.
  // Returns each executed expression's canonical rendering — the string the
  // flight recorder stores.
  std::vector<std::string> RunMixedTraffic() {
    std::vector<std::string> executed;
    for (const char* q :
         {"para within sec", "word \"alpha\"", "sec",
          "explain analyze para within sec",
          "word \"delta\" | word \"gamma\""}) {
      auto answer = engine_->Run(q);
      EXPECT_TRUE(answer.ok()) << q << ": " << answer.status();
      if (answer.ok()) executed.push_back(answer->executed->ToString());
    }
    auto failed = engine_->Run("no_such_region");
    EXPECT_FALSE(failed.ok());
    return executed;
  }

  std::unique_ptr<obs::EventLog> quiet_log_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<QueryEngine> engine_;
  int port_ = 0;
};

TEST_F(AdminEndpointTest, HealthzAnswersOk) {
  int status = 0;
  std::string content_type;
  std::string body = Get("/healthz", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_NE(content_type.find("text/plain"), std::string::npos);
}

TEST_F(AdminEndpointTest, MetricsIsValidPrometheusExposition) {
  RunMixedTraffic();
  int status = 0;
  std::string content_type;
  std::string body = Get("/metrics", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(content_type.find("version=0.0.4"), std::string::npos)
      << content_type;
  std::string why;
  EXPECT_TRUE(ValidPrometheus(body, &why)) << why;
  EXPECT_NE(body.find("# TYPE regal_queries_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("regal_query_latency_ms_bucket"), std::string::npos);
  EXPECT_NE(body.find("regal_engine_inflight_queries 0"), std::string::npos);
  EXPECT_NE(body.find("regal_cache_hit_ratio"), std::string::npos);

  int json_status = 0;
  std::string json_type;
  std::string json = Get("/metrics?format=json", &json_status, &json_type);
  EXPECT_EQ(json_status, 200);
  EXPECT_NE(json_type.find("application/json"), std::string::npos);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
}

TEST_F(AdminEndpointTest, StatuszShowsEngineSections) {
  RunMixedTraffic();
  int status = 0;
  std::string body = Get("/statusz", &status);
  EXPECT_EQ(status, 200);
  for (const char* expected :
       {"uptime_s", "catalog", "instance_id", "epoch", "regions", "cache",
        "max_bytes", "exec", "threads", "telemetry", "recorder_entries",
        "last_query_id"}) {
    EXPECT_NE(body.find(expected), std::string::npos)
        << "missing " << expected << " in:\n" << body;
  }
  std::string json = Get("/statusz?format=json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
}

TEST_F(AdminEndpointTest, TracezShowsEverySlowQuery) {
  std::vector<std::string> executed = RunMixedTraffic();
  int status = 0;
  std::string body = Get("/tracez", &status);
  EXPECT_EQ(status, 200);
  // Threshold 0 makes every query slow, so every executed query — and the
  // failing one — must have a record, newest first, with its plan rendered.
  for (const std::string& q : executed) {
    EXPECT_NE(body.find(q), std::string::npos)
        << "missing query " << q << " in:\n" << body;
  }
  EXPECT_NE(body.find("not_found"), std::string::npos) << body;
  ASSERT_EQ(recorder_->entries(), executed.size() + 1);
  // Each record's header line carries its id; ids were assigned 1..N.
  for (size_t id = 1; id <= executed.size() + 1; ++id) {
    EXPECT_NE(body.find("#" + std::to_string(id) + " "), std::string::npos)
        << "missing record id " << id << " in:\n" << body;
  }

  std::string json = Get("/tracez?format=json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
}

TEST_F(AdminEndpointTest, SampledQueriesCarryLiveTraces) {
  recorder_->set_slow_threshold_ms(1e9);  // Nothing is slow now.
  recorder_->set_sample_period(1);        // ... but everything is sampled.
  auto answer = engine_->Run("para within sec");
  ASSERT_TRUE(answer.ok());
  std::vector<obs::QueryRecord> records = recorder_->Snapshot();
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(records[0].sampled);
  EXPECT_TRUE(records[0].traced);  // Pre-execution sampling enabled a trace.
  EXPECT_EQ(records[0].plan.name, "within");
  EXPECT_GT(records[0].plan.rows_out, 0);
}

TEST_F(AdminEndpointTest, TelemetryOffRecordsNothing) {
  engine_->set_telemetry_enabled(false);
  ASSERT_TRUE(engine_->Run("para within sec").ok());
  EXPECT_FALSE(engine_->Run("no_such_region").ok());
  EXPECT_EQ(recorder_->entries(), 0u);
  EXPECT_EQ(recorder_->last_query_id(), 0u);
}

TEST_F(AdminEndpointTest, UnknownPathsAnswer404) {
  int status = 0;
  Get("/nope", &status);
  EXPECT_EQ(status, 404);
  std::string index = Get("/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(index.find("/metrics"), std::string::npos);
}

TEST_F(AdminEndpointTest, EnableIsExclusiveAndDisableIsIdempotent) {
  Status again = engine_->EnableAdminServer();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  engine_->DisableAdminServer();
  EXPECT_EQ(engine_->admin_server(), nullptr);
  engine_->DisableAdminServer();  // No-op.
  Status restarted = engine_->EnableAdminServer();
  EXPECT_TRUE(restarted.ok()) << restarted;
  int status = 0;
  auto body = admin::HttpGet("127.0.0.1", engine_->admin_server()->port(),
                             "/healthz", &status);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(status, 200);
}

TEST(AdminServerTest, RejectsUnbindableAddress) {
  admin::AdminOptions options;
  options.bind_address = "203.0.113.1";  // TEST-NET: never local.
  auto server = admin::AdminServer::Start(options);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Socket abuse. These are the regressions: clients that vanish
// mid-response (SIGPIPE), clients that stall without sending (wedging a
// single-threaded server), and requests of arbitrary shape.

// A raw TCP helper for abusing the HTTP surface: connects, sends whatever
// bytes it is told, and can close with an RST (SO_LINGER zero) instead of
// a FIN — the packet sequence that turns the server's next send() into
// EPIPE/ECONNRESET.
class RawTcp {
 public:
  bool Connect(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) == 0;
  }
  bool Send(const std::string& bytes) {
    return net::SendAll(fd_, bytes.data(), bytes.size());
  }
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
  void Close(bool rst = false) {
    if (fd_ < 0) return;
    if (rst) {
      struct linger hard = {1, 0};
      setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    }
    close(fd_);
    fd_ = -1;
  }
  ~RawTcp() { Close(); }

 private:
  int fd_ = -1;
};

// The SIGPIPE regression: request the largest response the endpoint
// serves, then RST before reading it. The server's send() lands on a dead
// socket; without MSG_NOSIGNAL the default disposition kills the process
// and every test after this one.
TEST_F(AdminEndpointTest, ClientRstMidResponseDoesNotKillProcess) {
  RunMixedTraffic();  // Fatten /metrics and /tracez.
  for (int round = 0; round < 20; ++round) {
    RawTcp chaos;
    ASSERT_TRUE(chaos.Connect(port_));
    ASSERT_TRUE(chaos.Send("GET /metrics HTTP/1.0\r\n\r\n"));
    chaos.Close(/*rst=*/true);
  }
  int status = 0;
  std::string body = GetWithRetry("/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
}

// The accept-loop regression's cousin: handshakes aborted before the
// server reads anything must not end the accept loop.
TEST_F(AdminEndpointTest, ImmediateDisconnectsDoNotKillAcceptLoop) {
  for (int round = 0; round < 50; ++round) {
    RawTcp chaos;
    ASSERT_TRUE(chaos.Connect(port_));
    chaos.Close(/*rst=*/round % 2 == 0);
  }
  int status = 0;
  EXPECT_EQ(GetWithRetry("/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);
}

// A stalled client (connected, sends nothing) used to wedge the
// single-threaded serve loop for a full socket timeout; /healthz would
// miss its probe deadline and the orchestrator would restart a healthy
// process. With per-connection handler threads the probe must answer
// while the staller is still connected.
TEST_F(AdminEndpointTest, SlowClientDoesNotBlockHealthz) {
  std::vector<std::unique_ptr<RawTcp>> stallers;
  for (int i = 0; i < 4; ++i) {
    auto staller = std::make_unique<RawTcp>();
    ASSERT_TRUE(staller->Connect(port_));
    ASSERT_TRUE(staller->Send("GET /healthz HT"));  // ... and nothing more.
    stallers.push_back(std::move(staller));
  }
  Timer timer;
  int status = 0;
  std::string body = Get("/healthz", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  // Well under the 5 s socket timeout a wedged loop would have cost.
  EXPECT_LT(timer.Millis(), 2000.0);
}

TEST_F(AdminEndpointTest, MalformedAndOversizedRequestsAnswered) {
  {
    RawTcp raw;
    ASSERT_TRUE(raw.Connect(port_));
    ASSERT_TRUE(raw.Send("complete nonsense\r\n\r\n"));
    std::string reply = raw.ReadAll();
    EXPECT_NE(reply.find("405"), std::string::npos) << reply;
  }
  {
    RawTcp raw;
    ASSERT_TRUE(raw.Connect(port_));
    ASSERT_TRUE(raw.Send("POST /metrics HTTP/1.0\r\n\r\n"));
    std::string reply = raw.ReadAll();
    EXPECT_NE(reply.find("405"), std::string::npos) << reply;
  }
  {
    // A request line that never ends: the 8 KiB cap stops the read, the
    // parse fails, the connection answers 405 instead of hanging.
    RawTcp raw;
    ASSERT_TRUE(raw.Connect(port_));
    ASSERT_TRUE(raw.Send("GET /" + std::string(16384, 'a')));
    raw.Close(/*rst=*/true);
  }
  int status = 0;
  EXPECT_EQ(GetWithRetry("/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);
}

// The `format=json` parameter must be matched exactly — the old substring
// search also fired on `notformat=json` (and any other key with that
// suffix), silently switching a scrape's content type.
TEST_F(AdminEndpointTest, FormatParamIsMatchedExactlyNotBySubstring) {
  int status = 0;
  std::string content_type;
  Get("/metrics?notformat=json", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(content_type.find("text/plain"), std::string::npos)
      << content_type;
  Get("/metrics?format=jsonx", &status, &content_type);
  EXPECT_NE(content_type.find("text/plain"), std::string::npos)
      << content_type;
  Get("/metrics?a=b&format=json", &status, &content_type);
  EXPECT_NE(content_type.find("application/json"), std::string::npos)
      << content_type;
}

TEST(IsoTimeTest, HandlesNegativeTimestamps) {
  EXPECT_EQ(admin::IsoTime(0), "1970-01-01T00:00:00.000Z");
  EXPECT_EQ(admin::IsoTime(1500), "1970-01-01T00:00:01.500Z");
  // Truncating division paired second 0 with millisecond -1 here.
  EXPECT_EQ(admin::IsoTime(-1), "1969-12-31T23:59:59.999Z");
  EXPECT_EQ(admin::IsoTime(-1000), "1969-12-31T23:59:59.000Z");
  EXPECT_EQ(admin::IsoTime(-86400000 + 250), "1969-12-31T00:00:00.250Z");
}

// A scripted fake HTTP server: accepts one connection, sends a canned
// response, closes. Exercises HttpGet's response parsing against inputs
// the real AdminServer would never produce.
std::string GetFromCannedServer(const std::string& canned, int* status,
                                std::string* content_type, Status* out) {
  auto listener = net::Listener::Open({});
  EXPECT_TRUE(listener.ok()) << listener.status();
  std::atomic<bool> stop{false};
  std::thread fake([&] {
    int fd = listener->AcceptOne(stop, nullptr);
    if (fd < 0) return;
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    net::SendAll(fd, canned.data(), canned.size());
    close(fd);
  });
  auto body = admin::HttpGet("127.0.0.1", listener->port(), "/", status,
                             content_type);
  stop.store(true);
  listener->Shutdown();
  fake.join();
  *out = body.status();
  return body.ok() ? *body : std::string();
}

TEST(HttpGetTest, StatusCodeIsRangeChecked) {
  int status = 0;
  std::string content_type;
  Status result;
  // atoi would have yielded 0 for garbage and huge nonsense for overlong
  // digit runs; both must now be malformed-response errors.
  for (const char* bad_line :
       {"HTTP/1.0 abc Error\r\n\r\nbody", "HTTP/1.0 99 Too Low\r\n\r\nbody",
        "HTTP/1.0 600 Too High\r\n\r\nbody",
        "HTTP/1.0 2000 Overlong\r\n\r\nbody", "HTTP/1.0 \r\n\r\nbody"}) {
    GetFromCannedServer(bad_line, &status, &content_type, &result);
    EXPECT_FALSE(result.ok()) << bad_line;
    EXPECT_EQ(result.code(), StatusCode::kInvalidArgument) << bad_line;
  }
  std::string body = GetFromCannedServer(
      "HTTP/1.0 418 I'm a teapot\r\n\r\nshort and stout", &status,
      &content_type, &result);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(status, 418);
  EXPECT_EQ(body, "short and stout");
}

TEST(HttpGetTest, ContentTypeHeaderIsCaseInsensitive) {
  int status = 0;
  std::string content_type;
  Status result;
  GetFromCannedServer(
      "HTTP/1.0 200 OK\r\ncontent-type: application/json\r\n\r\n{}", &status,
      &content_type, &result);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(content_type, "application/json");
  GetFromCannedServer(
      "HTTP/1.0 200 OK\r\nCONTENT-TYPE:  text/html\r\n\r\nx", &status,
      &content_type, &result);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(content_type, "text/html");
  // A header that merely *contains* the name must not match.
  GetFromCannedServer(
      "HTTP/1.0 200 OK\r\nX-Not-Content-Type: nope\r\n\r\nx", &status,
      &content_type, &result);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(content_type, "");
}

}  // namespace
}  // namespace regal
