// Integration suite for the embedded admin endpoint (label `admin`): a real
// QueryEngine serves real HTTP on a loopback socket, and the tests scrape
// /metrics, /statusz and /tracez the way a Prometheus collector or an
// operator's curl would.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "admin/admin_server.h"
#include "json_checker.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "query/engine.h"

namespace regal {
namespace {

using testutil::ValidJson;

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta epsilon</para></sec></doc>";

// Checks the Prometheus text exposition format line by line: comment lines
// must be well-formed HELP/TYPE, sample lines must be
// `name[{labels}] value`, and every sample's family must have been
// announced by a preceding # TYPE.
bool ValidPrometheus(const std::string& text, std::string* why) {
  std::set<std::string> typed_families;
  size_t start = 0;
  auto fail = [&](const std::string& line, const char* what) {
    *why = std::string(what) + ": " + line;
    return false;
  };
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      *why = "missing trailing newline";
      return false;
    }
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return fail(line, "unknown comment");
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        size_t name_end = line.find(' ', 7);
        if (name_end == std::string::npos) return fail(line, "bad TYPE");
        std::string kind = line.substr(name_end + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "untyped") {
          return fail(line, "bad TYPE kind");
        }
        typed_families.insert(line.substr(7, name_end - 7));
      }
      continue;
    }
    // Sample line: name, optional {...} (quotes may hide '}'), space, value.
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    if (pos == 0) return fail(line, "no metric name");
    std::string name = line.substr(0, pos);
    if (pos < line.size() && line[pos] == '{') {
      bool in_quotes = false;
      ++pos;
      while (pos < line.size()) {
        char c = line[pos];
        if (in_quotes) {
          if (c == '\\') ++pos;
          else if (c == '"') in_quotes = false;
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
        ++pos;
      }
      if (pos >= line.size()) return fail(line, "unterminated labels");
      ++pos;  // '}'
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail(line, "no sample value");
    }
    std::string value = line.substr(pos + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      size_t parsed = 0;
      try {
        std::stod(value, &parsed);
      } catch (...) {
        return fail(line, "unparseable value");
      }
      if (parsed != value.size()) return fail(line, "trailing junk in value");
    }
    // Histogram series carry the family name plus a suffix.
    bool announced = false;
    for (const char* suffix : {"", "_bucket", "_sum", "_count"}) {
      std::string family = name;
      std::string s(suffix);
      if (!s.empty() && family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0) {
        family.resize(family.size() - s.size());
      }
      if (typed_families.count(family) > 0) {
        announced = true;
        break;
      }
    }
    if (!announced) return fail(line, "sample without # TYPE");
  }
  return true;
}

// One engine + admin server + private flight recorder per fixture, so tests
// never race each other's records through the process-wide default.
class AdminEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    quiet_log_ = std::make_unique<obs::EventLog>(
        std::make_shared<obs::CaptureSink>());
    obs::FlightRecorderOptions options;
    options.capacity = 64;
    // Threshold 0: every completed query counts as slow, so /tracez must
    // show all of them — the acceptance property under mixed traffic.
    options.slow_threshold_ms = 0;
    options.sample_period = 0;
    options.log = quiet_log_.get();
    recorder_ = std::make_unique<obs::FlightRecorder>(options);

    auto engine = QueryEngine::FromSgmlSource(kDoc);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::make_unique<QueryEngine>(std::move(engine).value());
    engine_->set_flight_recorder(recorder_.get());
    Status started = engine_->EnableAdminServer();
    ASSERT_TRUE(started.ok()) << started;
    port_ = engine_->admin_server()->port();
    ASSERT_GT(port_, 0);
  }

  std::string Get(const std::string& path, int* status = nullptr,
                  std::string* content_type = nullptr) {
    auto body = admin::HttpGet("127.0.0.1", port_, path, status, content_type);
    EXPECT_TRUE(body.ok()) << body.status();
    return body.ok() ? *body : std::string();
  }

  // Mixed traffic: plain runs, a profiled run, and a failing query.
  // Returns each executed expression's canonical rendering — the string the
  // flight recorder stores.
  std::vector<std::string> RunMixedTraffic() {
    std::vector<std::string> executed;
    for (const char* q :
         {"para within sec", "word \"alpha\"", "sec",
          "explain analyze para within sec",
          "word \"delta\" | word \"gamma\""}) {
      auto answer = engine_->Run(q);
      EXPECT_TRUE(answer.ok()) << q << ": " << answer.status();
      if (answer.ok()) executed.push_back(answer->executed->ToString());
    }
    auto failed = engine_->Run("no_such_region");
    EXPECT_FALSE(failed.ok());
    return executed;
  }

  std::unique_ptr<obs::EventLog> quiet_log_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<QueryEngine> engine_;
  int port_ = 0;
};

TEST_F(AdminEndpointTest, HealthzAnswersOk) {
  int status = 0;
  std::string content_type;
  std::string body = Get("/healthz", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_NE(content_type.find("text/plain"), std::string::npos);
}

TEST_F(AdminEndpointTest, MetricsIsValidPrometheusExposition) {
  RunMixedTraffic();
  int status = 0;
  std::string content_type;
  std::string body = Get("/metrics", &status, &content_type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(content_type.find("version=0.0.4"), std::string::npos)
      << content_type;
  std::string why;
  EXPECT_TRUE(ValidPrometheus(body, &why)) << why;
  EXPECT_NE(body.find("# TYPE regal_queries_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("regal_query_latency_ms_bucket"), std::string::npos);
  EXPECT_NE(body.find("regal_engine_inflight_queries 0"), std::string::npos);
  EXPECT_NE(body.find("regal_cache_hit_ratio"), std::string::npos);

  int json_status = 0;
  std::string json_type;
  std::string json = Get("/metrics?format=json", &json_status, &json_type);
  EXPECT_EQ(json_status, 200);
  EXPECT_NE(json_type.find("application/json"), std::string::npos);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
}

TEST_F(AdminEndpointTest, StatuszShowsEngineSections) {
  RunMixedTraffic();
  int status = 0;
  std::string body = Get("/statusz", &status);
  EXPECT_EQ(status, 200);
  for (const char* expected :
       {"uptime_s", "catalog", "instance_id", "epoch", "regions", "cache",
        "max_bytes", "exec", "threads", "telemetry", "recorder_entries",
        "last_query_id"}) {
    EXPECT_NE(body.find(expected), std::string::npos)
        << "missing " << expected << " in:\n" << body;
  }
  std::string json = Get("/statusz?format=json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
}

TEST_F(AdminEndpointTest, TracezShowsEverySlowQuery) {
  std::vector<std::string> executed = RunMixedTraffic();
  int status = 0;
  std::string body = Get("/tracez", &status);
  EXPECT_EQ(status, 200);
  // Threshold 0 makes every query slow, so every executed query — and the
  // failing one — must have a record, newest first, with its plan rendered.
  for (const std::string& q : executed) {
    EXPECT_NE(body.find(q), std::string::npos)
        << "missing query " << q << " in:\n" << body;
  }
  EXPECT_NE(body.find("not_found"), std::string::npos) << body;
  ASSERT_EQ(recorder_->entries(), executed.size() + 1);
  // Each record's header line carries its id; ids were assigned 1..N.
  for (size_t id = 1; id <= executed.size() + 1; ++id) {
    EXPECT_NE(body.find("#" + std::to_string(id) + " "), std::string::npos)
        << "missing record id " << id << " in:\n" << body;
  }

  std::string json = Get("/tracez?format=json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(ValidJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
}

TEST_F(AdminEndpointTest, SampledQueriesCarryLiveTraces) {
  recorder_->set_slow_threshold_ms(1e9);  // Nothing is slow now.
  recorder_->set_sample_period(1);        // ... but everything is sampled.
  auto answer = engine_->Run("para within sec");
  ASSERT_TRUE(answer.ok());
  std::vector<obs::QueryRecord> records = recorder_->Snapshot();
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(records[0].sampled);
  EXPECT_TRUE(records[0].traced);  // Pre-execution sampling enabled a trace.
  EXPECT_EQ(records[0].plan.name, "within");
  EXPECT_GT(records[0].plan.rows_out, 0);
}

TEST_F(AdminEndpointTest, TelemetryOffRecordsNothing) {
  engine_->set_telemetry_enabled(false);
  ASSERT_TRUE(engine_->Run("para within sec").ok());
  EXPECT_FALSE(engine_->Run("no_such_region").ok());
  EXPECT_EQ(recorder_->entries(), 0u);
  EXPECT_EQ(recorder_->last_query_id(), 0u);
}

TEST_F(AdminEndpointTest, UnknownPathsAnswer404) {
  int status = 0;
  Get("/nope", &status);
  EXPECT_EQ(status, 404);
  std::string index = Get("/", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(index.find("/metrics"), std::string::npos);
}

TEST_F(AdminEndpointTest, EnableIsExclusiveAndDisableIsIdempotent) {
  Status again = engine_->EnableAdminServer();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  engine_->DisableAdminServer();
  EXPECT_EQ(engine_->admin_server(), nullptr);
  engine_->DisableAdminServer();  // No-op.
  Status restarted = engine_->EnableAdminServer();
  EXPECT_TRUE(restarted.ok()) << restarted;
  int status = 0;
  auto body = admin::HttpGet("127.0.0.1", engine_->admin_server()->port(),
                             "/healthz", &status);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(status, 200);
}

TEST(AdminServerTest, RejectsUnbindableAddress) {
  admin::AdminOptions options;
  options.bind_address = "203.0.113.1";  // TEST-NET: never local.
  auto server = admin::AdminServer::Start(options);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace regal
