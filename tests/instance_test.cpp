#include <gtest/gtest.h>

#include "core/instance.h"
#include "doc/synthetic.h"
#include "graph/algorithms.h"

namespace regal {
namespace {

Instance SmallInstance() {
  // Doc: [0,11]=Doc, [1,4]=Sec, [2,3]=Par, [6,10]=Sec, [7,8]=Par.
  Instance instance;
  EXPECT_TRUE(instance.AddRegionSet("Doc", RegionSet{Region{0, 11}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Sec", RegionSet{Region{1, 4}, Region{6, 10}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Par", RegionSet{Region{2, 3}, Region{7, 8}}).ok());
  return instance;
}

TEST(InstanceTest, AddAndGet) {
  Instance instance = SmallInstance();
  EXPECT_TRUE(instance.Has("Doc"));
  EXPECT_FALSE(instance.Has("Nope"));
  auto doc = instance.Get("Doc");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->size(), 1u);
  EXPECT_FALSE(instance.Get("Nope").ok());
  EXPECT_FALSE(instance.AddRegionSet("Doc", RegionSet()).ok());
}

TEST(InstanceTest, ValidateAcceptsHierarchy) {
  EXPECT_TRUE(SmallInstance().Validate().ok());
}

TEST(InstanceTest, ValidateRejectsOverlap) {
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("A", RegionSet{Region{0, 5}}).ok());
  ASSERT_TRUE(instance.AddRegionSet("B", RegionSet{Region{3, 8}}).ok());
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsDuplicateAcrossNames) {
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("A", RegionSet{Region{0, 5}}).ok());
  ASSERT_TRUE(instance.AddRegionSet("B", RegionSet{Region{0, 5}}).ok());
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, TreeParents) {
  Instance instance = SmallInstance();
  ASSERT_EQ(instance.TreeSize(), 5u);
  // Document order: [0,11], [1,4], [2,3], [6,10], [7,8].
  EXPECT_EQ(instance.TreeParent(0), -1);
  EXPECT_EQ(instance.TreeParent(1), 0);
  EXPECT_EQ(instance.TreeParent(2), 1);
  EXPECT_EQ(instance.TreeParent(3), 0);
  EXPECT_EQ(instance.TreeParent(4), 3);
  EXPECT_EQ(instance.TreeDepth(), 3);
}

TEST(InstanceTest, TreeFind) {
  Instance instance = SmallInstance();
  EXPECT_EQ(instance.TreeFind(Region{2, 3}), 2);
  EXPECT_EQ(instance.TreeFind(Region{2, 4}), -1);
}

TEST(InstanceTest, AllRegions) {
  Instance instance = SmallInstance();
  EXPECT_EQ(instance.AllRegions().size(), 5u);
  EXPECT_EQ(instance.NumRegions(), 5u);
}

TEST(InstanceTest, DeriveRigEdges) {
  Instance instance = SmallInstance();
  Digraph rig = instance.DeriveRig();
  auto doc = *rig.FindNode("Doc");
  auto sec = *rig.FindNode("Sec");
  auto par = *rig.FindNode("Par");
  EXPECT_TRUE(rig.HasEdge(doc, sec));
  EXPECT_TRUE(rig.HasEdge(sec, par));
  EXPECT_FALSE(rig.HasEdge(doc, par));
  EXPECT_FALSE(rig.HasEdge(par, sec));
}

TEST(InstanceTest, DeriveRogEdges) {
  Instance instance = SmallInstance();
  Digraph rog = instance.DeriveRog();
  auto sec = *rog.FindNode("Sec");
  auto par = *rog.FindNode("Par");
  // [1,4] (Sec) directly precedes [6,10] (Sec) and [7,8] (Par);
  // [2,3] (Par) directly precedes both as well (nothing in between).
  EXPECT_TRUE(rog.HasEdge(sec, sec));
  EXPECT_TRUE(rog.HasEdge(par, sec));
  EXPECT_TRUE(rog.HasEdge(sec, par));
  EXPECT_TRUE(rog.HasEdge(par, par));
}

TEST(InstanceTest, DeriveRogSkipsIndirect) {
  // Three siblings a < b < c: a does not directly precede c.
  Instance instance;
  ASSERT_TRUE(instance
                  .AddRegionSet("A", RegionSet{Region{0, 1}})
                  .ok());
  ASSERT_TRUE(instance.AddRegionSet("B", RegionSet{Region{2, 3}}).ok());
  ASSERT_TRUE(instance.AddRegionSet("C", RegionSet{Region{4, 5}}).ok());
  Digraph rog = instance.DeriveRog();
  EXPECT_TRUE(rog.HasEdge(*rog.FindNode("A"), *rog.FindNode("B")));
  EXPECT_TRUE(rog.HasEdge(*rog.FindNode("B"), *rog.FindNode("C")));
  EXPECT_FALSE(rog.HasEdge(*rog.FindNode("A"), *rog.FindNode("C")));
}

TEST(InstanceTest, SyntheticPatternSelect) {
  Instance instance = SmallInstance();
  Pattern p = *Pattern::Parse("x");
  instance.SetSyntheticPattern(p, RegionSet{Region{2, 3}});
  RegionSet pars = **instance.Get("Par");
  EXPECT_EQ(instance.Select(pars, p), (RegionSet{Region{2, 3}}));
  EXPECT_TRUE(instance.W(Region{2, 3}, p));
  EXPECT_FALSE(instance.W(Region{7, 8}, p));
  // Unknown pattern selects nothing.
  EXPECT_TRUE(instance.Select(pars, *Pattern::Parse("y")).empty());
}

TEST(InstanceTest, CloneIsDeep) {
  Instance instance = SmallInstance();
  Instance copy = instance.Clone();
  copy.SetRegionSet("Doc", RegionSet());
  EXPECT_EQ((**instance.Get("Doc")).size(), 1u);
  EXPECT_EQ((*copy.Get("Doc"))->size(), 0u);
}

TEST(InstanceTest, MutationInvalidatesTree) {
  Instance instance = SmallInstance();
  EXPECT_EQ(instance.TreeSize(), 5u);
  instance.SetRegionSet("Extra", RegionSet{Region{12, 13}});
  EXPECT_EQ(instance.TreeSize(), 6u);
}

TEST(SyntheticInstanceTest, RandomLaminarIsValid) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 40;
    Instance instance = RandomLaminarInstance(rng, options);
    EXPECT_TRUE(instance.Validate().ok());
    EXPECT_EQ(instance.NumRegions(), 40u);
  }
}

TEST(SyntheticInstanceTest, RigInstanceSatisfiesRig) {
  Rng rng(7);
  Digraph rig;
  rig.AddEdge("Doc", "Sec");
  rig.AddEdge("Sec", "Par");
  rig.AddEdge("Sec", "Sec");
  for (int trial = 0; trial < 10; ++trial) {
    Instance instance =
        RandomInstanceForRig(rng, rig, 60, 6, {"Doc"});
    EXPECT_TRUE(instance.Validate().ok());
    Digraph derived = instance.DeriveRig();
    // Every derived edge must be a RIG edge (Definition 2.4).
    for (Digraph::NodeId v = 0; v < derived.NumNodes(); ++v) {
      for (Digraph::NodeId w : derived.OutNeighbors(v)) {
        auto rv = rig.FindNode(derived.Label(v));
        auto rw = rig.FindNode(derived.Label(w));
        ASSERT_TRUE(rv.ok() && rw.ok());
        EXPECT_TRUE(rig.HasEdge(*rv, *rw))
            << derived.Label(v) << " -> " << derived.Label(w);
      }
    }
  }
}

TEST(SyntheticInstanceTest, FromForestLayout) {
  std::vector<NodeSpec> forest;
  forest.push_back(NodeSpec{"A", {NodeSpec{"B", {}}, NodeSpec{"B", {}}}});
  Instance instance = FromForest(forest);
  EXPECT_TRUE(instance.Validate().ok());
  EXPECT_EQ((**instance.Get("A")).size(), 1u);
  EXPECT_EQ((**instance.Get("B")).size(), 2u);
  EXPECT_EQ(instance.TreeDepth(), 2);
}

TEST(SyntheticInstanceTest, Figure2Shape) {
  const int depth = 6;
  Instance instance = MakeFigure2Instance(depth);
  EXPECT_TRUE(instance.Validate().ok());
  // A B-spine of `depth` levels; A leaves hang one level deeper.
  EXPECT_EQ(instance.TreeDepth(), depth + 1);
  RegionSet b = **instance.Get("B");
  RegionSet a = **instance.Get("A");
  EXPECT_EQ(b.size(), static_cast<size_t>(depth));
  EXPECT_GE(a.size(), 1u);
  EXPECT_LE(a.size(), static_cast<size_t>(depth));
  // Outermost region is a B; every region below the root has a B parent
  // (the spine carries everything).
  EXPECT_TRUE(b.Member(instance.TreeRegion(0)));
  for (size_t i = 1; i < instance.TreeSize(); ++i) {
    const Region& parent =
        instance.TreeRegion(static_cast<size_t>(instance.TreeParent(i)));
    EXPECT_TRUE(b.Member(parent));
  }
  // Reproducible.
  Instance again = MakeFigure2Instance(depth);
  EXPECT_EQ(**again.Get("A"), a);
}

TEST(SyntheticInstanceTest, Figure3Shape) {
  int k = 3;
  Instance instance = MakeFigure3Instance(k);
  EXPECT_TRUE(instance.Validate().ok());
  EXPECT_EQ((**instance.Get("C")).size(), static_cast<size_t>(4 * k + 1));
  EXPECT_EQ((**instance.Get("A")).size(), static_cast<size_t>(4 * k + 2));
  EXPECT_EQ((**instance.Get("B")).size(), static_cast<size_t>(4 * k + 1));
}

TEST(SyntheticInstanceTest, AssignRandomPatterns) {
  Rng rng(3);
  Instance instance = MakeFigure3Instance(2);
  Pattern p = *Pattern::Parse("q");
  AssignRandomPatterns(&instance, rng, {p}, 0.5);
  RegionSet c = **instance.Get("C");
  RegionSet selected = instance.Select(c, p);
  EXPECT_LE(selected.size(), c.size());
}

}  // namespace
}  // namespace regal
