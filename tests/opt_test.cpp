#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/srccode.h"
#include "doc/synthetic.h"
#include "fmft/emptiness.h"
#include "opt/chain.h"
#include "opt/cost.h"
#include "opt/optimizer.h"
#include "util/random.h"

namespace regal {
namespace {

TEST(CostTest, EveryOperatorAddsCost) {
  CatalogStats stats;
  stats.default_cardinality = 100;
  ExprPtr name = Expr::Name("A");
  EXPECT_EQ(EstimateCost(name, stats).cost, 0);
  ExprPtr e = name;
  double last = 0;
  for (int i = 0; i < 5; ++i) {
    e = Expr::Including(e, Expr::Name("B"));
    double cost = EstimateCost(e, stats).cost;
    EXPECT_GT(cost, last);
    last = cost;
  }
}

TEST(CostTest, UsesCatalogCardinalities) {
  CatalogStats stats;
  stats.cardinality["Big"] = 1e6;
  stats.cardinality["Small"] = 10;
  ExprPtr big = Expr::Including(Expr::Name("Big"), Expr::Name("Big"));
  ExprPtr small = Expr::Including(Expr::Name("Small"), Expr::Name("Small"));
  EXPECT_GT(EstimateCost(big, stats).cost, EstimateCost(small, stats).cost);
}

TEST(CostTest, StatsFromInstance) {
  Instance instance = MakeFigure3Instance(1);
  CatalogStats stats = StatsFromInstance(instance);
  EXPECT_EQ(stats.Cardinality("C"), 5);
  EXPECT_EQ(stats.Cardinality("A"), 6);
  EXPECT_EQ(stats.Cardinality("Undefined"), 0);
}

TEST(ChainTest, ParseRecognizesUniformChains) {
  ExprPtr e = Expr::Chain(OpKind::kIncluded,
                          {"Name", "Proc_header", "Proc", "Program"});
  auto chain = ParseInclusionChain(e);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->op, OpKind::kIncluded);
  EXPECT_EQ(chain->names,
            (std::vector<std::string>{"Name", "Proc_header", "Proc",
                                      "Program"}));
  EXPECT_TRUE(ChainToExpr(*chain)->Equals(*e));
}

TEST(ChainTest, ParseRejectsMixedChains) {
  ExprPtr mixed = Expr::Included(
      Expr::Name("A"), Expr::Including(Expr::Name("B"), Expr::Name("C")));
  EXPECT_FALSE(ParseInclusionChain(mixed).has_value());
  EXPECT_FALSE(ParseInclusionChain(Expr::Name("A")).has_value());
  // Left operand must be a plain name.
  ExprPtr deep_left = Expr::Included(
      Expr::Union(Expr::Name("A"), Expr::Name("B")), Expr::Name("C"));
  EXPECT_FALSE(ParseInclusionChain(deep_left).has_value());
}

TEST(ChainTest, Section22ExampleShortens) {
  // e1 = Name ⊂ Proc_header ⊂ Proc ⊂ Program shortens to
  // e2 = Name ⊂ Proc_header ⊂ Program w.r.t. Figure 1's RIG: every path
  // from Program down to Proc_header passes through Proc.
  Digraph rig = SourceCodeRig();
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  chain.names = {"Name", "Proc_header", "Proc", "Program"};
  // Proc is a separator between Program and Proc_header (the paper's e2).
  EXPECT_TRUE(IsRedundantChainElement(rig, chain, 2));
  // Proc_header is *also* a separator between Proc and Name (every path
  // from Proc to a Name goes through some Proc_header), so
  // Name ⊂ Proc ⊂ Program is an equally valid minimal form; the paper's
  // remark about keeping Proc_header concerns dropping BOTH middles.
  EXPECT_TRUE(IsRedundantChainElement(rig, chain, 1));
  InclusionChain optimized = OptimizeInclusionChain(rig, chain);
  ASSERT_EQ(optimized.names.size(), 3u);
  EXPECT_EQ(optimized.names.front(), "Name");
  EXPECT_EQ(optimized.names.back(), "Program");
  // Dropping down to Name ⊂ Program would also admit program names — the
  // optimizer must stop at length 3.
  InclusionChain two;
  two.op = OpKind::kIncluded;
  two.names = {"Name", "Program"};
  EXPECT_FALSE(IsRedundantChainElement(rig, optimized, 1) &&
               OptimizeInclusionChain(rig, optimized).names.size() < 3);
}

TEST(ChainTest, IncludingDirectionMirrors) {
  Digraph rig = SourceCodeRig();
  InclusionChain chain;
  chain.op = OpKind::kIncluding;
  chain.names = {"Program", "Proc", "Proc_header", "Name"};
  // Dropping Proc_header: paths Proc -> Name all pass through Proc_header.
  EXPECT_TRUE(IsRedundantChainElement(rig, chain, 2));
  InclusionChain optimized = OptimizeInclusionChain(rig, chain);
  EXPECT_LT(optimized.names.size(), chain.names.size());
}

TEST(ChainTest, OptimizedChainIsEquivalentUnderRig) {
  // Soundness of chain shortening, verified by the bounded equivalence
  // tester constrained to the RIG.
  Digraph rig = SourceCodeRig();
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  chain.names = {"Name", "Proc_header", "Proc", "Program"};
  InclusionChain optimized = OptimizeInclusionChain(rig, chain);
  EmptinessOptions options;
  options.max_nodes = 6;
  options.max_depth = 5;
  options.random_samples = 100;
  auto report = CheckEquivalence(ChainToExpr(chain), ChainToExpr(optimized),
                                 options, &rig);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->witness_found);
}

TEST(ChainTest, NonSeparatorNotDropped) {
  // Diamond: Doc -> {SecA, SecB} -> Par. Neither Sec is a separator.
  Digraph rig;
  rig.AddEdge("Doc", "SecA");
  rig.AddEdge("Doc", "SecB");
  rig.AddEdge("SecA", "Par");
  rig.AddEdge("SecB", "Par");
  InclusionChain chain;
  chain.op = OpKind::kIncluded;
  chain.names = {"Par", "SecA", "Doc"};
  EXPECT_FALSE(IsRedundantChainElement(rig, chain, 1));
  EXPECT_EQ(OptimizeInclusionChain(rig, chain).names.size(), 3u);
}

TEST(OptimizerTest, IdentityRules) {
  ExprPtr a = Expr::Name("A");
  OptimizerOptions options;
  auto outcome = Optimize(Expr::Union(a, a), options);
  EXPECT_TRUE(outcome.expr->Equals(*a));
  EXPECT_GE(outcome.rules_applied, 1);

  Pattern p = *Pattern::Parse("x");
  ExprPtr nested_select = Expr::Select(p, Expr::Select(p, a));
  auto outcome2 = Optimize(nested_select, options);
  EXPECT_EQ(outcome2.expr->NumOps(), 1);
}

TEST(OptimizerTest, ChainRuleAppliedInsideLargerExpr) {
  Digraph rig = SourceCodeRig();
  OptimizerOptions options;
  options.rig = &rig;
  ExprPtr chain = Expr::Chain(OpKind::kIncluded,
                              {"Name", "Proc_header", "Proc", "Program"});
  ExprPtr e = Expr::Union(chain, Expr::Name("Var"));
  auto outcome = Optimize(e, options);
  EXPECT_LT(outcome.expr->NumOps(), e->NumOps());
  EXPECT_LE(outcome.cost_after.cost, outcome.cost_before.cost);
}

TEST(OptimizerTest, OptimizedQueryAgreesOnRealCorpus) {
  ProgramGeneratorOptions gen;
  gen.num_procs = 15;
  gen.max_nesting = 4;
  gen.seed = 11;
  auto instance = ParseProgram(GenerateProgramSource(gen));
  ASSERT_TRUE(instance.ok());
  Digraph rig = SourceCodeRig();
  OptimizerOptions options;
  options.rig = &rig;
  options.stats = StatsFromInstance(*instance);
  ExprPtr e1 = Expr::Chain(OpKind::kIncluded,
                           {"Name", "Proc_header", "Proc", "Program"});
  auto outcome = Optimize(e1, options);
  EXPECT_LT(outcome.expr->NumOps(), e1->NumOps());
  auto before = Evaluate(*instance, e1);
  auto after = Evaluate(*instance, outcome.expr);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
  EXPECT_EQ(before->size(), 15u);  // One Name per proc.
}

TEST(OptimizerTest, NoRigNoChainRule) {
  OptimizerOptions options;  // rig == nullptr.
  ExprPtr e = Expr::Chain(OpKind::kIncluded,
                          {"Name", "Proc_header", "Proc", "Program"});
  auto outcome = Optimize(e, options);
  EXPECT_TRUE(outcome.expr->Equals(*e));
  EXPECT_EQ(outcome.rules_applied, 0);
}

TEST(EnumerateTest, CountsAndShapes) {
  auto size0 = EnumerateExpressions({"A", "B"}, {}, 0);
  EXPECT_EQ(size0.size(), 2u);
  auto size1 = EnumerateExpressions({"A", "B"}, {}, 1);
  // 2 names + 7 ops * 2 * 2 = 30.
  EXPECT_EQ(size1.size(), 30u);
  Pattern p = *Pattern::Parse("x");
  auto with_select = EnumerateExpressions({"A"}, {p}, 1);
  // 1 name + 1 selection + 7 ops * 1 * 1 = 9.
  EXPECT_EQ(with_select.size(), 9u);
  for (const ExprPtr& e : with_select) {
    EXPECT_LE(e->NumOps(), 1);
    EXPECT_TRUE(e->IsBaseAlgebra());
  }
}

// Theorem 5.1, empirically: no small base-algebra expression computes
// B ⊃_d A on the Figure 2 family. (The theorem covers all sizes; the
// harness checks every expression with <= 2 operators and, in the bench,
// <= 3.)
TEST(InexpressibilityTest, NoSmallExpressionComputesDirectInclusion) {
  std::vector<Instance> family;
  for (int depth : {4, 6, 8}) {
    family.push_back(MakeFigure2Instance(depth));
  }
  std::vector<RegionSet> truths;
  for (Instance& instance : family) {
    truths.push_back(DirectIncluding(instance, **instance.Get("B"),
                                     **instance.Get("A")));
  }
  int matching = 0;
  for (const ExprPtr& e : EnumerateExpressions({"A", "B"}, {}, 2)) {
    bool matches_all = true;
    for (size_t i = 0; i < family.size(); ++i) {
      auto result = Evaluate(family[i], e);
      if (!result.ok() || !(*result == truths[i])) {
        matches_all = false;
        break;
      }
    }
    if (matches_all) ++matching;
  }
  EXPECT_EQ(matching, 0);
}

// Theorem 5.3, empirically: no small expression computes C BI (B, A) on
// the Figure 3 family.
TEST(InexpressibilityTest, NoSmallExpressionComputesBothIncluded) {
  std::vector<Instance> family;
  for (int k : {1, 2}) {
    family.push_back(MakeFigure3Instance(k));
  }
  std::vector<RegionSet> truths;
  for (Instance& instance : family) {
    truths.push_back(BothIncluded(**instance.Get("C"), **instance.Get("B"),
                                  **instance.Get("A")));
  }
  int matching = 0;
  for (const ExprPtr& e : EnumerateExpressions({"A", "B", "C"}, {}, 2)) {
    bool matches_all = true;
    for (size_t i = 0; i < family.size(); ++i) {
      auto result = Evaluate(family[i], e);
      if (!result.ok() || !(*result == truths[i])) {
        matches_all = false;
        break;
      }
    }
    if (matches_all) ++matching;
  }
  EXPECT_EQ(matching, 0);
}

}  // namespace
}  // namespace regal
