// Cross-module integration tests: corpus -> storage -> engine -> views ->
// algebra, plus brute-force property checks for the span constructor.

#include <gtest/gtest.h>

#include <sstream>

#include "core/construct.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "query/engine.h"
#include "storage/serialize.h"
#include "util/random.h"

namespace regal {
namespace {

RegionSet NaiveSpanJoin(const RegionSet& starts, const RegionSet& ends) {
  std::vector<Region> out;
  for (const Region& a : starts) {
    const Region* best = nullptr;
    for (const Region& b : ends) {
      if (!(a.right < b.left)) continue;
      if (best == nullptr || b.left < best->left ||
          (b.left == best->left && b.right < best->right)) {
        best = &b;
      }
    }
    if (best != nullptr) out.push_back(Region{a.left, best->right});
  }
  return RegionSet::FromUnsorted(std::move(out));
}

TEST(SpanJoinPropertyTest, MatchesBruteForce) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Region> s_regions;
    std::vector<Region> e_regions;
    for (int i = 0; i < 12; ++i) {
      Offset a = static_cast<Offset>(rng.Below(40));
      Offset b = a + static_cast<Offset>(rng.Below(6));
      (rng.Chance(0.5) ? s_regions : e_regions).push_back(Region{a, b});
    }
    RegionSet starts = RegionSet::FromUnsorted(s_regions);
    RegionSet ends = RegionSet::FromUnsorted(e_regions);
    EXPECT_EQ(SpanJoin(starts, ends), NaiveSpanJoin(starts, ends))
        << "starts=" << starts.ToString() << " ends=" << ends.ToString();
  }
}

TEST(IntegrationTest, ProgramCorpusThroughStorageAndEngine) {
  ProgramGeneratorOptions gen;
  gen.num_procs = 25;
  gen.max_nesting = 4;
  gen.seed = 17;
  auto parsed = ParseProgram(GenerateProgramSource(gen));
  ASSERT_TRUE(parsed.ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*parsed, buffer).ok());
  auto reloaded = LoadInstance(buffer);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();

  QueryEngine engine(std::move(reloaded).value(), SourceCodeRig());
  ASSERT_TRUE(engine.Validate().ok());
  auto names = engine.Run("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->regions.size(), 25u);
  // Word-match leaf over the reloaded index.
  auto words = engine.Run("word \"proc\"");
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->regions.size(), 25u);
}

TEST(IntegrationTest, DictionaryViewsAndSpans) {
  DictionaryGeneratorOptions options;
  options.entries = 25;
  options.seed = 77;
  auto engine =
      QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  ASSERT_TRUE(engine.ok());
  // A view for quoted entries, then a span view from headwords to the
  // first following quote.
  ASSERT_TRUE(engine->DefineView("quoted", "entry including quote").ok());
  ASSERT_TRUE(engine->DefineSpanView("lead", "headword", "quote").ok());
  auto combined = engine->Run("lead within quoted");
  ASSERT_TRUE(combined.ok()) << combined.status();
  auto quoted = engine->Run("quoted");
  ASSERT_TRUE(quoted.ok());
  // Every lead span inside a quoted entry is counted at most once per
  // quoted entry's headword.
  EXPECT_LE(combined->regions.size(), quoted->regions.size());
  EXPECT_GT(combined->regions.size(), 0u);
}

TEST(IntegrationTest, EngineErrorPaths) {
  auto engine = QueryEngine::FromSgmlSource("<a>x</a>");
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Run("").ok());
  EXPECT_FALSE(engine->Run("a |").ok());
  EXPECT_FALSE(engine->Run("missing").ok());
  EXPECT_FALSE(engine->Run("a matching \"\"").ok());
  EXPECT_FALSE(engine->DefineSpanView("v", "missing", "a").ok());
  EXPECT_FALSE(QueryEngine::FromSgmlSource("<a>").ok());
  EXPECT_FALSE(QueryEngine::FromProgramSource("nope").ok());
}

TEST(IntegrationTest, ValidateCatchesRigViolation) {
  // An instance that is hierarchical but violates the provided RIG.
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("Par", RegionSet{Region{0, 9}}).ok());
  ASSERT_TRUE(instance.AddRegionSet("Doc", RegionSet{Region{2, 5}}).ok());
  Digraph rig;
  rig.AddEdge("Doc", "Par");
  QueryEngine engine(std::move(instance), rig);
  EXPECT_FALSE(engine.Validate().ok());
}

}  // namespace
}  // namespace regal
