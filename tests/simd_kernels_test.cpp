// Differential tests for the per-ISA operator kernels (core/simd): every
// vector variant the CPU supports must produce bit-identical output AND
// exactly equal operation counters to the scalar oracle, on adversarial
// small inputs that cross every vector-width boundary and exercise overlap,
// adjacency, tie-breaks, nesting, galloping skew and ragged tails. The suite
// also covers the batched ContainmentIndex probes against their scalar
// Exists* twins, the partitioned-chunk path of exec/parallel_algebra.cc, and
// the REGAL_SIMD resolution rule.
//
// ctest label: simd. The whole binary additionally re-runs under
// REGAL_SIMD=scalar|sse4|avx2 (see tests/CMakeLists.txt) so the dispatched
// ActiveKernels() path itself is exercised on every tier.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/algebra_kernels.h"
#include "core/region.h"
#include "core/region_set.h"
#include "core/simd/simd_kernels.h"
#include "obs/counters.h"
#include "util/cpu.h"
#include "util/random.h"

namespace regal {
namespace {

using simd::Isa;
using simd::KernelTable;

// Every kernel tier this machine can actually run; scalar is always first.
std::vector<const KernelTable*> AvailableTables() {
  std::vector<const KernelTable*> tables{&simd::ScalarKernels()};
  const util::CpuFeatures& f = util::CpuInfo();
  if (f.sse42) tables.push_back(&simd::KernelsFor(Isa::kSse4));
  if (f.avx2) tables.push_back(&simd::KernelsFor(Isa::kAvx2));
  return tables;
}

void ExpectCountersEqual(const obs::OpCounters& want,
                         const obs::OpCounters& got, const std::string& what) {
  EXPECT_EQ(want.comparisons, got.comparisons) << what << ": comparisons";
  EXPECT_EQ(want.merge_steps, got.merge_steps) << what << ": merge_steps";
  EXPECT_EQ(want.index_probes, got.index_probes) << what << ": index_probes";
}

// Document-orders and dedups an arbitrary region list into valid kernel
// input.
std::vector<Region> Canon(std::vector<Region> v) {
  std::sort(v.begin(), v.end(), RegionDocumentOrder{});
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<Region> RandomRegions(Rng& rng, size_t n, Offset span) {
  std::vector<Region> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Offset a = static_cast<Offset>(rng.Below(static_cast<uint64_t>(span)));
    Offset b = static_cast<Offset>(rng.Below(static_cast<uint64_t>(span)));
    if (a > b) std::swap(a, b);
    v.push_back(Region{a, b});
  }
  return Canon(std::move(v));
}

// The adversarial input pairs every merge test sweeps: each element is (R, S)
// in document order, duplicate-free, at most 64 regions a side.
std::vector<std::pair<std::vector<Region>, std::vector<Region>>>
AdversarialPairs() {
  std::vector<std::pair<std::vector<Region>, std::vector<Region>>> pairs;

  // Empty and singleton boundary cases.
  pairs.push_back({{}, {}});
  pairs.push_back({{{0, 1}}, {}});
  pairs.push_back({{}, {{0, 1}}});
  pairs.push_back({{{3, 7}}, {{3, 7}}});
  pairs.push_back({{{3, 7}}, {{3, 5}}});

  // Identical sets: every step is an equal pair.
  {
    std::vector<Region> both;
    for (Offset i = 0; i < 40; ++i) both.push_back({i, i + 3});
    pairs.push_back({both, both});
  }

  // Shared left endpoints with distinct rights: exercises the right-desc
  // tie-break of document order through the packed 64-bit keys.
  {
    std::vector<Region> r, s;
    for (Offset i = 0; i < 12; ++i) {
      r.push_back({5, 40 - i});
      s.push_back({5, 41 - i});
    }
    pairs.push_back({Canon(r), Canon(s)});
  }

  // Adjacent single-token runs, fully interleaved (worst case for runs).
  {
    std::vector<Region> r, s;
    for (Offset i = 0; i < 64; ++i) ((i % 2 == 0) ? r : s).push_back({i, i + 1});
    pairs.push_back({r, s});
  }

  // Alternating blocks (long same-side runs, the bulk-append fast path),
  // with a ragged non-multiple-of-width tail.
  {
    std::vector<Region> r, s;
    for (Offset i = 0; i < 61; ++i) ((i / 9) % 2 == 0 ? r : s).push_back({i, i + 2});
    pairs.push_back({r, s});
  }

  // Deep nesting around one center: containment chains, overlapping spans.
  {
    std::vector<Region> r, s;
    for (Offset i = 0; i < 20; ++i) {
      r.push_back({i, 64 - i});
      s.push_back({i, 63 - i});
    }
    pairs.push_back({Canon(r), Canon(s)});
  }

  // Heavy skew in both directions: forces the galloping cutover (ratio 16).
  {
    std::vector<Region> big;
    for (Offset i = 0; i < 64; ++i) big.push_back({i, i + 1});
    pairs.push_back({big, {{31, 32}}});
    pairs.push_back({{{31, 32}}, big});
    pairs.push_back({big, {{100, 101}}});   // Probe beyond the end.
    pairs.push_back({{{-5, -4}}, big});     // Probe before the start.
  }

  // Offset extremes: the DocKey transform must hold over the full range.
  {
    constexpr Offset kMin = std::numeric_limits<Offset>::min();
    constexpr Offset kMax = std::numeric_limits<Offset>::max();
    std::vector<Region> r = Canon({{kMin, kMin}, {kMin, kMax}, {0, kMax},
                                   {kMax, kMax}, {-1, 1}});
    std::vector<Region> s = Canon({{kMin, 0}, {kMin, kMax}, {0, 0},
                                   {kMax - 1, kMax}, {kMax, kMax}});
    pairs.push_back({r, s});
  }

  // Seeded randoms across sizes, densities and overlap degrees.
  Rng rng(1234);
  for (int round = 0; round < 60; ++round) {
    const size_t nr = rng.Below(65);
    const size_t ns = rng.Below(65);
    const Offset span = static_cast<Offset>(4 + rng.Below(120));
    std::vector<Region> r = RandomRegions(rng, nr, span);
    std::vector<Region> s = RandomRegions(rng, ns, span);
    // Every third pair, copy a slice of R into S so equal pairs occur.
    if (round % 3 == 0 && !r.empty()) {
      s.insert(s.end(), r.begin(), r.begin() + r.size() / 2);
      s = Canon(std::move(s));
    }
    pairs.push_back({std::move(r), std::move(s)});
  }
  return pairs;
}

using MergeFn = void (*)(const Region*, const Region*, const Region*,
                         const Region*, std::vector<Region>*,
                         obs::OpCounters*);
using MergeField = MergeFn KernelTable::*;

void RunMergeDifferential(MergeField field, const char* op) {
  const auto tables = AvailableTables();
  ASSERT_FALSE(tables.empty());
  const auto pairs = AdversarialPairs();
  for (size_t pi = 0; pi < pairs.size(); ++pi) {
    const auto& [r, s] = pairs[pi];
    std::vector<Region> want;
    obs::OpCounters want_c;
    (simd::ScalarKernels().*field)(r.data(), r.data() + r.size(), s.data(),
                                   s.data() + s.size(), &want, &want_c);
    for (const KernelTable* kt : tables) {
      std::vector<Region> got;
      obs::OpCounters got_c;
      (kt->*field)(r.data(), r.data() + r.size(), s.data(), s.data() + s.size(),
                   &got, &got_c);
      const std::string what = std::string(op) + " pair " +
                               std::to_string(pi) + " isa " + kt->name;
      ASSERT_EQ(want, got) << what;
      ExpectCountersEqual(want_c, got_c, what);
    }
  }
}

TEST(SimdMergeDifferential, Union) {
  RunMergeDifferential(&KernelTable::union_span, "union");
}

TEST(SimdMergeDifferential, Intersect) {
  RunMergeDifferential(&KernelTable::intersect_span, "intersect");
}

TEST(SimdMergeDifferential, Difference) {
  RunMergeDifferential(&KernelTable::difference_span, "difference");
}

TEST(SimdMergeDifferential, AppendsAfterExistingOutput) {
  // The span kernels append; pre-existing output content must survive.
  const std::vector<Region> r = {{4, 5}, {6, 7}};
  const std::vector<Region> s = {{5, 6}};
  for (const KernelTable* kt : AvailableTables()) {
    std::vector<Region> out = {{0, 1}};
    obs::OpCounters c;
    kt->union_span(r.data(), r.data() + r.size(), s.data(), s.data() + s.size(),
                   &out, &c);
    ASSERT_EQ(out.size(), 4u) << kt->name;
    EXPECT_EQ(out[0], (Region{0, 1})) << kt->name;
    EXPECT_EQ(out[1], (Region{4, 5})) << kt->name;
  }
}

TEST(SimdGallopLowerBound, MatchesStdLowerBoundAndChargesEqually) {
  Rng rng(99);
  RegionDocumentOrder less;
  for (int round = 0; round < 40; ++round) {
    const std::vector<Region> hay =
        RandomRegions(rng, rng.Below(80), static_cast<Offset>(50));
    std::vector<Region> needles = hay;
    needles.push_back({-1, 0});
    needles.push_back({100, 200});
    needles.push_back({25, 25});
    for (const Region& v : needles) {
      const Region* want =
          std::lower_bound(hay.data(), hay.data() + hay.size(), v, less);
      int64_t scalar_cmp = 0;
      const Region* scalar_pos = simd::ScalarKernels().gallop_lower_bound(
          hay.data(), hay.data() + hay.size(), v, &scalar_cmp);
      ASSERT_EQ(want, scalar_pos);
      for (const KernelTable* kt : AvailableTables()) {
        int64_t cmp = 0;
        const Region* pos = kt->gallop_lower_bound(
            hay.data(), hay.data() + hay.size(), v, &cmp);
        ASSERT_EQ(want, pos) << kt->name;
        EXPECT_EQ(scalar_cmp, cmp) << kt->name;
      }
    }
  }
}

TEST(SimdEndpointFilters, MatchScalarOnAllSizesAndBounds) {
  Rng rng(7);
  for (size_t n = 0; n <= 70; ++n) {
    const std::vector<Region> in =
        RandomRegions(rng, n, static_cast<Offset>(40));
    // Bounds spanning none/some/all pass rates.
    for (Offset bound : {Offset{-10}, Offset{0}, Offset{13}, Offset{20},
                         Offset{41}, Offset{100}}) {
      std::vector<Region> want_rb, want_la;
      for (const Region& x : in) {
        if (x.right < bound) want_rb.push_back(x);
        if (x.left > bound) want_la.push_back(x);
      }
      for (const KernelTable* kt : AvailableTables()) {
        std::vector<Region> got_rb = {{-99, -98}};  // Must be preserved.
        std::vector<Region> got_la = {{-99, -98}};
        kt->filter_right_before(in.data(), in.size(), bound, &got_rb);
        kt->filter_left_after(in.data(), in.size(), bound, &got_la);
        ASSERT_EQ(got_rb.front(), (Region{-99, -98})) << kt->name;
        ASSERT_EQ(got_la.front(), (Region{-99, -98})) << kt->name;
        got_rb.erase(got_rb.begin());
        got_la.erase(got_la.begin());
        EXPECT_EQ(want_rb, got_rb)
            << kt->name << " right<" << bound << " n=" << n;
        EXPECT_EQ(want_la, got_la)
            << kt->name << " left>" << bound << " n=" << n;
      }
    }
  }
}

TEST(SimdMinRight, MatchesMinElement) {
  Rng rng(21);
  for (size_t n = 1; n <= 70; ++n) {
    const std::vector<Region> in =
        RandomRegions(rng, n, static_cast<Offset>(500));
    if (in.empty()) continue;
    Offset want = in[0].right;
    for (const Region& x : in) want = std::min(want, x.right);
    for (const KernelTable* kt : AvailableTables()) {
      EXPECT_EQ(want, kt->min_right(in.data(), in.size()))
          << kt->name << " n=" << in.size();
    }
  }
}

TEST(SimdLowerBoundOffsets, MatchesStdLowerBound) {
  Rng rng(5);
  constexpr Offset kMin = std::numeric_limits<Offset>::min();
  constexpr Offset kMax = std::numeric_limits<Offset>::max();
  for (int round = 0; round < 50; ++round) {
    std::vector<Offset> arr;
    const size_t n = rng.Below(100);
    for (size_t i = 0; i < n; ++i) {
      // Dense values with duplicates.
      arr.push_back(static_cast<Offset>(rng.Below(40)) - 10);
    }
    std::sort(arr.begin(), arr.end());
    std::vector<Offset> queries = {kMin, kMax, 0, -10, 29};
    const size_t extra = rng.Below(30);
    for (size_t i = 0; i < extra; ++i) {
      queries.push_back(static_cast<Offset>(rng.Below(44)) - 12);
    }
    std::vector<uint32_t> want(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      want[i] = static_cast<uint32_t>(
          std::lower_bound(arr.begin(), arr.end(), queries[i]) - arr.begin());
    }
    for (const KernelTable* kt : AvailableTables()) {
      std::vector<uint32_t> got(queries.size(), 0xDEADBEEF);
      kt->lower_bound_offsets(arr.data(), arr.size(), queries.data(),
                              queries.size(), got.data());
      EXPECT_EQ(want, got) << kt->name << " n=" << n;
    }
  }
}

TEST(SimdContainmentProbes, MatchExistsPredicates) {
  Rng rng(31);
  for (int round = 0; round < 25; ++round) {
    const std::vector<Region> s =
        RandomRegions(rng, rng.Below(50), static_cast<Offset>(60));
    std::vector<Region> queries =
        RandomRegions(rng, 1 + rng.Below(300), static_cast<Offset>(60));
    const ContainmentIndex index(RegionSet::FromSortedUnique(
        std::vector<Region>(s)));
    const size_t n = queries.size();
    for (const KernelTable* kt : AvailableTables()) {
      std::vector<unsigned char> included_in(n), including(n), contained(n);
      index.ProbeIncludedIn(queries.data(), n, included_in.data(), kt);
      index.ProbeIncluding(queries.data(), n, including.data(), kt);
      index.ProbeContainedIn(queries.data(), n, contained.data(), kt);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(index.ExistsIncludedIn(queries[i]), included_in[i] != 0)
            << kt->name << " i=" << i;
        EXPECT_EQ(index.ExistsIncluding(queries[i]), including[i] != 0)
            << kt->name << " i=" << i;
        EXPECT_EQ(index.ExistsContainedIn(queries[i]), contained[i] != 0)
            << kt->name << " i=" << i;
      }
    }
  }
}

TEST(SimdContainmentProbes, EmptyIndexKeepsNothing) {
  const ContainmentIndex index;
  const std::vector<Region> queries = {{0, 4}, {1, 2}};
  for (const KernelTable* kt : AvailableTables()) {
    std::vector<unsigned char> keep(queries.size(), 1);
    index.ProbeIncludedIn(queries.data(), queries.size(), keep.data(), kt);
    EXPECT_EQ(keep, (std::vector<unsigned char>{0, 0})) << kt->name;
  }
}

TEST(SimdPartitionedChunks, ConcatenationAndSummedCountersMatchScalar) {
  // Replays the chunking scheme of exec::PartitionedMerge: R is cut at index
  // boundaries, S at the matching document-order lower bounds, and each
  // chunk runs the span kernel independently. Concatenated chunk outputs and
  // summed chunk counters must be identical on every tier.
  Rng rng(77);
  RegionDocumentOrder less;
  for (int round = 0; round < 15; ++round) {
    const std::vector<Region> r =
        RandomRegions(rng, 30 + rng.Below(35), static_cast<Offset>(90));
    const std::vector<Region> s =
        RandomRegions(rng, 30 + rng.Below(35), static_cast<Offset>(90));
    if (r.empty()) continue;
    for (size_t np : {2u, 3u, 5u}) {
      std::vector<size_t> rcut(np + 1), scut(np + 1);
      rcut[0] = scut[0] = 0;
      rcut[np] = r.size();
      scut[np] = s.size();
      for (size_t k = 1; k < np; ++k) {
        rcut[k] = k * r.size() / np;
        scut[k] = static_cast<size_t>(
            std::lower_bound(s.data(), s.data() + s.size(), r[rcut[k]], less) -
            s.data());
      }
      std::vector<Region> want;
      obs::OpCounters want_c;
      bool first = true;
      for (const KernelTable* kt : AvailableTables()) {
        std::vector<Region> got;
        obs::OpCounters got_c;
        for (size_t k = 0; k < np; ++k) {
          kt->union_span(r.data() + rcut[k], r.data() + rcut[k + 1],
                         s.data() + scut[k], s.data() + scut[k + 1], &got,
                         &got_c);
        }
        if (first) {
          want = got;
          want_c = got_c;
          first = false;
        } else {
          ASSERT_EQ(want, got) << kt->name << " np=" << np;
          ExpectCountersEqual(want_c, got_c,
                              std::string(kt->name) + " np=" +
                                  std::to_string(np));
        }
      }
    }
  }
}

TEST(SimdResolveIsa, HonorsOverrideAndClampsToHardware) {
  util::CpuFeatures none;
  util::CpuFeatures sse_only;
  sse_only.sse42 = true;
  util::CpuFeatures full;
  full.sse42 = true;
  full.avx2 = true;

  // No override: best supported tier.
  EXPECT_EQ(Isa::kScalar, simd::ResolveIsa(nullptr, none));
  EXPECT_EQ(Isa::kSse4, simd::ResolveIsa(nullptr, sse_only));
  EXPECT_EQ(Isa::kAvx2, simd::ResolveIsa(nullptr, full));
  EXPECT_EQ(Isa::kAvx2, simd::ResolveIsa("", full));

  // Explicit downgrades are honored.
  EXPECT_EQ(Isa::kScalar, simd::ResolveIsa("scalar", full));
  EXPECT_EQ(Isa::kSse4, simd::ResolveIsa("sse4", full));
  EXPECT_EQ(Isa::kAvx2, simd::ResolveIsa("avx2", full));

  // Requests above the hardware clamp down; garbage is ignored.
  EXPECT_EQ(Isa::kSse4, simd::ResolveIsa("avx2", sse_only));
  EXPECT_EQ(Isa::kScalar, simd::ResolveIsa("avx2", none));
  EXPECT_EQ(Isa::kAvx2, simd::ResolveIsa("avx512", full));
}

TEST(SimdDispatch, TablesDegradeToSupportedTiers) {
  for (const KernelTable* kt : AvailableTables()) {
    EXPECT_STREQ(simd::IsaName(kt->isa), kt->name);
  }
  // KernelsFor never hands out a tier beyond the hardware.
  const util::CpuFeatures& f = util::CpuInfo();
  const KernelTable& best = simd::KernelsFor(Isa::kAvx2);
  if (!f.avx2) {
    EXPECT_NE(Isa::kAvx2, best.isa);
  }
  if (!f.sse42) {
    EXPECT_EQ(Isa::kScalar, best.isa);
  }
  EXPECT_EQ(Isa::kScalar, simd::ScalarKernels().isa);
}

TEST(SimdDispatch, SequentialOperatorsAgreeWithNaiveUnderActiveKernels) {
  // End-to-end: whatever tier REGAL_SIMD selected for this process, the
  // public operators must agree with the naive oracles.
  Rng rng(13);
  for (int round = 0; round < 10; ++round) {
    RegionSet r = RegionSet::FromSortedUnique(
        RandomRegions(rng, rng.Below(60), static_cast<Offset>(50)));
    RegionSet s = RegionSet::FromSortedUnique(
        RandomRegions(rng, rng.Below(60), static_cast<Offset>(50)));
    EXPECT_EQ(naive::Union(r, s).regions(), Union(r, s).regions());
    EXPECT_EQ(naive::Intersect(r, s).regions(), Intersect(r, s).regions());
    EXPECT_EQ(naive::Difference(r, s).regions(), Difference(r, s).regions());
    EXPECT_EQ(naive::Including(r, s).regions(), Including(r, s).regions());
    EXPECT_EQ(naive::Included(r, s).regions(), Included(r, s).regions());
    EXPECT_EQ(naive::Precedes(r, s).regions(), Precedes(r, s).regions());
    EXPECT_EQ(naive::Follows(r, s).regions(), Follows(r, s).regions());
  }
}

}  // namespace
}  // namespace regal
