// Resource governance, cancellation and fault-injection suite (ctest labels
// `safety` and `timeouts`). The stress tests arm failpoints on the engine's
// execution paths and prove the robustness contract: every injected failure
// surfaces as a clean non-OK Status, degradations keep answers bit-identical,
// and the engine remains fully usable afterwards.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/algebra.h"
#include "core/eval.h"
#include "core/expr.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "exec/thread_pool.h"
#include "fmft/emptiness.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/parser.h"
#include "safety/context.h"
#include "safety/failpoint.h"
#include "util/random.h"

namespace regal {
namespace {

using safety::CancelToken;
using safety::FailpointRegistry;
using safety::QueryContext;
using safety::QueryLimits;

// Every test leaves the process-wide registry clean; a leaked armed
// failpoint would poison unrelated suites.
class SafetyTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Default().DisarmAll(); }
};

Result<QueryEngine> DictionaryEngine(int entries = 30) {
  DictionaryGeneratorOptions options;
  options.entries = entries;
  return QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
}

// ---------------------------------------------------------------------------
// Failpoint registry semantics
// ---------------------------------------------------------------------------

using FailpointTest = SafetyTest;

TEST_F(FailpointTest, DisarmedIsInert) {
  EXPECT_EQ(FailpointRegistry::ArmedCountRelaxed(), 0);
  EXPECT_FALSE(safety::FailpointFires("never.armed"));
  EXPECT_TRUE(safety::CheckFailpoint("never.armed").ok());
}

TEST_F(FailpointTest, ArmFiresEveryHitUntilDisarmed) {
  auto& registry = FailpointRegistry::Default();
  registry.Arm("t.always");
  EXPECT_TRUE(registry.IsArmed("t.always"));
  EXPECT_GT(FailpointRegistry::ArmedCountRelaxed(), 0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(safety::FailpointFires("t.always"));
  EXPECT_EQ(registry.FireCount("t.always"), 5);
  Status injected = safety::CheckFailpoint("t.always");
  EXPECT_EQ(injected.code(), StatusCode::kInternal);
  EXPECT_NE(injected.message().find("injected failure at 't.always'"),
            std::string::npos);
  registry.Disarm("t.always");
  EXPECT_FALSE(safety::FailpointFires("t.always"));
  EXPECT_EQ(registry.FireCount("t.always"), 0);
}

TEST_F(FailpointTest, SkipAndMaxFires) {
  FailpointRegistry::Config config;
  config.skip = 2;
  config.max_fires = 3;
  FailpointRegistry::Default().Arm("t.window", config);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(safety::FailpointFires("t.window"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false}));
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  auto sequence = [](uint64_t seed) {
    FailpointRegistry::Config config;
    config.probability = 0.5;
    config.seed = seed;
    FailpointRegistry::Default().Arm("t.coin", config);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(safety::FailpointFires("t.coin"));
    FailpointRegistry::Default().Disarm("t.coin");
    return out;
  };
  std::vector<bool> a = sequence(7);
  EXPECT_EQ(a, sequence(7));       // Reproducible from the seed alone.
  EXPECT_NE(a, sequence(8));       // And actually seed-dependent.
  int fires = 0;
  for (bool b : a) fires += b ? 1 : 0;
  EXPECT_GT(fires, 8);             // A fair-ish coin, not constant.
  EXPECT_LT(fires, 56);
}

TEST_F(FailpointTest, ArmFromSpecSyntax) {
  auto& registry = FailpointRegistry::Default();
  ASSERT_TRUE(
      registry.ArmFromSpec("a.b; c.d=0.25@9 ;e.f#2; g.h=1#1").ok());
  EXPECT_EQ(registry.Armed(),
            (std::vector<std::string>{"a.b", "c.d", "e.f", "g.h"}));
  EXPECT_TRUE(safety::FailpointFires("e.f"));
  EXPECT_TRUE(safety::FailpointFires("e.f"));
  EXPECT_FALSE(safety::FailpointFires("e.f"));  // #2 cap reached.

  EXPECT_EQ(registry.ArmFromSpec("x.y=1.5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.ArmFromSpec("x.y@notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.ArmFromSpec("=0.5").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, ArmFromSpecRejectsNonFiniteProbability) {
  // strtod parses "nan"/"inf"; NaN in particular defeats range checks
  // written as `p < 0 || p > 1` and would arm a failpoint that never fires.
  auto& registry = FailpointRegistry::Default();
  EXPECT_EQ(registry.ArmFromSpec("x.y=nan").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.ArmFromSpec("x.y=-nan").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.ArmFromSpec("x.y=inf").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(registry.IsArmed("x.y"));
}

// ---------------------------------------------------------------------------
// QueryContext limits
// ---------------------------------------------------------------------------

using ContextTest = SafetyTest;

TEST_F(ContextTest, UnlimitedContextAlwaysPasses) {
  QueryLimits limits;
  EXPECT_FALSE(limits.Any());
  QueryContext context(limits);
  EXPECT_TRUE(context.Check().ok());
  EXPECT_FALSE(context.ShouldAbort());
  EXPECT_TRUE(context.ChargeMemory(int64_t{1} << 40).ok());
}

TEST_F(ContextTest, ExpiredDeadlineFailsCheck) {
  QueryLimits limits;
  limits.deadline_ms = 1e-6;  // Expired by the first checkpoint.
  QueryContext context(limits);
  while (!context.ShouldAbort()) {
  }
  EXPECT_EQ(context.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ContextTest, CancelTokenStopsTheQuery) {
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  QueryContext context(limits);
  EXPECT_TRUE(context.Check().ok());
  limits.cancel->Cancel();
  EXPECT_TRUE(context.ShouldAbort());
  EXPECT_EQ(context.Check().code(), StatusCode::kCancelled);
}

TEST_F(ContextTest, MemoryBudgetIsStickyAndTracksPeak) {
  QueryLimits limits;
  limits.memory_limit_bytes = 100;
  QueryContext context(limits);
  EXPECT_TRUE(context.ChargeMemory(60).ok());
  EXPECT_EQ(context.Check().code(), StatusCode::kOk);
  EXPECT_EQ(context.ChargeMemory(60).code(), StatusCode::kResourceExhausted);
  // The violation is sticky: later checkpoints keep failing.
  EXPECT_EQ(context.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(context.ShouldAbort());
  EXPECT_EQ(context.peak_memory_bytes(), 120);
}

TEST_F(ContextTest, AdmissionMeasuresDagsNotTrees) {
  // shared is one DAG node used twice; a tree walk would double-count it.
  ExprPtr shared = Expr::Union(Expr::Name("a"), Expr::Name("b"));
  ExprPtr expr = Expr::Intersect(shared, shared);
  safety::ExprComplexity complexity = safety::MeasureExpr(expr);
  EXPECT_EQ(complexity.nodes, 4);  // a, b, union, intersect.
  EXPECT_EQ(complexity.depth, 3);

  QueryLimits limits;
  limits.max_expr_nodes = 4;
  EXPECT_TRUE(safety::AdmitExpr(expr, limits).ok());
  limits.max_expr_nodes = 3;
  EXPECT_EQ(safety::AdmitExpr(expr, limits).code(),
            StatusCode::kResourceExhausted);
  limits = QueryLimits{};
  limits.max_expr_depth = 2;
  EXPECT_EQ(safety::AdmitExpr(expr, limits).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ContextTest, AdmissionSurvivesPathologicallyDeepExpressions) {
  // Far beyond the parser's 200-depth cap — reachable through RunExpr with
  // programmatically built expressions. Measuring such an expression must
  // not itself recurse to its depth: admission would stack-overflow on
  // exactly the queries it exists to reject.
  constexpr int kDepth = 200000;
  std::vector<ExprPtr> spine;
  spine.reserve(kDepth + 1);
  ExprPtr expr = Expr::Name("a");
  spine.push_back(expr);
  for (int i = 0; i < kDepth; ++i) {
    expr = Expr::Union(Expr::Name("a"), expr);
    spine.push_back(expr);
  }
  safety::ExprComplexity complexity = safety::MeasureExpr(expr);
  EXPECT_EQ(complexity.depth, kDepth + 1);
  QueryLimits limits;
  limits.max_expr_depth = 200;
  EXPECT_EQ(safety::AdmitExpr(expr, limits).code(),
            StatusCode::kResourceExhausted);
  // Dismantle root-first: each pop frees exactly one node (its child is
  // still held by the spine), keeping teardown iterative as well —
  // destroying the root of a 200k-deep shared_ptr chain would recurse.
  expr.reset();
  while (!spine.empty()) spine.pop_back();
}

// ---------------------------------------------------------------------------
// Engine-level governance
// ---------------------------------------------------------------------------

using GovernanceTest = SafetyTest;

TEST_F(GovernanceTest, ExpiredDeadlineSurfacesWithinOneOperator) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.deadline_ms = 1e-6;
  auto answer = engine->Run("sense within entry", limits);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernanceTest, CancelledQueryReturnsCancelled) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();  // Cancelled before evaluation starts.
  auto answer = engine->Run("sense within entry", limits);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernanceTest, CancellationNeverTruncatesTheRootKernel) {
  // A cancel landing while the ROOT operator's partitioned kernel runs makes
  // the remaining chunks bail without output; the evaluator's final context
  // check must turn that truncated set into Cancelled, never an OK answer.
  // The sweep of cancel delays races the kernel on purpose — the invariant
  // holds for every interleaving: OK implies the complete answer.
  Rng rng(17);
  auto random_set = [&rng](size_t n) {
    std::vector<Region> regions;
    regions.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Offset left = static_cast<Offset>(rng.Below(1u << 20));
      Offset len = static_cast<Offset>(rng.Below(64));
      regions.push_back(Region{left, left + len});
    }
    return RegionSet::FromUnsorted(std::move(regions));
  };
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("a", random_set(1 << 17)).ok());
  ASSERT_TRUE(instance.AddRegionSet("b", random_set(1 << 17)).ok());
  ExprPtr expr = Expr::Union(Expr::Name("a"), Expr::Name("b"));
  const RegionSet expected =
      Union(*instance.Get("a").value(), *instance.Get("b").value());
  exec::ThreadPool pool(4);
  ParallelEvalPolicy policy;
  policy.pool = &pool;
  policy.min_rows = 0;
  for (int trial = 0; trial < 16; ++trial) {
    QueryLimits limits;
    limits.cancel = std::make_shared<CancelToken>();
    QueryContext context(limits);
    EvalOptions options;
    options.parallel = &policy;
    options.context = &context;
    std::thread canceller([&limits, trial] {
      std::this_thread::sleep_for(std::chrono::microseconds(trial * 40));
      limits.cancel->Cancel();
    });
    Result<RegionSet> answer = Evaluate(instance, expr, options);
    canceller.join();
    if (answer.ok()) {
      EXPECT_EQ(answer.value(), expected) << "trial=" << trial;
    } else {
      EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
          << "trial=" << trial;
    }
  }
}

TEST_F(GovernanceTest, MemoryBudgetBoundsMaterialization) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.memory_limit_bytes = 1;
  auto answer = engine->Run("sense within entry", limits);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
  // A generous budget admits the same query.
  limits.memory_limit_bytes = int64_t{1} << 30;
  EXPECT_TRUE(engine->Run("sense within entry", limits).ok());
}

TEST_F(GovernanceTest, AdmissionControlRejectsOversizedQueries) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.max_expr_depth = 2;
  auto answer = engine->Run("quote within sense within entry", limits);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
  limits = QueryLimits{};
  limits.max_expr_nodes = 2;
  EXPECT_FALSE(engine->Run("(quote | def) within sense", limits).ok());
}

TEST_F(GovernanceTest, EngineWideLimitsApplyAndClear) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.max_expr_depth = 1;
  engine->set_limits(limits);
  EXPECT_FALSE(engine->Run("sense within entry").ok());
  engine->set_limits(QueryLimits{});
  EXPECT_TRUE(engine->Run("sense within entry").ok());
}

TEST_F(GovernanceTest, ViolationLeavesEngineUnchanged) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  auto expected = engine->Run("sense within entry");
  ASSERT_TRUE(expected.ok());

  QueryLimits limits;
  limits.memory_limit_bytes = 1;
  ASSERT_FALSE(engine->Run("sense within entry", limits).ok());
  limits = QueryLimits{};
  limits.deadline_ms = 1e-6;
  ASSERT_FALSE(engine->Run("quote within sense", limits).ok());

  auto after = engine->Run("sense within entry");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->regions, expected->regions);
}

TEST_F(GovernanceTest, ProfileCarriesGovernanceOutcome) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.memory_limit_bytes = int64_t{1} << 30;
  auto answer =
      engine->Run("explain analyze sense within entry", limits);
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->profile.has_value());
  EXPECT_TRUE(answer->profile->limits_enforced);
  EXPECT_FALSE(answer->profile->degraded);
  EXPECT_GT(answer->profile->peak_memory_bytes, 0);
  std::string json = answer->profile->Json();
  EXPECT_NE(json.find("\"governance\""), std::string::npos);
  EXPECT_NE(json.find("\"limits_enforced\":true"), std::string::npos);
  EXPECT_NE(json.find("\"peak_memory_bytes\""), std::string::npos);
}

TEST_F(GovernanceTest, GovernanceCountersAdvance) {
  obs::Registry& registry = obs::Registry::Default();
  int64_t admitted_before =
      registry.GetCounter("regal_safety_queries_admitted_total")->value();
  int64_t rejected_before =
      registry
          .GetCounter("regal_safety_queries_rejected_total",
                      {{"reason", "complexity"}})
          ->value();
  int64_t stopped_before =
      registry
          .GetCounter("regal_safety_queries_stopped_total",
                      {{"reason", "over_memory"}})
          ->value();

  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.memory_limit_bytes = int64_t{1} << 30;
  ASSERT_TRUE(engine->Run("sense within entry", limits).ok());
  limits.memory_limit_bytes = 1;
  ASSERT_FALSE(engine->Run("sense within entry", limits).ok());
  limits = QueryLimits{};
  limits.max_expr_nodes = 1;
  ASSERT_FALSE(engine->Run("sense within entry", limits).ok());

  EXPECT_GE(
      registry.GetCounter("regal_safety_queries_admitted_total")->value(),
      admitted_before + 2);
  EXPECT_EQ(registry
                .GetCounter("regal_safety_queries_rejected_total",
                            {{"reason", "complexity"}})
                ->value(),
            rejected_before + 1);
  EXPECT_EQ(registry
                .GetCounter("regal_safety_queries_stopped_total",
                            {{"reason", "over_memory"}})
                ->value(),
            stopped_before + 1);
}

// ---------------------------------------------------------------------------
// Parser robustness (admission caps + fuzz)
// ---------------------------------------------------------------------------

using ParserGuardTest = SafetyTest;

TEST_F(ParserGuardTest, DeepNestingIsRejectedNotOverflowed) {
  std::string query(300, '(');
  query += "a";
  query += std::string(300, ')');
  auto parsed = ParseQuery(query);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
  // Depth inside the cap still parses (each paren level costs two
  // productions, ParseExpr and ParseStruct, so 90 levels ~ depth 180).
  std::string shallow(90, '(');
  shallow += "a";
  shallow += std::string(90, ')');
  EXPECT_TRUE(ParseQuery(shallow).ok());
}

TEST_F(ParserGuardTest, TokenFloodIsRejected) {
  std::string query = "a";
  for (int i = 0; i < 40000; ++i) query += "|a";  // 80001 tokens.
  auto parsed = ParseQuery(query);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ParserGuardTest, RightLeaningStructChainIsRejected) {
  std::string query = "a";
  for (int i = 0; i < 300; ++i) query += " within a";
  auto parsed = ParseQuery(query);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ParserGuardTest, RandomAndTruncatedInputsNeverCrash) {
  const char kAlphabet[] = "ab|&-()\",~ within matching word bi ?*";
  Rng rng(2026);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string query;
    size_t length = rng.Below(64);
    for (size_t i = 0; i < length; ++i) {
      query += kAlphabet[rng.Below(sizeof(kAlphabet) - 1)];
    }
    auto parsed = ParseStatement(query);  // Must return, never throw/crash.
    (void)parsed.ok();
  }
  // Truncations of a valid query exercise every incomplete-production path.
  const std::string valid =
      "explain analyze bi(entry, sense matching ~\"term*\", quote) "
      "| entry including (headword matching \"t?rm1\") & sense - def";
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    auto parsed = ParseStatement(valid.substr(0, cut));
    (void)parsed.ok();
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

using DegradeTest = SafetyTest;

TEST_F(DegradeTest, SaturatedPoolFallsBackToSequential) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  engine->set_parallel_cost_threshold(0);  // Every query wants the pool.
  auto expected = engine->Run("sense within entry");
  ASSERT_TRUE(expected.ok());

  FailpointRegistry::Default().Arm("exec.pool.saturated");
  auto degraded = engine->Run("explain analyze sense within entry");
  ASSERT_TRUE(degraded.ok());  // Degraded, not failed.
  EXPECT_EQ(degraded->regions, expected->regions);
  ASSERT_TRUE(degraded->profile.has_value());
  EXPECT_TRUE(degraded->profile->degraded);
  ASSERT_FALSE(degraded->profile->fallbacks.empty());
  EXPECT_NE(degraded->profile->fallbacks[0].find("pool saturated"),
            std::string::npos);
  std::string json = degraded->profile->Json();
  EXPECT_NE(json.find("pool saturated"), std::string::npos);
}

TEST_F(DegradeTest, KernelDegradeKeepsAnswersBitIdentical) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  engine->set_parallel_cost_threshold(0);
  engine->mutable_parallel_policy()->min_rows = 0;
  // Kernel degradation only fires when kernels run; the result cache would
  // answer the armed re-runs without touching a kernel.
  engine->set_result_cache_enabled(false);
  const char* queries[] = {
      "sense within entry",
      "(quote within sense) | (def within sense)",
      "entry including (headword matching \"term*\")",
      "sense & sense within entry",
  };
  std::vector<RegionSet> expected;
  for (const char* query : queries) {
    auto answer = engine->Run(query);
    ASSERT_TRUE(answer.ok()) << query;
    expected.push_back(answer->regions);
  }
  FailpointRegistry::Default().Arm("exec.kernel.degrade");
  for (size_t i = 0; i < 4; ++i) {
    auto answer = engine->Run(queries[i]);
    ASSERT_TRUE(answer.ok()) << queries[i];
    EXPECT_EQ(answer->regions, expected[i]) << queries[i];
  }
  EXPECT_GT(FailpointRegistry::Default().FireCount("exec.kernel.degrade"), 0);
  // The fallback is attributed to the query that degraded (tallied on the
  // query's own counter, not diffed from the process-global metric).
  auto profiled = engine->Run("explain analyze sense within entry");
  ASSERT_TRUE(profiled.ok());
  ASSERT_TRUE(profiled->profile.has_value());
  EXPECT_TRUE(profiled->profile->degraded);
  ASSERT_FALSE(profiled->profile->fallbacks.empty());
  EXPECT_NE(profiled->profile->fallbacks[0].find("kernel fallback"),
            std::string::npos);
}

TEST_F(DegradeTest, IndexBuildDegradeBuildsTheSameIndex) {
  DictionaryGeneratorOptions options;
  options.entries = 12;
  std::string source = GenerateDictionarySource(options);
  auto expected = QueryEngine::FromSgmlSource(source);
  ASSERT_TRUE(expected.ok());
  auto baseline = expected->Run("entry including (headword matching \"t*\")");
  ASSERT_TRUE(baseline.ok());

  FailpointRegistry::Default().Arm("index.build.degrade");
  auto degraded = QueryEngine::FromSgmlSource(source);
  ASSERT_TRUE(degraded.ok());
  EXPECT_GT(
      FailpointRegistry::Default().FireCount("index.build.degrade"), 0);
  auto answer = degraded->Run("entry including (headword matching \"t*\")");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->regions, baseline->regions);
}

// ---------------------------------------------------------------------------
// Fault-injection stress: every injected failure is a clean Status and the
// engine is bit-identical afterwards.
// ---------------------------------------------------------------------------

using FaultInjectionTest = SafetyTest;

TEST_F(FaultInjectionTest, IndexBuildFailpointSurfacesAsStatus) {
  DictionaryGeneratorOptions options;
  options.entries = 5;
  std::string sgml = GenerateDictionarySource(options);
  ProgramGeneratorOptions program_options;
  std::string program = GenerateProgramSource(program_options);

  FailpointRegistry::Default().Arm("index.build");
  auto from_sgml = QueryEngine::FromSgmlSource(sgml);
  ASSERT_FALSE(from_sgml.ok());
  EXPECT_NE(from_sgml.status().message().find("injected"), std::string::npos);
  auto from_program = QueryEngine::FromProgramSource(program);
  ASSERT_FALSE(from_program.ok());
  EXPECT_NE(from_program.status().message().find("injected"),
            std::string::npos);

  FailpointRegistry::Default().DisarmAll();
  EXPECT_TRUE(QueryEngine::FromSgmlSource(sgml).ok());
  EXPECT_TRUE(QueryEngine::FromProgramSource(program).ok());
}

TEST_F(FaultInjectionTest, EmptinessSearchFailpointAndDeadline) {
  ExprPtr expr = Expr::Binary(OpKind::kIncluded, Expr::Name("a"),
                              Expr::Name("b"));
  FailpointRegistry::Default().Arm("fmft.emptiness");
  auto report = CheckEmptiness(expr);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("injected"), std::string::npos);
  FailpointRegistry::Default().DisarmAll();

  QueryLimits limits;
  limits.deadline_ms = 1e-6;
  QueryContext context(limits);
  while (!context.ShouldAbort()) {
  }
  EmptinessOptions options;
  options.context = &context;
  auto bounded = CheckEmptiness(expr, options);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, RandomizedInjectionAlwaysFailsClean) {
  auto engine = DictionaryEngine(20);
  ASSERT_TRUE(engine.ok());
  engine->set_parallel_cost_threshold(0);  // Exercise the parallel sites too.
  engine->mutable_parallel_policy()->min_rows = 0;
  const char* queries[] = {
      "sense within entry",
      "(quote within sense) | (def within sense)",
      "entry including (headword matching \"term*\")",
  };
  std::vector<RegionSet> expected;
  for (const char* query : queries) {
    auto answer = engine->Run(query);
    ASSERT_TRUE(answer.ok()) << query;
    expected.push_back(answer->regions);
  }

  const char* fatal_sites[] = {"eval.node", "exec.kernel.fault",
                               "exec.pool.subtree"};
  for (const char* site : fatal_sites) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      FailpointRegistry::Config config;
      config.probability = 0.5;
      config.seed = seed;
      FailpointRegistry::Default().Arm(site, config);
      for (int round = 0; round < 6; ++round) {
        const char* query = queries[round % 3];
        auto answer = engine->Run(query);
        if (!answer.ok()) {
          // The only acceptable failure is the injected one, surfaced as a
          // clean Status — never a crash, never a garbled error.
          EXPECT_EQ(answer.status().code(), StatusCode::kInternal)
              << site << " seed " << seed;
          EXPECT_NE(answer.status().message().find("injected failure"),
                    std::string::npos)
              << site << " seed " << seed;
        } else {
          // Survived rounds must still be bit-identical.
          EXPECT_EQ(answer->regions, expected[round % 3])
              << site << " seed " << seed;
        }
      }
      FailpointRegistry::Default().Disarm(site);
    }
  }

  // After the storm: the engine answers exactly as a fresh one does.
  auto fresh = DictionaryEngine(20);
  ASSERT_TRUE(fresh.ok());
  for (size_t i = 0; i < 3; ++i) {
    auto survivor = engine->Run(queries[i]);
    auto control = fresh->Run(queries[i]);
    ASSERT_TRUE(survivor.ok());
    ASSERT_TRUE(control.ok());
    EXPECT_EQ(survivor->regions, expected[i]);
    EXPECT_EQ(survivor->regions, control->regions);
  }
}

}  // namespace
}  // namespace regal
