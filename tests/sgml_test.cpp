#include <gtest/gtest.h>

#include "core/eval.h"
#include "doc/sgml.h"

namespace regal {
namespace {

TEST(SgmlTest, ParsesNestedTags) {
  auto instance = ParseSgml("<a><b>hello</b><b>world</b></a>");
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance->Validate().ok());
  EXPECT_EQ((*instance->Get("a"))->size(), 1u);
  EXPECT_EQ((*instance->Get("b"))->size(), 2u);
}

TEST(SgmlTest, RegionSpansTags) {
  auto instance = ParseSgml("<a>xy</a>");
  ASSERT_TRUE(instance.ok());
  const RegionSet& a = **instance->Get("a");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], (Region{0, 8}));  // '<' of <a> .. '>' of </a>.
}

TEST(SgmlTest, AttributesTolerated) {
  auto instance = ParseSgml("<a id=1 class='x'>text</a>");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance->Get("a"))->size(), 1u);
}

TEST(SgmlTest, Malformed) {
  EXPECT_FALSE(ParseSgml("<a>text").ok());
  EXPECT_FALSE(ParseSgml("<a></b>").ok());
  EXPECT_FALSE(ParseSgml("</a>").ok());
  EXPECT_FALSE(ParseSgml("<a").ok());
  EXPECT_FALSE(ParseSgml("<>x</>").ok());
}

TEST(SgmlTest, SelectionOverContent) {
  auto instance = ParseSgml(
      "<doc><sec>alpha beta</sec><sec>gamma delta</sec></doc>");
  ASSERT_TRUE(instance.ok());
  Pattern p = *Pattern::Parse("gamma");
  auto result = Evaluate(*instance, Expr::Select(p, Expr::Name("sec")));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  auto doc = Evaluate(*instance, Expr::Select(p, Expr::Name("doc")));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 1u);
}

TEST(SgmlTest, GeneratedPlayParses) {
  PlayGeneratorOptions options;
  options.acts = 2;
  options.scenes_per_act = 2;
  options.speeches_per_scene = 3;
  std::string source = GeneratePlaySource(options);
  auto instance = ParseSgml(source);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance->Validate().ok());
  EXPECT_EQ((*instance->Get("act"))->size(), 2u);
  EXPECT_EQ((*instance->Get("scene"))->size(), 4u);
  EXPECT_EQ((*instance->Get("speech"))->size(), 12u);
}

TEST(SgmlTest, PlaySatisfiesPlayRig) {
  std::string source = GeneratePlaySource(PlayGeneratorOptions{});
  auto instance = ParseSgml(source);
  ASSERT_TRUE(instance.ok());
  Digraph rig = PlayRig();
  Digraph derived = instance->DeriveRig();
  for (Digraph::NodeId v = 0; v < derived.NumNodes(); ++v) {
    for (Digraph::NodeId w : derived.OutNeighbors(v)) {
      auto rv = rig.FindNode(derived.Label(v));
      auto rw = rig.FindNode(derived.Label(w));
      ASSERT_TRUE(rv.ok() && rw.ok());
      EXPECT_TRUE(rig.HasEdge(*rv, *rw));
    }
  }
}

TEST(SgmlTest, SpeechesBySpeaker) {
  std::string source = GeneratePlaySource(PlayGeneratorOptions{});
  auto instance = ParseSgml(source);
  ASSERT_TRUE(instance.ok());
  Pattern hamlet = *Pattern::Parse("HAMLET");
  // speech ⊃ σ_HAMLET(speaker).
  ExprPtr e = Expr::Including(Expr::Name("speech"),
                              Expr::Select(hamlet, Expr::Name("speaker")));
  auto result = Evaluate(*instance, e);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  EXPECT_LT(result->size(), (*instance->Get("speech"))->size());
}

}  // namespace
}  // namespace regal
