#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expr.h"
#include "doc/synthetic.h"
#include "util/random.h"

namespace regal {
namespace {

Instance DocInstance() {
  Instance instance;
  EXPECT_TRUE(instance.AddRegionSet("Doc", RegionSet{Region{0, 11}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Sec", RegionSet{Region{1, 4}, Region{6, 10}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Par", RegionSet{Region{2, 3}, Region{7, 8}}).ok());
  return instance;
}

TEST(ExprTest, CountsOps) {
  ExprPtr e = Expr::Including(
      Expr::Name("A"),
      Expr::Precedes(Expr::Name("B"), Expr::Follows(Expr::Name("C"),
                                                    Expr::Name("D"))));
  EXPECT_EQ(e->NumOps(), 3);
  EXPECT_EQ(e->NumOrderOps(), 2);
}

TEST(ExprTest, NamesUsedDeduplicated) {
  ExprPtr e = Expr::Union(Expr::Name("A"),
                          Expr::Intersect(Expr::Name("B"), Expr::Name("A")));
  EXPECT_EQ(e->NamesUsed(), (std::vector<std::string>{"A", "B"}));
}

TEST(ExprTest, PatternsUsed) {
  Pattern p = *Pattern::Parse("x");
  Pattern q = *Pattern::Parse("y");
  ExprPtr e = Expr::Union(Expr::Select(p, Expr::Name("A")),
                          Expr::Select(q, Expr::Select(p, Expr::Name("B"))));
  EXPECT_EQ(e->PatternsUsed().size(), 2u);
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = Expr::Including(Expr::Name("A"), Expr::Name("B"));
  EXPECT_EQ(e->ToString(), "(A including B)");
  ExprPtr sel = Expr::Select(*Pattern::Parse("x*"), Expr::Name("V"));
  EXPECT_EQ(sel->ToString(), "(V matching \"x*\")");
  ExprPtr bi = Expr::BothIncluded(Expr::Name("A"), Expr::Name("B"),
                                  Expr::Name("C"));
  EXPECT_EQ(bi->ToString(), "bi(A, B, C)");
}

TEST(ExprTest, ChainGroupsFromRight) {
  ExprPtr e = Expr::Chain(OpKind::kIncluded, {"A", "B", "C"});
  EXPECT_EQ(e->ToString(), "(A within (B within C))");
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = Expr::Chain(OpKind::kIncluded, {"A", "B", "C"});
  ExprPtr b = Expr::Included(Expr::Name("A"),
                             Expr::Included(Expr::Name("B"), Expr::Name("C")));
  EXPECT_TRUE(a->Equals(*b));
  ExprPtr c = Expr::Chain(OpKind::kIncluding, {"A", "B", "C"});
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprTest, IsBaseAlgebra) {
  EXPECT_TRUE(Expr::Chain(OpKind::kIncluded, {"A", "B"})->IsBaseAlgebra());
  EXPECT_FALSE(
      Expr::DirectIncluding(Expr::Name("A"), Expr::Name("B"))->IsBaseAlgebra());
  EXPECT_FALSE(Expr::Union(Expr::Name("A"),
                           Expr::BothIncluded(Expr::Name("A"), Expr::Name("B"),
                                              Expr::Name("C")))
                   ->IsBaseAlgebra());
}

TEST(EvalTest, NameLookup) {
  Instance instance = DocInstance();
  auto result = Evaluate(instance, Expr::Name("Sec"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_FALSE(Evaluate(instance, Expr::Name("Nope")).ok());
}

TEST(EvalTest, MotivatingQuery) {
  Instance instance = DocInstance();
  // Par within Sec within Doc.
  ExprPtr e = Expr::Chain(OpKind::kIncluded, {"Par", "Sec", "Doc"});
  auto result = Evaluate(instance, e);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(EvalTest, SelectUsesSyntheticW) {
  Instance instance = DocInstance();
  Pattern p = *Pattern::Parse("x");
  instance.SetSyntheticPattern(p, RegionSet{Region{7, 8}});
  auto result = Evaluate(instance, Expr::Select(p, Expr::Name("Par")));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (RegionSet{Region{7, 8}}));
}

TEST(EvalTest, ExtendedOperatorsViaAst) {
  Instance instance = DocInstance();
  auto direct = Evaluate(
      instance, Expr::DirectIncluding(Expr::Name("Doc"), Expr::Name("Par")));
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->empty());
  auto bi = Evaluate(instance, Expr::BothIncluded(Expr::Name("Doc"),
                                                  Expr::Name("Sec"),
                                                  Expr::Name("Sec")));
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ(bi->size(), 1u);  // Doc contains Sec [1,4] < Sec [6,10].
}

TEST(EvalTest, StatsCountOperators) {
  Instance instance = DocInstance();
  Evaluator evaluator(&instance);
  ExprPtr e = Expr::Chain(OpKind::kIncluded, {"Par", "Sec", "Doc"});
  ASSERT_TRUE(evaluator.Evaluate(e).ok());
  EXPECT_EQ(evaluator.stats().operator_evals, 2);
  evaluator.ResetStats();
  EXPECT_EQ(evaluator.stats().operator_evals, 0);
}

TEST(EvalTest, SharedSubtreesEvaluatedOnce) {
  Instance instance = DocInstance();
  ExprPtr shared = Expr::Included(Expr::Name("Par"), Expr::Name("Sec"));
  ExprPtr e = Expr::Union(shared, shared);
  Evaluator evaluator(&instance);
  ASSERT_TRUE(evaluator.Evaluate(e).ok());
  // One ⊂ plus one ∪, not two ⊂.
  EXPECT_EQ(evaluator.stats().operator_evals, 2);
}

TEST(EvalTest, NaiveModeAgrees) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 25;
    Instance instance = RandomLaminarInstance(rng, options);
    ExprPtr e = Expr::Difference(
        Expr::Including(Expr::Name("R0"),
                        Expr::Precedes(Expr::Name("R1"), Expr::Name("R2"))),
        Expr::Follows(Expr::Name("R0"), Expr::Name("R1")));
    EvalOptions naive_options;
    naive_options.use_naive = true;
    auto fast = Evaluate(instance, e);
    auto slow = Evaluate(instance, e, naive_options);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow);
  }
}

TEST(EvalTest, PaperGrammarRightGrouping) {
  // The paper's e2 = Name ⊂ Proc_header ⊂ Program groups from the right:
  // Name ⊂ (Proc_header ⊂ Program).
  ExprPtr e2 = Expr::Chain(OpKind::kIncluded,
                           {"Name", "Proc_header", "Program"});
  EXPECT_EQ(e2->NumOps(), 2);
  EXPECT_EQ(e2->child(0)->name(), "Name");
  EXPECT_EQ(e2->child(1)->kind(), OpKind::kIncluded);
}

}  // namespace
}  // namespace regal
