#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/dpll.h"
#include "util/random.h"

namespace regal {
namespace {

TEST(CnfTest, ToStringFormat) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{1, -2, 3}, {-1}};
  EXPECT_EQ(cnf.ToString(), "(x1 | !x2 | x3) & (!x1)");
}

TEST(CnfTest, IsSatisfiedBy) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1, 2}, {-1, 2}};
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false, true}));   // x2 = true.
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, false, false}));  // Both need x2.
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, true, false}));
}

TEST(CnfTest, RandomShape) {
  Rng rng(1);
  Cnf cnf = RandomKCnf(rng, 5, 12, 3);
  EXPECT_EQ(cnf.num_vars, 5);
  EXPECT_EQ(cnf.clauses.size(), 12u);
  for (const Clause& c : cnf.clauses) {
    EXPECT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        EXPECT_NE(std::abs(c[i]), std::abs(c[j]));
      }
    }
  }
}

TEST(DpllTest, TrivialCases) {
  Cnf empty;
  empty.num_vars = 0;
  EXPECT_TRUE(DpllSolve(empty).has_value());

  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.clauses = {{1}, {-1}};
  EXPECT_FALSE(DpllSolve(contradiction).has_value());
}

TEST(DpllTest, SatisfyingAssignmentIsValid) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    Cnf cnf = RandomKCnf(rng, 6, 15, 3);
    auto assignment = DpllSolve(cnf);
    if (assignment.has_value()) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(*assignment)) << cnf.ToString();
    }
  }
}

TEST(DpllTest, AgreesWithBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    int vars = static_cast<int>(2 + rng.Below(7));
    int clauses = static_cast<int>(1 + rng.Below(20));
    Cnf cnf = RandomKCnf(rng, vars, clauses,
                         static_cast<int>(1 + rng.Below(std::min(3, vars))));
    EXPECT_EQ(DpllSolve(cnf).has_value(), BruteForceSat(cnf))
        << cnf.ToString();
  }
}

TEST(DpllTest, StatsAccumulate) {
  Rng rng(4);
  Cnf cnf = RandomKCnf(rng, 12, 50, 3);
  DpllStats stats;
  DpllSolve(cnf, &stats);
  EXPECT_GE(stats.decisions + stats.unit_propagations, 1);
}

TEST(DpllTest, UnitPropagationChains) {
  // x1, x1->x2, x2->x3 ... forces everything without decisions.
  Cnf cnf;
  cnf.num_vars = 5;
  cnf.clauses = {{1}, {-1, 2}, {-2, 3}, {-3, 4}, {-4, 5}};
  DpllStats stats;
  auto assignment = DpllSolve(cnf, &stats);
  ASSERT_TRUE(assignment.has_value());
  for (int v = 1; v <= 5; ++v) EXPECT_TRUE((*assignment)[static_cast<size_t>(v)]);
  EXPECT_EQ(stats.decisions, 0);
  EXPECT_GE(stats.unit_propagations, 5);
}

}  // namespace
}  // namespace regal
