// Durability harnesses for the snapshot storage engine (storage/env.h,
// storage/snapshot.h, storage/fault_env.h):
//
//  * a crash-consistency matrix — kill the writer at every syscall
//    boundary of the atomic write protocol, with and without torn tails,
//    with the un-fsynced rename landing on either side of the crash — and
//    assert a reader always sees exactly the last committed snapshot;
//  * a deterministic corruption fuzzer — bit flips, truncations and
//    splices against REGAL2 bytes must surface as kDataLoss (never a
//    silently wrong instance, never a crash or unbounded allocation);
//  * typed-failure injection through the REGAL_FAILPOINTS registry
//    (ENOSPC, EIO, short writes, silent bit flips);
//  * the cache-interaction invariant: reloading a snapshot swaps in a
//    fresh instance identity, so result-cache entries can never serve
//    answers from the pre-reload catalog.
//
// Tests whose names contain "Crash" also carry the ctest label `crash`
// (see tests/CMakeLists.txt); the whole binary is labeled `storage`. The
// fuzzers honor REGAL_FUZZ_ITERS so CI smoke runs can bound them.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "doc/sgml.h"
#include "doc/synthetic.h"
#include "query/engine.h"
#include "safety/failpoint.h"
#include "storage/checksum.h"
#include "storage/compress.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/serialize.h"
#include "storage/snapshot.h"
#include "util/random.h"

namespace regal {
namespace storage {
namespace {

// A text-backed instance with region sets and a synthetic pattern, so every
// REGAL2 section kind appears in the file. `variant` changes the content so
// distinct snapshots have distinct bytes.
Instance MakeCatalog(int variant) {
  std::string source = "<doc><sec>alpha beta</sec><sec>gamma";
  for (int i = 0; i < variant; ++i) source += " delta";
  source += "</sec></doc>";
  auto instance = ParseSgml(source);
  EXPECT_TRUE(instance.ok()) << instance.status();
  Pattern p = *Pattern::Parse("q*");
  instance->SetSyntheticPattern(p, RegionSet{(**instance->Get("sec"))[0]});
  return std::move(*instance);
}

std::string SnapshotBytes(const Instance& instance) {
  auto encoded = EncodeSnapshot(instance);
  EXPECT_TRUE(encoded.ok()) << encoded.status();
  return *encoded;
}

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  auto bytes = Env::Default()->ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? *bytes : std::string();
}

void RemoveIfExists(const std::string& path) {
  Env* env = Env::Default();
  if (env->FileExists(path)) ASSERT_TRUE(env->RemoveFile(path).ok());
}

size_t FuzzIterations(size_t fallback) {
  const char* spec = std::getenv("REGAL_FUZZ_ITERS");
  if (spec == nullptr || *spec == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(spec, nullptr, 10));
}

// Arms one failpoint for the current scope; disarms everything on exit so a
// failing test cannot leak injection into its neighbors.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(const char* name) {
    safety::FailpointRegistry::Default().Arm(name);
  }
  ~ScopedFailpoint() { safety::FailpointRegistry::Default().DisarmAll(); }
};

// --- Crash-consistency matrix -------------------------------------------

// Counts the mutating env ops one atomic snapshot save performs, so the
// matrix below can place a kill point at every single one.
int64_t OpsPerSave(const Instance& instance, const std::string& path) {
  FaultInjectionEnv env;
  EXPECT_TRUE(SaveSnapshotToFile(instance, path, &env).ok());
  return env.op_count();
}

TEST(StorageCrashTest, CrashMatrixAlwaysYieldsLastCommittedSnapshot) {
  const Instance a = MakeCatalog(1);
  const Instance b = MakeCatalog(7);
  const std::string a_bytes = SnapshotBytes(a);
  const std::string b_bytes = SnapshotBytes(b);
  ASSERT_NE(a_bytes, b_bytes);
  const std::string path = TestPath("crash_matrix.regal2");
  RemoveIfExists(path);
  RemoveIfExists(AtomicTempPath(path));

  const int64_t ops = OpsPerSave(b, path);
  // open, >=1 append, fsync, close, rename, dir fsync.
  ASSERT_GE(ops, 6);

  for (int64_t kill = 0; kill < ops; ++kill) {
    for (uint64_t torn : {uint64_t{0}, uint64_t{1}, uint64_t{7}}) {
      for (bool renames_survive : {false, true}) {
        SCOPED_TRACE("kill=" + std::to_string(kill) +
                     " torn=" + std::to_string(torn) +
                     " renames_survive=" + std::to_string(renames_survive));
        // Committed state: snapshot A.
        ASSERT_TRUE(SaveSnapshotToFile(a, path).ok());

        FaultInjectionEnv env;
        env.CrashAfterOps(kill, torn);
        Status died = SaveSnapshotToFile(b, path, &env);
        ASSERT_FALSE(died.ok());
        ASSERT_TRUE(env.crashed());
        ASSERT_TRUE(env.Recover(renames_survive).ok());

        // The disk now holds exactly A or exactly B — never a prefix, a
        // hybrid, or nothing (A was committed).
        const std::string on_disk = ReadAll(path);
        EXPECT_TRUE(on_disk == a_bytes || on_disk == b_bytes)
            << "torn/hybrid snapshot of " << on_disk.size() << " bytes";
        // And it loads cleanly through the full reader stack.
        auto loaded = LoadSnapshotFromFile(path);
        ASSERT_TRUE(loaded.ok()) << loaded.status();
        EXPECT_EQ(SnapshotBytes(*loaded), on_disk);
        // The crash may strand a temp file; the next save must absorb it.
        RemoveIfExists(AtomicTempPath(path));
      }
    }
  }
}

TEST(StorageCrashTest, CrashOnFirstSaveYieldsSnapshotOrNotFound) {
  const Instance b = MakeCatalog(3);
  const std::string b_bytes = SnapshotBytes(b);
  const std::string path = TestPath("crash_first_save.regal2");

  RemoveIfExists(path);
  RemoveIfExists(AtomicTempPath(path));
  const int64_t ops = OpsPerSave(b, path);
  ASSERT_GE(ops, 6);

  for (int64_t kill = 0; kill < ops; ++kill) {
    for (bool renames_survive : {false, true}) {
      SCOPED_TRACE("kill=" + std::to_string(kill) +
                   " renames_survive=" + std::to_string(renames_survive));
      RemoveIfExists(path);
      RemoveIfExists(AtomicTempPath(path));

      FaultInjectionEnv env;
      env.CrashAfterOps(kill);
      ASSERT_FALSE(SaveSnapshotToFile(b, path, &env).ok());
      ASSERT_TRUE(env.Recover(renames_survive).ok());

      // Before the first commit there is nothing to fall back to: a reader
      // sees a typed NotFound — or the complete snapshot, never a torn one.
      auto loaded = LoadSnapshotFromFile(path);
      if (loaded.ok()) {
        EXPECT_EQ(ReadAll(path), b_bytes);
      } else {
        EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
            << loaded.status();
      }
    }
  }
}

TEST(StorageCrashTest, OrphanTempFileIsAbsorbedByNextSave) {
  const Instance a = MakeCatalog(2);
  const std::string path = TestPath("orphan_tmp.regal2");
  RemoveIfExists(path);

  // A crashed writer left a half-written temp file behind.
  Env* env = Env::Default();
  auto tmp = env->NewWritableFile(AtomicTempPath(path));
  ASSERT_TRUE(tmp.ok());
  ASSERT_TRUE((*tmp)->Append("garbage from a dead writer").ok());
  ASSERT_TRUE((*tmp)->Close().ok());

  ASSERT_TRUE(SaveSnapshotToFile(a, path).ok());
  EXPECT_FALSE(env->FileExists(AtomicTempPath(path)));
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SnapshotBytes(*loaded), SnapshotBytes(a));
}

// --- Typed syscall failures ---------------------------------------------

TEST(StorageFaultTest, InjectedFailuresAreTypedAndLeaveDestinationIntact) {
  const Instance a = MakeCatalog(1);
  const Instance b = MakeCatalog(5);
  const std::string a_bytes = SnapshotBytes(a);
  const std::string path = TestPath("typed_failures.regal2");
  ASSERT_TRUE(SaveSnapshotToFile(a, path).ok());

  struct Case {
    const char* failpoint;
    StatusCode expected;
  };
  const Case cases[] = {
      {kFailpointOpenEio, StatusCode::kInternal},
      {kFailpointWriteEio, StatusCode::kInternal},
      {kFailpointWriteEnospc, StatusCode::kResourceExhausted},
      {kFailpointWriteShort, StatusCode::kInternal},
      {kFailpointSyncEio, StatusCode::kInternal},
      {kFailpointRenameEio, StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.failpoint);
    ScopedFailpoint armed(c.failpoint);
    FaultInjectionEnv env;
    Status status = SaveSnapshotToFile(b, path, &env);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), c.expected) << status;
    EXPECT_EQ(ReadAll(path), a_bytes) << "failed save touched the destination";
  }
}

TEST(StorageFaultTest, SilentBitFlipAtWriteTimeIsCaughtAtLoadTime) {
  const Instance b = MakeCatalog(4);
  const std::string path = TestPath("bitflip.regal2");
  RemoveIfExists(path);

  // The write path reports success — the flipped bit is invisible until a
  // reader checks the section CRCs. This is the failure REGAL1 cannot see.
  {
    ScopedFailpoint armed(kFailpointWriteBitflip);
    FaultInjectionEnv env;
    ASSERT_TRUE(SaveSnapshotToFile(b, path, &env).ok());
  }
  auto loaded = LoadSnapshotFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss) << loaded.status();
}

TEST(StorageFaultTest, LegacyRegal1SaveIsAtomicToo) {
  const Instance a = MakeCatalog(1);
  const Instance b = MakeCatalog(6);
  const std::string path = TestPath("legacy_atomic.regal1");
  ASSERT_TRUE(SaveInstanceToFile(a, path).ok());
  const std::string a_bytes = ReadAll(path);

  {
    ScopedFailpoint armed(kFailpointWriteEio);
    FaultInjectionEnv env;
    ASSERT_FALSE(SaveInstanceToFile(b, path, &env).ok());
  }
  // The failed REGAL1 save never touched the committed file.
  EXPECT_EQ(ReadAll(path), a_bytes);
  auto loaded = LoadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->names(), a.names());
}

// --- Failure taxonomy ----------------------------------------------------

TEST(StorageFaultTest, TruncationAndCorruptionAreDistinguished) {
  const std::string bytes = SnapshotBytes(MakeCatalog(2));

  // A torn tail (crash) reads as truncation...
  auto torn = DecodeSnapshot(std::string_view(bytes).substr(
      0, bytes.size() - 5));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(torn.status().message().find("truncated"), std::string::npos)
      << torn.status();

  // ...while a mid-file flip (bit rot) reads as a checksum mismatch.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  auto rotted = DecodeSnapshot(flipped);
  ASSERT_FALSE(rotted.ok());
  EXPECT_EQ(rotted.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(rotted.status().message().find("checksum mismatch"),
            std::string::npos)
      << rotted.status();

  // A file that is not a snapshot at all is data loss with its own message.
  auto alien = DecodeSnapshot("definitely not a snapshot");
  ASSERT_FALSE(alien.ok());
  EXPECT_EQ(alien.status().code(), StatusCode::kDataLoss);
}

// --- Corruption fuzzers ---------------------------------------------------

// One deterministic mutation of `original`: bit flips (single and
// scattered), byte overwrites, truncations, same-length splices and
// structural chunk erase/duplicate — the byte-level damage profile of bad
// disks, torn transfers and buggy copy tools.
std::string Mutate(const std::string& original, Rng& rng) {
  std::string m = original;
  if (m.empty()) return m;
  switch (rng.Below(6)) {
    case 0:
      m[rng.Below(m.size())] ^= static_cast<char>(1 << rng.Below(8));
      break;
    case 1: {
      const int flips = 2 + static_cast<int>(rng.Below(7));
      for (int i = 0; i < flips; ++i) {
        m[rng.Below(m.size())] ^= static_cast<char>(1 << rng.Below(8));
      }
      break;
    }
    case 2:
      m[rng.Below(m.size())] = static_cast<char>(rng.Below(256));
      break;
    case 3:
      m.resize(rng.Below(m.size() + 1));
      break;
    case 4: {
      // Same-length splice: a chunk lands over another offset, as when a
      // block device writes a sector to the wrong place.
      const size_t len = 1 + rng.Below(std::min<size_t>(64, m.size()));
      const size_t src = rng.Below(m.size() - len + 1);
      const size_t dst = rng.Below(m.size() - len + 1);
      m.replace(dst, len, m, src, len);
      break;
    }
    case 5: {
      // Structural splice: erase or duplicate a chunk (length changes).
      const size_t len = 1 + rng.Below(std::min<size_t>(64, m.size()));
      const size_t at = rng.Below(m.size() - len + 1);
      if (rng.Chance(0.5)) {
        m.erase(at, len);
      } else {
        m.insert(at, m, at, len);
      }
      break;
    }
  }
  return m;
}

TEST(StorageFuzzTest, MutatedRegal2NeverLoadsSilently) {
  const std::string original = SnapshotBytes(MakeCatalog(3));
  const size_t iters = FuzzIterations(10000);
  size_t rejected = 0;
  for (size_t i = 0; i < iters; ++i) {
    Rng rng(0x5eed + i);
    const std::string mutated = Mutate(original, rng);
    auto decoded = DecodeSnapshot(mutated);
    if (mutated == original) {
      // The mutation happened to be an identity (e.g. truncate-at-end);
      // the unchanged bytes must still round-trip bit-identically.
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(SnapshotBytes(*decoded), original);
      continue;
    }
    // Every real mutation must surface as typed data loss: the framing
    // CRCs cover each section and the footer CRC covers the whole body, so
    // no flip, truncation or splice can be silently accepted.
    ASSERT_FALSE(decoded.ok())
        << "iteration " << i << " silently accepted corrupt bytes";
    ASSERT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << "iteration " << i << ": " << decoded.status();
    ++rejected;
  }
  EXPECT_GT(rejected, iters / 2);  // The identity mutations are rare.
}

TEST(StorageFuzzTest, EverySingleBitFlipIsDetected) {
  // Exhaustive, not sampled: a snapshot where *every* bit of the file has
  // been individually flipped, and every flip must read as data loss. This
  // is the strongest statement the format makes — there is no unprotected
  // byte anywhere in a REGAL2 file.
  Instance small;
  ASSERT_TRUE(
      small.AddRegionSet("w", RegionSet{Region{0, 3}, Region{5, 9}}).ok());
  const std::string bytes = SnapshotBytes(small);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] ^= static_cast<char>(1 << bit);
      auto decoded = DecodeSnapshot(flipped);
      ASSERT_FALSE(decoded.ok())
          << "flip of bit " << bit << " in byte " << byte << " was accepted";
      ASSERT_EQ(decoded.status().code(), StatusCode::kDataLoss)
          << "byte " << byte << " bit " << bit << ": " << decoded.status();
    }
  }
}

TEST(StorageFuzzTest, MutatedRegal1NeverCrashesTheLoader) {
  // REGAL1 has no checksums, so corruption that still parses loads silently
  // — that's why REGAL2 exists. What the legacy loader must still guarantee
  // is memory safety: no crash, no hang, and no allocation driven by a
  // corrupt declared count (the memory-bomb caps in storage/serialize.cc).
  std::ostringstream out;
  ASSERT_TRUE(SaveInstance(MakeCatalog(3), out).ok());
  const std::string original = out.str();
  const size_t iters = FuzzIterations(10000) / 5;
  for (size_t i = 0; i < iters; ++i) {
    Rng rng(0xbeef + i);
    std::istringstream in(Mutate(original, rng));
    auto loaded = LoadInstance(in);  // ok or error: both acceptable.
    (void)loaded;
  }
}

// --- Checksums ------------------------------------------------------------

TEST(StorageChecksumTest, MatchesKnownCrc32cVectors) {
  // RFC 3720 test vectors — these pin the polynomial and bit order, and
  // validate whichever implementation (SSE4.2 or slice-by-8) the runtime
  // dispatch selected on this machine.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
  // Incremental == one-shot across unaligned split points.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

// --- The text LZ codec ----------------------------------------------------

TEST(StorageCompressTest, RoundTripsDiverseInputs) {
  std::vector<std::string> inputs = {
      "",
      "a",
      "abc",
      "abcd",
      std::string(100000, 'z'),  // Long run: overlapping matches.
      "the cat sat on the mat and the cat sat on the hat",
  };
  // Random binary (incompressible) and structured (compressible) inputs of
  // many sizes, including ones whose final token is literals-only.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    std::string random;
    std::string structured;
    const size_t size = rng.Below(5000);
    for (size_t i = 0; i < size; ++i) {
      random.push_back(static_cast<char>(rng.Below(256)));
      structured.push_back(static_cast<char>('a' + rng.Below(4)));
    }
    inputs.push_back(random);
    inputs.push_back(structured);
  }
  for (const std::string& input : inputs) {
    const std::string compressed = LzCompress(input);
    auto decompressed = LzDecompress(compressed, input.size());
    ASSERT_TRUE(decompressed.ok())
        << decompressed.status() << " for input of " << input.size();
    EXPECT_EQ(*decompressed, input) << "input of " << input.size();
  }
}

TEST(StorageCompressTest, CompressesRealCorpusText) {
  const Instance catalog = MakeCatalog(0);
  const std::string& content = catalog.text()->content();
  const std::string compressed = LzCompress(content);
  EXPECT_LT(compressed.size(), content.size());
}

TEST(StorageCompressTest, RejectsImpossibleExpansionClaims) {
  // A crafted header cannot drive a multi-gigabyte allocation from a tiny
  // stream: the expansion bound fails first, before any reserve.
  auto bomb = LzDecompress("xy", uint64_t{1} << 40);
  ASSERT_FALSE(bomb.ok());
  EXPECT_EQ(bomb.status().code(), StatusCode::kDataLoss);
}

TEST(StorageCompressTest, MutatedStreamsNeverCrashTheDecoder) {
  const std::string original =
      LzCompress(MakeCatalog(2).text()->content());
  const uint64_t raw_size = MakeCatalog(2).text()->content().size();
  const size_t iters = FuzzIterations(10000) / 5;
  for (size_t i = 0; i < iters; ++i) {
    Rng rng(0xc0de + i);
    const std::string mutated = Mutate(original, rng);
    // Inside a snapshot the section CRC rejects these before decompression
    // ever runs; the decoder must still be memory-safe on its own — every
    // outcome is acceptable except a crash, overrun or unbounded allocation.
    auto decoded = LzDecompress(mutated, raw_size);
    if (decoded.ok()) EXPECT_EQ(decoded->size(), raw_size);
  }
}

// --- Cache interaction on reload ------------------------------------------

TEST(StorageReloadTest, ReloadedSnapshotCanNeverServeStaleCachedAnswers) {
  // The reindex-and-swap workflow: an engine answers queries (and caches
  // results) over catalog v1, then v2 is committed and reloaded in place.
  Instance v1;
  ASSERT_TRUE(v1.AddRegionSet("w", RegionSet{Region{0, 1}}).ok());
  Instance v2;
  ASSERT_TRUE(
      v2.AddRegionSet("w", RegionSet{Region{0, 1}, Region{4, 5}}).ok());

  const std::string path = TestPath("reload_epoch.regal2");
  ASSERT_TRUE(SaveSnapshotToFile(v2, path).ok());

  QueryEngine engine(std::move(v1));
  const uint64_t id_before = engine.instance().id();
  // Warm the result cache on the v1 catalog.
  for (int i = 0; i < 2; ++i) {
    auto answer = engine.Run("w");
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(answer->regions.size(), 1u);
  }
  // A view defined against v1 must not survive the swap either.
  ASSERT_TRUE(engine.DefineView("v", "w").ok());

  ASSERT_TRUE(engine.ReloadSnapshot(path).ok());

  // Fresh identity: cached (id, epoch) keys from v1 are unreachable.
  EXPECT_NE(engine.instance().id(), id_before);
  auto fresh = engine.Run("w");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(fresh->regions.size(), 2u)
      << "reload served a stale cached answer";
  auto dead_view = engine.Run("v");
  EXPECT_FALSE(dead_view.ok());
  EXPECT_EQ(dead_view.status().code(), StatusCode::kNotFound);
}

TEST(StorageReloadTest, EngineSaveAndOpenRoundTrip) {
  Instance catalog = MakeCatalog(2);
  const std::string expected = SnapshotBytes(catalog);
  QueryEngine engine(std::move(catalog));
  const std::string path = TestPath("engine_roundtrip.regal2");
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());

  auto reopened = QueryEngine::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(SnapshotBytes(reopened->instance()), expected);
  auto answer = reopened->Run("sec matching \"gamma\"");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->regions.size(), 1u);

  // A failed reload leaves the engine untouched and answering.
  ASSERT_FALSE(
      reopened->ReloadSnapshot(path + ".does-not-exist").ok());
  auto still = reopened->Run("sec");
  ASSERT_TRUE(still.ok()) << still.status();
}

}  // namespace
}  // namespace storage
}  // namespace regal
