#include <gtest/gtest.h>

#include <algorithm>

#include "core/eval.h"
#include "doc/synthetic.h"
#include "fmft/emptiness.h"
#include "fmft/model.h"
#include "fmft/reduction3cnf.h"
#include "fmft/translate.h"
#include "logic/dpll.h"
#include "util/random.h"

namespace regal {
namespace {

TEST(WordRelationTest, ProperPrefix) {
  EXPECT_TRUE(IsProperPrefix("0", "01"));
  EXPECT_TRUE(IsProperPrefix("", "0"));
  EXPECT_FALSE(IsProperPrefix("0", "0"));
  EXPECT_FALSE(IsProperPrefix("01", "0"));
  EXPECT_FALSE(IsProperPrefix("1", "01"));
}

TEST(WordRelationTest, LexBeforeIsHorizontal) {
  EXPECT_TRUE(IsLexBefore("0", "10"));
  EXPECT_TRUE(IsLexBefore("00", "010"));
  EXPECT_FALSE(IsLexBefore("0", "01"));  // Prefix pairs are not <-related.
  EXPECT_FALSE(IsLexBefore("01", "0"));
  EXPECT_FALSE(IsLexBefore("10", "0"));
  EXPECT_FALSE(IsLexBefore("0", "0"));
}

Instance DocInstance() {
  Instance instance;
  EXPECT_TRUE(instance.AddRegionSet("Doc", RegionSet{Region{0, 11}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Sec", RegionSet{Region{1, 4}, Region{6, 10}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Par", RegionSet{Region{2, 3}, Region{7, 8}}).ok());
  return instance;
}

TEST(ModelTest, RepresentsInstanceRelations) {
  Instance instance = DocInstance();
  std::vector<Region> region_of;
  FmftModel model = ModelFromInstance(instance, {}, &region_of);
  ASSERT_EQ(model.NumWords(), 5u);
  ASSERT_TRUE(model.ValidateRepresentation().ok());
  // Definition 3.2 conditions, checked pairwise.
  for (size_t u = 0; u < model.NumWords(); ++u) {
    for (size_t v = 0; v < model.NumWords(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(model.ProperPrefix(u, v),
                StrictlyIncludes(region_of[u], region_of[v]))
          << model.Word(u) << " vs " << model.Word(v);
      EXPECT_EQ(model.LexBefore(u, v), Precedes(region_of[u], region_of[v]))
          << model.Word(u) << " vs " << model.Word(v);
    }
  }
}

TEST(ModelTest, PatternsBecomePredicates) {
  Instance instance = DocInstance();
  Pattern p = *Pattern::Parse("x");
  instance.SetSyntheticPattern(p, RegionSet{Region{2, 3}});
  std::vector<Region> region_of;
  FmftModel model = ModelFromInstance(instance, {p}, &region_of);
  size_t pattern_pred = model.predicate_names().size() - 1;
  int marked = 0;
  for (size_t w = 0; w < model.NumWords(); ++w) {
    if (model.InPredicate(w, pattern_pred)) {
      ++marked;
      EXPECT_EQ(region_of[w], (Region{2, 3}));
    }
  }
  EXPECT_EQ(marked, 1);
}

TEST(ModelTest, RoundTripPreservesSemantics) {
  Rng rng(55);
  Pattern p = *Pattern::Parse("w");
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 20;
    Instance instance = RandomLaminarInstance(rng, options);
    AssignRandomPatterns(&instance, rng, {p}, 0.4);
    FmftModel model = ModelFromInstance(instance, {p});
    auto back = InstanceFromModel(model);
    ASSERT_TRUE(back.ok()) << back.status();
    // Region offsets differ, but every algebra query must agree.
    ExprPtr queries[] = {
        Expr::Including(Expr::Name("R0"), Expr::Name("R1")),
        Expr::Precedes(Expr::Name("R1"), Expr::Name("R2")),
        Expr::Select(p, Expr::Name("R0")),
        Expr::Difference(Expr::Name("R2"),
                         Expr::Included(Expr::Name("R2"), Expr::Name("R0"))),
    };
    for (const ExprPtr& e : queries) {
      auto r1 = Evaluate(instance, e);
      auto r2 = Evaluate(*back, e);
      ASSERT_TRUE(r1.ok() && r2.ok());
      EXPECT_EQ(r1->size(), r2->size()) << e->ToString();
    }
  }
}

TEST(ModelTest, InvalidRepresentationRejected) {
  FmftModel model({"A", "B"}, 2);
  ASSERT_TRUE(model.AddWord("0", {0, 1}).ok());  // In two region predicates.
  EXPECT_FALSE(model.ValidateRepresentation().ok());
  EXPECT_FALSE(InstanceFromModel(model).ok());
}

TEST(ModelTest, DuplicateAndNonBinaryWordsRejected) {
  FmftModel model({"A"}, 1);
  ASSERT_TRUE(model.AddWord("01", {0}).ok());
  EXPECT_FALSE(model.AddWord("01", {0}).ok());
  EXPECT_FALSE(model.AddWord("02", {0}).ok());
}

TEST(FormulaTest, ToStringShape) {
  FormulaPtr f = RestrictedFormula::Exists(FormulaKind::kExistsXsupY,
                                           RestrictedFormula::Pred("A"),
                                           RestrictedFormula::Pred("B"));
  EXPECT_EQ(f->ToString(), "(E y0)(Q_A(x) ^ Q_B(y0) ^ x sup y0)");
  EXPECT_EQ(f->Size(), 1);
}

// Proposition 3.3: the algebra-to-formula translation preserves semantics
// through the Definition 3.2 representation.
class TranslationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TranslationTest, AlgebraToFormulaAgrees) {
  Rng rng(GetParam());
  Pattern p = *Pattern::Parse("pat");
  std::vector<ExprPtr> exprs = {
      Expr::Including(Expr::Name("R0"), Expr::Name("R1")),
      Expr::Included(Expr::Name("R2"),
                     Expr::Union(Expr::Name("R0"), Expr::Name("R1"))),
      Expr::Precedes(Expr::Name("R0"), Expr::Name("R0")),
      Expr::Follows(Expr::Select(p, Expr::Name("R1")), Expr::Name("R2")),
      Expr::Difference(
          Expr::Name("R0"),
          Expr::Including(Expr::Name("R0"), Expr::Name("R0"))),
      Expr::Chain(OpKind::kIncluded, {"R2", "R1", "R0"}),
  };
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 18;
    Instance instance = RandomLaminarInstance(rng, options);
    AssignRandomPatterns(&instance, rng, {p}, 0.3);
    std::vector<Region> region_of;
    FmftModel model = ModelFromInstance(instance, {p}, &region_of);
    for (const ExprPtr& e : exprs) {
      auto formula = AlgebraToFormula(e);
      ASSERT_TRUE(formula.ok()) << formula.status();
      auto algebra_result = Evaluate(instance, e);
      ASSERT_TRUE(algebra_result.ok());
      std::vector<size_t> formula_result = (*formula)->Evaluate(model);
      // region(w) ∈ e(I) iff w ∈ φ(t).
      std::vector<Region> from_formula;
      for (size_t w : formula_result) from_formula.push_back(region_of[w]);
      EXPECT_EQ(RegionSet::FromUnsorted(std::move(from_formula)),
                *algebra_result)
          << e->ToString();
    }
  }
}

TEST_P(TranslationTest, RoundTripThroughFormula) {
  Rng rng(GetParam() * 3 + 1);
  std::vector<std::string> names{"R0", "R1", "R2"};
  std::vector<ExprPtr> exprs = {
      Expr::Including(Expr::Name("R0"), Expr::Name("R1")),
      Expr::Chain(OpKind::kIncluding, {"R0", "R1", "R2"}),
      Expr::Intersect(Expr::Precedes(Expr::Name("R0"), Expr::Name("R1")),
                      Expr::Follows(Expr::Name("R0"), Expr::Name("R2"))),
  };
  for (const ExprPtr& e : exprs) {
    auto formula = AlgebraToFormula(e);
    ASSERT_TRUE(formula.ok());
    auto back = FormulaToAlgebra(*formula, names);
    ASSERT_TRUE(back.ok()) << back.status();
    // Semantically equal on random instances.
    for (int trial = 0; trial < 10; ++trial) {
      RandomInstanceOptions options;
      options.num_regions = 16;
      Instance instance = RandomLaminarInstance(rng, options);
      auto r1 = Evaluate(instance, e);
      auto r2 = Evaluate(instance, *back);
      ASSERT_TRUE(r1.ok() && r2.ok());
      EXPECT_EQ(*r1, *r2) << e->ToString() << " vs " << (*back)->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationTest, ::testing::Values(1, 2, 3));

TEST(TranslationTest, ExtendedOperatorsRejected) {
  ExprPtr e = Expr::DirectIncluding(Expr::Name("A"), Expr::Name("B"));
  EXPECT_FALSE(AlgebraToFormula(e).ok());
  EXPECT_FALSE(
      AlgebraToFormula(Expr::BothIncluded(Expr::Name("A"), Expr::Name("B"),
                                          Expr::Name("C")))
          .ok());
}

TEST(EmptinessTest, SatisfiableExpressionHasWitness) {
  ExprPtr e = Expr::Including(Expr::Name("A"), Expr::Name("B"));
  auto report = CheckEmptiness(e);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->witness_found);
  auto value = Evaluate(*report->witness, e);
  ASSERT_TRUE(value.ok());
  EXPECT_FALSE(value->empty());
}

TEST(EmptinessTest, ContradictionIsEmpty) {
  // A regions both preceding and being included in the same B set cannot
  // coexist for the *same* witness... use a directly contradictory shape:
  // (A - A).
  ExprPtr e = Expr::Difference(Expr::Name("A"), Expr::Name("A"));
  auto report = CheckEmptiness(e);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->witness_found);
  EXPECT_TRUE(report->exhaustive_within_bounds);
}

TEST(EmptinessTest, SelfInclusionNeedsNesting) {
  // A ⊂ A is satisfiable only with two nested A regions; with max_depth 1
  // the exhaustive phase cannot find it but the random phase can.
  ExprPtr e = Expr::Included(Expr::Name("A"), Expr::Name("A"));
  EmptinessOptions options;
  options.max_nodes = 4;
  options.max_depth = 3;
  auto report = CheckEmptiness(e, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->witness_found);
}

TEST(EmptinessTest, RigConstrainedEmptiness) {
  // Theorem 3.6: w.r.t. a RIG where B never nests inside A, the query
  // B ⊂ A is empty, although it is satisfiable in general.
  ExprPtr e = Expr::Included(Expr::Name("B"), Expr::Name("A"));
  Digraph rig;
  rig.AddNode("A");
  rig.AddNode("B");
  rig.AddEdge("B", "A");  // Only A inside B.
  auto constrained = CheckEmptiness(e, {}, &rig);
  ASSERT_TRUE(constrained.ok());
  EXPECT_FALSE(constrained->witness_found);
  auto unconstrained = CheckEmptiness(e);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_TRUE(unconstrained->witness_found);
}

TEST(EmptinessTest, EquivalenceOfRewrittenChain) {
  // The Section 2.2 pair: equivalent w.r.t. the RIG, inequivalent in
  // general.
  Digraph rig;
  rig.AddEdge("Program", "Prog_body");
  rig.AddEdge("Prog_body", "Proc");
  rig.AddEdge("Proc", "Proc_header");
  rig.AddEdge("Proc_header", "Name");
  rig.AddEdge("Prog_body", "Var");
  ExprPtr e1 = Expr::Chain(OpKind::kIncluded,
                           {"Name", "Proc_header", "Proc", "Program"});
  ExprPtr e2 =
      Expr::Chain(OpKind::kIncluded, {"Name", "Proc_header", "Program"});
  auto constrained = CheckEquivalence(e1, e2, {}, &rig);
  ASSERT_TRUE(constrained.ok());
  EXPECT_FALSE(constrained->witness_found) << "should be equivalent w.r.t. RIG";
  auto unconstrained = CheckEquivalence(e1, e2);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_TRUE(unconstrained->witness_found)
      << "should differ on some unconstrained instance";
}

TEST(Reduction3CnfTest, ExpressionSizeIsPolynomial) {
  Rng rng(6);
  Cnf cnf = RandomKCnf(rng, 10, 40, 3);
  CnfEmptinessReduction reduction = CnfToEmptinessExpr(cnf);
  EXPECT_EQ(reduction.names.size(), 21u);
  // |e| is linear in n + m (each variable contributes a constant number of
  // operator nodes, each clause at most 6).
  EXPECT_LE(reduction.expr->NumOps(), 8 * 10 + 8 * 40);
}

TEST(Reduction3CnfTest, AssignmentWitnessMatchesSatisfaction) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Cnf cnf = RandomKCnf(rng, 4, 8, 3);
    CnfEmptinessReduction reduction = CnfToEmptinessExpr(cnf);
    for (uint64_t mask = 0; mask < 16; ++mask) {
      std::vector<bool> assignment(5, false);
      for (int v = 1; v <= 4; ++v) {
        assignment[static_cast<size_t>(v)] = (mask >> (v - 1)) & 1;
      }
      Instance instance = AssignmentToInstance(cnf, assignment);
      auto result = Evaluate(instance, reduction.expr);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(!result->empty(), cnf.IsSatisfiedBy(assignment))
          << cnf.ToString();
    }
  }
}

TEST(Reduction3CnfTest, EmptinessAgreesWithDpll) {
  Rng rng(8);
  for (int trial = 0; trial < 25; ++trial) {
    int vars = static_cast<int>(2 + rng.Below(5));
    Cnf cnf = RandomKCnf(rng, vars, static_cast<int>(2 + rng.Below(16)), 3);
    CnfEmptinessReduction reduction = CnfToEmptinessExpr(cnf);
    bool empty = EmptinessByAssignmentSearch(cnf, reduction.expr);
    EXPECT_EQ(!empty, DpllSolve(cnf).has_value()) << cnf.ToString();
  }
}

TEST(Reduction3CnfTest, GenericSearchFindsSatWitness) {
  // A tiny satisfiable formula: the generic bounded-model search should
  // find a witness without assignment-shaped hints.
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1, 2}, {-1, 2}};
  CnfEmptinessReduction reduction = CnfToEmptinessExpr(cnf);
  EmptinessOptions options;
  options.max_nodes = 5;
  options.max_depth = 2;
  auto report = CheckEmptiness(reduction.expr, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->witness_found);
}

}  // namespace
}  // namespace regal
