#include <gtest/gtest.h>

#include <algorithm>

#include "doc/srccode.h"
#include "doc/synthetic.h"
#include "graph/algorithms.h"
#include "rig/grammar.h"
#include "rig/minimal_set.h"
#include "rig/rig.h"
#include "util/random.h"

namespace regal {
namespace {

Grammar SourceGrammar() {
  // The Figure 1 structure as a grammar.
  Grammar g;
  g.AddRule("Program", {"Prog_header", "Prog_body"});
  g.AddRule("Prog_header", {"program", "Name"});
  g.AddRule("Prog_body", {"Var", "Proc", "stmts"});
  g.AddRule("Proc", {"Proc_header", "Proc_body"});
  g.AddRule("Proc_header", {"proc", "Name"});
  g.AddRule("Proc_body", {"Var", "Proc", "stmts"});
  g.AddRule("Var", {"var", "ident"});
  g.AddRule("Name", {"ident"});
  return g;
}

TEST(GrammarTest, DeriveRigMatchesFigure1) {
  Digraph derived = SourceGrammar().DeriveRig();
  Digraph figure1 = SourceCodeRig();
  // Every Figure 1 edge is derived and vice versa.
  for (const Digraph* a : {&derived, &figure1}) {
    const Digraph* b = (a == &derived) ? &figure1 : &derived;
    for (Digraph::NodeId v = 0; v < a->NumNodes(); ++v) {
      for (Digraph::NodeId w : a->OutNeighbors(v)) {
        auto bv = b->FindNode(a->Label(v));
        auto bw = b->FindNode(a->Label(w));
        ASSERT_TRUE(bv.ok() && bw.ok()) << a->Label(v) << "->" << a->Label(w);
        EXPECT_TRUE(b->HasEdge(*bv, *bw))
            << a->Label(v) << " -> " << a->Label(w);
      }
    }
  }
}

TEST(GrammarTest, DeriveRogAdjacency) {
  Grammar g;
  g.AddRule("Doc", {"Head", "Body"});
  g.AddRule("Head", {"title"});
  g.AddRule("Body", {"Par", "Par"});
  g.AddRule("Par", {"words"});
  Digraph rog = g.DeriveRog();
  auto edge = [&](const char* x, const char* y) {
    return rog.HasEdge(*rog.FindNode(x), *rog.FindNode(y));
  };
  EXPECT_TRUE(edge("Head", "Body"));  // Adjacent in Doc's rule.
  EXPECT_TRUE(edge("Head", "Par"));   // Head precedes Body's first Par.
  EXPECT_TRUE(edge("Par", "Par"));    // Two Pars in Body.
  EXPECT_FALSE(edge("Doc", "Head"));
  EXPECT_FALSE(edge("Body", "Head"));
}

TEST(GrammarTest, RogClosesThroughLastDescendants) {
  Grammar g;
  g.AddRule("S", {"A", "B"});
  g.AddRule("A", {"X", "Y"});  // Y ends A.
  g.AddRule("B", {"Z"});       // Z starts B.
  g.AddRule("X", {"t"});
  g.AddRule("Y", {"t"});
  g.AddRule("Z", {"t"});
  Digraph rog = g.DeriveRog();
  auto edge = [&](const char* x, const char* y) {
    return rog.HasEdge(*rog.FindNode(x), *rog.FindNode(y));
  };
  EXPECT_TRUE(edge("A", "B"));
  EXPECT_TRUE(edge("Y", "B"));
  EXPECT_TRUE(edge("Y", "Z"));
  EXPECT_TRUE(edge("A", "Z"));
  EXPECT_FALSE(edge("X", "B"));  // X is not last in A.
}

TEST(RigTest, InstanceSatisfiesOwnDerivedRig) {
  Rng rng(41);
  RandomInstanceOptions options;
  options.num_regions = 50;
  Instance instance = RandomLaminarInstance(rng, options);
  EXPECT_TRUE(InstanceSatisfiesRig(instance, instance.DeriveRig()).ok());
  EXPECT_TRUE(InstanceSatisfiesRog(instance, instance.DeriveRog()).ok());
}

TEST(RigTest, ViolationDetected) {
  Digraph rig;
  rig.AddEdge("Doc", "Par");
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("Doc", RegionSet{Region{0, 9}}).ok());
  ASSERT_TRUE(instance.AddRegionSet("Par", RegionSet{Region{1, 8}}).ok());
  EXPECT_TRUE(InstanceSatisfiesRig(instance, rig).ok());
  // Par directly including Doc is not allowed.
  Instance bad;
  ASSERT_TRUE(bad.AddRegionSet("Doc", RegionSet{Region{1, 8}}).ok());
  ASSERT_TRUE(bad.AddRegionSet("Par", RegionSet{Region{0, 9}}).ok());
  EXPECT_FALSE(InstanceSatisfiesRig(bad, rig).ok());
}

TEST(RigTest, UnknownNameRejected) {
  Digraph rig;
  rig.AddNode("Doc");
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("Mystery", RegionSet{Region{0, 1}}).ok());
  EXPECT_FALSE(InstanceSatisfiesRig(instance, rig).ok());
}

TEST(RigTest, NestingBound) {
  Digraph rig = SourceCodeRig();
  // Figure 1's RIG has the Proc -> Proc_body -> Proc cycle: unbounded.
  EXPECT_FALSE(RigNestingBound(rig).ok());
  Digraph acyclic;
  acyclic.AddEdge("Doc", "Sec");
  acyclic.AddEdge("Sec", "Par");
  auto bound = RigNestingBound(acyclic);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 3);
}

TEST(RigTest, NamesNestableInside) {
  Digraph rig = SourceCodeRig();
  auto inside_proc = NamesNestableInside(rig, "Proc");
  EXPECT_NE(std::find(inside_proc.begin(), inside_proc.end(), "Var"),
            inside_proc.end());
  EXPECT_NE(std::find(inside_proc.begin(), inside_proc.end(), "Proc"),
            inside_proc.end());  // Self-nesting via Proc_body.
  EXPECT_EQ(std::find(inside_proc.begin(), inside_proc.end(), "Program"),
            inside_proc.end());
  auto inside_header = NamesNestableInside(rig, "Proc_header");
  EXPECT_EQ(inside_header.size(), 1u);  // Only Name.
  EXPECT_EQ(inside_header[0], "Name");
}

TEST(MinimalSetTest, ValidityChecker) {
  Digraph rig;
  rig.AddEdge("A", "M");
  rig.AddEdge("M", "B");
  rig.AddEdge("A", "N");
  rig.AddEdge("N", "B");
  EXPECT_TRUE(IsValidSeparatorSet(rig, {"A", "B"}, {"M", "N"}));
  EXPECT_FALSE(IsValidSeparatorSet(rig, {"A", "B"}, {"M"}));
  EXPECT_FALSE(IsValidSeparatorSet(rig, {"A", "B"}, {}));
}

TEST(MinimalSetTest, DirectEdgeIsExempt) {
  Digraph rig;
  rig.AddEdge("A", "B");  // Direct inclusion needs no blocking.
  EXPECT_TRUE(IsValidSeparatorSet(rig, {"A", "B"}, {}));
  rig.AddEdge("A", "M");
  rig.AddEdge("M", "B");
  EXPECT_FALSE(IsValidSeparatorSet(rig, {"A", "B"}, {}));
  EXPECT_TRUE(IsValidSeparatorSet(rig, {"A", "B"}, {"M"}));
}

TEST(MinimalSetTest, ExactOnDiamond) {
  Digraph rig;
  rig.AddEdge("A", "M");
  rig.AddEdge("M", "B");
  rig.AddEdge("A", "N");
  rig.AddEdge("N", "B");
  auto result = MinimalSetExact(rig, {"A", "B"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(MinimalSetTest, SingleOpMatchesExact) {
  Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 7;
    Digraph rig;
    for (int i = 0; i < n; ++i) rig.AddNode("n" + std::to_string(i));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && rng.Chance(0.3)) {
          rig.AddEdge(static_cast<Digraph::NodeId>(i),
                      static_cast<Digraph::NodeId>(j));
        }
      }
    }
    auto exact = MinimalSetExact(rig, {"n0", "n6"});
    auto cut = MinimalSetSingleOp(rig, "n0", "n6");
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(cut.ok());
    EXPECT_EQ(exact->size(), cut->size());
    EXPECT_TRUE(IsValidSeparatorSet(rig, {"n0", "n6"}, *cut));
  }
}

TEST(MinimalSetTest, SelfPair) {
  Digraph rig;
  rig.AddEdge("A", "M");
  rig.AddEdge("M", "A");
  auto cut = MinimalSetSingleOp(rig, "A", "A");
  ASSERT_TRUE(cut.ok());
  ASSERT_EQ(cut->size(), 1u);
  EXPECT_EQ((*cut)[0], "M");
  EXPECT_TRUE(IsValidSeparatorSet(rig, {"A", "A"}, *cut));
  EXPECT_FALSE(IsValidSeparatorSet(rig, {"A", "A"}, {}));
}

TEST(MinimalSetTest, PairwiseCutsAreValid) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 8;
    Digraph rig;
    for (int i = 0; i < n; ++i) rig.AddNode("n" + std::to_string(i));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && rng.Chance(0.25)) {
          rig.AddEdge(static_cast<Digraph::NodeId>(i),
                      static_cast<Digraph::NodeId>(j));
        }
      }
    }
    std::vector<std::string> chain{"n0", "n3", "n7"};
    auto approx = MinimalSetPairwiseCuts(rig, chain);
    auto exact = MinimalSetExact(rig, chain);
    ASSERT_TRUE(approx.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_TRUE(IsValidSeparatorSet(rig, chain, *approx));
    EXPECT_LE(exact->size(), approx->size());
  }
}

TEST(MinimalSetTest, VertexCoverReductionAgrees) {
  Rng rng(14);
  for (int trial = 0; trial < 15; ++trial) {
    int vertices = static_cast<int>(3 + rng.Below(4));
    std::vector<std::pair<int, int>> edges;
    for (int u = 0; u < vertices; ++u) {
      for (int w = u + 1; w < vertices; ++w) {
        if (rng.Chance(0.5)) edges.emplace_back(u, w);
      }
    }
    if (edges.empty()) continue;
    auto [rig, chain] = VertexCoverToMinimalSet(vertices, edges);
    auto minimal = MinimalSetExact(rig, chain);
    ASSERT_TRUE(minimal.ok());
    EXPECT_EQ(static_cast<int>(minimal->size()),
              MinVertexCoverSize(vertices, edges))
        << "trial " << trial;
  }
}

TEST(MinimalSetTest, TrivialChainErrors) {
  Digraph rig;
  rig.AddNode("A");
  EXPECT_FALSE(MinimalSetExact(rig, {"A"}).ok());
  EXPECT_FALSE(MinimalSetPairwiseCuts(rig, {"A"}).ok());
}

}  // namespace
}  // namespace regal
