#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "index/suffix_array.h"
#include "index/word_index.h"
#include "util/random.h"

namespace regal {
namespace {

std::vector<int32_t> NaiveOccurrences(const std::string& text,
                                      const std::string& pattern) {
  std::vector<int32_t> out;
  if (pattern.empty()) return out;
  size_t pos = 0;
  while ((pos = text.find(pattern, pos)) != std::string::npos) {
    out.push_back(static_cast<int32_t>(pos));
    ++pos;
  }
  return out;
}

TEST(SuffixArrayTest, Banana) {
  SuffixArray sa("banana");
  EXPECT_EQ(sa.sa().size(), 6u);
  EXPECT_EQ(sa.Count("ana"), 2);
  EXPECT_EQ(sa.Occurrences("ana"), (std::vector<int32_t>{1, 3}));
  EXPECT_EQ(sa.Count("nan"), 1);
  EXPECT_EQ(sa.Count("xyz"), 0);
}

TEST(SuffixArrayTest, SortedProperty) {
  SuffixArray sa("mississippi");
  const std::string& text = sa.text();
  for (size_t i = 1; i < sa.sa().size(); ++i) {
    EXPECT_LT(text.substr(static_cast<size_t>(sa.sa()[i - 1])),
              text.substr(static_cast<size_t>(sa.sa()[i])));
  }
}

TEST(SuffixArrayTest, LcpMatchesDefinition) {
  SuffixArray sa("abracadabra");
  const std::string& text = sa.text();
  for (size_t i = 1; i < sa.sa().size(); ++i) {
    std::string a = text.substr(static_cast<size_t>(sa.sa()[i - 1]));
    std::string b = text.substr(static_cast<size_t>(sa.sa()[i]));
    size_t l = 0;
    while (l < a.size() && l < b.size() && a[l] == b[l]) ++l;
    EXPECT_EQ(sa.lcp()[i], static_cast<int32_t>(l)) << "slot " << i;
  }
}

TEST(SuffixArrayTest, EmptyText) {
  SuffixArray sa("");
  EXPECT_TRUE(sa.sa().empty());
  EXPECT_EQ(sa.Count("a"), 0);
}

TEST(SuffixArrayTest, RandomTextsMatchNaiveSearch) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::string text;
    int len = static_cast<int>(20 + rng.Below(200));
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>('a' + rng.Below(3));
    }
    SuffixArray sa(text);
    for (int q = 0; q < 20; ++q) {
      std::string pattern;
      int plen = static_cast<int>(1 + rng.Below(4));
      for (int i = 0; i < plen; ++i) {
        pattern += static_cast<char>('a' + rng.Below(3));
      }
      EXPECT_EQ(sa.Occurrences(pattern), NaiveOccurrences(text, pattern))
          << "text=" << text << " pattern=" << pattern;
    }
  }
}

class WordIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    text_ = std::make_unique<Text>(
        "the quick brown fox jumps over the lazy dog; "
        "the Quick fox_trot quip equip Quixote");
    sa_index_ = std::make_unique<SuffixArrayWordIndex>(text_.get());
    inv_index_ = std::make_unique<InvertedWordIndex>(text_.get());
  }

  std::unique_ptr<Text> text_;
  std::unique_ptr<SuffixArrayWordIndex> sa_index_;
  std::unique_ptr<InvertedWordIndex> inv_index_;
};

TEST_F(WordIndexTest, ExactWord) {
  auto p = *Pattern::Parse("fox");
  auto matches = sa_index_->Matches(p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(TokenText(text_->content(), matches[0]), "fox");
}

TEST_F(WordIndexTest, PrefixWord) {
  auto p = *Pattern::Parse("qui*");
  auto matches = sa_index_->Matches(p);
  // quick, quip (case-sensitive: Quick and Quixote excluded).
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(WordIndexTest, CaseInsensitivePrefix) {
  auto p = *Pattern::Parse("qui*", /*case_insensitive=*/true);
  EXPECT_EQ(sa_index_->Matches(p).size(), 4u);
}

TEST_F(WordIndexTest, InfixPattern) {
  auto p = *Pattern::Parse("*ui*");
  // quick, Quick(no: case-sensitive ui present: Q-u-i yes 'ui' at 1), quip,
  // equip, Quixote: all contain "ui".
  EXPECT_EQ(sa_index_->Matches(p).size(), 5u);
}

TEST_F(WordIndexTest, ImplementationsAgree) {
  Rng rng(17);
  const char* specs[] = {"the", "qui*", "*ip", "*ui*", "q???k",
                         "fox_trot", "dog", "zebra", "f?x"};
  for (const char* spec : specs) {
    for (bool ci : {false, true}) {
      auto p = *Pattern::Parse(spec, ci);
      auto a = sa_index_->Matches(p);
      auto b = inv_index_->Matches(p);
      EXPECT_EQ(a.size(), b.size()) << spec << " ci=" << ci;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << spec << " ci=" << ci;
    }
  }
}

TEST_F(WordIndexTest, ContainsRespectsRange) {
  auto p = *Pattern::Parse("fox");
  // First "fox" token is at offsets 16..18.
  EXPECT_TRUE(sa_index_->Contains(0, 25, p));
  EXPECT_FALSE(sa_index_->Contains(0, 15, p));
  EXPECT_FALSE(sa_index_->Contains(17, 30, p));  // Token only partially inside.
}

TEST_F(WordIndexTest, TokenCountsAgree) {
  EXPECT_EQ(sa_index_->NumTokens(), inv_index_->NumTokens());
  EXPECT_GT(inv_index_->VocabularySize(), 0);
  EXPECT_LE(inv_index_->VocabularySize(), inv_index_->NumTokens());
}

TEST(WordIndexRandomTest, ImplementationsAgreeOnRandomText) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::string content;
    int words = static_cast<int>(30 + rng.Below(100));
    for (int i = 0; i < words; ++i) {
      int len = static_cast<int>(1 + rng.Below(5));
      for (int j = 0; j < len; ++j) {
        content += static_cast<char>('a' + rng.Below(4));
      }
      content += ' ';
    }
    Text text(content);
    SuffixArrayWordIndex sa(&text);
    InvertedWordIndex inv(&text);
    for (const char* spec : {"a*", "*b", "*ab*", "ab", "a?c", "????"}) {
      auto p = *Pattern::Parse(spec);
      auto ma = sa.Matches(p);
      auto mb = inv.Matches(p);
      ASSERT_EQ(ma.size(), mb.size()) << spec << " text=" << content;
      EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()));
    }
  }
}

}  // namespace
}  // namespace regal
