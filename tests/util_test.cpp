#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"
#include "util/rmq.h"
#include "util/status.h"
#include "util/stringutil.h"

namespace regal {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(StatusTest, GovernanceFactories) {
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "CANCELLED: stop");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  REGAL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = DoublePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = DoublePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, StatusOnRvalue) {
  EXPECT_EQ(DoublePositive(-5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(DoublePositive(5).status().ok());
}

TEST(ResultTest, ValueOrDieReturnsValue) {
  Result<int> r = ParsePositive(7);
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_EQ(ParsePositive(9).ValueOrDie(), 9);  // Rvalue overload.
}

// Error access must abort with the carried code and message on stderr —
// not an opaque std::bad_variant_access.
TEST(ResultDeathTest, ValueOnErrorAbortsWithStatus) {
  Result<int> r = ParsePositive(-1);
  EXPECT_DEATH(r.value(), "INVALID_ARGUMENT: not positive");
}

TEST(ResultDeathTest, ValueOrDieOnErrorAbortsWithStatus) {
  EXPECT_DEATH(ParsePositive(0).ValueOrDie(),
               "Result<T> accessed without a value");
}

TEST(ResultDeathTest, DerefOnErrorAbortsWithStatus) {
  Result<std::vector<int>> r = Status::NotFound("no rows");
  EXPECT_DEATH(r->size(), "NOT_FOUND: no rows");
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(13), 13u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(SparseTableTest, MinMatchesBruteForce) {
  Rng rng(3);
  std::vector<int> values;
  for (int i = 0; i < 200; ++i) values.push_back(static_cast<int>(rng.Below(1000)));
  SparseTable<int> table(values);
  for (int trial = 0; trial < 500; ++trial) {
    size_t lo = rng.Below(values.size());
    size_t hi = lo + 1 + rng.Below(values.size() - lo);
    int expected = *std::min_element(values.begin() + static_cast<long>(lo),
                                     values.begin() + static_cast<long>(hi));
    EXPECT_EQ(table.Query(lo, hi), expected);
  }
}

TEST(SparseTableTest, MaxMatchesBruteForce) {
  Rng rng(4);
  std::vector<int> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<int>(rng.Below(50)));
  SparseTable<int, std::greater<int>> table(values);
  for (int trial = 0; trial < 300; ++trial) {
    size_t lo = rng.Below(values.size());
    size_t hi = lo + 1 + rng.Below(values.size() - lo);
    int expected = *std::max_element(values.begin() + static_cast<long>(lo),
                                     values.begin() + static_cast<long>(hi));
    EXPECT_EQ(table.Query(lo, hi), expected);
  }
}

TEST(SparseTableTest, SingleElement) {
  SparseTable<int> table(std::vector<int>{5});
  EXPECT_EQ(table.Query(0, 1), 5);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SparseTableTest, EmptyHasZeroSize) {
  SparseTable<int> table;
  EXPECT_EQ(table.size(), 0u);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC_1"), "abc_1");
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "el"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
}

TEST(StringUtilTest, StripAscii) {
  EXPECT_EQ(StripAscii("  x \t\n"), "x");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii(" \t "), "");
}

}  // namespace
}  // namespace regal
