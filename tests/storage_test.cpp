#include <gtest/gtest.h>

#include <sstream>

#include "core/eval.h"
#include "doc/sgml.h"
#include "doc/synthetic.h"
#include "storage/serialize.h"

namespace regal {
namespace {

TEST(StorageTest, SyntheticRoundTrip) {
  Instance instance = MakeFigure3Instance(2);
  Pattern p = *Pattern::Parse("q*");
  instance.SetSyntheticPattern(
      p, RegionSet{(**instance.Get("C"))[0], (**instance.Get("A"))[1]});

  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(instance, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->names(), instance.names());
  for (const std::string& name : instance.names()) {
    EXPECT_EQ(**loaded->Get(name), **instance.Get(name)) << name;
  }
  // Synthetic W survives.
  RegionSet c = **instance.Get("C");
  EXPECT_EQ(loaded->Select(c, p), instance.Select(c, p));
}

TEST(StorageTest, TextBackedRoundTrip) {
  auto original = ParseSgml("<doc><sec>alpha beta</sec><sec>gamma</sec></doc>");
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*original, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->text(), nullptr);
  EXPECT_EQ(loaded->text()->content(), original->text()->content());
  // The rebuilt word index answers selections identically.
  Pattern p = *Pattern::Parse("gamma");
  ExprPtr q = Expr::Select(p, Expr::Name("sec"));
  auto before = Evaluate(*original, q);
  auto after = Evaluate(*loaded, q);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
  EXPECT_EQ(before->size(), 1u);
}

TEST(StorageTest, FileRoundTrip) {
  Instance instance = MakeFigure2Instance(5);
  std::string path = testing::TempDir() + "/regal_storage_test.regal";
  ASSERT_TRUE(SaveInstanceToFile(instance, path).ok());
  auto loaded = LoadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRegions(), instance.NumRegions());
  EXPECT_FALSE(LoadInstanceFromFile(path + ".missing").ok());
}

TEST(StorageTest, MalformedInputs) {
  auto expect_bad = [](const std::string& payload) {
    std::stringstream in(payload);
    EXPECT_FALSE(LoadInstance(in).ok()) << payload;
  };
  expect_bad("");
  expect_bad("WRONG\nend\n");
  expect_bad("REGAL1\nname A 2\n0 1\n");          // Truncated regions.
  expect_bad("REGAL1\nname A 1\n5 2\nend\n");      // left > right.
  expect_bad("REGAL1\nname A 0\n");                // Missing end.
  expect_bad("REGAL1\nbogus X 0\nend\n");          // Unknown record.
  expect_bad("REGAL1\nname A 0\nname A 0\nend\n"); // Duplicate name.
  expect_bad("REGAL1\ntext 100\nshort\nend\n");    // Truncated text.
  expect_bad("REGAL1\npattern nokey 0\nend\n");    // Bad pattern key.
}

TEST(StorageTest, WhitespaceNameRejectedOnSave) {
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("bad name", RegionSet{Region{0, 1}}).ok());
  std::stringstream buffer;
  EXPECT_FALSE(SaveInstance(instance, buffer).ok());
}

}  // namespace
}  // namespace regal
