#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/eval.h"
#include "doc/sgml.h"
#include "doc/synthetic.h"
#include "index/word_index.h"
#include "query/parser.h"
#include "storage/serialize.h"
#include "storage/snapshot.h"
#include "text/text.h"
#include "util/random.h"

namespace regal {
namespace {

TEST(StorageTest, SyntheticRoundTrip) {
  Instance instance = MakeFigure3Instance(2);
  Pattern p = *Pattern::Parse("q*");
  instance.SetSyntheticPattern(
      p, RegionSet{(**instance.Get("C"))[0], (**instance.Get("A"))[1]});

  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(instance, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->names(), instance.names());
  for (const std::string& name : instance.names()) {
    EXPECT_EQ(**loaded->Get(name), **instance.Get(name)) << name;
  }
  // Synthetic W survives.
  RegionSet c = **instance.Get("C");
  EXPECT_EQ(loaded->Select(c, p), instance.Select(c, p));
}

TEST(StorageTest, TextBackedRoundTrip) {
  auto original = ParseSgml("<doc><sec>alpha beta</sec><sec>gamma</sec></doc>");
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*original, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->text(), nullptr);
  EXPECT_EQ(loaded->text()->content(), original->text()->content());
  // The rebuilt word index answers selections identically.
  Pattern p = *Pattern::Parse("gamma");
  ExprPtr q = Expr::Select(p, Expr::Name("sec"));
  auto before = Evaluate(*original, q);
  auto after = Evaluate(*loaded, q);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
  EXPECT_EQ(before->size(), 1u);
}

TEST(StorageTest, FileRoundTrip) {
  Instance instance = MakeFigure2Instance(5);
  std::string path = testing::TempDir() + "/regal_storage_test.regal";
  ASSERT_TRUE(SaveInstanceToFile(instance, path).ok());
  auto loaded = LoadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRegions(), instance.NumRegions());
  EXPECT_FALSE(LoadInstanceFromFile(path + ".missing").ok());
}

TEST(StorageTest, MalformedInputs) {
  auto expect_bad = [](const std::string& payload) {
    std::stringstream in(payload);
    EXPECT_FALSE(LoadInstance(in).ok()) << payload;
  };
  expect_bad("");
  expect_bad("WRONG\nend\n");
  expect_bad("REGAL1\nname A 2\n0 1\n");          // Truncated regions.
  expect_bad("REGAL1\nname A 1\n5 2\nend\n");      // left > right.
  expect_bad("REGAL1\nname A 0\n");                // Missing end.
  expect_bad("REGAL1\nbogus X 0\nend\n");          // Unknown record.
  expect_bad("REGAL1\nname A 0\nname A 0\nend\n"); // Duplicate name.
  expect_bad("REGAL1\ntext 100\nshort\nend\n");    // Truncated text.
  expect_bad("REGAL1\npattern nokey 0\nend\n");    // Bad pattern key.
}

// Regression for the loader memory bomb: a hand-edited header declaring a
// huge count/size must fail fast with InvalidArgument *before* any
// allocation sized by the declared value. (Before the fix, "name r
// 999999999" reserved ~8 GB and the text/patternb paths allocated the full
// declared size up front.)
TEST(StorageTest, HugeDeclaredCountsRejectedWithoutAllocating) {
  auto expect_invalid = [](const std::string& payload) {
    std::stringstream in(payload);
    auto loaded = LoadInstance(in);
    ASSERT_FALSE(loaded.ok()) << payload;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << payload;
    EXPECT_NE(loaded.status().message().find("exceeds remaining input"),
              std::string::npos)
        << loaded.status();
  };
  expect_invalid("REGAL1\nname r 999999999\nend\n");
  expect_invalid("REGAL1\nname r 18446744073709551615\nend\n");
  expect_invalid("REGAL1\ntext 999999999999\nshort\nend\n");
  expect_invalid("REGAL1\npatternb 999999999999 0\nx\nend\n");
  expect_invalid("REGAL1\npattern p:x 999999999\nend\n");
}

TEST(StorageTest, WhitespaceNameRejectedOnSave) {
  Instance instance;
  ASSERT_TRUE(instance.AddRegionSet("bad name", RegionSet{Region{0, 1}}).ok());
  std::stringstream buffer;
  EXPECT_FALSE(SaveInstance(instance, buffer).ok());
}

// A pattern cache-key can carry whitespace (phrase patterns like
// "new york"); the length-prefixed `patternb` record must round-trip it
// bit-identically where the legacy `pattern` record would misparse.
TEST(StorageTest, WhitespacePatternKeyRoundTrip) {
  Instance instance = MakeFigure3Instance(2);
  Pattern phrase = *Pattern::Parse("new york");
  Pattern cr = *Pattern::Parse("a\rb");
  Pattern plain = *Pattern::Parse("plain*");
  instance.SetSyntheticPattern(phrase, RegionSet{(**instance.Get("C"))[0]});
  instance.SetSyntheticPattern(cr, RegionSet{(**instance.Get("A"))[0]});
  instance.SetSyntheticPattern(plain, RegionSet{(**instance.Get("A"))[1]});

  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(instance, buffer).ok());
  // Whitespace-free keys keep the legacy record.
  EXPECT_NE(buffer.str().find("pattern " + plain.CacheKey()),
            std::string::npos);
  EXPECT_NE(buffer.str().find("patternb "), std::string::npos);

  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->synthetic_patterns(), instance.synthetic_patterns());

  // Save -> load -> save is bit-identical.
  std::stringstream again;
  ASSERT_TRUE(SaveInstance(*loaded, again).ok());
  EXPECT_EQ(again.str(), buffer.str());
}

TEST(StorageTest, CrlfInputLoadsIdentically) {
  // Single-line text and whitespace-free keys, so a global \n -> \r\n
  // transform only rewrites line terminators (a multi-line payload mangled
  // by a CRLF transfer changes the payload itself; no reader can undo that).
  auto original = ParseSgml("<doc><sec>alpha beta</sec><sec>gamma</sec></doc>");
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*original, buffer).ok());

  std::string crlf;
  for (char c : buffer.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream in(crlf);
  auto loaded = LoadInstance(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->names(), original->names());
  for (const std::string& name : original->names()) {
    EXPECT_EQ(**loaded->Get(name), **original->Get(name)) << name;
  }
  ASSERT_NE(loaded->text(), nullptr);
  EXPECT_EQ(loaded->text()->content(), original->text()->content());
}

TEST(StorageTest, TruncatedPatternbKeyIsInvalidArgument) {
  auto expect_bad = [](const std::string& payload) {
    std::stringstream in(payload);
    auto loaded = LoadInstance(in);
    ASSERT_FALSE(loaded.ok()) << payload;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  };
  expect_bad("REGAL1\npatternb 10 0\ns:x\nend\n");  // Key shorter than count.
  expect_bad("REGAL1\npatternb x 0\nend\n");        // Malformed header.
  expect_bad("REGAL1\npatternb 3 0\nbad\nend\n");   // Not a valid cache key.
}

// Property test: random instances — region sets of every size including
// empty, pattern keys with spaces and CR, empty and absent text — survive
// save -> load with all tables equal, and save -> load -> save is
// bit-identical.
TEST(StorageTest, RandomInstancesRoundTripBitIdentically) {
  const char* pattern_specs[] = {"new york", "a\rb", "word*", "?x",
                                 "three word key"};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Instance instance;
    const int names = 1 + static_cast<int>(rng.Below(4));
    for (int n = 0; n < names; ++n) {
      std::vector<Region> regions;
      const int count = static_cast<int>(rng.Below(9));  // 0 is interesting.
      for (int i = 0; i < count; ++i) {
        Offset left = static_cast<Offset>(rng.Below(1000));
        Offset right = left + static_cast<Offset>(rng.Below(50));
        regions.push_back(Region{left, right});
      }
      ASSERT_TRUE(instance
                      .AddRegionSet("n" + std::to_string(n),
                                    RegionSet::FromUnsorted(std::move(regions)))
                      .ok());
    }
    const int patterns = static_cast<int>(rng.Below(3));
    for (int p = 0; p < patterns; ++p) {
      Pattern pat = *Pattern::Parse(pattern_specs[rng.Below(5)]);
      std::vector<Region> where;
      for (const std::string& name : instance.names()) {
        for (const Region& r : **instance.Get(name)) {
          if (rng.Chance(0.3)) where.push_back(r);
        }
      }
      instance.SetSyntheticPattern(pat,
                                   RegionSet::FromUnsorted(std::move(where)));
    }
    if (rng.Chance(0.5)) {
      // Text-backed (possibly empty text); the word index is rebuilt on load.
      auto text = std::make_shared<Text>(
          rng.Chance(0.2) ? "" : "alpha beta gamma delta");
      instance.BindText(text,
                        std::make_shared<SuffixArrayWordIndex>(text.get()));
    }

    std::stringstream buffer;
    ASSERT_TRUE(SaveInstance(instance, buffer).ok()) << "seed " << seed;
    auto loaded = LoadInstance(buffer);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": " << loaded.status();
    EXPECT_EQ(loaded->names(), instance.names()) << "seed " << seed;
    for (const std::string& name : instance.names()) {
      EXPECT_EQ(**loaded->Get(name), **instance.Get(name))
          << "seed " << seed << " name " << name;
    }
    EXPECT_EQ(loaded->synthetic_patterns(), instance.synthetic_patterns())
        << "seed " << seed;
    EXPECT_EQ(loaded->text() != nullptr, instance.text() != nullptr);
    if (instance.text() != nullptr) {
      EXPECT_EQ(loaded->text()->content(), instance.text()->content());
    }
    std::stringstream again;
    ASSERT_TRUE(SaveInstance(*loaded, again).ok()) << "seed " << seed;
    EXPECT_EQ(again.str(), buffer.str()) << "seed " << seed;

    // Differential parity with the REGAL2 binary format: the same instance
    // through encode -> decode must agree table-for-table with the REGAL1
    // round trip, and the binary round trip is bit-identical too.
    auto encoded = storage::EncodeSnapshot(instance);
    ASSERT_TRUE(encoded.ok()) << "seed " << seed << ": " << encoded.status();
    auto decoded = storage::DecodeSnapshot(*encoded);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": " << decoded.status();
    EXPECT_EQ(decoded->names(), loaded->names()) << "seed " << seed;
    for (const std::string& name : loaded->names()) {
      EXPECT_EQ(**decoded->Get(name), **loaded->Get(name))
          << "seed " << seed << " name " << name;
    }
    EXPECT_EQ(decoded->synthetic_patterns(), loaded->synthetic_patterns())
        << "seed " << seed;
    EXPECT_EQ(decoded->text() != nullptr, loaded->text() != nullptr);
    if (loaded->text() != nullptr) {
      EXPECT_EQ(decoded->text()->content(), loaded->text()->content());
    }
    auto re_encoded = storage::EncodeSnapshot(*decoded);
    ASSERT_TRUE(re_encoded.ok()) << "seed " << seed;
    EXPECT_EQ(*re_encoded, *encoded) << "seed " << seed;
  }
}

// LoadInstance binds text *after* the AddRegionSet calls; a natively built
// catalog binds it first. The two orders must answer every query
// identically (BindText keeps no per-set state, but this pins the contract).
TEST(StorageTest, BindTextOrderIsObservationallyEquivalent) {
  const std::string content = "alpha beta gamma alpha delta beta";
  std::vector<Region> words;
  for (size_t start = 0; start < content.size();) {
    size_t end = content.find(' ', start);
    if (end == std::string::npos) end = content.size();
    words.push_back(Region{static_cast<Offset>(start),
                           static_cast<Offset>(end - 1)});
    start = end + 1;
  }
  RegionSet word_set = RegionSet::FromUnsorted(words);
  RegionSet halves = RegionSet::FromUnsorted(
      {Region{0, 15}, Region{17, static_cast<Offset>(content.size() - 1)}});

  auto text = std::make_shared<Text>(content);
  Instance bind_first;
  bind_first.BindText(text,
                      std::make_shared<SuffixArrayWordIndex>(text.get()));
  ASSERT_TRUE(bind_first.AddRegionSet("word", word_set).ok());
  ASSERT_TRUE(bind_first.AddRegionSet("half", halves).ok());

  Instance bind_last;
  ASSERT_TRUE(bind_last.AddRegionSet("word", word_set).ok());
  ASSERT_TRUE(bind_last.AddRegionSet("half", halves).ok());
  bind_last.BindText(text,
                     std::make_shared<SuffixArrayWordIndex>(text.get()));

  const char* queries[] = {
      "word matching \"alpha\"",
      "half including (word matching \"beta\")",
      "(word matching \"a*\") within half",
      "word \"delta\"",
  };
  for (const char* query : queries) {
    auto parsed = ParseQuery(query);
    ASSERT_TRUE(parsed.ok()) << query;
    auto first = Evaluate(bind_first, *parsed);
    auto last = Evaluate(bind_last, *parsed);
    ASSERT_TRUE(first.ok()) << query << ": " << first.status();
    ASSERT_TRUE(last.ok()) << query << ": " << last.status();
    EXPECT_EQ(*first, *last) << query;
  }
}

}  // namespace
}  // namespace regal
