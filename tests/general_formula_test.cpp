#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"
#include "fmft/general.h"
#include "fmft/translate.h"
#include "util/random.h"

namespace regal {
namespace {

TEST(GeneralFormulaTest, AtomsAndConnectives) {
  // Model: one A containing one B.
  FmftModel model({"A", "B"}, 2);
  ASSERT_TRUE(model.AddWord("0", {0}).ok());
  ASSERT_TRUE(model.AddWord("00", {1}).ok());
  using G = GeneralFormula;
  std::map<std::string, size_t> env{{"x", 0}, {"y", 1}};
  EXPECT_TRUE(G::Pred("A", "x")->Holds(model, env));
  EXPECT_FALSE(G::Pred("B", "x")->Holds(model, env));
  EXPECT_TRUE(G::Prefix("x", "y")->Holds(model, env));
  EXPECT_FALSE(G::Prefix("y", "x")->Holds(model, env));
  EXPECT_FALSE(G::Before("x", "y")->Holds(model, env));
  EXPECT_TRUE(G::Equals("x", "x")->Holds(model, env));
  EXPECT_TRUE(G::Not(G::Pred("B", "x"))->Holds(model, env));
  EXPECT_TRUE(G::And(G::Pred("A", "x"), G::Pred("B", "y"))->Holds(model, env));
  EXPECT_TRUE(G::Or(G::Pred("B", "x"), G::Pred("A", "x"))->Holds(model, env));
}

TEST(GeneralFormulaTest, Quantifiers) {
  FmftModel model({"A", "B"}, 2);
  ASSERT_TRUE(model.AddWord("0", {0}).ok());
  ASSERT_TRUE(model.AddWord("00", {1}).ok());
  ASSERT_TRUE(model.AddWord("10", {1}).ok());
  using G = GeneralFormula;
  std::map<std::string, size_t> empty_env;
  // ∃x A(x).
  EXPECT_TRUE(G::Exists("x", G::Pred("A", "x"))->Holds(model, empty_env));
  // ∀x (A(x) ∨ B(x)).
  EXPECT_TRUE(G::Forall("x", G::Or(G::Pred("A", "x"), G::Pred("B", "x")))
                  ->Holds(model, empty_env));
  // ∀x B(x) fails (the A word).
  EXPECT_FALSE(G::Forall("x", G::Pred("B", "x"))->Holds(model, empty_env));
  // Shadowing: ∃x (B(x) ∧ ∃x A(x)).
  EXPECT_TRUE(G::Exists("x", G::And(G::Pred("B", "x"),
                                    G::Exists("x", G::Pred("A", "x"))))
                  ->Holds(model, empty_env));
}

TEST(GeneralFormulaTest, FreeVariables) {
  using G = GeneralFormula;
  auto f = G::And(G::Pred("A", "x"),
                  G::Exists("y", G::Prefix("x", "y")));
  EXPECT_EQ(f->FreeVariables(), (std::vector<std::string>{"x"}));
  auto g = G::Before("u", "v");
  EXPECT_EQ(g->FreeVariables(), (std::vector<std::string>{"u", "v"}));
  EXPECT_NE(f->ToString().find("(E y)"), std::string::npos);
}

// The embedding of restricted formulas agrees with the restricted
// evaluator on random instances.
TEST(GeneralFormulaTest, FromRestrictedAgrees) {
  Rng rng(21);
  std::vector<ExprPtr> exprs = {
      Expr::Including(Expr::Name("R0"), Expr::Name("R1")),
      Expr::Chain(OpKind::kIncluded, {"R2", "R1", "R0"}),
      Expr::Difference(Expr::Name("R0"),
                       Expr::Precedes(Expr::Name("R0"), Expr::Name("R1"))),
  };
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 15;
    Instance instance = RandomLaminarInstance(rng, options);
    FmftModel model = ModelFromInstance(instance, {});
    for (const ExprPtr& e : exprs) {
      auto restricted = AlgebraToFormula(e);
      ASSERT_TRUE(restricted.ok());
      GeneralFormulaPtr general = FromRestricted(*restricted, "x");
      EXPECT_EQ(general->Satisfiers(model, "x"),
                (*restricted)->Evaluate(model))
          << e->ToString();
    }
  }
}

// Sections 5.1/5.2: ⊃_d and BI are general-FMFT definable (while
// translate.cc rejects them for the restricted fragment).
class GeneralDefinabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneralDefinabilityTest, DirectIncludingDefinable) {
  Rng rng(GetParam());
  GeneralFormulaPtr phi = DirectIncludingFormula("R0", "R1");
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 18;
    Instance instance = RandomLaminarInstance(rng, options);
    std::vector<Region> region_of;
    FmftModel model = ModelFromInstance(instance, {}, &region_of);
    std::vector<Region> from_formula;
    for (size_t w : phi->Satisfiers(model, "x")) {
      from_formula.push_back(region_of[w]);
    }
    RegionSet native = DirectIncluding(instance, **instance.Get("R0"),
                                       **instance.Get("R1"));
    EXPECT_EQ(RegionSet::FromUnsorted(std::move(from_formula)), native);
  }
}

TEST_P(GeneralDefinabilityTest, BothIncludedDefinable) {
  Rng rng(GetParam() * 5 + 2);
  GeneralFormulaPtr phi = BothIncludedFormula("R0", "R1", "R2");
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 18;
    Instance instance = RandomLaminarInstance(rng, options);
    std::vector<Region> region_of;
    FmftModel model = ModelFromInstance(instance, {}, &region_of);
    std::vector<Region> from_formula;
    for (size_t w : phi->Satisfiers(model, "x")) {
      from_formula.push_back(region_of[w]);
    }
    RegionSet native = BothIncluded(**instance.Get("R0"),
                                    **instance.Get("R1"),
                                    **instance.Get("R2"));
    EXPECT_EQ(RegionSet::FromUnsorted(std::move(from_formula)), native);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralDefinabilityTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(GeneralDefinabilityTest, Figure3ViaFormula) {
  Instance instance = MakeFigure3Instance(2);
  std::vector<Region> region_of;
  FmftModel model = ModelFromInstance(instance, {}, &region_of);
  GeneralFormulaPtr phi = BothIncludedFormula("C", "B", "A");
  EXPECT_EQ(phi->Satisfiers(model, "x").size(), 1u);
}

}  // namespace
}  // namespace regal
