#include <gtest/gtest.h>

#include "doc/srccode.h"
#include "fmft/translate.h"
#include "opt/exhaustive.h"
#include "query/engine.h"
#include "query/parser.h"

namespace regal {
namespace {

constexpr char kDoc[] =
    "<doc><p>alpha beta gamma</p><p>beta delta</p></doc>";

TEST(WordMatchTest, ParsesAndRoundTrips) {
  auto e = ParseQuery("word \"beta\" within p");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->kind(), OpKind::kIncluded);
  EXPECT_EQ((*e)->child(0)->kind(), OpKind::kWordMatch);
  auto again = ParseQuery((*e)->ToString());
  ASSERT_TRUE(again.ok()) << (*e)->ToString();
  EXPECT_TRUE((*e)->Equals(**again));
  auto ci = ParseQuery("word ~\"BETA\"");
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE((*ci)->pattern().case_insensitive());
}

TEST(WordMatchTest, WordNamedRegionStillUsable) {
  // 'word' not followed by a string is an ordinary region name.
  auto e = ParseQuery("word within p");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->child(0)->kind(), OpKind::kName);
  EXPECT_EQ((*e)->child(0)->name(), "word");
}

TEST(WordMatchTest, EvaluatesAgainstWordIndex) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  auto matches = engine->Run("word \"beta\"");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->regions.size(), 2u);
  // Match points compose with structural operators: betas in the second
  // paragraph only.
  auto second = engine->Run("word \"beta\" within (p after p)");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->regions.size(), 1u);
  // And with ordering: gamma tokens before a delta token.
  auto ordered = engine->Run("word \"gamma\" before word \"delta\"");
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->regions.size(), 1u);
}

TEST(WordMatchTest, RequiresTextBackedInstance) {
  Instance synthetic;
  ASSERT_TRUE(synthetic.AddRegionSet("A", RegionSet{Region{0, 5}}).ok());
  QueryEngine engine(std::move(synthetic));
  auto result = engine.Run("word \"x\"");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WordMatchTest, NotBaseAlgebraAndNotTranslatable) {
  ExprPtr e = Expr::WordMatch(*Pattern::Parse("x"));
  EXPECT_FALSE(e->IsBaseAlgebra());
  EXPECT_EQ(e->NumOps(), 1);
  EXPECT_FALSE(AlgebraToFormula(e).ok());
}

TEST(ExhaustiveOptimizerTest, FindsThePaperRewrite) {
  // The §3 procedure rediscovers a 2-operator equivalent of the paper's
  // 3-operator e1, w.r.t. Figure 1's RIG.
  Digraph rig = SourceCodeRig();
  ExprPtr e1 = Expr::Chain(OpKind::kIncluded,
                           {"Name", "Proc_header", "Proc", "Program"});
  ExhaustiveOptimizeOptions options;
  options.rig = &rig;
  options.max_candidate_ops = 2;
  options.stats.default_cardinality = 1000;
  options.equivalence.max_nodes = 6;
  options.equivalence.max_depth = 5;
  options.equivalence.random_samples = 60;
  auto outcome = OptimizeByEnumeration(e1, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_LE(outcome->expr->NumOps(), 2);
  EXPECT_GT(outcome->equivalence_checks, 0);
  EXPECT_LT(outcome->cost,
            EstimateCost(e1, options.stats).cost);
  // The found expression is an inclusion chain ending at Program.
  auto names = outcome->expr->NamesUsed();
  EXPECT_EQ(names.front(), "Name");
}

TEST(ExhaustiveOptimizerTest, KeepsInputWhenNothingCheaperIsEquivalent) {
  ExprPtr e = Expr::Including(Expr::Name("A"), Expr::Name("B"));
  ExhaustiveOptimizeOptions options;
  options.max_candidate_ops = 0;  // Only bare names as candidates.
  options.equivalence.random_samples = 50;
  auto outcome = OptimizeByEnumeration(e, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->expr->Equals(*e));
}

TEST(ExhaustiveOptimizerTest, CollapsesTautology) {
  // (A ∪ A) ∩ A is just A; the procedure finds the zero-operator form.
  ExprPtr a = Expr::Name("A");
  ExprPtr e = Expr::Intersect(Expr::Union(a, a), a);
  ExhaustiveOptimizeOptions options;
  options.max_candidate_ops = 1;
  options.equivalence.random_samples = 50;
  auto outcome = OptimizeByEnumeration(e, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->expr->NumOps(), 0);
  EXPECT_EQ(outcome->expr->name(), "A");
}

TEST(ExhaustiveOptimizerTest, LowersExtendedOperatorWhenBoundedSpaceAllows) {
  // B ⊃_d A on a flat RIG (no nesting of B): equivalent to B ⊃ A, which
  // the enumeration finds — an exhaustive-search counterpart of Prop 5.2.
  Digraph rig;
  rig.AddEdge("B", "A");
  ExprPtr e = Expr::DirectIncluding(Expr::Name("B"), Expr::Name("A"));
  ExhaustiveOptimizeOptions options;
  options.rig = &rig;
  options.max_candidate_ops = 1;
  options.stats.default_cardinality = 1000;
  options.equivalence.random_samples = 80;
  auto outcome = OptimizeByEnumeration(e, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->expr->IsBaseAlgebra());
  EXPECT_TRUE(outcome->expr->Equals(
      *Expr::Including(Expr::Name("B"), Expr::Name("A"))));
}

}  // namespace
}  // namespace regal
