#include <gtest/gtest.h>

#include <vector>

#include "core/algebra.h"
#include "util/random.h"

namespace regal {
namespace {

// A random (not necessarily laminar) region set over a small coordinate
// universe, to stress duplicates-of-endpoints cases.
RegionSet RandomSet(Rng& rng, int max_size, Offset universe) {
  std::vector<Region> regions;
  int n = static_cast<int>(rng.Below(static_cast<uint64_t>(max_size + 1)));
  for (int i = 0; i < n; ++i) {
    Offset a = static_cast<Offset>(rng.Below(static_cast<uint64_t>(universe)));
    Offset b = static_cast<Offset>(rng.Below(static_cast<uint64_t>(universe)));
    regions.push_back(Region{std::min(a, b), std::max(a, b)});
  }
  return RegionSet::FromUnsorted(std::move(regions));
}

TEST(AlgebraTest, UnionBasics) {
  RegionSet a{Region{0, 1}, Region{4, 9}};
  RegionSet b{Region{4, 9}, Region{2, 3}};
  RegionSet u = Union(a, b);
  EXPECT_EQ(u, (RegionSet{Region{0, 1}, Region{2, 3}, Region{4, 9}}));
}

TEST(AlgebraTest, IntersectBasics) {
  RegionSet a{Region{0, 1}, Region{4, 9}};
  RegionSet b{Region{4, 9}, Region{2, 3}};
  EXPECT_EQ(Intersect(a, b), (RegionSet{Region{4, 9}}));
}

TEST(AlgebraTest, DifferenceBasics) {
  RegionSet a{Region{0, 1}, Region{4, 9}};
  RegionSet b{Region{4, 9}};
  EXPECT_EQ(Difference(a, b), (RegionSet{Region{0, 1}}));
  EXPECT_EQ(Difference(a, a), RegionSet());
}

TEST(AlgebraTest, IncludingSelectsContainers) {
  RegionSet outer{Region{0, 10}, Region{20, 30}};
  RegionSet inner{Region{2, 4}};
  EXPECT_EQ(Including(outer, inner), (RegionSet{Region{0, 10}}));
  EXPECT_EQ(Included(inner, outer), inner);
}

TEST(AlgebraTest, InclusionIsStrict) {
  RegionSet a{Region{0, 10}};
  EXPECT_TRUE(Including(a, a).empty());
  EXPECT_TRUE(Included(a, a).empty());
}

TEST(AlgebraTest, SharedEndpointInclusion) {
  RegionSet outer{Region{0, 10}};
  RegionSet left_aligned{Region{0, 5}};
  RegionSet right_aligned{Region{5, 10}};
  EXPECT_EQ(Including(outer, left_aligned), outer);
  EXPECT_EQ(Including(outer, right_aligned), outer);
}

TEST(AlgebraTest, PrecedesFollows) {
  RegionSet a{Region{0, 2}, Region{10, 12}};
  RegionSet b{Region{5, 6}};
  EXPECT_EQ(Precedes(a, b), (RegionSet{Region{0, 2}}));
  EXPECT_EQ(Follows(a, b), (RegionSet{Region{10, 12}}));
}

TEST(AlgebraTest, TouchingRegionsDoNotPrecede) {
  RegionSet a{Region{0, 5}};
  RegionSet b{Region{5, 8}};
  EXPECT_TRUE(Precedes(a, b).empty());
}

TEST(AlgebraTest, EmptyOperands) {
  RegionSet a{Region{0, 5}};
  RegionSet e;
  EXPECT_TRUE(Including(a, e).empty());
  EXPECT_TRUE(Included(a, e).empty());
  EXPECT_TRUE(Precedes(a, e).empty());
  EXPECT_TRUE(Follows(a, e).empty());
  EXPECT_EQ(Union(a, e), a);
  EXPECT_TRUE(Intersect(a, e).empty());
  EXPECT_EQ(Difference(a, e), a);
  EXPECT_TRUE(Including(e, a).empty());
}

TEST(AlgebraTest, SelectByTokensContainment) {
  RegionSet r{Region{0, 10}, Region{12, 20}, Region{14, 16}};
  std::vector<Token> tokens{Token{14, 16}};
  // Both [12,20] and [14,16] contain the token ([14,16] non-strictly).
  EXPECT_EQ(SelectByTokens(r, tokens),
            (RegionSet{Region{12, 20}, Region{14, 16}}));
}

TEST(ContainmentIndexTest, MinMaxQueries) {
  RegionSet s{Region{2, 4}, Region{6, 8}, Region{10, 12}};
  ContainmentIndex index(s);
  Offset v = -1;
  ASSERT_TRUE(index.MinRightContainedIn(Region{0, 20}, &v));
  EXPECT_EQ(v, 4);
  ASSERT_TRUE(index.MaxLeftContainedIn(Region{0, 20}, &v));
  EXPECT_EQ(v, 10);
  ASSERT_TRUE(index.MinRightContainedIn(Region{5, 9}, &v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(index.MinRightContainedIn(Region{13, 20}, &v));
  // [9, 11] contains no full region.
  EXPECT_FALSE(index.MinRightContainedIn(Region{9, 11}, &v));
}

TEST(ContainmentIndexTest, EmptyIndex) {
  ContainmentIndex index((RegionSet()));
  Offset v;
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.ExistsIncludedIn(Region{0, 10}));
  EXPECT_FALSE(index.ExistsIncluding(Region{0, 10}));
  EXPECT_FALSE(index.MinRightContainedIn(Region{0, 10}, &v));
  EXPECT_FALSE(index.MaxLeftContainedIn(Region{0, 10}, &v));
}

// Property tests: the efficient operators agree with the O(n*m) reference
// implementations on random (arbitrary, not only laminar) region sets.
class AlgebraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraPropertyTest, EfficientMatchesNaive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    RegionSet r = RandomSet(rng, 30, 25);
    RegionSet s = RandomSet(rng, 30, 25);
    EXPECT_EQ(Including(r, s), naive::Including(r, s))
        << "R=" << r.ToString() << " S=" << s.ToString();
    EXPECT_EQ(Included(r, s), naive::Included(r, s))
        << "R=" << r.ToString() << " S=" << s.ToString();
    EXPECT_EQ(Precedes(r, s), naive::Precedes(r, s));
    EXPECT_EQ(Follows(r, s), naive::Follows(r, s));
    EXPECT_EQ(Union(r, s), naive::Union(r, s));
    EXPECT_EQ(Intersect(r, s), naive::Intersect(r, s));
    EXPECT_EQ(Difference(r, s), naive::Difference(r, s));
  }
}

TEST_P(AlgebraPropertyTest, SelectMatchesNaive) {
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    RegionSet r = RandomSet(rng, 30, 25);
    std::vector<Token> tokens;
    int n = static_cast<int>(rng.Below(10));
    for (int i = 0; i < n; ++i) {
      Offset a = static_cast<Offset>(rng.Below(25));
      Offset b = a + static_cast<Offset>(rng.Below(3));
      tokens.push_back(Token{a, b});
    }
    std::sort(tokens.begin(), tokens.end(), [](const Token& x, const Token& y) {
      return x.left != y.left ? x.left < y.left : x.right < y.right;
    });
    EXPECT_EQ(SelectByTokens(r, tokens), naive::SelectByTokens(r, tokens));
  }
}

// Algebraic identities that hold for all sets.
TEST_P(AlgebraPropertyTest, SetIdentities) {
  Rng rng(GetParam() * 101 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    RegionSet r = RandomSet(rng, 20, 20);
    RegionSet s = RandomSet(rng, 20, 20);
    RegionSet t = RandomSet(rng, 20, 20);
    EXPECT_EQ(Union(r, s), Union(s, r));
    EXPECT_EQ(Intersect(r, s), Intersect(s, r));
    EXPECT_EQ(Union(r, Union(s, t)), Union(Union(r, s), t));
    EXPECT_EQ(Difference(r, Union(s, t)),
              Difference(Difference(r, s), t));
    // Semi-join results are subsets of the left operand.
    EXPECT_EQ(Intersect(Including(r, s), r), Including(r, s));
    EXPECT_EQ(Intersect(Included(r, s), r), Included(r, s));
    // ⊃ distributes over ∪ in the right argument.
    EXPECT_EQ(Including(r, Union(s, t)),
              Union(Including(r, s), Including(r, t)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace regal
