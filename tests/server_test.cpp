// Suite for the multi-tenant query service front-end (label `server`):
// wire-protocol codecs, tenant governance, the hardened socket layer's
// accept policy, and a live service driven over loopback by real clients —
// including the chaos ones (RST mid-response, torn frames, garbage bytes)
// that historically killed socket servers via SIGPIPE or a dying accept
// loop. The binary is part of the TSAN run:
//   cmake -B build-tsan -S . -DREGAL_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L server

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "admin/admin_server.h"
#include "query/engine.h"
#include "safety/tenant.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {
namespace {

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta epsilon</para></sec></doc>";

// ---------------------------------------------------------------------------
// Wire protocol codecs.

TEST(ProtocolTest, RequestRoundTrip) {
  server::Request request;
  request.tenant = "team-a";
  request.instance = "corpus1";
  request.query = "para within sec";
  request.id = 42;
  request.limit = 7;
  request.deadline_ms = 125.5;
  auto parsed = server::ParseRequest(server::RenderRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->tenant, "team-a");
  EXPECT_EQ(parsed->instance, "corpus1");
  EXPECT_EQ(parsed->query, "para within sec");
  EXPECT_EQ(parsed->id, 42);
  EXPECT_EQ(parsed->limit, 7);
  EXPECT_DOUBLE_EQ(parsed->deadline_ms, 125.5);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  server::Response response;
  response.id = 9;
  response.ok = true;
  response.code = "OK";
  response.row_count = 3;
  response.rows = {"[0, 12) \"alpha beta\"", "[13, 18) \"gamma\""};
  response.elapsed_ms = 0.25;
  auto parsed = server::ParseResponse(server::RenderResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->id, 9);
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->code, "OK");
  EXPECT_EQ(parsed->row_count, 3);
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_EQ(parsed->rows[0], "[0, 12) \"alpha beta\"");
  EXPECT_DOUBLE_EQ(parsed->elapsed_ms, 0.25);
}

TEST(ProtocolTest, RequestValidation) {
  // tenant and query are required and must be non-empty strings.
  EXPECT_FALSE(server::ParseRequest("{\"query\": \"sec\"}").ok());
  EXPECT_FALSE(server::ParseRequest("{\"tenant\": \"a\"}").ok());
  EXPECT_FALSE(
      server::ParseRequest("{\"tenant\": \"\", \"query\": \"sec\"}").ok());
  EXPECT_FALSE(
      server::ParseRequest("{\"tenant\": 3, \"query\": \"sec\"}").ok());
  // Unknown keys are ignored for forward compatibility.
  auto ok = server::ParseRequest(
      "{\"tenant\": \"a\", \"query\": \"sec\", \"future_key\": [\"x\"]}");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->tenant, "a");
}

TEST(ProtocolTest, FlatObjectRejectsNestingAndMalformedInput) {
  std::map<std::string, server::JsonValue> out;
  for (const char* bad : {
           "",
           "nonsense",
           "{",
           "{\"a\"",
           "{\"a\": }",
           "{\"a\": {\"nested\": 1}}",       // Nested objects rejected.
           "{\"a\": [1, 2]}",                // Non-string array rejected.
           "{\"a\": [\"x\", 1]}",            // Mixed array rejected.
           "{\"a\": \"unterminated",
           "{\"a\": \"bad escape \\q\"}",
           "{\"a\": 1} trailing",
           "{\"a\": --3}",
       }) {
    out.clear();
    EXPECT_FALSE(server::ParseFlatObject(bad, &out).ok()) << bad;
  }
  out.clear();
  Status good = server::ParseFlatObject(
      "{\"s\": \"text \\u00e9 \\n\", \"n\": -1.5e2, \"b\": true, "
      "\"z\": null, \"arr\": [\"x\", \"y\"]}",
      &out);
  ASSERT_TRUE(good.ok()) << good;
  EXPECT_EQ(out["n"].num, -150.0);
  EXPECT_TRUE(out["b"].boolean);
  ASSERT_EQ(out["arr"].strings.size(), 2u);
  EXPECT_EQ(out["arr"].strings[1], "y");
}

TEST(ProtocolTest, FlatObjectFuzzNeverCrashes) {
  // Random bytes, random mutations of a valid request: the parser must
  // reject or accept, never crash or read out of bounds (the ASAN run is
  // where the second half of that claim is enforced).
  Rng rng(0xf00dULL);
  const std::string seedtext =
      "{\"tenant\": \"a\", \"query\": \"sec\", \"id\": 3}";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    if (iter % 2 == 0) {
      size_t len = rng.Below(64);
      for (size_t i = 0; i < len; ++i) {
        text.push_back(static_cast<char>(rng.Below(256)));
      }
    } else {
      text = seedtext;
      size_t flips = 1 + rng.Below(4);
      for (size_t i = 0; i < flips; ++i) {
        text[rng.Below(text.size())] = static_cast<char>(rng.Below(256));
      }
    }
    std::map<std::string, server::JsonValue> out;
    server::ParseFlatObject(text, &out).ok();  // Either way is fine.
  }
}

TEST(ProtocolTest, FrameEncodesLittleEndianLength) {
  std::string frame = server::EncodeFrame("abc");
  ASSERT_EQ(frame.size(), server::kFrameHeaderBytes + 3);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 3);
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 0);
  EXPECT_EQ(frame.substr(4), "abc");
}

// ---------------------------------------------------------------------------
// Tenant governance (deterministic, no sockets).

TEST(TenantGovernorTest, GlobalCapacityRejects) {
  safety::TenantGovernor::Options options;
  options.max_concurrent_total = 2;
  safety::TenantGovernor governor(options);
  ASSERT_TRUE(governor.Admit("a").ok());
  ASSERT_TRUE(governor.Admit("b").ok());
  safety::AdmitReject why = safety::AdmitReject::kNone;
  Status third = governor.Admit("c", &why);
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(why, safety::AdmitReject::kCapacity);
  governor.Release("a");
  EXPECT_TRUE(governor.Admit("c").ok());
  EXPECT_EQ(governor.inflight_total(), 2);
}

TEST(TenantGovernorTest, FairShareSplitsTheGlobalCap) {
  safety::TenantGovernor::Options options;
  options.max_concurrent_total = 4;
  safety::TenantGovernor governor(options);
  // Alone on the box, a tenant may use everything.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(governor.Admit("solo").ok()) << i;
  safety::AdmitReject why = safety::AdmitReject::kNone;
  EXPECT_FALSE(governor.Admit("solo", &why).ok());
  EXPECT_EQ(why, safety::AdmitReject::kCapacity);
  for (int i = 0; i < 4; ++i) governor.Release("solo");

  // Two active tenants: fair share is 4 / 2 = 2 each.
  ASSERT_TRUE(governor.Admit("a").ok());
  ASSERT_TRUE(governor.Admit("b").ok());
  ASSERT_TRUE(governor.Admit("a").ok());
  Status over = governor.Admit("a", &why);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(why, safety::AdmitReject::kFairShare);
  // The share grows back once the other tenant drains.
  governor.Release("b");
  EXPECT_TRUE(governor.Admit("a").ok());
  EXPECT_EQ(governor.active_tenants(), 1);
}

TEST(TenantGovernorTest, ExplicitQuotaOverridesFairShare) {
  safety::TenantGovernor::Options options;
  options.max_concurrent_total = 8;
  safety::TenantGovernor governor(options);
  safety::TenantQuota quota;
  quota.max_concurrent = 1;
  governor.SetQuota("capped", quota);
  ASSERT_TRUE(governor.Admit("capped").ok());
  safety::AdmitReject why = safety::AdmitReject::kNone;
  EXPECT_FALSE(governor.Admit("capped", &why).ok());
  EXPECT_EQ(why, safety::AdmitReject::kFairShare);
  // Other tenants are unaffected by the capped one's ceiling.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(governor.Admit("free").ok()) << i;
}

TEST(TenantGovernorTest, ResponseByteBackpressure) {
  safety::TenantGovernor governor({});
  safety::TenantQuota quota;
  quota.max_inflight_response_bytes = 100;
  governor.SetQuota("t", quota);
  EXPECT_TRUE(governor.ChargeResponseBytes("t", 60).ok());
  EXPECT_TRUE(governor.ChargeResponseBytes("t", 40).ok());
  Status over = governor.ChargeResponseBytes("t", 1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // A failed charge must not leak into the accounting.
  EXPECT_EQ(governor.inflight_response_bytes_total(), 100);
  governor.ReleaseResponseBytes("t", 100);
  EXPECT_EQ(governor.inflight_response_bytes_total(), 0);
  EXPECT_TRUE(governor.ChargeResponseBytes("t", 100).ok());
  // No quota → unlimited.
  EXPECT_TRUE(governor.ChargeResponseBytes("other", 1 << 30).ok());
}

TEST(TenantGovernorTest, AdmissionTicketReleasesOnDestruction) {
  safety::TenantGovernor governor({});
  ASSERT_TRUE(governor.Admit("t").ok());
  {
    safety::AdmissionTicket ticket(&governor, "t");
    EXPECT_EQ(governor.inflight_total(), 1);
  }
  EXPECT_EQ(governor.inflight_total(), 0);
  // Over-release is harmless.
  governor.Release("t");
  EXPECT_EQ(governor.inflight_total(), 0);
}

// ---------------------------------------------------------------------------
// The hardened socket layer's accept policy. The classification is a pure
// function precisely so this policy is testable without provoking a real
// EMFILE against the process.

TEST(NetTest, AcceptErrorClassification) {
  using net::AcceptErrorAction;
  for (int transient : {ECONNABORTED, EAGAIN, EWOULDBLOCK, EINTR}) {
    EXPECT_EQ(net::ClassifyAcceptError(transient), AcceptErrorAction::kRetry)
        << transient;
  }
  for (int exhausted : {EMFILE, ENFILE, ENOBUFS, ENOMEM}) {
    EXPECT_EQ(net::ClassifyAcceptError(exhausted),
              AcceptErrorAction::kRetryBackoff)
        << exhausted;
  }
  // Unknown errnos back off rather than kill the listener: there is no
  // fatal classification at all — only a stop request ends the loop.
  EXPECT_EQ(net::ClassifyAcceptError(EIO), AcceptErrorAction::kRetryBackoff);
  EXPECT_EQ(net::ClassifyAcceptError(0), AcceptErrorAction::kRetryBackoff);
}

// ---------------------------------------------------------------------------
// Live service integration.

class QueryServiceTest : public ::testing::Test {
 protected:
  void StartService(server::ServiceOptions options = {}) {
    auto started = server::QueryService::Start(std::move(options));
    ASSERT_TRUE(started.ok()) << started.status();
    service_ = std::move(started).value();
    auto engine = QueryEngine::FromSgmlSource(kDoc);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(
        service_->AddInstance("corpus1", std::move(engine).value()).ok());
  }

  server::Client Connect() {
    auto client = server::Client::Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(client).value() : server::Client();
  }

  server::Request MakeRequest(const std::string& tenant,
                              const std::string& query) {
    server::Request request;
    request.tenant = tenant;
    request.instance = "corpus1";
    request.query = query;
    return request;
  }

  // The liveness probe: after whatever abuse a test dished out, a fresh
  // client on a fresh connection must still get a correct answer. This is
  // the line the SIGPIPE and accept-loop regressions used to cross.
  void ExpectStillServing() {
    ASSERT_FALSE(service_->stopping());
    server::Client client = Connect();
    ASSERT_TRUE(client.connected());
    auto response = client.Call(MakeRequest("probe", "para within sec"));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->ok) << response->message;
    EXPECT_EQ(response->row_count, 3);
  }

  std::unique_ptr<server::QueryService> service_;
};

TEST_F(QueryServiceTest, AnswersQueriesOverTheWire) {
  StartService();
  server::Client client = Connect();
  server::Request request = MakeRequest("team-a", "para within sec");
  request.id = 17;
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->id, 17);
  EXPECT_EQ(response->code, "OK");
  EXPECT_EQ(response->row_count, 3);
  EXPECT_EQ(response->rows.size(), 3u);
  EXPECT_GT(response->elapsed_ms, 0);

  // The connection is persistent: more requests on the same socket.
  auto second = client.Call(MakeRequest("team-a", "word \"alpha\""));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->ok);
  EXPECT_EQ(second->row_count, 1);
}

TEST_F(QueryServiceTest, RowLimitCapsRenderedRowsNotRowCount) {
  server::ServiceOptions options;
  options.default_row_limit = 1;
  StartService(std::move(options));
  server::Client client = Connect();
  auto response = client.Call(MakeRequest("t", "para within sec"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->row_count, 3);
  // One rendered row plus the "... (N more)" elision marker.
  ASSERT_EQ(response->rows.size(), 2u);
  EXPECT_NE(response->rows[1].find("2 more"), std::string::npos)
      << response->rows[1];

  server::Request unlimited = MakeRequest("t", "para within sec");
  unlimited.limit = 100;
  auto full = client.Call(unlimited);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->rows.size(), 3u);
}

TEST_F(QueryServiceTest, InstanceRouting) {
  StartService();
  auto engine2 = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine2.ok());
  ASSERT_TRUE(
      service_->AddInstance("corpus2", std::move(engine2).value()).ok());
  auto duplicate = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(
      service_->AddInstance("corpus2", std::move(duplicate).value()).code(),
      StatusCode::kAlreadyExists);

  server::Client client = Connect();
  server::Request request = MakeRequest("t", "sec");
  request.instance = "corpus2";
  auto routed = client.Call(request);
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_TRUE(routed->ok) << routed->message;

  request.instance = "nope";
  auto unknown = client.Call(request);
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_FALSE(unknown->ok);
  EXPECT_EQ(unknown->code, "NOT_FOUND");

  // With two instances hosted, the request must name one.
  request.instance.clear();
  auto ambiguous = client.Call(request);
  ASSERT_TRUE(ambiguous.ok()) << ambiguous.status();
  EXPECT_FALSE(ambiguous->ok);
  EXPECT_EQ(ambiguous->code, "INVALID_ARGUMENT");
}

TEST_F(QueryServiceTest, SingleInstanceNeedsNoName) {
  StartService();
  server::Client client = Connect();
  server::Request request = MakeRequest("t", "sec");
  request.instance.clear();
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->row_count, 2);
}

TEST_F(QueryServiceTest, ConcurrentTenantsAllServed) {
  StartService();
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 25;
  std::atomic<int> ok_count{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = server::Client::Connect("127.0.0.1", service_->port());
      if (!client.ok()) {
        transport_errors.fetch_add(kRequestsEach);
        return;
      }
      const std::string tenant = c % 2 == 0 ? "team-a" : "team-b";
      const char* queries[] = {"para within sec", "word \"alpha\"", "sec",
                               "word \"delta\" | word \"gamma\""};
      for (int i = 0; i < kRequestsEach; ++i) {
        server::Request request;
        request.tenant = tenant;
        request.instance = "corpus1";
        request.query = queries[(c + i) % 4];
        request.id = c * 1000 + i;
        auto response = client->Call(request);
        if (!response.ok()) {
          transport_errors.fetch_add(1);
          continue;
        }
        // Admission rejects are legal under load; wrong answers are not.
        if (response->ok && response->id == request.id) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GE(service_->requests_total(), kClients * kRequestsEach);
  EXPECT_GE(service_->connections_total(), kClients);
  ExpectStillServing();
}

TEST_F(QueryServiceTest, GlobalCapacityRejectionReachesTheWire) {
  server::ServiceOptions options;
  options.governance.max_concurrent_total = 0;  // Everything rejected.
  StartService(std::move(options));
  server::Client client = Connect();
  auto response = client.Call(MakeRequest("t", "sec"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, "RESOURCE_EXHAUSTED");
  EXPECT_NE(response->message.find("capacity"), std::string::npos)
      << response->message;
}

TEST_F(QueryServiceTest, PerRequestDeadlineIsEnforced) {
  StartService();
  server::Client client = Connect();
  server::Request request = MakeRequest("t", "para within sec");
  request.deadline_ms = 1e-6;  // Expired by the first progress check.
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, "DEADLINE_EXCEEDED") << response->message;
  ExpectStillServing();
}

TEST_F(QueryServiceTest, TenantByteBackpressureReplacesResponse) {
  StartService();
  safety::TenantQuota quota;
  quota.max_inflight_response_bytes = 8;  // Smaller than any real response.
  service_->SetTenantQuota("throttled", quota);
  server::Client client = Connect();
  auto response = client.Call(MakeRequest("throttled", "para within sec"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, "RESOURCE_EXHAUSTED");
  EXPECT_NE(response->message.find("backpressure"), std::string::npos)
      << response->message;
  EXPECT_TRUE(response->rows.empty());
  // Other tenants are untouched, and the failed charge did not leak.
  EXPECT_EQ(service_->governor().inflight_response_bytes_total(), 0);
  ExpectStillServing();
}

// The SIGPIPE regression: a client that requests work and then slams the
// connection shut with an RST forces the server's send() into a dead
// socket. Without MSG_NOSIGNAL the default SIGPIPE disposition kills the
// whole process. Several rounds, because the race between the RST landing
// and the send starting does not always lose on the first try.
TEST_F(QueryServiceTest, ClientRstMidResponseDoesNotKillProcess) {
  StartService();
  for (int round = 0; round < 20; ++round) {
    auto chaos = server::Client::Connect("127.0.0.1", service_->port());
    ASSERT_TRUE(chaos.ok()) << chaos.status();
    server::Request request = MakeRequest("chaos", "para within sec");
    request.limit = 100;
    ASSERT_TRUE(chaos->SendRaw(
        server::EncodeFrame(server::RenderRequest(request))));
    chaos->Close(/*rst=*/true);
  }
  ExpectStillServing();
}

// The accept-loop regression's cousin: connections that are aborted right
// after the handshake (RST before the server even reads) must not end the
// accept loop.
TEST_F(QueryServiceTest, ImmediateDisconnectsDoNotKillAcceptLoop) {
  StartService();
  for (int round = 0; round < 50; ++round) {
    auto chaos = server::Client::Connect("127.0.0.1", service_->port());
    ASSERT_TRUE(chaos.ok()) << chaos.status();
    chaos->Close(/*rst=*/round % 2 == 0);
  }
  ExpectStillServing();
}

TEST_F(QueryServiceTest, TornFrameClosesOnlyThatConnection) {
  StartService();
  auto torn = Connect();
  // Announce 100 bytes, deliver 3, vanish.
  std::string partial = server::EncodeFrame(std::string(100, 'x'));
  partial.resize(server::kFrameHeaderBytes + 3);
  ASSERT_TRUE(torn.SendRaw(partial));
  torn.Close();
  ExpectStillServing();
}

TEST_F(QueryServiceTest, OversizedFrameIsRefusedWithAnError) {
  server::ServiceOptions options;
  options.max_frame_bytes = 256;
  StartService(std::move(options));
  server::Client client = Connect();
  ASSERT_TRUE(client.SendRaw(server::EncodeFrame(std::string(1000, ' '))));
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, "INVALID_ARGUMENT");
  // The stream cannot be resynchronized, so the server must then close.
  auto after = client.ReadResponse();
  EXPECT_FALSE(after.ok());
  ExpectStillServing();
}

TEST_F(QueryServiceTest, MalformedPayloadKeepsConnectionUsable) {
  StartService();
  server::Client client = Connect();
  ASSERT_TRUE(client.SendRaw(server::EncodeFrame("this is not json")));
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, "INVALID_ARGUMENT");
  // Framing was intact, so the same connection still works.
  auto good = client.Call(MakeRequest("t", "sec"));
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_TRUE(good->ok) << good->message;
}

TEST_F(QueryServiceTest, GarbageFrameFuzz) {
  StartService();
  Rng rng(0xbadc0deULL);
  for (int iter = 0; iter < 60; ++iter) {
    auto client = server::Client::Connect("127.0.0.1", service_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    size_t len = rng.Below(128);
    std::string payload;
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Below(256)));
    }
    // Half framed garbage, half raw garbage (which the server reads as an
    // absurd length prefix and refuses).
    client->SendRaw(iter % 2 == 0 ? server::EncodeFrame(payload) : payload);
    client->Close(/*rst=*/rng.Chance(0.5));
  }
  ExpectStillServing();
}

TEST_F(QueryServiceTest, StopDrainsAndRefusesNewWork) {
  StartService();
  server::Client client = Connect();
  auto before = client.Call(MakeRequest("t", "sec"));
  ASSERT_TRUE(before.ok()) << before.status();
  service_->Stop();
  EXPECT_TRUE(service_->stopping());
  // The drained connection is gone...
  auto after = client.Call(MakeRequest("t", "sec"));
  EXPECT_FALSE(after.ok());
  // ...and new connections are refused (or reset before a response).
  auto late = server::Client::Connect("127.0.0.1", service_->port());
  if (late.ok()) {
    EXPECT_FALSE(late->Call(MakeRequest("t", "sec")).ok());
  }
  // Stop is idempotent.
  service_->Stop();
}

TEST_F(QueryServiceTest, AdminEndpointShowsServiceAndTenantSections) {
  StartService();
  safety::TenantQuota quota;
  quota.max_concurrent = 3;
  service_->SetTenantQuota("team-a", quota);
  server::Client client = Connect();
  auto warm = client.Call(MakeRequest("team-a", "para within sec"));
  ASSERT_TRUE(warm.ok()) << warm.status();

  ASSERT_TRUE(service_->EnableAdminServer().ok());
  int port = service_->admin_server()->port();
  int status = 0;
  auto body = admin::HttpGet("127.0.0.1", port, "/statusz", &status);
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(status, 200);
  for (const char* expected :
       {"[server]", "connections_total", "[tenants]", "team-a", "admitted=1",
        "[corpus1.catalog]", "[corpus1.cache]", "[corpus1.exec]", "[cpu]"}) {
    EXPECT_NE(body->find(expected), std::string::npos)
        << "missing " << expected << " in:\n" << *body;
  }
}

}  // namespace
}  // namespace regal
