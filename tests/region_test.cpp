#include <gtest/gtest.h>

#include "core/region.h"
#include "core/region_set.h"

namespace regal {
namespace {

TEST(RegionTest, StrictInclusionPerPaperFormula) {
  // r ⊃ s iff (l(r)<l(s) and r(r)>=r(s)) or (l(r)<=l(s) and r(r)>r(s)).
  Region r{0, 10};
  EXPECT_TRUE(StrictlyIncludes(r, Region{1, 9}));
  EXPECT_TRUE(StrictlyIncludes(r, Region{0, 9}));   // Shared left endpoint.
  EXPECT_TRUE(StrictlyIncludes(r, Region{1, 10}));  // Shared right endpoint.
  EXPECT_FALSE(StrictlyIncludes(r, Region{0, 10}));  // Equal is not strict.
  EXPECT_FALSE(StrictlyIncludes(r, Region{0, 11}));
  EXPECT_FALSE(StrictlyIncludes(r, Region{5, 15}));
  EXPECT_FALSE(StrictlyIncludes(Region{1, 9}, r));
}

TEST(RegionTest, PrecedesIsStrict) {
  EXPECT_TRUE(Precedes(Region{0, 4}, Region{5, 9}));
  EXPECT_FALSE(Precedes(Region{0, 5}, Region{5, 9}));  // Touching offsets.
  EXPECT_FALSE(Precedes(Region{5, 9}, Region{0, 4}));
}

TEST(RegionTest, PartialOverlap) {
  EXPECT_TRUE(PartiallyOverlaps(Region{0, 5}, Region{3, 8}));
  EXPECT_FALSE(PartiallyOverlaps(Region{0, 5}, Region{1, 4}));
  EXPECT_FALSE(PartiallyOverlaps(Region{0, 5}, Region{6, 8}));
  EXPECT_FALSE(PartiallyOverlaps(Region{0, 5}, Region{0, 5}));
}

TEST(RegionTest, DocumentOrderAncestorsFirst) {
  RegionDocumentOrder less;
  EXPECT_TRUE(less(Region{0, 10}, Region{0, 5}));  // Parent before child.
  EXPECT_TRUE(less(Region{0, 5}, Region{1, 3}));
  EXPECT_TRUE(less(Region{0, 2}, Region{3, 5}));
  EXPECT_FALSE(less(Region{0, 5}, Region{0, 5}));
}

TEST(RegionSetTest, FromUnsortedSortsAndDedups) {
  RegionSet s = RegionSet::FromUnsorted(
      {Region{5, 6}, Region{0, 10}, Region{5, 6}, Region{0, 3}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], (Region{0, 10}));
  EXPECT_EQ(s[1], (Region{0, 3}));
  EXPECT_EQ(s[2], (Region{5, 6}));
  EXPECT_TRUE(s.IsValid());
}

TEST(RegionSetTest, Member) {
  RegionSet s{Region{0, 10}, Region{2, 4}, Region{6, 8}};
  EXPECT_TRUE(s.Member(Region{2, 4}));
  EXPECT_FALSE(s.Member(Region{2, 5}));
  EXPECT_FALSE(RegionSet().Member(Region{0, 1}));
}

TEST(RegionSetTest, LaminarAcceptsNesting) {
  RegionSet s{Region{0, 10}, Region{1, 4}, Region{2, 3}, Region{5, 9}};
  EXPECT_TRUE(s.IsLaminar());
}

TEST(RegionSetTest, LaminarRejectsPartialOverlap) {
  RegionSet s{Region{0, 5}, Region{3, 8}};
  EXPECT_FALSE(s.IsLaminar());
}

TEST(RegionSetTest, LaminarDeepStack) {
  // Overlap detectable only against a non-immediate predecessor:
  // [0,100] ⊃ [1,2], then [3,50] nests in [0,100] but overlaps... build a
  // case where the open-ancestor stack must be consulted after pops.
  RegionSet s{Region{0, 100}, Region{1, 10}, Region{2, 3}, Region{8, 20}};
  EXPECT_FALSE(s.IsLaminar());  // [8,20] overlaps [1,10].
}

TEST(RegionSetTest, ToStringFormat) {
  RegionSet s{Region{1, 2}};
  EXPECT_EQ(s.ToString(), "{[1,2]}");
  EXPECT_EQ(RegionSet().ToString(), "{}");
}

TEST(RegionSetTest, EqualityIsStructural) {
  RegionSet a{Region{0, 1}, Region{2, 3}};
  RegionSet b = RegionSet::FromUnsorted({Region{2, 3}, Region{0, 1}});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace regal
