#include <gtest/gtest.h>

#include "text/pattern.h"
#include "text/text.h"
#include "text/tokenizer.h"

namespace regal {
namespace {

TEST(TextTest, SliceInclusive) {
  Text t("hello world");
  EXPECT_EQ(t.Slice(0, 4), "hello");
  EXPECT_EQ(t.Slice(6, 10), "world");
  EXPECT_EQ(t.Slice(4, 6), "o w");
}

TEST(TextTest, LineAndColumn) {
  Text t("ab\ncd\nef");
  EXPECT_EQ(t.LineOf(0), 1);
  EXPECT_EQ(t.LineOf(2), 1);  // The newline belongs to line 1.
  EXPECT_EQ(t.LineOf(3), 2);
  EXPECT_EQ(t.LineOf(7), 3);
  EXPECT_EQ(t.ColumnOf(3), 1);
  EXPECT_EQ(t.ColumnOf(4), 2);
}

TEST(TextTest, SnippetEllipsizes) {
  Text t(std::string(200, 'x'));
  std::string snippet = t.Snippet(0, 199, 20);
  EXPECT_EQ(snippet.size(), 20u);
  EXPECT_TRUE(snippet.ends_with("..."));
}

TEST(TextTest, SnippetFlattensNewlines) {
  Text t("a\nb\tc");
  EXPECT_EQ(t.Snippet(0, 4), "a b c");
}

TEST(TokenizerTest, BasicWords) {
  auto tokens = Tokenize("foo bar_baz 42");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], (Token{0, 2}));
  EXPECT_EQ(tokens[1], (Token{4, 10}));
  EXPECT_EQ(tokens[2], (Token{12, 13}));
}

TEST(TokenizerTest, PunctuationSkipped) {
  auto tokens = Tokenize("a,b;(c)");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(TokenText("a,b;(c)", tokens[2]), "c");
}

TEST(TokenizerTest, EmptyAndAllPunct) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize(" .,;! ").empty());
}

TEST(PatternTest, ExactWord) {
  auto p = Pattern::Parse("foo");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("foo"));
  EXPECT_FALSE(p->MatchesToken("food"));
  EXPECT_FALSE(p->MatchesToken("Foo"));
  EXPECT_EQ(p->ToString(), "foo");
}

TEST(PatternTest, PrefixPattern) {
  auto p = Pattern::Parse("foo*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("foo"));
  EXPECT_TRUE(p->MatchesToken("food"));
  EXPECT_FALSE(p->MatchesToken("xfoo"));
}

TEST(PatternTest, SuffixPattern) {
  auto p = Pattern::Parse("*ing");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("querying"));
  EXPECT_TRUE(p->MatchesToken("ing"));
  EXPECT_FALSE(p->MatchesToken("ingot"));
}

TEST(PatternTest, InfixPattern) {
  auto p = Pattern::Parse("*reg*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("regions"));
  EXPECT_TRUE(p->MatchesToken("aggregate"));
  EXPECT_FALSE(p->MatchesToken("rigs"));
}

TEST(PatternTest, QuestionMarkWildcard) {
  auto p = Pattern::Parse("f?o");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("foo"));
  EXPECT_TRUE(p->MatchesToken("fio"));
  EXPECT_FALSE(p->MatchesToken("fo"));
  EXPECT_FALSE(p->MatchesToken("fooo"));
}

TEST(PatternTest, CaseInsensitive) {
  auto p = Pattern::Parse("Foo", /*case_insensitive=*/true);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesToken("foo"));
  EXPECT_TRUE(p->MatchesToken("FOO"));
  EXPECT_NE(p->CacheKey(), Pattern::Parse("Foo")->CacheKey());
}

TEST(PatternTest, LiteralCore) {
  auto p = Pattern::Parse("ab?cde?f");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->LiteralCore(), "cde");
  EXPECT_EQ(p->CoreOffsetInBody(), 3);
}

TEST(PatternTest, CoreLowercasedWhenInsensitive) {
  auto p = Pattern::Parse("ABC", /*case_insensitive=*/true);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->LiteralCore(), "abc");
}

TEST(PatternTest, EmptyBodyRejected) {
  EXPECT_FALSE(Pattern::Parse("").ok());
  EXPECT_FALSE(Pattern::Parse("*").ok());
  EXPECT_FALSE(Pattern::Parse("**").ok());
}

TEST(PatternTest, InteriorStarRejected) {
  EXPECT_FALSE(Pattern::Parse("a*b").ok());
}

TEST(PatternTest, RoundTrip) {
  for (const char* spec : {"foo", "foo*", "*foo", "*f?o*", "a?c"}) {
    auto p = Pattern::Parse(spec);
    ASSERT_TRUE(p.ok()) << spec;
    EXPECT_EQ(p->ToString(), spec);
    auto reparsed = Pattern::Parse(p->ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(*p == *reparsed);
  }
}

TEST(PatternTest, AllWildcardBodyHasEmptyCore) {
  auto p = Pattern::Parse("???");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->LiteralCore(), "");
  EXPECT_TRUE(p->MatchesToken("abc"));
  EXPECT_FALSE(p->MatchesToken("ab"));
}

}  // namespace
}  // namespace regal
