#include <gtest/gtest.h>

#include "core/extended.h"
#include "doc/synthetic.h"
#include "relational/extended_via_relational.h"
#include "relational/table.h"
#include "util/random.h"

namespace regal {
namespace {

RegionTable TwoColumn() {
  return RegionTable::FromRows(
      {"a", "b"},
      {{Region{0, 5}, Region{1, 2}}, {Region{0, 5}, Region{3, 4}},
       {Region{6, 9}, Region{7, 8}}});
}

TEST(RegionTableTest, FromSetRoundTrip) {
  RegionSet set{Region{0, 5}, Region{6, 9}};
  RegionTable t = RegionTable::FromSet("x", set);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 1u);
  auto back = t.Column("x");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, set);
  EXPECT_FALSE(t.Column("nope").ok());
}

TEST(RegionTableTest, FromRowsDeduplicates) {
  RegionTable t = RegionTable::FromRows(
      {"a"}, {{Region{0, 1}}, {Region{0, 1}}, {Region{2, 3}}});
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(RegionTableTest, ProductShapes) {
  RegionTable a = RegionTable::FromSet("a", RegionSet{Region{0, 1}, Region{2, 3}});
  RegionTable b = RegionTable::FromSet("b", RegionSet{Region{4, 5}});
  auto p = Product(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRows(), 2u);
  EXPECT_EQ(p->columns(), (std::vector<std::string>{"a", "b"}));
  // Duplicate columns rejected.
  EXPECT_FALSE(Product(a, a).ok());
}

TEST(RegionTableTest, ThetaJoin) {
  RegionTable outer = RegionTable::FromSet("o", RegionSet{Region{0, 9}, Region{10, 19}});
  RegionTable inner = RegionTable::FromSet("i", RegionSet{Region{1, 2}, Region{11, 12}, Region{30, 31}});
  auto joined = Join(outer, inner, "o", RegionPredicate::kIncludes, "i");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 2u);  // Each outer matches its own inner.
}

TEST(RegionTableTest, SelectWhereAndProject) {
  RegionTable t = TwoColumn();
  auto sel = SelectWhere(t, "b", RegionPredicate::kPrecedes, "a");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->NumRows(), 0u);  // b's are inside a's, never before.
  auto proj = Project(t, {"a"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->NumRows(), 2u);  // Deduplicated.
  auto reorder = Project(t, {"b", "a"});
  ASSERT_TRUE(reorder.ok());
  EXPECT_EQ(reorder->columns(), (std::vector<std::string>{"b", "a"}));
}

TEST(RegionTableTest, UnionDifferenceSchemaChecked) {
  RegionTable t = TwoColumn();
  auto u = TableUnion(t, t);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, t);
  auto d = TableDifference(t, t);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumRows(), 0u);
  RegionTable other = RegionTable::FromSet("z", RegionSet{});
  EXPECT_FALSE(TableUnion(t, other).ok());
  EXPECT_FALSE(TableDifference(t, other).ok());
}

TEST(RegionTableTest, RenameKeepsRows) {
  RegionTable t = TwoColumn();
  auto renamed = Rename(t, "a", "alpha");
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->columns(), (std::vector<std::string>{"alpha", "b"}));
  EXPECT_EQ(renamed->rows(), t.rows());
  EXPECT_FALSE(Rename(t, "missing", "x").ok());
}

TEST(RegionTableTest, PredicateSemantics) {
  Region outer{0, 9};
  Region inner{2, 4};
  Region after{12, 14};
  EXPECT_TRUE(EvalRegionPredicate(RegionPredicate::kIncludes, outer, inner));
  EXPECT_TRUE(EvalRegionPredicate(RegionPredicate::kIncludedIn, inner, outer));
  EXPECT_TRUE(EvalRegionPredicate(RegionPredicate::kPrecedes, inner, after));
  EXPECT_TRUE(EvalRegionPredicate(RegionPredicate::kFollows, after, inner));
  EXPECT_TRUE(EvalRegionPredicate(RegionPredicate::kEquals, outer, outer));
  EXPECT_FALSE(EvalRegionPredicate(RegionPredicate::kIncludes, outer, outer));
}

// Section 7's expressibility claim, verified against the native operators.
class RelationalExtensionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationalExtensionTest, DirectIncludingMatchesNative) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 25;
    Instance instance = RandomLaminarInstance(rng, options);
    RegionSet r0 = **instance.Get("R0");
    RegionSet r1 = **instance.Get("R1");
    auto relational = DirectIncludingRelational(instance, r0, r1);
    ASSERT_TRUE(relational.ok()) << relational.status();
    EXPECT_EQ(*relational, DirectIncluding(instance, r0, r1));
  }
}

TEST_P(RelationalExtensionTest, BothIncludedMatchesNative) {
  Rng rng(GetParam() * 11 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 25;
    Instance instance = RandomLaminarInstance(rng, options);
    RegionSet r0 = **instance.Get("R0");
    RegionSet r1 = **instance.Get("R1");
    RegionSet r2 = **instance.Get("R2");
    auto relational = BothIncludedRelational(r0, r1, r2);
    ASSERT_TRUE(relational.ok()) << relational.status();
    EXPECT_EQ(*relational, BothIncluded(r0, r1, r2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationalExtensionTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(RelationalExtensionTest, Figure3ViaRelations) {
  Instance instance = MakeFigure3Instance(2);
  auto result = BothIncludedRelational(
      **instance.Get("C"), **instance.Get("B"), **instance.Get("A"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

}  // namespace
}  // namespace regal
