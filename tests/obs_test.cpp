#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <string>

#include "core/eval.h"
#include "doc/sgml.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace regal {
namespace {

// Minimal recursive-descent JSON syntax checker, enough to assert that the
// exporters emit well-formed documents without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool ValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

TEST(JsonWriterTest, BuildsDocuments) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\" name\n");
  w.Key("n").Int(-7);
  w.Key("flag").Bool(true);
  w.Key("xs").BeginArray();
  w.Double(1.5);
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  w.EndObject();
  std::string doc = w.Take();
  EXPECT_EQ(doc,
            "{\"name\":\"a \\\"quoted\\\" name\\n\",\"n\":-7,"
            "\"flag\":true,\"xs\":[1.5,null]}");
  EXPECT_TRUE(ValidJson(doc));
}

TEST(MetricsTest, CounterAndGaugeSemantics) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("ops", {{"op", "union"}});
  c->Increment();
  c->Increment(4);
  // Same name+labels returns the same instance; different labels a new one.
  EXPECT_EQ(registry.GetCounter("ops", {{"op", "union"}}), c);
  EXPECT_NE(registry.GetCounter("ops", {{"op", "within"}}), c);
  EXPECT_EQ(c->value(), 5);

  registry.GetGauge("depth")->Set(3.5);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  bool saw_union = false;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.name == "ops" && m.labels.at("op") == "union") {
      saw_union = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(m.value, 5);
    }
  }
  EXPECT_TRUE(saw_union);

  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsTest, HistogramBuckets) {
  obs::Registry registry;
  obs::Histogram* h =
      registry.GetHistogram("latency", {}, std::vector<double>{1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(50);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 55.5);
  std::vector<int64_t> cumulative = h->CumulativeBucketCounts();
  ASSERT_EQ(cumulative.size(), 3u);  // {<=1, <=10, +inf}.
  EXPECT_EQ(cumulative[0], 1);
  EXPECT_EQ(cumulative[1], 2);
  EXPECT_EQ(cumulative[2], 3);

  std::string json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(CountersTest, SinkSwapAndRestore) {
  EXPECT_EQ(obs::CountersSink(), nullptr);
  obs::OpCounters local;
  obs::OpCounters* previous = obs::SwapCountersSink(&local);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(obs::CountersSink(), &local);
  obs::SwapCountersSink(previous);
  EXPECT_EQ(obs::CountersSink(), nullptr);
}

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta</para></sec></doc>";

TEST(TraceTest, SpanTreeMirrorsExpressionShape) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok()) << instance.status();

  // `para` is a shared subtree: its second mention must show up as a
  // childless memoized span, so the tree still mirrors the expression.
  ExprPtr para = Expr::Name("para");
  ExprPtr expr = Expr::Union(
      Expr::Binary(OpKind::kIncluded, para, Expr::Name("sec")), para);

  obs::Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  auto result = Evaluate(*instance, expr, options);
  ASSERT_TRUE(result.ok()) << result.status();

  obs::Span root = tracer.Build();
  EXPECT_EQ(root.name, "union");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.rows_out, static_cast<int64_t>(result->size()));

  const obs::Span& within = root.children[0];
  EXPECT_EQ(within.name, "within");
  ASSERT_EQ(within.children.size(), 2u);
  EXPECT_EQ(within.children[0].name, "scan");
  EXPECT_EQ(within.children[0].detail, "para");
  EXPECT_EQ(within.children[1].detail, "sec");
  EXPECT_GT(within.counters.comparisons, 0);

  const obs::Span& cached = root.children[1];
  EXPECT_TRUE(cached.from_cache);
  EXPECT_TRUE(cached.children.empty());
  EXPECT_EQ(cached.rows_out, 3);  // All three paras, from the memo table.

  EXPECT_EQ(root.TotalSpans(), 5);
  EXPECT_EQ(root.Depth(), 3);
  // The whole-trace counters cover every operator in the plan.
  EXPECT_GE(tracer.counters().comparisons, within.counters.comparisons);
}

TEST(TraceTest, ExportsAreWellFormed) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok());
  auto expr = Expr::Binary(OpKind::kIncluded, Expr::Name("para"),
                           Expr::Name("sec"));
  obs::Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  ASSERT_TRUE(Evaluate(*instance, expr, options).ok());
  obs::Span root = tracer.Build();

  std::string tree = obs::FormatSpanTree(root);
  EXPECT_NE(tree.find("within"), std::string::npos);
  EXPECT_NE(tree.find("scan para"), std::string::npos);
  EXPECT_NE(tree.find("rows="), std::string::npos);

  std::string json = obs::SpanToJson(root);
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"name\":\"within\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);

  std::string chrome = obs::SpanToChromeTrace(root);
  EXPECT_TRUE(ValidJson(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceTest, DisabledTracingTouchesNothing) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok());
  auto expr = Expr::Binary(OpKind::kIncluded, Expr::Name("para"),
                           Expr::Name("sec"));

  // No tracer: the thread's counter sink stays null the whole way.
  EXPECT_EQ(obs::CountersSink(), nullptr);
  ASSERT_TRUE(Evaluate(*instance, expr).ok());
  EXPECT_EQ(obs::CountersSink(), nullptr);

  // A tracer that no evaluator uses records no spans, and its sink is
  // restored on destruction.
  {
    obs::Tracer idle;
    EXPECT_NE(obs::CountersSink(), nullptr);
    EXPECT_EQ(idle.num_spans(), 0);
  }
  EXPECT_EQ(obs::CountersSink(), nullptr);
}

TEST(ScopedTimerTest, ReportsIntoTarget) {
  double elapsed_ms = -1;
  {
    ScopedTimer timer(&elapsed_ms);
    EXPECT_GE(timer.Nanos(), 0);
  }
  EXPECT_GE(elapsed_ms, 0);

  double via_callback = -1;
  {
    ScopedTimer timer([&](double ms) { via_callback = ms; });
  }
  EXPECT_GE(via_callback, 0);
}

}  // namespace
}  // namespace regal
