#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "doc/sgml.h"
#include "json_checker.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace regal {
namespace {

using testutil::ValidJson;

TEST(JsonWriterTest, BuildsDocuments) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a \"quoted\" name\n");
  w.Key("n").Int(-7);
  w.Key("flag").Bool(true);
  w.Key("xs").BeginArray();
  w.Double(1.5);
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  w.EndObject();
  std::string doc = w.Take();
  EXPECT_EQ(doc,
            "{\"name\":\"a \\\"quoted\\\" name\\n\",\"n\":-7,"
            "\"flag\":true,\"xs\":[1.5,null]}");
  EXPECT_TRUE(ValidJson(doc));
}

TEST(MetricsTest, CounterAndGaugeSemantics) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("ops", {{"op", "union"}});
  c->Increment();
  c->Increment(4);
  // Same name+labels returns the same instance; different labels a new one.
  EXPECT_EQ(registry.GetCounter("ops", {{"op", "union"}}), c);
  EXPECT_NE(registry.GetCounter("ops", {{"op", "within"}}), c);
  EXPECT_EQ(c->value(), 5);

  registry.GetGauge("depth")->Set(3.5);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  bool saw_union = false;
  for (const obs::MetricSnapshot& m : snapshot) {
    if (m.name == "ops" && m.labels.at("op") == "union") {
      saw_union = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(m.value, 5);
    }
  }
  EXPECT_TRUE(saw_union);

  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsTest, HistogramBuckets) {
  obs::Registry registry;
  obs::Histogram* h =
      registry.GetHistogram("latency", {}, std::vector<double>{1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(50);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 55.5);
  std::vector<int64_t> cumulative = h->CumulativeBucketCounts();
  ASSERT_EQ(cumulative.size(), 3u);  // {<=1, <=10, +inf}.
  EXPECT_EQ(cumulative[0], 1);
  EXPECT_EQ(cumulative[1], 2);
  EXPECT_EQ(cumulative[2], 3);

  std::string json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
}

TEST(CountersTest, SinkSwapAndRestore) {
  EXPECT_EQ(obs::CountersSink(), nullptr);
  obs::OpCounters local;
  obs::OpCounters* previous = obs::SwapCountersSink(&local);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(obs::CountersSink(), &local);
  obs::SwapCountersSink(previous);
  EXPECT_EQ(obs::CountersSink(), nullptr);
}

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta</para></sec></doc>";

TEST(TraceTest, SpanTreeMirrorsExpressionShape) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok()) << instance.status();

  // `para` is a shared subtree: its second mention must show up as a
  // childless memoized span, so the tree still mirrors the expression.
  ExprPtr para = Expr::Name("para");
  ExprPtr expr = Expr::Union(
      Expr::Binary(OpKind::kIncluded, para, Expr::Name("sec")), para);

  obs::Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  auto result = Evaluate(*instance, expr, options);
  ASSERT_TRUE(result.ok()) << result.status();

  obs::Span root = tracer.Build();
  EXPECT_EQ(root.name, "union");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.rows_out, static_cast<int64_t>(result->size()));

  const obs::Span& within = root.children[0];
  EXPECT_EQ(within.name, "within");
  ASSERT_EQ(within.children.size(), 2u);
  EXPECT_EQ(within.children[0].name, "scan");
  EXPECT_EQ(within.children[0].detail, "para");
  EXPECT_EQ(within.children[1].detail, "sec");
  EXPECT_GT(within.counters.comparisons, 0);

  const obs::Span& cached = root.children[1];
  EXPECT_TRUE(cached.from_cache);
  EXPECT_TRUE(cached.children.empty());
  EXPECT_EQ(cached.rows_out, 3);  // All three paras, from the memo table.

  EXPECT_EQ(root.TotalSpans(), 5);
  EXPECT_EQ(root.Depth(), 3);
  // The whole-trace counters cover every operator in the plan.
  EXPECT_GE(tracer.counters().comparisons, within.counters.comparisons);
}

TEST(TraceTest, ExportsAreWellFormed) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok());
  auto expr = Expr::Binary(OpKind::kIncluded, Expr::Name("para"),
                           Expr::Name("sec"));
  obs::Tracer tracer;
  EvalOptions options;
  options.tracer = &tracer;
  ASSERT_TRUE(Evaluate(*instance, expr, options).ok());
  obs::Span root = tracer.Build();

  std::string tree = obs::FormatSpanTree(root);
  EXPECT_NE(tree.find("within"), std::string::npos);
  EXPECT_NE(tree.find("scan para"), std::string::npos);
  EXPECT_NE(tree.find("rows="), std::string::npos);

  std::string json = obs::SpanToJson(root);
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"name\":\"within\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);

  std::string chrome = obs::SpanToChromeTrace(root);
  EXPECT_TRUE(ValidJson(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceTest, DisabledTracingTouchesNothing) {
  auto instance = ParseSgml(kDoc);
  ASSERT_TRUE(instance.ok());
  auto expr = Expr::Binary(OpKind::kIncluded, Expr::Name("para"),
                           Expr::Name("sec"));

  // No tracer: the thread's counter sink stays null the whole way.
  EXPECT_EQ(obs::CountersSink(), nullptr);
  ASSERT_TRUE(Evaluate(*instance, expr).ok());
  EXPECT_EQ(obs::CountersSink(), nullptr);

  // A tracer that no evaluator uses records no spans, and its sink is
  // restored on destruction.
  {
    obs::Tracer idle;
    EXPECT_NE(obs::CountersSink(), nullptr);
    EXPECT_EQ(idle.num_spans(), 0);
  }
  EXPECT_EQ(obs::CountersSink(), nullptr);
}

TEST(MetricsTest, GaugeAddIsAnUpDownCounter) {
  obs::Registry registry;
  obs::Gauge* g = registry.GetGauge("inflight");
  g->Add(1);
  g->Add(2.5);
  g->Add(-1);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  g->Set(0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesNewlinesAndControls) {
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(obs::JsonEscape("tab\tcr\r"), "tab\\tcr\\r");
  EXPECT_EQ(obs::JsonEscape(std::string("nul\x01", 4)), "nul\\u0001");
  // Non-ASCII UTF-8 passes through byte-for-byte.
  EXPECT_EQ(obs::JsonEscape("caf\xc3\xa9 \xe2\x9c\x93"),
            "caf\xc3\xa9 \xe2\x9c\x93");
}

TEST(JsonEscapeTest, HostileStringsStillProduceValidDocuments) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("k\"ey\\\n").String(std::string("v\"\\\n\t\x01 caf\xc3\xa9", 14));
  w.EndObject();
  std::string doc = w.Take();
  EXPECT_TRUE(ValidJson(doc)) << doc;
}

TEST(PrometheusTest, LabelAndHelpEscaping) {
  EXPECT_EQ(obs::PrometheusEscapeLabel("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  // Help text escapes backslash and newline but not quotes (exposition
  // format 0.0.4).
  EXPECT_EQ(obs::PrometheusEscapeHelp("say \"hi\"\\\n"), "say \"hi\"\\\\\\n");
  // Non-ASCII UTF-8 passes through byte-for-byte.
  EXPECT_EQ(obs::PrometheusEscapeLabel("caf\xc3\xa9"), "caf\xc3\xa9");
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(PrometheusTest, ExpositionGroupsFamiliesAndRendersHistograms) {
  obs::Registry registry;
  registry.GetCounter("regal_queries_total", {{"verb", "run"}})->Increment(3);
  registry.GetCounter("regal_queries_total", {{"verb", "explain"}})
      ->Increment();
  registry.GetGauge("regal_cache_bytes")->Set(123);
  obs::Histogram* h = registry.GetHistogram("regal_query_latency_ms", {},
                                            std::vector<double>{1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5);
  h->Observe(50);
  std::string text = obs::MetricsToPrometheus(registry.Snapshot());

  // HELP/TYPE exactly once per family, even with several label sets.
  EXPECT_EQ(CountOccurrences(text, "# TYPE regal_queries_total counter"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# HELP regal_queries_total "), 1u);
  EXPECT_EQ(CountOccurrences(text, "# TYPE regal_cache_bytes gauge"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# TYPE regal_query_latency_ms histogram"),
            1u);

  EXPECT_NE(text.find("regal_queries_total{verb=\"run\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("regal_queries_total{verb=\"explain\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("regal_cache_bytes 123"), std::string::npos);
  EXPECT_NE(text.find("regal_query_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("regal_query_latency_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("regal_query_latency_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("regal_query_latency_ms_sum 55.5"), std::string::npos);
  EXPECT_NE(text.find("regal_query_latency_ms_count 3"), std::string::npos);
}

TEST(PrometheusTest, HostileLabelValuesAreEscapedInTheExposition) {
  obs::Registry registry;
  registry.GetCounter("regal_queries_total", {{"verb", "we\"ird\\x\n"}})
      ->Increment();
  std::string text = obs::MetricsToPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("verb=\"we\\\"ird\\\\x\\n\""), std::string::npos)
      << text;
}

TEST(EventLogTest, EmitsWellFormedJsonl) {
  auto sink = std::make_shared<obs::CaptureSink>();
  obs::EventLog log(sink);
  log.Log(obs::Severity::kWarning, "engine", "slow \"query\"\n", 7,
          {{"elapsed_ms", "12.5"}, {"q", "caf\xc3\xa9"}});
  std::vector<std::string> lines = sink->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(ValidJson(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"subsystem\":\"engine\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"query_id\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"elapsed_ms\":\"12.5\""), std::string::npos);
}

TEST(EventLogTest, MinSeverityFiltersBeforeRateLimiting) {
  auto sink = std::make_shared<obs::CaptureSink>();
  obs::EventLog log(sink);
  log.Log(obs::Severity::kDebug, "engine", "noise");
  EXPECT_TRUE(sink->lines().empty());
  EXPECT_EQ(log.dropped(), 0);  // Filtered, not dropped.
  log.set_min_severity(obs::Severity::kDebug);
  log.Log(obs::Severity::kDebug, "engine", "now visible");
  EXPECT_EQ(sink->lines().size(), 1u);
}

TEST(EventLogTest, RateLimiterBoundsEmissionAndCountsDrops) {
  auto sink = std::make_shared<obs::CaptureSink>();
  obs::EventLogOptions options;
  options.max_records_per_second = 10;
  obs::EventLog log(sink, options);
  for (int i = 0; i < 200; ++i) {
    log.Log(obs::Severity::kInfo, "t", "m");
  }
  // Burst = one second of budget; the loop finishes in well under a second,
  // so emissions stay near the burst size and the rest are counted dropped.
  EXPECT_LE(sink->lines().size(), 30u);
  EXPECT_GE(log.dropped(), 1);
  EXPECT_EQ(static_cast<size_t>(log.dropped()) + sink->lines().size(), 200u);
}

TEST(FlightRecorderTest, KeepsErrorsAndSlowQueriesDropsFastOnes) {
  obs::EventLog quiet_log(std::make_shared<obs::CaptureSink>());
  obs::FlightRecorderOptions options;
  options.slow_threshold_ms = 10;
  options.sample_period = 0;  // No background sampling in this test.
  options.log = &quiet_log;
  obs::FlightRecorder recorder(options);

  obs::QueryRecord fast;
  fast.query_id = recorder.NextQueryId();
  fast.elapsed_ms = 1;
  EXPECT_FALSE(recorder.WouldKeep(true, 1, false));
  EXPECT_FALSE(recorder.Record(fast));

  obs::QueryRecord slow;
  slow.query_id = recorder.NextQueryId();
  slow.elapsed_ms = 50;
  EXPECT_TRUE(recorder.WouldKeep(true, 50, false));
  EXPECT_TRUE(recorder.Record(slow));

  obs::QueryRecord failed;
  failed.query_id = recorder.NextQueryId();
  failed.ok = false;
  failed.status = "NOT_FOUND: unknown region name 'zzz'";
  failed.status_code = "not_found";
  EXPECT_TRUE(recorder.WouldKeep(false, 0, false));
  EXPECT_TRUE(recorder.Record(failed));

  std::vector<obs::QueryRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // Most recent first.
  EXPECT_FALSE(snapshot[0].ok);
  EXPECT_EQ(snapshot[0].status_code, "not_found");
  EXPECT_TRUE(snapshot[1].slow);     // Stamped by Record.
  EXPECT_GT(snapshot[0].ts_ms, 0);   // Stamped when absent.
  EXPECT_EQ(recorder.entries(), 2u);
}

TEST(FlightRecorderTest, RingEvictsOldestFirst) {
  obs::EventLog quiet_log(std::make_shared<obs::CaptureSink>());
  obs::FlightRecorderOptions options;
  options.capacity = 2;
  options.slow_threshold_ms = 0;  // Keep everything.
  options.log = &quiet_log;
  obs::FlightRecorder recorder(options);
  for (int i = 0; i < 3; ++i) {
    obs::QueryRecord record;
    record.query_id = recorder.NextQueryId();
    recorder.Record(std::move(record));
  }
  std::vector<obs::QueryRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].query_id, 3u);
  EXPECT_EQ(snapshot[1].query_id, 2u);  // Id 1 evicted.
  recorder.Clear();
  EXPECT_EQ(recorder.entries(), 0u);
}

TEST(FlightRecorderTest, SamplingIsDeterministicOneInN) {
  obs::FlightRecorderOptions options;
  options.sample_period = 4;
  obs::FlightRecorder recorder(options);
  int sampled = 0;
  for (uint64_t id = 1; id <= 100; ++id) {
    if (recorder.ShouldSample(id)) ++sampled;
    // Deterministic: the same id always answers the same way.
    EXPECT_EQ(recorder.ShouldSample(id), recorder.ShouldSample(id));
  }
  EXPECT_EQ(sampled, 25);
  recorder.set_sample_period(0);
  EXPECT_FALSE(recorder.ShouldSample(4));
}

TEST(FlightRecorderTest, TunablesAdjustLive) {
  obs::FlightRecorder recorder;
  recorder.set_slow_threshold_ms(5);
  EXPECT_TRUE(recorder.WouldKeep(true, 5, false));
  EXPECT_FALSE(recorder.WouldKeep(true, 4.9, false));
  recorder.set_slow_threshold_ms(1000);
  EXPECT_FALSE(recorder.WouldKeep(true, 5, false));
  recorder.set_sample_period(2);
  EXPECT_TRUE(recorder.ShouldSample(2));
  EXPECT_FALSE(recorder.ShouldSample(3));
}

TEST(FlightRecorderTest, QueryIdsAreMonotonicFromOne) {
  obs::FlightRecorder recorder;
  EXPECT_EQ(recorder.NextQueryId(), 1u);
  EXPECT_EQ(recorder.NextQueryId(), 2u);
  EXPECT_EQ(recorder.last_query_id(), 2u);
}

TEST(FlightRecorderTest, RecordJsonIsWellFormed) {
  obs::QueryRecord record;
  record.query_id = 9;
  record.ts_ms = 1717000000000;
  record.query = "\"para\" included \"sec\"\n";
  record.ok = false;
  record.status = "NOT_FOUND: nope \"quoted\"";
  record.status_code = "not_found";
  record.elapsed_ms = 1.25;
  record.plan.name = "within";
  record.plan.children.push_back(obs::Span{});
  std::string json = record.Json();
  EXPECT_TRUE(ValidJson(json)) << json;
  EXPECT_NE(json.find("\"query_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"status_code\":\"not_found\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
}

TEST(FlightRecorderTest, SlowAndErroredQueriesEchoToTheLog) {
  auto sink = std::make_shared<obs::CaptureSink>();
  obs::EventLog log(sink);
  obs::FlightRecorderOptions options;
  options.slow_threshold_ms = 10;
  options.sample_period = 0;
  options.log = &log;
  obs::FlightRecorder recorder(options);

  obs::QueryRecord slow;
  slow.query_id = recorder.NextQueryId();
  slow.elapsed_ms = 25;
  slow.query = "\"alpha\"";
  recorder.Record(std::move(slow));

  obs::QueryRecord failed;
  failed.query_id = recorder.NextQueryId();
  failed.ok = false;
  failed.status_code = "cancelled";
  recorder.Record(std::move(failed));

  // A sampled fast query is kept but not logged: sampling is background
  // collection, not an operator-facing event.
  obs::QueryRecord sampled;
  sampled.query_id = recorder.NextQueryId();
  sampled.sampled = true;
  recorder.Record(std::move(sampled));

  std::vector<std::string> lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("slow query"), std::string::npos);
  EXPECT_TRUE(ValidJson(lines[0])) << lines[0];
  EXPECT_NE(lines[1].find("query failed"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status_code\":\"cancelled\""),
            std::string::npos);
  EXPECT_EQ(recorder.entries(), 3u);
}

TEST(ScopedTimerTest, ReportsIntoTarget) {
  double elapsed_ms = -1;
  {
    ScopedTimer timer(&elapsed_ms);
    EXPECT_GE(timer.Nanos(), 0);
  }
  EXPECT_GE(elapsed_ms, 0);

  double via_callback = -1;
  {
    ScopedTimer timer([&](double ms) { via_callback = ms; });
  }
  EXPECT_GE(via_callback, 0);
}

}  // namespace
}  // namespace regal
