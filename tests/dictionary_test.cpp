#include <gtest/gtest.h>

#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"
#include "rig/rig.h"

namespace regal {
namespace {

TEST(DictionaryTest, GeneratedCorpusParses) {
  DictionaryGeneratorOptions options;
  options.entries = 20;
  std::string source = GenerateDictionarySource(options);
  auto instance = ParseSgml(source);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance->Validate().ok());
  EXPECT_EQ((**instance->Get("entry")).size(), 20u);
  EXPECT_EQ((**instance->Get("headword")).size(), 20u);
  EXPECT_GE((**instance->Get("sense")).size(), 20u);
}

TEST(DictionaryTest, SatisfiesDictionaryRig) {
  std::string source = GenerateDictionarySource(DictionaryGeneratorOptions{});
  auto instance = ParseSgml(source);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(InstanceSatisfiesRig(*instance, DictionaryRig()).ok());
}

TEST(DictionaryTest, Deterministic) {
  DictionaryGeneratorOptions options;
  options.seed = 5;
  EXPECT_EQ(GenerateDictionarySource(options),
            GenerateDictionarySource(options));
  options.seed = 6;
  EXPECT_NE(GenerateDictionarySource(DictionaryGeneratorOptions{}),
            GenerateDictionarySource(options));
}

TEST(DictionaryTest, OedStyleQueries) {
  DictionaryGeneratorOptions options;
  options.entries = 50;
  options.seed = 9;
  auto engine =
      QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  ASSERT_TRUE(engine.ok()) << engine.status();
  // Entries quoting SHAKESPEARE — the classic PAT/OED query.
  auto quoted = engine->Run(
      "entry including (author matching \"SHAKESPEARE\")");
  ASSERT_TRUE(quoted.ok());
  EXPECT_GT(quoted->regions.size(), 0u);
  EXPECT_LT(quoted->regions.size(), 50u);
  // Senses whose definition mentions a term that also appears in a quote
  // of the same entry (both-included at entry granularity).
  auto bi = engine->Run(
      "bi(entry, def matching \"term1\", qtext matching \"term2\")");
  ASSERT_TRUE(bi.ok());
  // Headwords of noun entries.
  auto nouns =
      engine->Run("headword within (entry including (pos matching \"n\"))");
  ASSERT_TRUE(nouns.ok());
  EXPECT_GT(nouns->regions.size(), 0u);
}

}  // namespace
}  // namespace regal
