// Integration of the ROG (region order graph) with Prop 5.4: for
// instances satisfying an acyclic ROG, the number of pairwise
// non-overlapping regions is bounded by the ROG's longest path, and the
// BothIncludedBounded expansion built from that bound is exact (on
// antichain operands).

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"
#include "rig/grammar.h"
#include "rig/rig.h"
#include "util/random.h"

namespace regal {
namespace {

// Documents with a fixed horizontal layout: doc > (title, abs, body),
// where body holds one S and one T paragraph in either order.
Instance MakeOrderedDoc(Rng& rng, int docs) {
  std::vector<NodeSpec> forest;
  for (int d = 0; d < docs; ++d) {
    NodeSpec doc{"doc", {NodeSpec{"title", {}}}};
    if (rng.Chance(0.5)) {
      doc.children.push_back(NodeSpec{"S", {}});
      doc.children.push_back(NodeSpec{"T", {}});
    } else {
      doc.children.push_back(NodeSpec{"T", {}});
      doc.children.push_back(NodeSpec{"S", {}});
    }
    forest.push_back(std::move(doc));
  }
  Instance instance = FromForest(forest);
  for (const char* name : {"doc", "title", "S", "T"}) {
    if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
  }
  return instance;
}

TEST(RogIntegrationTest, WidthBoundFromRog) {
  Digraph rog;
  rog.AddEdge("title", "S");
  rog.AddEdge("title", "T");
  rog.AddEdge("S", "T");
  auto bound = RogWidthBound(rog);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 3);  // title < S < T.
  Digraph cyclic;
  cyclic.AddEdge("S", "T");
  cyclic.AddEdge("T", "S");
  EXPECT_FALSE(RogWidthBound(cyclic).ok());
}

TEST(RogIntegrationTest, InstanceRogWidthCoversSiblingCount) {
  Rng rng(61);
  Instance instance = MakeOrderedDoc(rng, 5);
  // Within one doc at most 3 ordered children; across docs the derived
  // ROG contains doc -> doc etc., and the whole instance's antichain is
  // larger — the *derived* ROG of the instance must accept the instance.
  EXPECT_TRUE(InstanceSatisfiesRog(instance, instance.DeriveRog()).ok());
}

TEST(RogIntegrationTest, GrammarRogBoundsSingleDocument) {
  Grammar g;
  g.AddRule("doc", {"title", "S", "T"});
  g.AddRule("title", {"w"});
  g.AddRule("S", {"w"});
  g.AddRule("T", {"w"});
  Digraph rog = g.DeriveRog();
  auto bound = RogWidthBound(rog);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 3);
}

TEST(RogIntegrationTest, BoundedBothIncludedWithRogWidth) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    int docs = static_cast<int>(1 + rng.Below(6));
    Instance instance = MakeOrderedDoc(rng, docs);
    // Width of the S/T antichain across the whole instance: one S and one
    // T per doc.
    int width = 2 * docs + 1;
    ExprPtr bounded = BothIncludedBounded(Expr::Name("doc"), Expr::Name("S"),
                                          Expr::Name("T"), width);
    auto via_expr = Evaluate(instance, bounded);
    ASSERT_TRUE(via_expr.ok());
    RegionSet native = BothIncluded(**instance.Get("doc"),
                                    **instance.Get("S"),
                                    **instance.Get("T"));
    EXPECT_EQ(*via_expr, native);
    // Sanity: only the docs with S before T qualify.
    EXPECT_LE(native.size(), static_cast<size_t>(docs));
  }
}

}  // namespace
}  // namespace regal
