// Cross-query result cache suite (ctest label `cache`): canonical
// expression fingerprints, the sharded LRU ResultCache, epoch-based
// invalidation, governance interplay and concurrent sharing. Built as its
// own binary so a TSAN configuration (-DREGAL_SANITIZE=thread) can run just
// these tests: ctest -L cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "core/eval.h"
#include "core/expr.h"
#include "core/instance.h"
#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "query/engine.h"
#include "query/parser.h"
#include "safety/context.h"
#include "safety/failpoint.h"

namespace regal {
namespace {

using cache::CacheQueryStats;
using cache::ResultCache;
using cache::ResultCacheOptions;
using safety::CancelToken;
using safety::FailpointRegistry;
using safety::QueryLimits;

RegionSet MakeSet(std::vector<Region> regions) {
  return RegionSet::FromUnsorted(std::move(regions));
}

Instance SmallInstance() {
  Instance instance;
  EXPECT_TRUE(
      instance.AddRegionSet("a", MakeSet({{0, 9}, {20, 29}, {40, 49}})).ok());
  EXPECT_TRUE(instance.AddRegionSet("b", MakeSet({{0, 9}, {60, 69}})).ok());
  EXPECT_TRUE(instance.AddRegionSet("c", MakeSet({{20, 29}})).ok());
  return instance;
}

// Every test leaves the process-wide failpoint registry clean.
class CacheTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Default().DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Canonical form: hash / equality on expressions
// ---------------------------------------------------------------------------

using CanonicalTest = CacheTest;

TEST_F(CanonicalTest, CommutedUnionIsCanonicallyEqual) {
  ExprPtr ab = Expr::Union(Expr::Name("a"), Expr::Name("b"));
  ExprPtr ba = Expr::Union(Expr::Name("b"), Expr::Name("a"));
  EXPECT_EQ(ab->CanonicalHash(), ba->CanonicalHash());
  EXPECT_TRUE(ab->CanonicalEquals(*ba));
  // Ordinary structural equality still distinguishes them.
  EXPECT_FALSE(ab->Equals(*ba));
}

TEST_F(CanonicalTest, AssociativeRegroupingIsCanonicallyEqual) {
  ExprPtr left = Expr::Union(Expr::Union(Expr::Name("a"), Expr::Name("b")),
                             Expr::Name("c"));
  ExprPtr right = Expr::Union(Expr::Name("a"),
                              Expr::Union(Expr::Name("b"), Expr::Name("c")));
  ExprPtr shuffled = Expr::Union(Expr::Name("c"),
                                 Expr::Union(Expr::Name("b"), Expr::Name("a")));
  EXPECT_TRUE(left->CanonicalEquals(*right));
  EXPECT_TRUE(left->CanonicalEquals(*shuffled));
  EXPECT_EQ(left->CanonicalHash(), shuffled->CanonicalHash());
}

TEST_F(CanonicalTest, CommutedIntersectIsCanonicallyEqual) {
  ExprPtr ab = Expr::Intersect(Expr::Name("a"), Expr::Name("b"));
  ExprPtr ba = Expr::Intersect(Expr::Name("b"), Expr::Name("a"));
  EXPECT_TRUE(ab->CanonicalEquals(*ba));
}

TEST_F(CanonicalTest, DuplicateOperandsCollapse) {
  // Union and intersection are idempotent, so `a | a` canonicalizes to `a`.
  ExprPtr aa = Expr::Union(Expr::Name("a"), Expr::Name("a"));
  ExprPtr a = Expr::Name("a");
  EXPECT_TRUE(aa->CanonicalEquals(*a));
  EXPECT_EQ(aa->CanonicalHash(), a->CanonicalHash());
}

TEST_F(CanonicalTest, RepeatedSelectionCollapses) {
  Pattern p = *Pattern::Parse("term*");
  ExprPtr once = Expr::Select(p, Expr::Name("a"));
  ExprPtr twice = Expr::Select(p, Expr::Select(p, Expr::Name("a")));
  EXPECT_TRUE(once->CanonicalEquals(*twice));
  EXPECT_EQ(once->CanonicalHash(), twice->CanonicalHash());
  // Different patterns do not collapse.
  Pattern q = *Pattern::Parse("other");
  ExprPtr mixed = Expr::Select(q, Expr::Select(p, Expr::Name("a")));
  EXPECT_FALSE(once->CanonicalEquals(*mixed));
}

TEST_F(CanonicalTest, DistinctOperatorsStayDistinct) {
  ExprPtr u = Expr::Union(Expr::Name("a"), Expr::Name("b"));
  ExprPtr i = Expr::Intersect(Expr::Name("a"), Expr::Name("b"));
  ExprPtr d = Expr::Difference(Expr::Name("a"), Expr::Name("b"));
  ExprPtr d_rev = Expr::Difference(Expr::Name("b"), Expr::Name("a"));
  EXPECT_FALSE(u->CanonicalEquals(*i));
  EXPECT_FALSE(u->CanonicalEquals(*d));
  // Difference is not commutative; operand order must survive.
  EXPECT_FALSE(d->CanonicalEquals(*d_rev));
  // Neither are the containment operators.
  ExprPtr within = Expr::Included(Expr::Name("a"), Expr::Name("b"));
  ExprPtr within_rev = Expr::Included(Expr::Name("b"), Expr::Name("a"));
  EXPECT_FALSE(within->CanonicalEquals(*within_rev));
}

TEST_F(CanonicalTest, ParsedAndBuiltExpressionsAgree) {
  ExprPtr parsed = *ParseQuery("(a within b) | (a & c)");
  ExprPtr built = Expr::Union(
      Expr::Intersect(Expr::Name("c"), Expr::Name("a")),
      Expr::Included(Expr::Name("a"), Expr::Name("b")));
  EXPECT_TRUE(parsed->CanonicalEquals(*built));
  EXPECT_EQ(parsed->CanonicalHash(), built->CanonicalHash());
}

// ---------------------------------------------------------------------------
// ResultCache unit behavior
// ---------------------------------------------------------------------------

ResultCache::Key KeyFor(const ExprPtr& e, uint64_t instance_id = 1,
                        uint64_t epoch = 0) {
  return ResultCache::Key{instance_id, epoch, e->CanonicalHash()};
}

TEST_F(CacheTest, InsertThenLookupHits) {
  ResultCache cache;
  ExprPtr e = Expr::Canonicalize(Expr::Union(Expr::Name("a"), Expr::Name("b")));
  auto value = std::make_shared<const RegionSet>(MakeSet({{1, 2}, {3, 4}}));
  CacheQueryStats stats;
  EXPECT_TRUE(cache.Insert(KeyFor(e), e, value, &stats));
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_GT(cache.bytes(), 0);

  auto hit = cache.Lookup(KeyFor(e), e, &stats);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, *value);
  EXPECT_EQ(stats.hits, 1);

  // The commuted form reaches the same entry: same canonical fingerprint.
  ExprPtr commuted =
      Expr::Canonicalize(Expr::Union(Expr::Name("b"), Expr::Name("a")));
  EXPECT_NE(cache.Lookup(KeyFor(commuted), commuted, &stats), nullptr);
}

TEST_F(CacheTest, WrongEpochOrInstanceMisses) {
  ResultCache cache;
  ExprPtr e = Expr::Canonicalize(Expr::Intersect(Expr::Name("a"), Expr::Name("b")));
  auto value = std::make_shared<const RegionSet>(MakeSet({{1, 2}}));
  ASSERT_TRUE(cache.Insert(KeyFor(e, /*instance_id=*/1, /*epoch=*/3), e, value));

  CacheQueryStats stats;
  EXPECT_EQ(cache.Lookup(KeyFor(e, 1, 4), e, &stats), nullptr);  // newer epoch
  EXPECT_EQ(cache.Lookup(KeyFor(e, 2, 3), e, &stats), nullptr);  // other catalog
  EXPECT_EQ(stats.misses, 2);
  EXPECT_NE(cache.Lookup(KeyFor(e, 1, 3), e, &stats), nullptr);
}

TEST_F(CacheTest, LruEvictionDropsLeastRecentlyUsed) {
  ExprPtr ea = Expr::Canonicalize(Expr::Union(Expr::Name("a"), Expr::Name("b")));
  ExprPtr eb =
      Expr::Canonicalize(Expr::Intersect(Expr::Name("a"), Expr::Name("b")));
  ExprPtr ec =
      Expr::Canonicalize(Expr::Difference(Expr::Name("a"), Expr::Name("b")));
  auto va = std::make_shared<const RegionSet>(MakeSet({{1, 2}}));
  auto vb = std::make_shared<const RegionSet>(MakeSet({{3, 4}}));
  auto vc = std::make_shared<const RegionSet>(MakeSet({{5, 6}}));

  // One shard sized for exactly two of these entries.
  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = ResultCache::EntryBytes(*va) + ResultCache::EntryBytes(*vb);
  ResultCache cache(options);

  CacheQueryStats stats;
  ASSERT_TRUE(cache.Insert(KeyFor(ea), ea, va, &stats));
  ASSERT_TRUE(cache.Insert(KeyFor(eb), eb, vb, &stats));
  EXPECT_EQ(cache.entries(), 2);

  // Touch A so B becomes least recently used, then force an eviction.
  ASSERT_NE(cache.Lookup(KeyFor(ea), ea, &stats), nullptr);
  ASSERT_TRUE(cache.Insert(KeyFor(ec), ec, vc, &stats));
  EXPECT_GE(stats.evictions, 1);
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_NE(cache.Lookup(KeyFor(ea), ea, &stats), nullptr);  // survived
  EXPECT_EQ(cache.Lookup(KeyFor(eb), eb, &stats), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(KeyFor(ec), ec, &stats), nullptr);
  EXPECT_LE(cache.bytes(), options.max_bytes);
}

TEST_F(CacheTest, OversizedEntryIsRejected) {
  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = 64;  // Smaller than any entry's fixed overhead.
  ResultCache cache(options);
  ExprPtr e = Expr::Canonicalize(Expr::Union(Expr::Name("a"), Expr::Name("b")));
  auto value = std::make_shared<const RegionSet>(MakeSet({{1, 2}}));
  CacheQueryStats stats;
  EXPECT_FALSE(cache.Insert(KeyFor(e), e, value, &stats));
  EXPECT_EQ(stats.insert_failures, 1);
  EXPECT_EQ(cache.entries(), 0);
}

TEST_F(CacheTest, EvictionPressureFailpointAbandonsInsert) {
  ExprPtr ea = Expr::Canonicalize(Expr::Union(Expr::Name("a"), Expr::Name("b")));
  ExprPtr eb =
      Expr::Canonicalize(Expr::Intersect(Expr::Name("a"), Expr::Name("b")));
  auto va = std::make_shared<const RegionSet>(MakeSet({{1, 2}}));
  auto vb = std::make_shared<const RegionSet>(MakeSet({{3, 4}}));

  ResultCacheOptions options;
  options.shards = 1;
  options.max_bytes = ResultCache::EntryBytes(*va);
  ResultCache cache(options);
  ASSERT_TRUE(cache.Insert(KeyFor(ea), ea, va));

  FailpointRegistry::Default().Arm("cache.evict.pressure");
  CacheQueryStats stats;
  EXPECT_FALSE(cache.Insert(KeyFor(eb), eb, vb, &stats));
  EXPECT_EQ(stats.insert_failures, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_GT(FailpointRegistry::Default().FireCount("cache.evict.pressure"), 0);
  // The incumbent entry survives intact.
  EXPECT_NE(cache.Lookup(KeyFor(ea), ea, &stats), nullptr);

  // With the failpoint disarmed the same insert evicts normally.
  FailpointRegistry::Default().DisarmAll();
  EXPECT_TRUE(cache.Insert(KeyFor(eb), eb, vb, &stats));
  EXPECT_EQ(cache.Lookup(KeyFor(ea), ea, &stats), nullptr);
}

TEST_F(CacheTest, ClearDropsEverything) {
  ResultCache cache;
  ExprPtr e = Expr::Canonicalize(Expr::Union(Expr::Name("a"), Expr::Name("b")));
  auto value = std::make_shared<const RegionSet>(MakeSet({{1, 2}}));
  ASSERT_TRUE(cache.Insert(KeyFor(e), e, value));
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.Lookup(KeyFor(e), e), nullptr);
}

// ---------------------------------------------------------------------------
// Evaluator integration: seeding, publication, epoch invalidation
// ---------------------------------------------------------------------------

TEST_F(CacheTest, WarmEvaluationSkipsOperatorWork) {
  Instance instance = SmallInstance();
  ResultCache cache;
  ExprPtr e = *ParseQuery("(a & b) | (a & c)");

  EvalOptions options;
  options.result_cache = &cache;
  CacheQueryStats cold_stats;
  options.cache_stats = &cold_stats;
  Evaluator cold(&instance, options);
  auto expected = cold.Evaluate(e);
  ASSERT_TRUE(expected.ok());
  EXPECT_GT(cold_stats.inserts, 0);
  EXPECT_EQ(cold_stats.hits, 0);
  EXPECT_GT(cold.stats().operator_evals, 0);

  CacheQueryStats warm_stats;
  options.cache_stats = &warm_stats;
  Evaluator warm(&instance, options);
  auto again = warm.Evaluate(e);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *expected);
  EXPECT_EQ(warm_stats.hits, 1);  // Root hit short-circuits the whole tree.
  EXPECT_EQ(warm.stats().operator_evals, 0);
}

TEST_F(CacheTest, CommutedQueryHitsTheCache) {
  Instance instance = SmallInstance();
  ResultCache cache;
  EvalOptions options;
  options.result_cache = &cache;

  Evaluator first(&instance, options);
  auto expected = first.Evaluate(*ParseQuery("(a & b) | (a & c)"));
  ASSERT_TRUE(expected.ok());

  // Same query modulo commutativity and associativity of | and &.
  CacheQueryStats stats;
  options.cache_stats = &stats;
  Evaluator second(&instance, options);
  auto commuted = second.Evaluate(*ParseQuery("(c & a) | (b & a)"));
  ASSERT_TRUE(commuted.ok());
  EXPECT_EQ(*commuted, *expected);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(second.stats().operator_evals, 0);
}

TEST_F(CacheTest, MutationInvalidatesByEpochBump) {
  Instance instance = SmallInstance();
  ResultCache cache;
  ExprPtr e = *ParseQuery("a & b");

  EvalOptions options;
  options.result_cache = &cache;
  Evaluator cold(&instance, options);
  auto before = cold.Evaluate(e);
  ASSERT_TRUE(before.ok());
  EXPECT_GT(cache.entries(), 0);

  // Rebinding `a` bumps the epoch; the cached intersection must not be
  // served against the new data.
  const uint64_t old_epoch = instance.epoch();
  instance.SetRegionSet("a", MakeSet({{60, 69}}));
  EXPECT_GT(instance.epoch(), old_epoch);

  CacheQueryStats stats;
  options.cache_stats = &stats;
  Evaluator fresh(&instance, options);
  auto after = fresh.Evaluate(e);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(stats.hits, 0);
  EXPECT_GT(fresh.stats().operator_evals, 0);
  // {60,69} intersects b's {60,69}, not the old a's regions.
  EXPECT_EQ(after->size(), 1u);
  EXPECT_NE(*after, *before);
}

TEST_F(CacheTest, NaiveOracleStaysPure) {
  Instance instance = SmallInstance();
  ResultCache cache;
  EvalOptions options;
  options.result_cache = &cache;
  options.use_naive = true;
  CacheQueryStats stats;
  options.cache_stats = &stats;
  Evaluator naive(&instance, options);
  ASSERT_TRUE(naive.Evaluate(*ParseQuery("a & b")).ok());
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0);
}

// ---------------------------------------------------------------------------
// Engine integration: envelope, governance, cancellation
// ---------------------------------------------------------------------------

Result<QueryEngine> DictionaryEngine(int entries = 30) {
  DictionaryGeneratorOptions options;
  options.entries = entries;
  return QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
}

TEST_F(CacheTest, EngineRepeatQueryHitsAndReportsEnvelope) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  const std::string query = "sense within entry within dictionary";

  auto cold = engine->Run("explain analyze " + query);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->profile.has_value());
  EXPECT_TRUE(cold->profile->cache_enabled);
  EXPECT_EQ(cold->profile->cache.hits, 0);
  EXPECT_GT(cold->profile->cache.inserts, 0);
  EXPECT_GT(cold->profile->cache_bytes, 0);

  auto warm = engine->Run("explain analyze " + query);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->regions, cold->regions);
  ASSERT_TRUE(warm->profile.has_value());
  EXPECT_GT(warm->profile->cache.hits, 0);
  EXPECT_EQ(warm->profile->cache.inserts, 0);

  // The machine-readable profile carries the cache envelope.
  std::string json = warm->profile->Json();
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"evictions\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\""), std::string::npos);
}

TEST_F(CacheTest, EngineCommutedQueryTextHits) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  auto first = engine->Run("(quote within sense) | (def within sense)",
                           /*optimize=*/false);
  ASSERT_TRUE(first.ok());
  auto second = engine->Run("explain analyze (def within sense) | "
                            "(quote within sense)",
                            /*optimize=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->regions, first->regions);
  ASSERT_TRUE(second->profile.has_value());
  EXPECT_GT(second->profile->cache.hits, 0);
  EXPECT_EQ(second->eval_stats.operator_evals, 0);
}

TEST_F(CacheTest, DisablingTheCacheStopsSeedingAndPublication) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  engine->set_result_cache_enabled(false);
  auto first = engine->Run("sense within entry");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine->result_cache().entries(), 0);
  auto second = engine->Run("explain analyze sense within entry");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->profile.has_value());
  EXPECT_FALSE(second->profile->cache_enabled);
  EXPECT_EQ(second->profile->cache.hits, 0);
  EXPECT_GT(second->eval_stats.operator_evals, 0);
}

TEST_F(CacheTest, CacheHitsChargeTheMemoryBudget) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  const std::string query = "sense within entry";
  ASSERT_TRUE(engine->Run(query).ok());  // Warm the cache.

  // A generous budget passes, and the profile shows the seeded bytes.
  QueryLimits roomy;
  roomy.memory_limit_bytes = int64_t{1} << 30;
  auto ok = engine->Run("explain analyze " + query, roomy);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->profile.has_value());
  EXPECT_GT(ok->profile->cache.hits, 0);
  EXPECT_GT(ok->profile->peak_memory_bytes, 0);

  // A tiny budget fails even though the answer is cached: seeded sets are
  // charged exactly like computed ones.
  QueryLimits tiny;
  tiny.memory_limit_bytes = 8;
  auto exhausted = engine->Run(query, tiny);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CacheTest, CancelledQueryPublishesNothing) {
  auto engine = DictionaryEngine();
  ASSERT_TRUE(engine.ok());
  QueryLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();  // Cancelled before the first operator runs.
  auto answer = engine->Run("sense within entry", limits);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine->result_cache().entries(), 0);
}

// ---------------------------------------------------------------------------
// Concurrency: one cache shared by parallel readers and writers
// ---------------------------------------------------------------------------

TEST_F(CacheTest, ConcurrentEvaluatorsShareOneCache) {
  Instance instance = SmallInstance();
  ResultCache cache;
  // Commuted spellings of the same two queries: every thread both publishes
  // and consumes entries, and all spellings collapse to two fingerprints.
  const char* queries[] = {
      "(a & b) | (a & c)",
      "(c & a) | (b & a)",
      "(a - b) within (a | b | c)",
      "(a - b) within (c | a | b)",
  };
  RegionSet expected[4];
  {
    Evaluator reference(&instance);
    for (int i = 0; i < 4; ++i) {
      auto r = reference.Evaluate(*ParseQuery(queries[i]));
      ASSERT_TRUE(r.ok()) << queries[i];
      expected[i] = *std::move(r);
    }
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        int q = (t + i) % 4;
        EvalOptions options;
        options.result_cache = &cache;
        Evaluator eval(&instance, options);
        auto result = eval.Evaluate(*ParseQuery(queries[q]));
        if (!result.ok() || *result != expected[q]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Only the distinct canonical subtrees were published (roots collapse
  // across spellings; inner nodes like `a | b` vs `c | a` stay distinct).
  EXPECT_LE(cache.entries(), 8);
  CacheQueryStats stats;
  ExprPtr canon = Expr::Canonicalize(*ParseQuery("(a & b) | (a & c)"));
  EXPECT_NE(cache.Lookup(ResultCache::Key{instance.id(), instance.epoch(),
                                          canon->CanonicalHash()},
                         canon, &stats),
            nullptr);
}

}  // namespace
}  // namespace regal
