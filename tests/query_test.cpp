#include <gtest/gtest.h>

#include "doc/sgml.h"
#include "doc/srccode.h"
#include "query/engine.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace regal {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = LexQuery("Proc including (Var matching ~\"x*\") | A & B - C,");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].kind, QueryTokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "Proc");
  EXPECT_EQ(tokens->back().kind, QueryTokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexQuery("A matching \"unterminated").ok());
  EXPECT_FALSE(LexQuery("A @ B").ok());
}

TEST(ParserTest, Precedence) {
  // '|' binds loosest, '&'/'-' tighter, structural ops tightest of the
  // binary layers.
  auto e = ParseQuery("A | B & C");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(A | (B & C))");
  auto e2 = ParseQuery("A & B | C");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->ToString(), "((A & B) | C)");
  auto e3 = ParseQuery("A within B | C");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ((*e3)->ToString(), "((A within B) | C)");
}

TEST(ParserTest, StructuralOpsGroupRight) {
  auto e = ParseQuery("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(),
            "(Name within (Proc_header within (Proc within Program)))");
}

TEST(ParserTest, MatchingAndCaseInsensitive) {
  auto e = ParseQuery("Var matching \"x\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kSelect);
  EXPECT_FALSE((*e)->pattern().case_insensitive());
  auto ci = ParseQuery("Var matching ~\"X*\"");
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE((*ci)->pattern().case_insensitive());
}

TEST(ParserTest, BothIncludedSyntax) {
  auto e = ParseQuery("bi(Proc, Var matching \"x\", Var matching \"y\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kBothIncluded);
  EXPECT_EQ((*e)->children().size(), 3u);
}

TEST(ParserTest, BiAsPlainNameStillWorks) {
  auto e = ParseQuery("bi within A");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->child(0)->name(), "bi");
}

TEST(ParserTest, DirectOperators) {
  auto e = ParseQuery("Proc dincluding Var");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kDirectIncluding);
  auto e2 = ParseQuery("Var dwithin Proc");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind(), OpKind::kDirectIncluded);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("A |").ok());
  EXPECT_FALSE(ParseQuery("(A").ok());
  EXPECT_FALSE(ParseQuery("A B").ok());
  EXPECT_FALSE(ParseQuery("A matching x").ok());
  EXPECT_FALSE(ParseQuery("bi(A, B)").ok());
  EXPECT_FALSE(ParseQuery("A matching \"\"").ok());
}

TEST(ParserTest, RoundTripsToString) {
  const char* queries[] = {
      "(A | (B & C))",
      "(Name within (Proc_header within Program))",
      "bi(Proc, (Var matching \"x\"), (Var matching \"y\"))",
      "(Proc dincluding (Body dincluding Var))",
      "((A matching ~\"p?t*\") before B)",
  };
  for (const char* q : queries) {
    auto e = ParseQuery(q);
    ASSERT_TRUE(e.ok()) << q << ": " << e.status();
    auto again = ParseQuery((*e)->ToString());
    ASSERT_TRUE(again.ok()) << (*e)->ToString();
    EXPECT_TRUE((*e)->Equals(**again)) << q;
  }
}

constexpr char kProgram[] =
    "program Main;\n"
    "var v1;\n"
    "proc p0;\n"
    "  var v2;\n"
    "  proc p1; var v1; begin write v1 end;\n"
    "begin call p1 end;\n"
    "begin call p0 end.\n";

TEST(EngineTest, EndToEndProgramQueries) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->Validate().ok());

  auto names = engine->Run("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(names->regions.size(), 2u);
  // The optimizer shortened the chain via the Figure 1 RIG.
  EXPECT_GE(names->rewrite_rules_applied, 1);
  EXPECT_LT(names->executed->NumOps(), names->parsed->NumOps());

  auto direct = engine->Run(
      "Proc dincluding (Proc_body dincluding (Var matching \"v1\"))");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->regions.size(), 1u);

  auto unknown = engine->Run("Nope within Program");
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, OptimizeToggleKeepsResults) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  const char* query = "Name within Proc_header within Proc within Program";
  auto fast = engine->Run(query, /*optimize=*/true);
  auto slow = engine->Run(query, /*optimize=*/false);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ(fast->regions, slow->regions);
  EXPECT_EQ(slow->rewrite_rules_applied, 0);
  EXPECT_LE(fast->eval_stats.operator_evals, slow->eval_stats.operator_evals);
}

TEST(EngineTest, RowsRenderSnippets) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run("Proc_header");
  ASSERT_TRUE(answer.ok());
  auto rows = answer->Rows(engine->instance());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].find("proc p0"), std::string::npos);
}

TEST(EngineTest, RowsLimit) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run("Name | Var | Proc | Proc_header");
  ASSERT_TRUE(answer.ok());
  auto rows = answer->Rows(engine->instance(), 3);
  EXPECT_EQ(rows.size(), 4u);  // 3 rows + "... (n more)".
  EXPECT_NE(rows[3].find("more"), std::string::npos);
}

TEST(EngineTest, SgmlEndToEnd) {
  std::string source = GeneratePlaySource(PlayGeneratorOptions{});
  auto engine = QueryEngine::FromSgmlSource(source);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->Validate().ok());
  auto answer =
      engine->Run("speech including (speaker matching \"HAMLET\")");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_GT(answer->regions.size(), 0u);
  auto pair = engine->Run(
      "bi(line, line matching \"word1\", line matching \"word2\")");
  ASSERT_TRUE(pair.ok());
}

TEST(EngineTest, BothIncludedQuerySemantics) {
  // Two scenes; only the first has word-A before word-B inside one line
  // container... build a crisp document instead.
  auto engine = QueryEngine::FromSgmlSource(
      "<doc><sec>alpha beta</sec><sec>beta alpha</sec></doc>");
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run(
      "bi(sec, sec matching \"alpha\", sec matching \"beta\")");
  ASSERT_TRUE(answer.ok());
  // σ picks whole sec regions; a sec cannot strictly include itself, so no
  // sec qualifies — the classic granularity pitfall, shown in the example
  // programs with token-level regions instead.
  EXPECT_TRUE(answer->regions.empty());
}

}  // namespace
}  // namespace regal
