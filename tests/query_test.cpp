#include <gtest/gtest.h>

#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "query/engine.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace regal {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = LexQuery("Proc including (Var matching ~\"x*\") | A & B - C,");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].kind, QueryTokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "Proc");
  EXPECT_EQ(tokens->back().kind, QueryTokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(LexQuery("A matching \"unterminated").ok());
  EXPECT_FALSE(LexQuery("A @ B").ok());
}

TEST(ParserTest, Precedence) {
  // '|' binds loosest, '&'/'-' tighter, structural ops tightest of the
  // binary layers.
  auto e = ParseQuery("A | B & C");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(A | (B & C))");
  auto e2 = ParseQuery("A & B | C");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->ToString(), "((A & B) | C)");
  auto e3 = ParseQuery("A within B | C");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ((*e3)->ToString(), "((A within B) | C)");
}

TEST(ParserTest, StructuralOpsGroupRight) {
  auto e = ParseQuery("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(),
            "(Name within (Proc_header within (Proc within Program)))");
}

TEST(ParserTest, MatchingAndCaseInsensitive) {
  auto e = ParseQuery("Var matching \"x\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kSelect);
  EXPECT_FALSE((*e)->pattern().case_insensitive());
  auto ci = ParseQuery("Var matching ~\"X*\"");
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE((*ci)->pattern().case_insensitive());
}

TEST(ParserTest, BothIncludedSyntax) {
  auto e = ParseQuery("bi(Proc, Var matching \"x\", Var matching \"y\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kBothIncluded);
  EXPECT_EQ((*e)->children().size(), 3u);
}

TEST(ParserTest, BiAsPlainNameStillWorks) {
  auto e = ParseQuery("bi within A");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->child(0)->name(), "bi");
}

TEST(ParserTest, DirectOperators) {
  auto e = ParseQuery("Proc dincluding Var");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), OpKind::kDirectIncluding);
  auto e2 = ParseQuery("Var dwithin Proc");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind(), OpKind::kDirectIncluded);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("A |").ok());
  EXPECT_FALSE(ParseQuery("(A").ok());
  EXPECT_FALSE(ParseQuery("A B").ok());
  EXPECT_FALSE(ParseQuery("A matching x").ok());
  EXPECT_FALSE(ParseQuery("bi(A, B)").ok());
  EXPECT_FALSE(ParseQuery("A matching \"\"").ok());
}

TEST(ParserTest, RoundTripsToString) {
  const char* queries[] = {
      "(A | (B & C))",
      "(Name within (Proc_header within Program))",
      "bi(Proc, (Var matching \"x\"), (Var matching \"y\"))",
      "(Proc dincluding (Body dincluding Var))",
      "((A matching ~\"p?t*\") before B)",
  };
  for (const char* q : queries) {
    auto e = ParseQuery(q);
    ASSERT_TRUE(e.ok()) << q << ": " << e.status();
    auto again = ParseQuery((*e)->ToString());
    ASSERT_TRUE(again.ok()) << (*e)->ToString();
    EXPECT_TRUE((*e)->Equals(**again)) << q;
  }
}

constexpr char kProgram[] =
    "program Main;\n"
    "var v1;\n"
    "proc p0;\n"
    "  var v2;\n"
    "  proc p1; var v1; begin write v1 end;\n"
    "begin call p1 end;\n"
    "begin call p0 end.\n";

TEST(EngineTest, EndToEndProgramQueries) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->Validate().ok());

  auto names = engine->Run("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(names->regions.size(), 2u);
  // The optimizer shortened the chain via the Figure 1 RIG.
  EXPECT_GE(names->rewrite_rules_applied, 1);
  EXPECT_LT(names->executed->NumOps(), names->parsed->NumOps());

  auto direct = engine->Run(
      "Proc dincluding (Proc_body dincluding (Var matching \"v1\"))");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->regions.size(), 1u);

  auto unknown = engine->Run("Nope within Program");
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, OptimizeToggleKeepsResults) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  const char* query = "Name within Proc_header within Proc within Program";
  auto fast = engine->Run(query, /*optimize=*/true);
  auto slow = engine->Run(query, /*optimize=*/false);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_EQ(fast->regions, slow->regions);
  EXPECT_EQ(slow->rewrite_rules_applied, 0);
  EXPECT_LE(fast->eval_stats.operator_evals, slow->eval_stats.operator_evals);
}

TEST(EngineTest, RowsRenderSnippets) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run("Proc_header");
  ASSERT_TRUE(answer.ok());
  auto rows = answer->Rows(engine->instance());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[0].find("proc p0"), std::string::npos);
}

TEST(EngineTest, RowsLimit) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run("Name | Var | Proc | Proc_header");
  ASSERT_TRUE(answer.ok());
  auto rows = answer->Rows(engine->instance(), 3);
  EXPECT_EQ(rows.size(), 4u);  // 3 rows + "... (n more)".
  EXPECT_NE(rows[3].find("more"), std::string::npos);
}

TEST(EngineTest, SgmlEndToEnd) {
  std::string source = GeneratePlaySource(PlayGeneratorOptions{});
  auto engine = QueryEngine::FromSgmlSource(source);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->Validate().ok());
  auto answer =
      engine->Run("speech including (speaker matching \"HAMLET\")");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_GT(answer->regions.size(), 0u);
  auto pair = engine->Run(
      "bi(line, line matching \"word1\", line matching \"word2\")");
  ASSERT_TRUE(pair.ok());
}

TEST(EngineTest, BothIncludedQuerySemantics) {
  // Two scenes; only the first has word-A before word-B inside one line
  // container... build a crisp document instead.
  auto engine = QueryEngine::FromSgmlSource(
      "<doc><sec>alpha beta</sec><sec>beta alpha</sec></doc>");
  ASSERT_TRUE(engine.ok());
  auto answer = engine->Run(
      "bi(sec, sec matching \"alpha\", sec matching \"beta\")");
  ASSERT_TRUE(answer.ok());
  // σ picks whole sec regions; a sec cannot strictly include itself, so no
  // sec qualifies — the classic granularity pitfall, shown in the example
  // programs with token-level regions instead.
  EXPECT_TRUE(answer->regions.empty());
}

TEST(ParserTest, StatementVerbs) {
  auto run = ParseStatement("A within B");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->verb, QueryVerb::kRun);

  auto explain = ParseStatement("explain A within B");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->verb, QueryVerb::kExplain);
  EXPECT_EQ(explain->expr->ToString(), "(A within B)");

  auto analyze = ParseStatement("explain analyze A within B");
  ASSERT_TRUE(analyze.ok());
  EXPECT_EQ(analyze->verb, QueryVerb::kExplainAnalyze);

  // The keywords are contextual: parenthesized, `explain` is a region name;
  // elsewhere it never needs quoting at all.
  auto as_name = ParseStatement("(explain)");
  ASSERT_TRUE(as_name.ok());
  EXPECT_EQ(as_name->verb, QueryVerb::kRun);
  EXPECT_EQ(as_name->expr->name(), "explain");
  auto inner = ParseStatement("A within explain");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->verb, QueryVerb::kRun);

  EXPECT_FALSE(ParseStatement("explain").ok());
}

TEST(EngineTest, RewritesReported) {
  auto engine = QueryEngine::FromProgramSource(kProgram);
  ASSERT_TRUE(engine.ok());
  auto answer =
      engine->Run("Name within Proc_header within Proc within Program");
  ASSERT_TRUE(answer.ok());
  // The chain-shortening rewrite must be visible in the answer, not
  // re-derivable only by calling the optimizer by hand.
  ASSERT_FALSE(answer->rewrites.empty());
  EXPECT_EQ(answer->rewrites[0].rule, "chain-shorten");
  EXPECT_NE(answer->rewrites[0].ToString().find(" -> "), std::string::npos);
  EXPECT_LT(answer->rewrites[0].cost_after.cost,
            answer->rewrites[0].cost_before.cost);

  auto unoptimized = engine->Run("Name within Proc", /*optimize=*/false);
  ASSERT_TRUE(unoptimized.ok());
  EXPECT_TRUE(unoptimized->rewrites.empty());
}

class ExplainTest : public ::testing::Test {
 protected:
  static QueryEngine MakeDictionaryEngine() {
    DictionaryGeneratorOptions options;
    options.entries = 40;
    options.seed = 7;
    auto engine =
        QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }
};

TEST_F(ExplainTest, ExplainAnalyzeProfilesTheQuery) {
  QueryEngine engine = MakeDictionaryEngine();
  // This test observes real execution (work counters, per-operator spans);
  // the cross-query result cache would answer the repeated query from a
  // single cached root span instead.
  engine.set_result_cache_enabled(false);
  auto plain = engine.Run("sense within entry within dictionary");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->profile.has_value());

  auto answer = engine.Run("explain analyze sense within entry within dictionary");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->regions, plain->regions);
  ASSERT_TRUE(answer->profile.has_value());
  const QueryProfile& profile = *answer->profile;
  EXPECT_TRUE(profile.analyzed);
  EXPECT_GT(profile.counters.comparisons, 0);

  // The plan tree mirrors the executed expression, with per-operator output
  // cardinalities and cost-model estimates attached.
  const obs::Span& root = profile.plan;
  EXPECT_EQ(root.name, "within");
  EXPECT_EQ(root.rows_out, static_cast<int64_t>(answer->regions.size()));
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "scan");
  EXPECT_EQ(root.children[0].detail, "sense");
  EXPECT_GE(root.est_rows, 0);
  EXPECT_GE(root.children[0].est_rows, 0);

  std::string tree = profile.Tree();
  EXPECT_NE(tree.find("within"), std::string::npos);
  EXPECT_NE(tree.find("scan sense"), std::string::npos);
  EXPECT_NE(tree.find("rows="), std::string::npos);
  EXPECT_NE(tree.find("cmp="), std::string::npos);
  EXPECT_NE(tree.find("ms"), std::string::npos);

  std::string json = profile.Json();
  EXPECT_NE(json.find("\"name\":\"within\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\":"), std::string::npos);
  std::string chrome = profile.ChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ExplainTest, ExplainDoesNotExecute) {
  QueryEngine engine = MakeDictionaryEngine();
  auto answer = engine.Run("explain sense within entry");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->regions.empty());
  ASSERT_TRUE(answer->profile.has_value());
  EXPECT_FALSE(answer->profile->analyzed);
  const obs::Span& root = answer->profile->plan;
  EXPECT_EQ(root.name, "within");
  EXPECT_GE(root.est_rows, 0);
  EXPECT_EQ(root.rows_out, 0);

  // Rows() renders the plan for explain answers.
  auto rows = answer->Rows(engine.instance());
  ASSERT_FALSE(rows.empty());
  EXPECT_NE(rows[0].find("within"), std::string::npos);
  // Un-executed plans carry no timing lines.
  EXPECT_EQ(answer->profile->Tree().find("ms"), std::string::npos);
}

TEST_F(ExplainTest, ExplainAnalyzeMarksMemoizedSubtrees) {
  QueryEngine engine = MakeDictionaryEngine();
  // Per-call memoization is under test; the cross-query cache would mark
  // both sides from_cache (the canonical fingerprints match even though the
  // parser built separate subtrees).
  engine.set_result_cache_enabled(false);
  // `entry` appears twice; the optimizer's idempotence rule would collapse
  // an identical pair, so intersect with distinct shapes and disable it.
  auto answer =
      engine.RunExpr(*ParseQuery("(sense within entry) & (sense within entry)"),
                     /*optimize=*/false, /*profile=*/true);
  ASSERT_TRUE(answer.ok());
  const obs::Span& root = answer->profile->plan;
  EXPECT_EQ(root.name, "intersect");
  ASSERT_EQ(root.children.size(), 2u);
  // The parser builds separate subtrees for the two sides, so nothing memoizes
  // across them — but re-running the same ExprPtr shares everything.
  ExprPtr shared = *ParseQuery("sense within entry");
  ExprPtr twice = Expr::Intersect(shared, shared);
  auto memo = engine.RunExpr(twice, /*optimize=*/false, /*profile=*/true);
  ASSERT_TRUE(memo.ok());
  const obs::Span& memo_root = memo->profile->plan;
  ASSERT_EQ(memo_root.children.size(), 2u);
  EXPECT_FALSE(memo_root.children[0].from_cache);
  EXPECT_TRUE(memo_root.children[1].from_cache);
  EXPECT_TRUE(memo_root.children[1].children.empty());
  EXPECT_NE(memo->profile->Tree().find("(memo)"), std::string::npos);
}

}  // namespace
}  // namespace regal
