#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"
#include "opt/optimizer.h"
#include "util/random.h"

namespace regal {
namespace {

// An acyclic RIG: Doc -> Sec -> Par -> Word, plus Sec -> Note -> Word.
Digraph AcyclicRig() {
  Digraph rig;
  rig.AddEdge("Doc", "Sec");
  rig.AddEdge("Sec", "Par");
  rig.AddEdge("Par", "Word");
  rig.AddEdge("Sec", "Note");
  rig.AddEdge("Note", "Word");
  return rig;
}

class LoweringTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoweringTest, DirectIncludedBoundedMatchesNative) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 25;
    options.max_depth = 5;
    Instance instance = RandomLaminarInstance(rng, options);
    ExprPtr bounded = DirectIncludedBounded(
        Expr::Name("R0"), Expr::Name("R1"), instance.TreeDepth(),
        instance.names());
    auto via_expr = Evaluate(instance, bounded);
    ASSERT_TRUE(via_expr.ok()) << via_expr.status();
    EXPECT_EQ(*via_expr, DirectIncluded(instance, **instance.Get("R0"),
                                        **instance.Get("R1")));
  }
}

TEST_P(LoweringTest, OptimizerLowersUnderAcyclicRig) {
  Rng rng(GetParam() * 7 + 3);
  Digraph rig = AcyclicRig();
  OptimizerOptions options;
  options.rig = &rig;
  options.lower_extended_operators = true;
  ExprPtr query = Expr::DirectIncluding(
      Expr::Name("Sec"),
      Expr::DirectIncluded(Expr::Name("Word"), Expr::Name("Par")));
  OptimizeOutcome outcome = Optimize(query, options);
  EXPECT_TRUE(outcome.expr->IsBaseAlgebra());
  EXPECT_GE(outcome.rules_applied, 2);

  // Semantics preserved on RIG-conforming instances.
  for (int trial = 0; trial < 10; ++trial) {
    Instance instance = RandomInstanceForRig(rng, rig, 40, 5, {"Doc"});
    auto before = Evaluate(instance, query);
    auto after = Evaluate(instance, outcome.expr);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(*before, *after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringTest, ::testing::Values(1, 2, 3));

TEST(LoweringTest, NoLoweringWithoutOptIn) {
  Digraph rig = AcyclicRig();
  OptimizerOptions options;
  options.rig = &rig;
  ExprPtr query = Expr::DirectIncluding(Expr::Name("Sec"), Expr::Name("Par"));
  EXPECT_FALSE(Optimize(query, options).expr->IsBaseAlgebra());
}

TEST(LoweringTest, CyclicRigDisablesLowering) {
  Digraph rig;
  rig.AddEdge("A", "B");
  rig.AddEdge("B", "A");  // Unbounded nesting: Prop 5.2 does not apply.
  OptimizerOptions options;
  options.rig = &rig;
  options.lower_extended_operators = true;
  ExprPtr query = Expr::DirectIncluding(Expr::Name("A"), Expr::Name("B"));
  EXPECT_FALSE(Optimize(query, options).expr->IsBaseAlgebra());
}

}  // namespace
}  // namespace regal
