#include <gtest/gtest.h>

#include "core/construct.h"
#include "query/engine.h"

namespace regal {
namespace {

TEST(SpanJoinTest, NearestFollowingEnd) {
  RegionSet starts{Region{0, 1}, Region{10, 11}};
  RegionSet ends{Region{4, 5}, Region{6, 7}, Region{14, 15}};
  RegionSet spans = SpanJoin(starts, ends);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0], (Region{0, 5}));    // Nearest end, not [0,7].
  EXPECT_EQ(spans[1], (Region{10, 15}));
}

TEST(SpanJoinTest, StartWithoutEndDropped) {
  RegionSet starts{Region{0, 1}, Region{20, 21}};
  RegionSet ends{Region{4, 5}};
  RegionSet spans = SpanJoin(starts, ends);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Region{0, 5}));
}

TEST(SpanJoinTest, EndMustStrictlyFollow) {
  // An end overlapping the start does not qualify (needs right(a) < left(b)).
  RegionSet starts{Region{0, 5}};
  RegionSet ends{Region{3, 8}, Region{9, 10}};
  RegionSet spans = SpanJoin(starts, ends);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Region{0, 10}));
}

TEST(SpanJoinTest, NestedEndsPickShortest) {
  RegionSet starts{Region{0, 1}};
  RegionSet ends{Region{4, 9}, Region{4, 5}};  // Same left, nested.
  RegionSet spans = SpanJoin(starts, ends);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Region{0, 5}));
}

TEST(SpanJoinTest, EmptyInputs) {
  EXPECT_TRUE(SpanJoin(RegionSet(), RegionSet{Region{0, 1}}).empty());
  EXPECT_TRUE(SpanJoin(RegionSet{Region{0, 1}}, RegionSet()).empty());
}

TEST(WindowsTest, GrowAndClip) {
  std::vector<Token> tokens{Token{1, 3}, Token{10, 12}};
  RegionSet windows = Windows(tokens, 2, 3, 14);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (Region{0, 6}));    // Clipped at 0.
  EXPECT_EQ(windows[1], (Region{8, 13}));   // Clipped at 13.
}

TEST(WindowsTest, ZeroPaddingIsTokenItself) {
  std::vector<Token> tokens{Token{5, 7}};
  RegionSet windows = Windows(tokens, 0, 0, 100);
  EXPECT_EQ(windows[0], (Region{5, 7}));
}

constexpr char kDoc[] =
    "<doc>"
    "<h>intro</h><p>alpha beta</p>"
    "<h>body</h><p>gamma delta</p><p>epsilon</p>"
    "</doc>";

TEST(ViewsTest, ExpressionViewSplices) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->DefineView("greekp", "p matching \"*a*\"").ok());
  auto answer = engine->Run("greekp within doc");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->regions.size(), 2u);  // alpha/beta and gamma/delta.
  // Views can build on views.
  ASSERT_TRUE(engine->DefineView("first_greek", "greekp - (greekp after greekp)").ok());
  auto first = engine->Run("first_greek");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->regions.size(), 1u);
}

TEST(ViewsTest, NameCollisionsRejected) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->DefineView("p", "h").ok());  // Region name.
  ASSERT_TRUE(engine->DefineView("v", "h").ok());
  EXPECT_FALSE(engine->DefineView("v", "p").ok());  // Redefinition.
  EXPECT_FALSE(engine->DefineView("w", "nonexistent").ok());
}

TEST(ViewsTest, SpanViewSectionsFromHeadings) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  // A "section" spans from a heading to the nearest following paragraph —
  // the PAT `A .. B` constructor as a materialized view.
  ASSERT_TRUE(engine->DefineSpanView("section", "h", "p").ok());
  auto sections = engine->Run("section");
  ASSERT_TRUE(sections.ok()) << sections.status();
  EXPECT_EQ(sections->regions.size(), 2u);
  // The view composes with the base algebra.
  auto with_alpha = engine->Run("section including (p matching \"alpha\")");
  ASSERT_TRUE(with_alpha.ok());
  EXPECT_EQ(with_alpha->regions.size(), 1u);
}

TEST(ViewsTest, WindowViewKeywordInContext) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      engine->DefineWindowView("ctx", *Pattern::Parse("gamma"), 4, 4).ok());
  auto answer = engine->Run("ctx");
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->regions.size(), 1u);
  // The window extends beyond the token on both sides.
  const Region& w = answer->regions[0];
  EXPECT_EQ(w.right - w.left + 1, 5 + 8);
}

TEST(ViewsTest, WindowViewNeedsText) {
  Instance synthetic;
  ASSERT_TRUE(synthetic.AddRegionSet("A", RegionSet{Region{0, 1}}).ok());
  QueryEngine engine(std::move(synthetic));
  EXPECT_FALSE(
      engine.DefineWindowView("w", *Pattern::Parse("x"), 1, 1).ok());
}

TEST(ViewsTest, MaterializedViewUsableInStructuralOps) {
  auto engine = QueryEngine::FromSgmlSource(kDoc);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->DefineSpanView("section", "h", "p").ok());
  // Paragraphs inside spans: sections end at their paragraph's '>', so the
  // paragraph is included (non-strictly at the right edge — strictness
  // comes from the differing left endpoints).
  auto inner = engine->Run("p within section");
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->regions.size(), 2u);
}

}  // namespace
}  // namespace regal
