#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/srccode.h"
#include "graph/algorithms.h"

namespace regal {
namespace {

constexpr char kSample[] =
    "program Main;\n"
    "var v1;\n"
    "var v2;\n"
    "proc p0;\n"
    "  var v3;\n"
    "  proc p1; var v1; begin write v1 end;\n"
    "begin call p1 end;\n"
    "begin call p0 end.\n";

TEST(SrcCodeTest, ParsesSample) {
  auto instance = ParseProgram(kSample);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_TRUE(instance->Validate().ok()) << instance->Validate();
  EXPECT_EQ((*instance->Get("Program"))->size(), 1u);
  EXPECT_EQ((*instance->Get("Proc"))->size(), 2u);
  EXPECT_EQ((*instance->Get("Proc_header"))->size(), 2u);
  EXPECT_EQ((*instance->Get("Proc_body"))->size(), 2u);
  EXPECT_EQ((*instance->Get("Var"))->size(), 4u);
  EXPECT_EQ((*instance->Get("Name"))->size(), 3u);  // Main, p0, p1.
}

TEST(SrcCodeTest, SatisfiesFigure1Rig) {
  auto instance = ParseProgram(kSample);
  ASSERT_TRUE(instance.ok());
  Digraph figure1 = SourceCodeRig();
  Digraph derived = instance->DeriveRig();
  for (Digraph::NodeId v = 0; v < derived.NumNodes(); ++v) {
    for (Digraph::NodeId w : derived.OutNeighbors(v)) {
      auto fv = figure1.FindNode(derived.Label(v));
      auto fw = figure1.FindNode(derived.Label(w));
      ASSERT_TRUE(fv.ok() && fw.ok()) << derived.Label(v);
      EXPECT_TRUE(figure1.HasEdge(*fv, *fw))
          << derived.Label(v) << " -> " << derived.Label(w);
    }
  }
}

TEST(SrcCodeTest, Section22EquivalentQueries) {
  // e1 = Name ⊂ Proc_header ⊂ Proc ⊂ Program
  // e2 = Name ⊂ Proc_header ⊂ Program — equal on program files.
  auto instance = ParseProgram(kSample);
  ASSERT_TRUE(instance.ok());
  ExprPtr e1 = Expr::Chain(OpKind::kIncluded,
                           {"Name", "Proc_header", "Proc", "Program"});
  ExprPtr e2 =
      Expr::Chain(OpKind::kIncluded, {"Name", "Proc_header", "Program"});
  auto r1 = Evaluate(*instance, e1);
  auto r2 = Evaluate(*instance, e2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(r1->size(), 2u);  // p0 and p1, not Main.
}

TEST(SrcCodeTest, Section51DirectInclusionQuery) {
  auto instance = ParseProgram(kSample);
  ASSERT_TRUE(instance.ok());
  // Procs that *contain* (transitively) a Var defining v1: both p0 and p1
  // via the naive ⊃ query, since p0 nests p1.
  Pattern v1 = *Pattern::Parse("v1");
  ExprPtr transitive = Expr::Including(
      Expr::Name("Proc"),
      Expr::Including(Expr::Name("Proc_body"),
                      Expr::Select(v1, Expr::Name("Var"))));
  auto loose = Evaluate(*instance, transitive);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->size(), 2u);
  // Procs that *directly* define v1: only p1.
  ExprPtr direct = Expr::DirectIncluding(
      Expr::Name("Proc"),
      Expr::DirectIncluding(Expr::Name("Proc_body"),
                            Expr::Select(v1, Expr::Name("Var"))));
  auto tight = Evaluate(*instance, direct);
  ASSERT_TRUE(tight.ok());
  ASSERT_EQ(tight->size(), 1u);
  // The surviving proc is the nested one (p1): in document order it is the
  // second Proc region.
  const RegionSet& procs = **instance->Get("Proc");
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ((*tight)[0], procs[1]);
}

TEST(SrcCodeTest, SelectFindsVariable) {
  auto instance = ParseProgram(kSample);
  ASSERT_TRUE(instance.ok());
  Pattern v3 = *Pattern::Parse("v3");
  auto result = Evaluate(*instance, Expr::Select(v3, Expr::Name("Var")));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(SrcCodeTest, MalformedPrograms) {
  EXPECT_FALSE(ParseProgram("").ok());
  EXPECT_FALSE(ParseProgram("program ;").ok());
  EXPECT_FALSE(ParseProgram("program Main; begin end").ok());  // Missing '.'.
  EXPECT_FALSE(ParseProgram("program Main; begin end. extra").ok());
  EXPECT_FALSE(ParseProgram("program Main; proc p; begin end.").ok());
  EXPECT_FALSE(ParseProgram("program Main; var ; begin end.").ok());
}

TEST(SrcCodeTest, GeneratedProgramsParse) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ProgramGeneratorOptions options;
    options.num_procs = 12;
    options.max_nesting = 4;
    options.seed = seed;
    std::string source = GenerateProgramSource(options);
    auto instance = ParseProgram(source);
    ASSERT_TRUE(instance.ok()) << instance.status() << "\n" << source;
    EXPECT_TRUE(instance->Validate().ok());
    EXPECT_EQ((*instance->Get("Proc"))->size(), 12u) << source;
  }
}

TEST(SrcCodeTest, GeneratorDeterministic) {
  ProgramGeneratorOptions options;
  options.seed = 3;
  EXPECT_EQ(GenerateProgramSource(options), GenerateProgramSource(options));
}

}  // namespace
}  // namespace regal
