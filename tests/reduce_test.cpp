#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"
#include "reduce/deletion.h"
#include "reduce/reduce.h"

namespace regal {
namespace {

TEST(DeletionTest, DeleteRegionsRemovesEverywhere) {
  Instance instance = MakeFigure3Instance(1);
  size_t before = instance.NumRegions();
  RegionSet a = **instance.Get("A");
  Instance deleted = DeleteRegions(instance, RegionSet{a[0]});
  EXPECT_EQ(deleted.NumRegions(), before - 1);
  EXPECT_TRUE(IsSDeletedVersion(instance, deleted, RegionSet()));
  EXPECT_TRUE(IsSDeletedVersion(instance, deleted, **deleted.Get("C")));
  EXPECT_FALSE(IsSDeletedVersion(instance, deleted, RegionSet{a[0]}));
}

TEST(DeletionTest, NotADeletedVersionWhenRegionsAdded) {
  Instance instance = MakeFigure3Instance(1);
  Instance other = instance.Clone();
  other.SetRegionSet("D", RegionSet{Region{1000, 1001}});
  EXPECT_FALSE(IsSDeletedVersion(instance, other, RegionSet()));
}

TEST(IsomorphismTest, SiblingsWithEqualSubtrees) {
  // Two C containers with identical (A, B) children.
  Instance instance = MakeFigure3Instance(1);
  RegionSet c = **instance.Get("C");
  EXPECT_TRUE(AreIsomorphic(instance, c[0], c[1], {}));
  // The middle C (index 2) has an extra A child.
  EXPECT_FALSE(AreIsomorphic(instance, c[0], c[2], {}));
  // A region is never isomorphic to itself (the mapping must be between
  // distinct regions).
  EXPECT_FALSE(AreIsomorphic(instance, c[0], c[0], {}));
}

TEST(IsomorphismTest, LeafSiblings) {
  Instance instance = MakeFigure3Instance(1);
  // The two A leaves of the middle C.
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  std::vector<Region> middle_as;
  for (const Region& r : a) {
    if (StrictlyIncludes(c[2], r)) middle_as.push_back(r);
  }
  ASSERT_EQ(middle_as.size(), 2u);
  EXPECT_TRUE(AreIsomorphic(instance, middle_as[0], middle_as[1], {}));
}

TEST(IsomorphismTest, PatternsDistinguish) {
  Instance instance = MakeFigure3Instance(1);
  RegionSet c = **instance.Get("C");
  Pattern p = *Pattern::Parse("q");
  instance.SetSyntheticPattern(p, RegionSet{c[0]});
  EXPECT_TRUE(AreIsomorphic(instance, c[0], c[1], {}));   // P not considered.
  EXPECT_FALSE(AreIsomorphic(instance, c[0], c[1], {p}));  // W differs.
}

TEST(IsomorphismTest, DifferentNamesRejected) {
  Instance instance = MakeFigure3Instance(1);
  RegionSet c = **instance.Get("C");
  RegionSet b = **instance.Get("B");
  EXPECT_FALSE(AreIsomorphic(instance, c[0], b[0], {}));
}

TEST(ReduceTest, DeletesSubtreeAndMaps) {
  Instance instance = MakeFigure3Instance(1);
  RegionSet c = **instance.Get("C");
  auto result = Reduce(instance, c[0], c[1], {});
  ASSERT_TRUE(result.ok()) << result.status();
  // C0's subtree (C + A + B) is gone.
  EXPECT_EQ(result->instance.NumRegions(), instance.NumRegions() - 3);
  EXPECT_EQ(result->mapping.size(), 3u);
  EXPECT_EQ(ApplyMapping(result->mapping, c[0]), c[1]);
  // Surviving regions map to themselves.
  EXPECT_EQ(ApplyMapping(result->mapping, c[2]), c[2]);
}

TEST(ReduceTest, NonIsomorphicRejected) {
  Instance instance = MakeFigure3Instance(1);
  RegionSet c = **instance.Get("C");
  EXPECT_FALSE(Reduce(instance, c[0], c[2], {}).ok());
  EXPECT_FALSE(Reduce(instance, Region{9999, 10000}, c[1], {}).ok());
}

// The Figure 3 proof, step by step: I' = reduce(I, r', r'') deletes one of
// the twin A leaves of the middle C; the theorem machinery then shows any
// base-algebra e with k order operators treats I and I' alike, while
// C BI (B, A) does not.
TEST(ReduceTest, Figure3ProofSteps) {
  const int k = 2;
  Instance instance = MakeFigure3Instance(k);
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  const Region& middle = c[static_cast<size_t>(2 * k)];
  std::vector<Region> twins;
  for (const Region& r : a) {
    if (StrictlyIncludes(middle, r)) twins.push_back(r);
  }
  ASSERT_EQ(twins.size(), 2u);

  // reduce(I, r', r'') — the twins are isomorphic.
  auto reduced = Reduce(instance, twins[1], twins[0], {});
  ASSERT_TRUE(reduced.ok()) << reduced.status();
  const Instance& prime = reduced->instance;
  EXPECT_EQ(prime.NumRegions(), instance.NumRegions() - 1);

  // BI distinguishes I from I'.
  RegionSet bi_before =
      BothIncluded(c, **instance.Get("B"), **instance.Get("A"));
  RegionSet bi_after =
      BothIncluded(**prime.Get("C"), **prime.Get("B"), **prime.Get("A"));
  EXPECT_EQ(bi_before.size(), 1u);
  EXPECT_TRUE(bi_after.empty());

  // I'' = reduce(I', r_{2k+1}, r_{2k+2}) exists (the middle C now looks
  // like its neighbour) and witnesses the *forward* order condition of
  // Def 4.3: every order fact of I is recoverable in I' modulo the
  // h_{k-1} classes.
  RegionSet c_prime = **prime.Get("C");
  auto second = Reduce(prime, c_prime[static_cast<size_t>(2 * k)],
                       c_prime[static_cast<size_t>(2 * k + 1)], {});
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(CheckKReducedOrderCondition(instance, prime, reduced->mapping,
                                          second->mapping,
                                          OrderCheckMode::kForwardOnly)
                  .ok());
  // REPRODUCTION FINDING: the literal biconditional of Def 4.3 fails on
  // this very construction (the class of the first twin A contains the A
  // of the next C, giving spurious witnesses). See reduce.h.
  EXPECT_FALSE(CheckKReducedOrderCondition(instance, prime, reduced->mapping,
                                           second->mapping,
                                           OrderCheckMode::kBiconditional)
                   .ok());
}

// Theorem 4.4's conclusion, checked empirically: base-algebra expressions
// with <= k order operators cannot distinguish I from its reduced version
// on surviving regions.
TEST(ReduceTest, ReducedVersionPreservesSmallExpressions) {
  const int k = 1;
  Instance instance = MakeFigure3Instance(k);
  RegionSet c = **instance.Get("C");
  RegionSet a = **instance.Get("A");
  const Region& middle = c[static_cast<size_t>(2 * k)];
  std::vector<Region> twins;
  for (const Region& r : a) {
    if (StrictlyIncludes(middle, r)) twins.push_back(r);
  }
  auto reduced = Reduce(instance, twins[1], twins[0], {});
  ASSERT_TRUE(reduced.ok());

  std::vector<ExprPtr> exprs = {
      Expr::Including(Expr::Name("C"),
                      Expr::Precedes(Expr::Name("B"), Expr::Name("A"))),
      Expr::Including(Expr::Name("C"), Expr::Name("A")),
      Expr::Follows(Expr::Name("C"), Expr::Name("C")),
  };
  for (const ExprPtr& e : exprs) {
    ASSERT_LE(e->NumOrderOps(), k);
    auto before = Evaluate(instance, e);
    auto after = Evaluate(reduced->instance, e);
    ASSERT_TRUE(before.ok() && after.ok());
    // Agreement on every region surviving in both.
    for (const Region& r : **reduced->instance.Get("C")) {
      EXPECT_EQ(before->Member(r), after->Member(r))
          << e->ToString() << " at " << regal::ToString(r);
    }
    EXPECT_EQ(before->empty(), after->empty()) << e->ToString();
  }
}

}  // namespace
}  // namespace regal
