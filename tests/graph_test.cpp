#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/maxflow.h"
#include "util/random.h"

namespace regal {
namespace {

Digraph Diamond() {
  // s -> a -> t, s -> b -> t.
  Digraph g;
  g.AddEdge("s", "a");
  g.AddEdge("s", "b");
  g.AddEdge("a", "t");
  g.AddEdge("b", "t");
  return g;
}

TEST(DigraphTest, AddNodeIdempotent) {
  Digraph g;
  auto a1 = g.AddNode("a");
  auto a2 = g.AddNode("a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(g.NumNodes(), 1);
}

TEST(DigraphTest, EdgesDeduplicated) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("a", "b");
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_TRUE(g.HasEdge(*g.FindNode("a"), *g.FindNode("b")));
}

TEST(DigraphTest, FindNodeMissing) {
  Digraph g;
  EXPECT_FALSE(g.FindNode("zzz").ok());
  EXPECT_FALSE(g.HasNode("zzz"));
}

TEST(DigraphTest, InNeighbors) {
  Digraph g = Diamond();
  auto t = *g.FindNode("t");
  EXPECT_EQ(g.InNeighbors(t).size(), 2u);
}

TEST(ReachabilityTest, Basic) {
  Digraph g = Diamond();
  auto s = *g.FindNode("s");
  auto seen = Reachable(g, s);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 4);
  auto t = *g.FindNode("t");
  auto from_t = Reachable(g, t);
  EXPECT_EQ(std::count(from_t.begin(), from_t.end(), true), 1);
}

TEST(SeparatorTest, SingleNodeNotSeparatorInDiamond) {
  Digraph g = Diamond();
  EXPECT_FALSE(IsVertexSeparator(g, *g.FindNode("s"), *g.FindNode("t"),
                                 *g.FindNode("a")));
}

TEST(SeparatorTest, MiddleOfPathIsSeparator) {
  Digraph g;
  g.AddEdge("s", "m");
  g.AddEdge("m", "t");
  EXPECT_TRUE(IsVertexSeparator(g, *g.FindNode("s"), *g.FindNode("t"),
                                *g.FindNode("m")));
}

TEST(SeparatorTest, PairSeparatesDiamond) {
  Digraph g = Diamond();
  std::vector<bool> blocked(static_cast<size_t>(g.NumNodes()), false);
  blocked[static_cast<size_t>(*g.FindNode("a"))] = true;
  blocked[static_cast<size_t>(*g.FindNode("b"))] = true;
  EXPECT_TRUE(SeparatesAll(g, *g.FindNode("s"), *g.FindNode("t"), blocked));
}

TEST(SeparatorTest, VacuousWhenUnreachable) {
  Digraph g;
  g.AddNode("s");
  g.AddNode("t");
  g.AddNode("v");
  EXPECT_TRUE(IsVertexSeparator(g, *g.FindNode("s"), *g.FindNode("t"),
                                *g.FindNode("v")));
}

TEST(CycleTest, DetectsCycle) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "c");
  EXPECT_FALSE(HasCycle(g));
  g.AddEdge("c", "a");
  EXPECT_TRUE(HasCycle(g));
}

TEST(CycleTest, SelfLoopIsCycle) {
  Digraph g;
  g.AddEdge("a", "a");
  EXPECT_TRUE(HasCycle(g));
}

TEST(SccTest, TwoComponents) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "a");
  g.AddEdge("b", "c");
  auto comp = StronglyConnectedComponents(g);
  auto a = static_cast<size_t>(*g.FindNode("a"));
  auto b = static_cast<size_t>(*g.FindNode("b"));
  auto c = static_cast<size_t>(*g.FindNode("c"));
  EXPECT_EQ(comp[a], comp[b]);
  EXPECT_NE(comp[a], comp[c]);
}

TEST(TopoTest, RespectsEdges) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "c");
  g.AddEdge("a", "c");
  auto order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  std::vector<int> position(3);
  for (size_t i = 0; i < order->size(); ++i) {
    position[static_cast<size_t>((*order)[i])] = static_cast<int>(i);
  }
  for (Digraph::NodeId v = 0; v < g.NumNodes(); ++v) {
    for (Digraph::NodeId w : g.OutNeighbors(v)) {
      EXPECT_LT(position[static_cast<size_t>(v)], position[static_cast<size_t>(w)]);
    }
  }
}

TEST(TopoTest, CycleIsError) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "a");
  EXPECT_FALSE(TopologicalOrder(g).ok());
  EXPECT_FALSE(LongestPathLength(g).ok());
}

TEST(LongestPathTest, ChainLength) {
  Digraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "c");
  g.AddEdge("c", "d");
  auto len = LongestPathLength(g);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 3);
}

TEST(LongestPathTest, SingleNodeIsZero) {
  Digraph g;
  g.AddNode("a");
  EXPECT_EQ(*LongestPathLength(g), 0);
}

TEST(MaxFlowTest, Diamond) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 1);
  f.AddEdge(0, 2, 1);
  f.AddEdge(1, 3, 1);
  f.AddEdge(2, 3, 1);
  EXPECT_EQ(f.Compute(0, 3), 2);
}

TEST(MaxFlowTest, Bottleneck) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 10);
  int mid = f.AddEdge(1, 2, 3);
  f.AddEdge(2, 3, 10);
  EXPECT_EQ(f.Compute(0, 3), 3);
  EXPECT_EQ(f.Flow(mid), 3);
}

TEST(MaxFlowTest, MinCutSideContainsSource) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 1);
  f.AddEdge(1, 2, 1);
  f.Compute(0, 2);
  auto side = f.MinCutSourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[2]);
}

TEST(MinVertexCutTest, DiamondNeedsTwo) {
  Digraph g = Diamond();
  auto cut = MinVertexCut(g, *g.FindNode("s"), *g.FindNode("t"));
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(cut->size(), 2u);
}

TEST(MinVertexCutTest, ChainNeedsOne) {
  Digraph g;
  g.AddEdge("s", "m");
  g.AddEdge("m", "t");
  auto cut = MinVertexCut(g, *g.FindNode("s"), *g.FindNode("t"));
  ASSERT_TRUE(cut.ok());
  ASSERT_EQ(cut->size(), 1u);
  EXPECT_EQ(g.Label((*cut)[0]), "m");
}

TEST(MinVertexCutTest, DirectEdgeIsError) {
  Digraph g;
  g.AddEdge("s", "t");
  EXPECT_FALSE(MinVertexCut(g, *g.FindNode("s"), *g.FindNode("t")).ok());
}

TEST(MinVertexCutTest, DisconnectedIsEmptyCut) {
  Digraph g;
  g.AddNode("s");
  g.AddNode("t");
  auto cut = MinVertexCut(g, *g.FindNode("s"), *g.FindNode("t"));
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut->empty());
}

// Property: the min vertex cut actually separates, and no single node
// removal from the cut still separates (minimality on random DAGs).
TEST(MinVertexCutTest, RandomGraphsCutSeparates) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 8;
    Digraph g;
    for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
    // Random forward edges excluding the direct s->t edge.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (i == 0 && j == n - 1) continue;
        if (rng.Chance(0.35)) {
          g.AddEdge(static_cast<Digraph::NodeId>(i),
                    static_cast<Digraph::NodeId>(j));
        }
      }
    }
    auto cut = MinVertexCut(g, 0, n - 1);
    ASSERT_TRUE(cut.ok());
    std::vector<bool> blocked(static_cast<size_t>(n), false);
    for (auto v : *cut) blocked[static_cast<size_t>(v)] = true;
    EXPECT_TRUE(SeparatesAll(g, 0, n - 1, blocked));
  }
}

}  // namespace
}  // namespace regal
