// Differential suite for the exec/ parallel execution layer: every parallel
// kernel, index build and evaluator mode must be *bit-identical* to its
// sequential counterpart, for every thread count, on random and adversarial
// inputs. Built as its own ctest binary with label `parallel` so a TSAN
// configuration (-DREGAL_SANITIZE=thread) can run exactly this suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/algebra.h"
#include "core/eval.h"
#include "doc/dictionary.h"
#include "doc/synthetic.h"
#include "exec/parallel_algebra.h"
#include "exec/parallel_text.h"
#include "exec/thread_pool.h"
#include "index/word_index.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "text/text.h"
#include "util/random.h"

namespace regal {
namespace {

using exec::ParallelConfig;
using exec::ThreadPool;

const int kThreadCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPoolTest, ParseThreads) {
  EXPECT_EQ(ThreadPool::ParseThreads(nullptr, 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("abc", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("4abc", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("0", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("-2", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("513", 3), 3);
  EXPECT_EQ(ThreadPool::ParseThreads("1", 3), 1);
  EXPECT_EQ(ThreadPool::ParseThreads("8", 3), 8);
  EXPECT_EQ(ThreadPool::ParseThreads("512", 3), 512);
}

TEST(ThreadPoolTest, NumThreadsCountsCallerLane) {
  for (int n : kThreadCounts) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int n : kThreadCounts) {
    ThreadPool pool(n);
    for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.ParallelFor(count, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SubmitWaitRunsTask) {
  for (int n : kThreadCounts) {
    ThreadPool pool(n);
    std::atomic<int> value{0};
    ThreadPool::TaskHandle h = pool.Submit([&] { value.store(42); });
    h.Wait();
    EXPECT_EQ(value.load(), 42);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  for (int n : kThreadCounts) {
    ThreadPool pool(n);
    std::atomic<int> total{0};
    pool.ParallelFor(8, [&](size_t) {
      pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
  }
}

TEST(ThreadPoolTest, WaitInsideSubmittedTaskDoesNotDeadlock) {
  for (int n : kThreadCounts) {
    ThreadPool pool(n);
    std::atomic<int> value{0};
    ThreadPool::TaskHandle outer = pool.Submit([&] {
      ThreadPool::TaskHandle inner = pool.Submit([&] { value.fetch_add(1); });
      inner.Wait();
      value.fetch_add(1);
    });
    outer.Wait();
    EXPECT_EQ(value.load(), 2);
  }
}

// ---------------------------------------------------------------------------
// Operator kernels: parallel == sequential, bit for bit.

RegionSet RandomSet(Rng& rng, size_t n, Offset span) {
  std::vector<Region> regions;
  regions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Offset left = static_cast<Offset>(rng.Below(static_cast<uint64_t>(span)));
    Offset len = static_cast<Offset>(rng.Below(64));
    regions.push_back(Region{left, left + len});
  }
  return RegionSet::FromUnsorted(std::move(regions));
}

// Fully nested chain [i, 2n-i]: every region includes all later ones — the
// worst case for containment windows.
RegionSet NestedChain(int n) {
  std::vector<Region> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back(Region{i, 2 * n - i});
  }
  return RegionSet::FromUnsorted(std::move(regions));
}

// All regions share one left endpoint (ties broken by right DESC in document
// order), stressing the partition boundary search on equal keys.
RegionSet EqualLefts(int n) {
  std::vector<Region> regions;
  for (int i = 0; i < n; ++i) {
    regions.push_back(Region{100, 101 + i});
  }
  return RegionSet::FromUnsorted(std::move(regions));
}

void ExpectAllOperatorsMatch(const RegionSet& r, const RegionSet& s,
                             const ParallelConfig& cfg, const char* what) {
  EXPECT_EQ(exec::ParallelUnion(r, s, cfg), Union(r, s)) << what;
  EXPECT_EQ(exec::ParallelIntersect(r, s, cfg), Intersect(r, s)) << what;
  EXPECT_EQ(exec::ParallelDifference(r, s, cfg), Difference(r, s)) << what;
  EXPECT_EQ(exec::ParallelIncluding(r, s, cfg), Including(r, s)) << what;
  EXPECT_EQ(exec::ParallelIncluded(r, s, cfg), Included(r, s)) << what;
  EXPECT_EQ(exec::ParallelPrecedes(r, s, cfg), Precedes(r, s)) << what;
  EXPECT_EQ(exec::ParallelFollows(r, s, cfg), Follows(r, s)) << what;
}

class ParallelKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelKernelTest, MatchesSequentialOnRandomSets) {
  ThreadPool pool(GetParam());
  ParallelConfig cfg{&pool, /*min_rows=*/0, /*max_partitions=*/0};
  Rng rng(7 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    RegionSet r = RandomSet(rng, 1 + rng.Below(4000), 5000);
    RegionSet s = RandomSet(rng, 1 + rng.Below(4000), 5000);
    ExpectAllOperatorsMatch(r, s, cfg, "random");
  }
}

TEST_P(ParallelKernelTest, MatchesSequentialOnAdversarialSets) {
  ThreadPool pool(GetParam());
  ParallelConfig cfg{&pool, /*min_rows=*/0, /*max_partitions=*/0};
  Rng rng(11);
  RegionSet empty;
  RegionSet random = RandomSet(rng, 3000, 4000);
  RegionSet nested = NestedChain(3000);
  RegionSet equal_lefts = EqualLefts(3000);
  RegionSet tiny = RandomSet(rng, 3, 4000);  // Skew: gallop-heavy merges.
  const RegionSet* sets[] = {&empty, &random, &nested, &equal_lefts, &tiny};
  for (const RegionSet* r : sets) {
    for (const RegionSet* s : sets) {
      ExpectAllOperatorsMatch(*r, *s, cfg, "adversarial");
    }
  }
}

TEST_P(ParallelKernelTest, MatchesSequentialOnLaminarInstances) {
  ThreadPool pool(GetParam());
  ParallelConfig cfg{&pool, /*min_rows=*/0, /*max_partitions=*/0};
  Rng rng(23 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 400;
    options.max_names = 2;
    Instance instance = RandomLaminarInstance(rng, options);
    auto r = instance.Get("R0");
    auto s = instance.Get("R1");
    ASSERT_TRUE(r.ok() && s.ok());
    ExpectAllOperatorsMatch(**r, **s, cfg, "laminar");
  }
}

TEST_P(ParallelKernelTest, SelectByTokensMatchesSequential) {
  ThreadPool pool(GetParam());
  ParallelConfig cfg{&pool, /*min_rows=*/0, /*max_partitions=*/0};
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    RegionSet r = RandomSet(rng, 2000, 5000);
    std::vector<Token> tokens;
    size_t n = rng.Below(500);
    for (size_t i = 0; i < n; ++i) {
      Offset left = static_cast<Offset>(rng.Below(5000));
      tokens.push_back(Token{left, left + static_cast<Offset>(rng.Below(8))});
    }
    std::sort(tokens.begin(), tokens.end(), [](const Token& a, const Token& b) {
      return a.left != b.left ? a.left < b.left : a.right < b.right;
    });
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    EXPECT_EQ(exec::ParallelSelectByTokens(r, tokens, cfg),
              SelectByTokens(r, tokens));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelKernelTest,
                         ::testing::ValuesIn(kThreadCounts));

// ---------------------------------------------------------------------------
// Index builds: identical structures for every thread count.

class ParallelIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelIndexTest, SuffixArrayWordIndexIsThreadCountInvariant) {
  DictionaryGeneratorOptions options;
  options.entries = 24;
  Text text(GenerateDictionarySource(options));
  SuffixArrayWordIndex sequential(&text, /*pool=*/nullptr);
  ThreadPool pool(GetParam());
  SuffixArrayWordIndex parallel(&text, &pool);
  EXPECT_EQ(parallel.suffix_array().sa(), sequential.suffix_array().sa());
  EXPECT_EQ(parallel.suffix_array().lcp(), sequential.suffix_array().lcp());
  EXPECT_EQ(parallel.NumTokens(), sequential.NumTokens());
  for (const char* body : {"term1*", "sense", "TERM2", "?erm3?"}) {
    Pattern p = *Pattern::Parse(body);
    EXPECT_EQ(parallel.Matches(p), sequential.Matches(p)) << body;
  }
}

TEST_P(ParallelIndexTest, InvertedWordIndexIsThreadCountInvariant) {
  DictionaryGeneratorOptions options;
  options.entries = 24;
  Text text(GenerateDictionarySource(options));
  InvertedWordIndex sequential(&text, /*pool=*/nullptr);
  ThreadPool pool(GetParam());
  InvertedWordIndex parallel(&text, &pool);
  EXPECT_EQ(parallel.NumTokens(), sequential.NumTokens());
  EXPECT_EQ(parallel.VocabularySize(), sequential.VocabularySize());
  for (const char* body : {"term1*", "sense", "TERM2", "?erm3?"}) {
    Pattern p = *Pattern::Parse(body);
    EXPECT_EQ(parallel.Matches(p), sequential.Matches(p)) << body;
  }
}

TEST_P(ParallelIndexTest, ParallelTokenizeIsThreadCountInvariant) {
  DictionaryGeneratorOptions options;
  options.entries = 24;
  std::string source = GenerateDictionarySource(options);
  ThreadPool pool(GetParam());
  EXPECT_EQ(exec::ParallelTokenize(source, &pool, /*min_bytes=*/64),
            exec::ParallelTokenize(source, nullptr));
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelIndexTest,
                         ::testing::ValuesIn(kThreadCounts));

// ---------------------------------------------------------------------------
// Evaluator and engine: parallel answers and stats match sequential ones.

class ParallelEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEvalTest, EvaluatorMatchesSequentialOnRandomDags) {
  ThreadPool pool(GetParam());
  ParallelEvalPolicy policy;
  policy.pool = &pool;
  policy.min_rows = 0;
  Rng rng(41 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 120;
    Instance instance = RandomLaminarInstance(rng, options);
    // A DAG with a shared subtree: (R0 | R1) appears under both operands.
    ExprPtr shared =
        Expr::Binary(OpKind::kUnion, Expr::Name("R0"), Expr::Name("R1"));
    ExprPtr left = Expr::Binary(OpKind::kIncluding, shared, Expr::Name("R2"));
    ExprPtr right = Expr::Binary(OpKind::kIncluded, Expr::Name("R2"), shared);
    ExprPtr e = Expr::Binary(OpKind::kDifference, left, right);

    Evaluator sequential(&instance);
    auto expected = sequential.Evaluate(e);
    ASSERT_TRUE(expected.ok());

    EvalOptions parallel_options;
    parallel_options.parallel = &policy;
    Evaluator parallel(&instance, parallel_options);
    auto actual = parallel.Evaluate(e);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(*actual, *expected);
    // Memoization runs every node exactly once in both modes, so the stats
    // are deterministic and identical.
    EXPECT_EQ(parallel.stats().operator_evals,
              sequential.stats().operator_evals);
    EXPECT_EQ(parallel.stats().rows_scanned, sequential.stats().rows_scanned);
    EXPECT_EQ(parallel.stats().rows_produced,
              sequential.stats().rows_produced);
  }
}

TEST_P(ParallelEvalTest, EngineAnswersMatchWithParallelForcedOnAndOff) {
  DictionaryGeneratorOptions options;
  options.entries = 30;
  auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  ASSERT_TRUE(engine.ok());
  // The sequential/parallel comparison needs both runs to actually execute;
  // the result cache would answer the second run without evaluating.
  engine->set_result_cache_enabled(false);
  ThreadPool pool(GetParam());

  const char* queries[] = {
      "sense within entry within dictionary",
      "(quote within sense) | (def within sense)",
      "entry including (headword matching \"term*\")",
  };
  for (const char* query : queries) {
    engine->set_parallel_enabled(false);
    auto sequential = engine->Run(query);
    ASSERT_TRUE(sequential.ok()) << query;

    engine->set_parallel_enabled(true);
    engine->set_parallel_cost_threshold(0);  // Force the parallel path.
    engine->mutable_parallel_policy()->pool = &pool;
    engine->mutable_parallel_policy()->min_rows = 0;
    auto parallel = engine->Run(query);
    ASSERT_TRUE(parallel.ok()) << query;

    EXPECT_EQ(parallel->regions, sequential->regions) << query;
    EXPECT_EQ(parallel->eval_stats.operator_evals,
              sequential->eval_stats.operator_evals)
        << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEvalTest,
                         ::testing::ValuesIn(kThreadCounts));

TEST(ParallelEvalTest, ExplainAnalyzeStillWorksOnTheParallelPath) {
  DictionaryGeneratorOptions options;
  options.entries = 20;
  auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(options));
  ASSERT_TRUE(engine.ok());
  engine->set_parallel_cost_threshold(0);
  engine->mutable_parallel_policy()->min_rows = 0;
  auto answer = engine->Run("explain analyze sense within entry");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->profile.has_value());
  EXPECT_TRUE(answer->profile->analyzed);
  EXPECT_EQ(answer->profile->plan.rows_out,
            static_cast<int64_t>(answer->regions.size()));
}

// ---------------------------------------------------------------------------
// Lock-free telemetry primitives. These hammers live in the parallel suite
// so the TSAN configuration (-DREGAL_SANITIZE=thread) validates the relaxed
// atomics in obs/metrics.h and the flight-recorder ring.

TEST(ObsHammerTest, HistogramObserveIsExactUnderConcurrency) {
  obs::Registry registry;
  obs::Histogram* h = registry.GetHistogram(
      "hammer_ms", {}, std::vector<double>{1.0, 8.0, 64.0});
  obs::Gauge* inflight = registry.GetGauge("hammer_inflight");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe((t * kPerThread + i) % 100);
        inflight->Add(1);
        inflight->Add(-1);
      }
    });
  }
  // Concurrent scrapes while writers hammer: each snapshot must be
  // internally sane (cumulative buckets monotone, count within range) even
  // though it may interleave with in-flight observations.
  for (int scrape = 0; scrape < 50; ++scrape) {
    std::vector<int64_t> cumulative = h->CumulativeBucketCounts();
    ASSERT_EQ(cumulative.size(), 4u);
    for (size_t i = 1; i < cumulative.size(); ++i) {
      EXPECT_LE(cumulative[i - 1], cumulative[i]);
    }
    EXPECT_LE(h->count(), int64_t{kThreads} * kPerThread);
  }
  for (std::thread& t : threads) t.join();

  // Quiesced totals are exact: every fetch_add landed, the CAS-loop double
  // sum lost no update (integer values stay exactly representable).
  EXPECT_EQ(h->count(), int64_t{kThreads} * kPerThread);
  // Sum of k % 100 over k = 0..159999: 1600 full cycles of 0+..+99.
  EXPECT_DOUBLE_EQ(h->sum(), 1600.0 * 4950.0);
  std::vector<int64_t> cumulative = h->CumulativeBucketCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 1600 * 2);    // values 0, 1
  EXPECT_EQ(cumulative[1], 1600 * 9);    // values 0..8
  EXPECT_EQ(cumulative[2], 1600 * 65);   // values 0..64
  EXPECT_EQ(cumulative[3], int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(inflight->value(), 0.0);
}

TEST(ObsHammerTest, FlightRecorderConcurrentRecordScrapeAndRetune) {
  // Every record is "slow" (threshold 0), so route the slow-query log to a
  // capture sink instead of spamming stderr for 8000 records.
  obs::EventLog quiet_log(std::make_shared<obs::CaptureSink>());
  obs::FlightRecorderOptions options;
  options.capacity = 64;
  options.slow_threshold_ms = 0;  // Keep everything: maximal ring churn.
  options.sample_period = 0;
  options.log = &quiet_log;
  obs::FlightRecorder recorder(options);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerWriter; ++i) {
        obs::QueryRecord record;
        record.query_id = recorder.NextQueryId();
        record.ts_ms = 1;  // Skip the wall-clock stamp in the hot loop.
        record.elapsed_ms = static_cast<double>(i % 7);
        recorder.Record(std::move(record));
      }
    });
  }
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::QueryRecord> snapshot = recorder.Snapshot();
      EXPECT_LE(snapshot.size(), 64u);
      // The tunables race with in-flight keep decisions by design; the
      // atomics just keep that race benign.
      recorder.set_slow_threshold_ms(snapshot.size() % 2 == 0 ? 0.0 : -1.0);
      recorder.set_sample_period(static_cast<uint32_t>(snapshot.size() % 3));
    }
  });
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(recorder.entries(), 64u);
  EXPECT_EQ(recorder.last_query_id(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace regal
