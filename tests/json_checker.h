#ifndef REGAL_TESTS_JSON_CHECKER_H_
#define REGAL_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <string>

namespace regal {
namespace testutil {

// Minimal recursive-descent JSON syntax checker, enough for tests to assert
// that the exporters and log/admin endpoints emit well-formed documents
// without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool ValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace testutil
}  // namespace regal

#endif  // REGAL_TESTS_JSON_CHECKER_H_
