// Suite for the overload-resilience subsystem (labels `resilience` and,
// for the ChaosNet-driven tests, `chaos`): the CoDel admission controller
// and brownout latch, backoff-jitter/retry-budget/circuit-breaker property
// tests with deterministic seeds, the stuck-frame watchdog and bounded
// drain, and a live service abused through the fault-injecting ChaosNet
// proxy (torn frames, RSTs, freezes, byte-trickling). The breaker and
// admission state machines are shared across threads by design, so this
// binary belongs in the TSAN run:
//   cmake -B build-tsan -S . -DREGAL_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -L chaos
// (-L resilience runs the whole suite; ASAN/UBSAN configs take it the
// same way.)

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/engine.h"
#include "recovery/durable.h"
#include "recovery/retry.h"
#include "safety/admission.h"
#include "safety/failpoint.h"
#include "server/chaosnet.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/resilience.h"
#include "server/service.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {
namespace {

using safety::AdmitOutcome;

constexpr char kDoc[] =
    "<doc><sec><para>alpha beta</para><para>gamma</para></sec>"
    "<sec><para>delta epsilon</para></sec></doc>";

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// The typed shed verdict and its wire fields.

TEST(ResilienceStatusTest, OverloadedCodeRoundTrips) {
  Status shed = Status::Overloaded("too busy");
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_EQ(StatusCodeToString(shed.code()), std::string("OVERLOADED"));

  server::Request request;
  request.tenant = "t";
  request.query = "sec";
  request.priority = 2;
  auto parsed = server::ParseRequest(server::RenderRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->priority, 2);

  server::Response response;
  response.id = 1;
  response.ok = false;
  response.code = "OVERLOADED";
  response.retry_after_ms = 37.5;
  auto back = server::ParseResponse(server::RenderResponse(response));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_DOUBLE_EQ(back->retry_after_ms, 37.5);

  // retry_after_ms is omitted from the wire when it carries no hint.
  response.retry_after_ms = 0;
  EXPECT_EQ(server::RenderResponse(response).find("retry_after_ms"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Backoff jitter: property tests from deterministic seeds.

TEST(BackoffPolicyTest, JitterStaysWithinCapAndIsDeterministic) {
  recovery::BackoffPolicy policy;  // 10ms doubling, capped at 2000ms.
  for (uint64_t seed : {1ULL, 42ULL, 0x5eedULL}) {
    Rng a(seed), b(seed);
    for (int attempt = 1; attempt <= 12; ++attempt) {
      const double cap = policy.CapMs(attempt);
      const double delay = policy.DelayMs(attempt, &a);
      EXPECT_GE(delay, 0.0) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(delay, cap) << "seed " << seed << " attempt " << attempt;
      // Full jitter is reproducible from (policy, seed) alone: the
      // property the chaos tests rely on to replay exact schedules.
      EXPECT_DOUBLE_EQ(delay, policy.DelayMs(attempt, &b));
    }
  }
  // Distinct seeds must not replay the same schedule.
  Rng c(7), d(8);
  bool differed = false;
  for (int attempt = 1; attempt <= 8 && !differed; ++attempt) {
    differed = policy.DelayMs(attempt, &c) != policy.DelayMs(attempt, &d);
  }
  EXPECT_TRUE(differed);
}

TEST(BackoffPolicyTest, CapGrowsGeometricallyThenClamps) {
  recovery::BackoffPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.multiplier = 2;
  EXPECT_DOUBLE_EQ(policy.CapMs(1), 10);
  EXPECT_DOUBLE_EQ(policy.CapMs(2), 20);
  EXPECT_DOUBLE_EQ(policy.CapMs(3), 40);
  EXPECT_DOUBLE_EQ(policy.CapMs(4), 80);
  EXPECT_DOUBLE_EQ(policy.CapMs(5), 100);   // Clamped.
  EXPECT_DOUBLE_EQ(policy.CapMs(50), 100);  // And stays clamped.
}

// ---------------------------------------------------------------------------
// Retry budget accounting.

TEST(RetryBudgetTest, EarnAndSpendAccounting) {
  server::RetryBudget::Options options;
  // 0.25 is exact in binary floating point, so "four first-tries buy one
  // retry" can be asserted with equality rather than tolerance.
  options.earn_per_request = 0.25;
  options.max_tokens = 3.0;
  server::RetryBudget budget(options);
  // Starts full: a fresh client can retry through a brief hiccup.
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // Dry.
  EXPECT_EQ(budget.denied(), 1);
  // Four first-try requests earn exactly one retry back.
  for (int i = 0; i < 4; ++i) budget.OnRequest();
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());
  EXPECT_EQ(budget.denied(), 2);
  // The bucket never exceeds its cap.
  for (int i = 0; i < 1000; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

TEST(RetryBudgetTest, ConcurrentSpendNeverOvergrants) {
  server::RetryBudget::Options options;
  options.earn_per_request = 0.0;  // No income: grants must total <= cap.
  options.max_tokens = 16.0;
  server::RetryBudget budget(options);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        if (budget.TrySpend()) granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 16);
  EXPECT_EQ(budget.denied(), 4 * 64 - 16);
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine (fake clock; the half-open probe race is
// the TSAN-sensitive part).

TEST(CircuitBreakerTest, LifecycleWithFakeClock) {
  auto clock = std::make_shared<std::atomic<int64_t>>(0);
  server::CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_ms = 100;
  options.close_after = 2;
  options.clock_ms = [clock] { return clock->load(); };
  server::CircuitBreaker breaker(options);

  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kClosed);
  // A success between failures resets the consecutive count.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kClosed);
  breaker.RecordFailure();  // Third consecutive: trips.
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_GE(breaker.denied(), 1);

  // Open period lapses: exactly one probe may fly.
  clock->store(150);
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());  // Probe already in flight.
  // Probe fails: straight back to open for a full period.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());

  clock->store(300);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow());  // Slot free again after the success.
  breaker.RecordSuccess();       // Second consecutive: closes.
  EXPECT_EQ(breaker.state(), server::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbeUnderContention) {
  auto clock = std::make_shared<std::atomic<int64_t>>(0);
  server::CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_ms = 10;
  options.clock_ms = [clock] { return clock->load(); };
  server::CircuitBreaker breaker(options);
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), server::CircuitBreaker::State::kOpen);
  clock->store(20);  // Half-open from the next evaluation on.

  // Many callers race for the single probe slot; exactly one may win.
  std::atomic<int> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (breaker.Allow()) allowed.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(allowed.load(), 1);
  breaker.RecordSuccess();
}

// ---------------------------------------------------------------------------
// Admission controller: refusal paths, then the CoDel control law and the
// brownout latch on a fake clock.

TEST(AdmissionTest, ImmediateAdmitBelowCapacity) {
  safety::AdmissionOptions options;
  options.capacity = 2;
  safety::AdmissionController controller(options);
  EXPECT_EQ(controller.Admit(0).outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(controller.Admit(0).outcome, AdmitOutcome::kAdmitted);
  safety::AdmissionSnapshot snap = controller.Snapshot();
  EXPECT_EQ(snap.in_flight, 2);
  EXPECT_EQ(snap.admitted_total, 2);
  controller.Leave();
  controller.Leave();
  EXPECT_EQ(controller.Snapshot().in_flight, 0);
}

TEST(AdmissionTest, QueueFullRefusedImmediatelyWithRetryHint) {
  safety::AdmissionOptions options;
  options.capacity = 1;
  options.max_queue = 1;
  safety::AdmissionController controller(options);
  ASSERT_EQ(controller.Admit(1).outcome, AdmitOutcome::kAdmitted);

  // One waiter fills the bounded queue...
  std::thread waiter([&] { controller.Admit(0); });
  while (controller.Snapshot().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...so the next arrival is refused without waiting at all — even at
  // priority: the queue bound protects memory, not fairness.
  safety::AdmitDecision decision = controller.Admit(5);
  EXPECT_EQ(decision.outcome, AdmitOutcome::kQueueFull);
  EXPECT_GT(decision.retry_after_ms, 0);
  controller.Leave();
  waiter.join();
  controller.Leave();
}

TEST(AdmissionTest, WaiterTimesOutWhenSlotNeverFrees) {
  safety::AdmissionOptions options;
  options.capacity = 1;
  options.max_wait_ms = 50;
  safety::AdmissionController controller(options);
  ASSERT_EQ(controller.Admit(1).outcome, AdmitOutcome::kAdmitted);
  const int64_t start = WallMs();
  safety::AdmitDecision decision = controller.Admit(0);
  EXPECT_EQ(decision.outcome, AdmitOutcome::kTimedOut);
  EXPECT_GE(WallMs() - start, 45);
  EXPECT_GT(decision.retry_after_ms, 0);
  EXPECT_EQ(controller.Snapshot().shed_total, 1);
  controller.Leave();
}

TEST(AdmissionTest, ShutdownWakesWaitersAndRefusesNewWork) {
  safety::AdmissionOptions options;
  options.capacity = 1;
  options.max_wait_ms = 60000;
  safety::AdmissionController controller(options);
  ASSERT_EQ(controller.Admit(1).outcome, AdmitOutcome::kAdmitted);
  std::atomic<int> outcome{-1};
  std::thread waiter([&] {
    outcome.store(static_cast<int>(controller.Admit(0).outcome));
  });
  while (controller.Snapshot().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  controller.Shutdown();
  waiter.join();
  EXPECT_EQ(outcome.load(), static_cast<int>(AdmitOutcome::kShutdown));
  EXPECT_EQ(controller.Admit(1).outcome, AdmitOutcome::kShutdown);
}

// Drives a controller through a deterministic CoDel episode on a fake
// clock: waiter threads park in Admit(0); the test owns when the clock
// moves and when the current slot holder leaves, so sojourn times — and
// therefore every control-law transition — are exact.
class CodelHarness {
 public:
  explicit CodelHarness(safety::AdmissionController* controller)
      : controller_(controller) {}

  ~CodelHarness() { Join(); }

  void SpawnWaiter() {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.emplace_back([this] {
      safety::AdmitDecision decision = controller_->Admit(0);
      std::unique_lock<std::mutex> lock(mu_);
      if (decision.outcome == AdmitOutcome::kShed) ++shed_;
      if (decision.outcome == AdmitOutcome::kAdmitted) {
        const int order = ++admitted_;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_ >= order; });
        lock.unlock();
        controller_->Leave();
        return;
      }
      cv_.notify_all();
    });
  }

  void WaitAdmitted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return admitted_ >= n; });
  }

  void WaitShed(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return shed_ >= n; });
  }

  void WaitQueued(int n) {
    while (controller_->Snapshot().queued < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Lets the longest-held admitted waiter release its slot.
  void ReleaseOne() {
    std::lock_guard<std::mutex> lock(mu_);
    ++released_;
    cv_.notify_all();
  }

  int shed() {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }

  void Join() {
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
    }
    for (auto& thread : threads) thread.join();
  }

 private:
  safety::AdmissionController* controller_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> threads_;
  int admitted_ = 0;
  int released_ = 0;
  int shed_ = 0;
};

safety::AdmissionOptions FakeClockCodelOptions(
    const std::shared_ptr<std::atomic<int64_t>>& clock) {
  safety::AdmissionOptions options;
  options.capacity = 1;
  options.max_queue = 64;
  options.max_wait_ms = 1'000'000;
  options.target_ms = 1;
  options.interval_ms = 10;
  options.brownout_after_ms = 50;
  options.brownout_exit_ms = 30;
  options.clock_ms = [clock] { return clock->load(); };
  return options;
}

// Runs the scripted episode that latches brownout: standing queue above
// target for an interval -> dropping; one shed at the drop cadence;
// dropping sustained past brownout_after_ms -> brownout. Leaves the
// controller with the slot free, brownout latched, and `dropping` still
// set. Shared with the service-level brownout test below.
void DriveIntoBrownout(safety::AdmissionController* controller,
                       std::atomic<int64_t>* clock, CodelHarness* harness) {
  // t=0: an unrelated request holds the only slot; two waiters queue.
  ASSERT_EQ(controller->Admit(1).outcome, AdmitOutcome::kAdmitted);
  harness->SpawnWaiter();
  harness->SpawnWaiter();
  harness->WaitQueued(2);

  // t=10: slot frees; the winner's sojourn (10ms) is over target with the
  // queue still populated, starting the one-interval grace period.
  clock->store(10);
  controller->Leave();
  harness->WaitAdmitted(1);
  harness->SpawnWaiter();
  harness->WaitQueued(2);

  // t=30: past the grace interval -> the controller enters `dropping`
  // (the first drop is scheduled one period out, so this winner passes).
  clock->store(30);
  harness->ReleaseOne();
  harness->WaitAdmitted(2);
  EXPECT_TRUE(controller->Snapshot().dropping);
  harness->SpawnWaiter();
  harness->WaitQueued(2);

  // A third waiter keeps the queue populated through the next admission:
  // a winner that empties the queue would (correctly) read that as the
  // congestion clearing and reset the dropping state.
  harness->SpawnWaiter();
  harness->WaitQueued(3);

  // t=45: past drop_next -> the first waiter to wake is shed (the cadence
  // advances), the next takes the slot, the last stays parked.
  clock->store(45);
  harness->ReleaseOne();
  harness->WaitShed(1);
  harness->WaitAdmitted(3);
  EXPECT_EQ(harness->shed(), 1);
  EXPECT_GE(controller->Snapshot().drop_count, 2);
  EXPECT_TRUE(controller->Snapshot().dropping);

  // t=85: dropping has been continuous since t=30 (> brownout_after_ms):
  // brownout latches.
  clock->store(85);
  EXPECT_TRUE(controller->InBrownout());
  EXPECT_EQ(controller->Snapshot().brownout_entries, 1);

  // Drain the episode: the parked waiter is the last out, and its
  // empty-queue admission ends the dropping state (brownout stays latched
  // until the calm has lasted brownout_exit_ms).
  harness->ReleaseOne();
  harness->WaitAdmitted(4);
  harness->ReleaseOne();
  harness->Join();
}

TEST(AdmissionTest, CodelShedsStandingQueueAndBrownoutLatches) {
  auto clock = std::make_shared<std::atomic<int64_t>>(0);
  safety::AdmissionController controller(FakeClockCodelOptions(clock));
  CodelHarness harness(&controller);
  DriveIntoBrownout(&controller, clock.get(), &harness);

  // Load gone: a below-target admission leaves the dropping state, which
  // starts (not completes) the brownout exit clock.
  safety::AdmitDecision calm = controller.Admit(1);
  ASSERT_EQ(calm.outcome, AdmitOutcome::kAdmitted);
  controller.Leave();
  EXPECT_FALSE(controller.Snapshot().dropping);
  EXPECT_TRUE(controller.InBrownout());

  clock->store(85 + 25);  // Calm, but shy of brownout_exit_ms.
  EXPECT_TRUE(controller.InBrownout());
  clock->store(85 + 35);  // Calm past the exit threshold: unlatch.
  EXPECT_FALSE(controller.InBrownout());
  EXPECT_EQ(controller.Snapshot().brownout_entries, 1);
}

// ---------------------------------------------------------------------------
// Stuck-frame watchdog and bounded drain (socket-level units; the service
// versions run under ChaosNet below).

TEST(WatchdogTest, ReapsOverdueFdAndSparesDisarmed) {
  int reaped_pair[2];
  int spared_pair[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, reaped_pair), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, spared_pair), 0);
  net::WatchdogOptions options;
  options.deadline_ms = 50;
  options.scan_interval_ms = 5;
  net::Watchdog watchdog(options);

  uint64_t overdue = watchdog.Arm(reaped_pair[0]);
  ASSERT_NE(overdue, 0u);
  uint64_t prompt = watchdog.Arm(spared_pair[0]);
  watchdog.Disarm(prompt);  // Payload "arrived": clock stopped in time.

  const int64_t deadline = WallMs() + 5000;
  while (watchdog.reaped() < 1 && WallMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(watchdog.reaped(), 1);
  // The reaped fd was shutdown(2): a read now sees EOF instead of
  // blocking forever.
  char byte;
  EXPECT_EQ(recv(reaped_pair[0], &byte, 1, 0), 0);
  // The disarmed fd is untouched (recv would block: nothing to read, no
  // EOF) — probe with MSG_DONTWAIT.
  EXPECT_EQ(recv(spared_pair[0], &byte, 1, MSG_DONTWAIT), -1);
  // Disarming after the reap is a harmless no-op.
  watchdog.Disarm(overdue);
  EXPECT_EQ(watchdog.reaped(), 1);

  for (int fd : {reaped_pair[0], reaped_pair[1], spared_pair[0],
                 spared_pair[1]}) {
    close(fd);
  }
}

TEST(ConnectionSetTest, DrainForceClosesSendWedgedHandler) {
  // A handler wedged in send() toward a peer that stopped reading is the
  // one shutdown case SHUT_RD can't cure; the drain must force it.
  auto listener = net::Listener::Open(net::ListenerOptions{});
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto peer = server::Client::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(peer.ok()) << peer.status();
  // Shrink the receive window so the sender wedges after a few KB.
  int tiny = 2048;
  setsockopt(peer->fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  std::atomic<bool> never_stop{false};
  int fd = listener->AcceptOne(never_stop, nullptr);
  ASSERT_GE(fd, 0);

  net::ConnectionSet conns;
  std::atomic<bool> handler_started{false};
  ASSERT_TRUE(conns.Spawn(
      fd,
      [&](int conn_fd) {
        int small = 2048;
        setsockopt(conn_fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
        handler_started.store(true);
        std::string chunk(8192, 'x');
        // The peer never reads: this loop blocks in send() until the
        // force phase shuts the socket down under it.
        while (net::SendAll(conn_fd, chunk)) {
        }
      },
      /*max_connections=*/4));
  while (!handler_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const int64_t start = WallMs();
  int forced = conns.DrainAndJoin(/*grace_ms=*/200);
  const int64_t elapsed = WallMs() - start;
  EXPECT_EQ(forced, 1);
  // Bounded: roughly the grace period, never the send timeout.
  EXPECT_LT(elapsed, 5000);
  peer->Close();
}

// ---------------------------------------------------------------------------
// Checkpointer pause: the brownout side effect, at the engine level.

TEST(CheckpointerPauseTest, PausedCheckpointerDefersUntilResumed) {
  std::string dir = testing::TempDir() + "/resilience_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  recovery::DurableOptions durable;
  durable.checkpoint_every_records = 1;  // Every mutation wants a snapshot.
  auto engine = QueryEngine::OpenDurable(dir, durable);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->StartBackgroundCheckpointer(5).ok());
  engine->SetCheckpointerPaused(true);
  EXPECT_TRUE(engine->checkpointer_paused());

  ASSERT_TRUE(engine->DefineRegions("a", RegionSet{Region{0, 4}}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Work is pending but the paused checkpointer must not have taken it.
  EXPECT_TRUE(engine->durable_store()->ShouldCheckpoint());

  engine->SetCheckpointerPaused(false);
  EXPECT_FALSE(engine->checkpointer_paused());
  const int64_t deadline = WallMs() + 10000;
  while (engine->durable_store()->ShouldCheckpoint() && WallMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(engine->durable_store()->ShouldCheckpoint());
  engine->StopBackgroundCheckpointer();
}

// ---------------------------------------------------------------------------
// Live service: overload shedding and brownout over the wire.

class ResilienceServiceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    safety::FailpointRegistry::Default().DisarmAll();
    if (chaos_ != nullptr) chaos_->Stop();
    if (service_ != nullptr) service_->Stop();
  }

  void StartService(server::ServiceOptions options = {}) {
    auto started = server::QueryService::Start(std::move(options));
    ASSERT_TRUE(started.ok()) << started.status();
    service_ = std::move(started).value();
    auto engine = QueryEngine::FromSgmlSource(kDoc);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(
        service_->AddInstance("corpus1", std::move(engine).value()).ok());
  }

  void StartChaos(server::ChaosOptions options = {}) {
    options.upstream_port = service_->port();
    auto started = server::ChaosNet::Start(std::move(options));
    ASSERT_TRUE(started.ok()) << started.status();
    chaos_ = std::move(started).value();
  }

  server::Request MakeRequest(const std::string& tenant,
                              const std::string& query) {
    server::Request request;
    request.tenant = tenant;
    request.instance = "corpus1";
    request.query = query;
    return request;
  }

  // Direct (chaos-free) liveness probe: after whatever a test dished out,
  // the service must still answer a fresh client correctly.
  void ExpectStillServing() {
    ASSERT_FALSE(service_->stopping());
    auto client = server::Client::Connect("127.0.0.1", service_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    auto response = client->Call(MakeRequest("probe", "para within sec"));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->ok) << response->message;
    EXPECT_EQ(response->row_count, 3);
  }

  std::unique_ptr<server::QueryService> service_;
  std::unique_ptr<server::ChaosNet> chaos_;
};

TEST_F(ResilienceServiceTest, OverloadShedsTypedRepliesAndRecovers) {
  server::ServiceOptions options;
  options.admission.capacity = 1;
  options.admission.max_queue = 2;
  options.admission.max_wait_ms = 100;
  options.admission.target_ms = 1;
  options.admission.interval_ms = 10;
  options.admission.brownout_after_ms = 1'000'000;  // Not under test here.
  StartService(std::move(options));

  // Occupy the only execution slot (as a long-running request would), so
  // the storm below meets a genuinely saturated service.
  ASSERT_EQ(service_->admission().Admit(1).outcome, AdmitOutcome::kAdmitted);

  std::atomic<int> overloaded{0};
  std::atomic<int> transport_errors{0};
  std::atomic<int> hintless_sheds{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      auto client = server::Client::Connect("127.0.0.1", service_->port());
      if (!client.ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      for (int i = 0; i < 3; ++i) {
        auto response = client->Call(MakeRequest("burst", "para within sec"));
        if (!response.ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        if (!response->ok && response->code == "OVERLOADED") {
          overloaded.fetch_add(1);
          if (response->retry_after_ms <= 0) hintless_sheds.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  // Every storm request got a *typed* refusal with a backoff hint on a
  // healthy connection — never a dropped frame or a torn socket.
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(overloaded.load(), 6 * 3);
  EXPECT_EQ(hintless_sheds.load(), 0);
  EXPECT_GE(service_->admission().Snapshot().shed_total, overloaded.load());

  // Load gone: the service answers immediately again.
  service_->admission().Leave();
  ExpectStillServing();
}

TEST_F(ResilienceServiceTest, BrownoutServesCacheResidentQueriesOnly) {
  auto clock = std::make_shared<std::atomic<int64_t>>(0);
  server::ServiceOptions options;
  options.admission = FakeClockCodelOptions(clock);
  StartService(std::move(options));

  // Warm the result cache while healthy: this query (and only it) will
  // stay answerable during the brownout.
  {
    auto client = server::Client::Connect("127.0.0.1", service_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    for (int i = 0; i < 2; ++i) {
      auto warm = client->Call(MakeRequest("warm", "para within sec"));
      ASSERT_TRUE(warm.ok()) << warm.status();
      ASSERT_TRUE(warm->ok) << warm->message;
    }
  }

  // Latch brownout deterministically through the service's controller.
  CodelHarness harness(&service_->admission());
  DriveIntoBrownout(&service_->admission(), clock.get(), &harness);
  ASSERT_TRUE(service_->admission().InBrownout());

  auto client = server::Client::Connect("127.0.0.1", service_->port());
  ASSERT_TRUE(client.ok()) << client.status();

  // Cold query: typed brownout refusal with a retry hint.
  server::Request cold = MakeRequest("brown", "word \"alpha\"");
  cold.priority = 1;  // Above the CoDel shed line: the refusal we see is
                      // the brownout's, not the control law's.
  auto refused = client->Call(cold);
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_FALSE(refused->ok);
  EXPECT_EQ(refused->code, "OVERLOADED");
  EXPECT_NE(refused->message.find("brownout"), std::string::npos)
      << refused->message;
  EXPECT_GT(refused->retry_after_ms, 0);

  // Warm query: still served, browned out or not.
  server::Request hot = MakeRequest("brown", "para within sec");
  hot.priority = 1;
  auto served = client->Call(hot);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_TRUE(served->ok) << served->message;
  EXPECT_EQ(served->row_count, 3);

  // Calm long enough and the latch releases: cold queries work again.
  clock->fetch_add(1000);
  auto recovered = client->Call(cold);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->ok) << recovered->message;
  EXPECT_FALSE(service_->admission().InBrownout());
  ExpectStillServing();
}

// ---------------------------------------------------------------------------
// ChaosNet-driven tests (extra ctest label `chaos` via the name hook).

using ResilienceChaosTest = ResilienceServiceTest;

server::ResilientClientOptions FastRetryOptions() {
  server::ResilientClientOptions options;
  options.max_attempts = 4;
  options.sleeper = [](double) {};  // No real backoff sleeps in tests.
  return options;
}

TEST_F(ResilienceChaosTest, TornFrameTriggersReconnectAndReplay) {
  StartService();
  StartChaos();
  // Exactly the first proxied connection tears the request mid-frame.
  ASSERT_TRUE(safety::FailpointRegistry::Default()
                  .ArmFromSpec("chaos.net.torn#1")
                  .ok());
  auto client = server::ResilientClient::Connect(
      "127.0.0.1", chaos_->port(), FastRetryOptions());
  ASSERT_TRUE(client.ok()) << client.status();
  auto response = client->Call(MakeRequest("t", "para within sec"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->row_count, 3);
  // The replay was transparent but visible in the stats.
  EXPECT_EQ(client->stats().retries, 1);
  EXPECT_EQ(client->stats().reconnects, 1);
  EXPECT_EQ(chaos_->faults_injected(), 1);
  ExpectStillServing();
}

TEST_F(ResilienceChaosTest, RstMidRequestReplaysOnlyWhenIdempotent) {
  StartService();
  StartChaos();

  // Idempotent: the historical die-forever-on-ECONNRESET case, now a
  // transparent reconnect-and-replay.
  ASSERT_TRUE(safety::FailpointRegistry::Default()
                  .ArmFromSpec("chaos.net.rst#1")
                  .ok());
  auto client = server::ResilientClient::Connect(
      "127.0.0.1", chaos_->port(), FastRetryOptions());
  ASSERT_TRUE(client.ok()) << client.status();
  auto replayed = client->Call(MakeRequest("t", "para within sec"),
                               /*idempotent=*/true);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->ok) << replayed->message;
  EXPECT_GE(client->stats().reconnects, 1);

  // Non-idempotent: the request may have executed before the RST, so the
  // client must surface the transport failure instead of replaying.
  ASSERT_TRUE(safety::FailpointRegistry::Default()
                  .ArmFromSpec("chaos.net.rst#1")
                  .ok());
  auto fresh = server::ResilientClient::Connect(
      "127.0.0.1", chaos_->port(), FastRetryOptions());
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  auto surfaced = fresh->Call(MakeRequest("t", "para within sec"),
                              /*idempotent=*/false);
  EXPECT_FALSE(surfaced.ok());
  EXPECT_EQ(fresh->stats().retries, 0);
  ExpectStillServing();
}

TEST_F(ResilienceChaosTest, RstStormOpensBreakerWhichRecoversToClosed) {
  StartService();
  StartChaos();
  // Every proxied connection dies by RST until disarmed.
  safety::FailpointRegistry::Default().Arm("chaos.net.rst");

  server::ResilientClientOptions options = FastRetryOptions();
  options.breaker.failure_threshold = 2;
  options.breaker.open_ms = 100;
  options.breaker.close_after = 1;
  auto client = server::ResilientClient::Connect(
      "127.0.0.1", chaos_->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();

  auto storm = client->Call(MakeRequest("t", "para within sec"));
  EXPECT_FALSE(storm.ok());
  EXPECT_EQ(client->breaker()->state(),
            server::CircuitBreaker::State::kOpen);
  EXPECT_GE(client->stats().breaker_denied, 1);

  // Fault cleared + open period lapsed: the half-open probe succeeds and
  // the breaker closes again — the recovery the chaos suite must prove.
  safety::FailpointRegistry::Default().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto recovered = client->Call(MakeRequest("t", "para within sec"));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->ok) << recovered->message;
  EXPECT_EQ(client->breaker()->state(),
            server::CircuitBreaker::State::kClosed);
  ExpectStillServing();
}

TEST_F(ResilienceChaosTest, TrickledFrameIsReapedByWatchdog) {
  server::ServiceOptions options;
  options.frame_deadline_ms = 150;
  options.idle_timeout_ms = 2000;
  StartService(std::move(options));
  server::ChaosOptions chaos;
  chaos.trickle_bytes = 1;
  chaos.trickle_gap_ms = 30;
  StartChaos(std::move(chaos));
  safety::FailpointRegistry::Default().Arm("chaos.net.trickle");

  // The trickled bytes keep every per-recv timeout fresh, so only the
  // whole-frame deadline can end this connection.
  auto client = server::Client::Connect("127.0.0.1", chaos_->port(),
                                        /*timeout_ms=*/15000);
  ASSERT_TRUE(client.ok()) << client.status();
  auto response = client->Call(MakeRequest("sly", "para within sec"));
  EXPECT_FALSE(response.ok());

  const int64_t deadline = WallMs() + 10000;
  while (service_->watchdog_reaped() < 1 && WallMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(service_->watchdog_reaped(), 1);
  ExpectStillServing();
}

TEST_F(ResilienceChaosTest, FrozenConnectionsDoNotUnboundStop) {
  server::ServiceOptions options;
  options.drain_grace_ms = 300;
  options.idle_timeout_ms = 30000;
  options.frame_deadline_ms = 0;  // Watchdog off: the drain alone must cope.
  StartService(std::move(options));
  server::ChaosOptions chaos;
  chaos.freeze_ms = 30000;
  StartChaos(std::move(chaos));
  safety::FailpointRegistry::Default().Arm("chaos.net.freeze");

  // Two clients park requests behind frozen proxy connections and never
  // hear back; the server's handlers idle in their next frame read.
  std::vector<server::Client> frozen;
  for (int i = 0; i < 2; ++i) {
    auto client = server::Client::Connect("127.0.0.1", chaos_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->SendRaw(server::EncodeFrame(
        server::RenderRequest(MakeRequest("ice", "para within sec")))));
    frozen.push_back(std::move(client).value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const int64_t start = WallMs();
  service_->Stop();
  const int64_t elapsed = WallMs() - start;
  // Bounded by the drain grace plus scheduling noise — never the
  // 30-second freeze or the idle timeout.
  EXPECT_LT(elapsed, 5000);
  EXPECT_TRUE(service_->stopping());
}

TEST_F(ResilienceChaosTest, HedgedRequestOvertakesFrozenPrimary) {
  StartService();
  server::ChaosOptions chaos;
  chaos.freeze_ms = 20000;
  StartChaos(std::move(chaos));
  // Only the first proxied connection (the client's primary) freezes; the
  // hedge lands on a clean one.
  ASSERT_TRUE(safety::FailpointRegistry::Default()
                  .ArmFromSpec("chaos.net.freeze#1")
                  .ok());

  server::ResilientClientOptions options = FastRetryOptions();
  options.enable_hedging = true;
  options.hedge_warmup = 0;
  options.hedge_min_ms = 5;
  options.timeout_ms = 10000;
  auto client = server::ResilientClient::Connect(
      "127.0.0.1", chaos_->port(), options);
  ASSERT_TRUE(client.ok()) << client.status();

  auto response = client->Call(MakeRequest("t", "para within sec"));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok) << response->message;
  EXPECT_EQ(response->row_count, 3);
  EXPECT_EQ(client->stats().hedges, 1);
  EXPECT_EQ(client->stats().hedge_wins, 1);
  // The win swapped the hedge connection in as the new primary.
  auto again = client->Call(MakeRequest("t", "word \"alpha\""));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->ok) << again->message;
  ExpectStillServing();
}

}  // namespace
}  // namespace regal
