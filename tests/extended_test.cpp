#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/eval.h"
#include "core/extended.h"
#include "doc/synthetic.h"
#include "util/random.h"

namespace regal {
namespace {

// A fixed instance exercising the Section 5.1 motivation: nested procs.
//   P1=[0,19] ⊃ (B1=[1,18] ⊃ (P2=[2,9] ⊃ B2=[3,8] ⊃ V2=[4,5]), V1=[11,12])
Instance ProcInstance() {
  Instance instance;
  EXPECT_TRUE(
      instance.AddRegionSet("Proc", RegionSet{Region{0, 19}, Region{2, 9}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Body", RegionSet{Region{1, 18}, Region{3, 8}}).ok());
  EXPECT_TRUE(
      instance.AddRegionSet("Var", RegionSet{Region{4, 5}, Region{11, 12}}).ok());
  return instance;
}

TEST(DirectIncludingTest, SkipsIndirect) {
  Instance instance = ProcInstance();
  RegionSet proc = **instance.Get("Proc");
  RegionSet var = **instance.Get("Var");
  // Proc ⊃ Var selects both procs (outer proc transitively contains V2).
  EXPECT_EQ(Including(proc, var).size(), 2u);
  // Proc ⊃_d Var selects none: vars sit directly inside bodies.
  EXPECT_TRUE(DirectIncluding(instance, proc, var).empty());
  RegionSet body = **instance.Get("Body");
  // Body ⊃_d Var selects both bodies.
  EXPECT_EQ(DirectIncluding(instance, body, var).size(), 2u);
  // Proc ⊃_d Body selects both procs.
  EXPECT_EQ(DirectIncluding(instance, proc, body).size(), 2u);
}

TEST(DirectIncludedTest, ParentMustBeInS) {
  Instance instance = ProcInstance();
  RegionSet proc = **instance.Get("Proc");
  RegionSet body = **instance.Get("Body");
  RegionSet var = **instance.Get("Var");
  EXPECT_EQ(DirectIncluded(instance, var, body).size(), 2u);
  EXPECT_TRUE(DirectIncluded(instance, var, proc).empty());
  EXPECT_EQ(DirectIncluded(instance, body, proc), body);
}

TEST(BothIncludedTest, RequiresSameContainerOrdering) {
  // c1=[0,9] contains a=[1,2]; c2=[10,19] contains b=[11,12].
  // a < b but they sit in different containers.
  RegionSet c{Region{0, 9}, Region{10, 19}};
  RegionSet s{Region{1, 2}};
  RegionSet t{Region{11, 12}};
  EXPECT_TRUE(BothIncluded(c, s, t).empty());
  // The naive ⊃(S<T) formulation wrongly selects c1.
  EXPECT_EQ(Including(c, Precedes(s, t)), (RegionSet{Region{0, 9}}));
}

TEST(BothIncludedTest, SelectsWhenPairInside) {
  RegionSet c{Region{0, 9}};
  RegionSet s{Region{1, 2}};
  RegionSet t{Region{4, 5}};
  EXPECT_EQ(BothIncluded(c, s, t), c);
  EXPECT_TRUE(BothIncluded(c, t, s).empty());  // Order matters.
}

TEST(BothIncludedTest, SelfWitnessDoesNotCount) {
  // r itself matching S or T (non-strict containment) is not a witness.
  RegionSet c{Region{0, 9}};
  EXPECT_TRUE(BothIncluded(c, c, c).empty());
}

TEST(BothIncludedTest, Figure3OnlyMiddle) {
  for (int k : {1, 2, 4}) {
    Instance instance = MakeFigure3Instance(k);
    RegionSet c = **instance.Get("C");
    RegionSet a = **instance.Get("A");
    RegionSet b = **instance.Get("B");
    RegionSet result = BothIncluded(c, b, a);
    ASSERT_EQ(result.size(), 1u) << "k=" << k;
    EXPECT_EQ(result[0], c[static_cast<size_t>(2 * k)]);
    EXPECT_EQ(naive::BothIncluded(c, b, a), result);
  }
}

class ExtendedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtendedPropertyTest, NativeMatchesNaive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 30;
    options.max_names = 3;
    Instance instance = RandomLaminarInstance(rng, options);
    RegionSet r0 = **instance.Get("R0");
    RegionSet r1 = **instance.Get("R1");
    RegionSet r2 = **instance.Get("R2");
    EXPECT_EQ(DirectIncluding(instance, r0, r1),
              naive::DirectIncluding(instance, r0, r1));
    EXPECT_EQ(DirectIncluded(instance, r0, r1),
              naive::DirectIncluded(instance, r0, r1));
    EXPECT_EQ(BothIncluded(r0, r1, r2), naive::BothIncluded(r0, r1, r2));
    EXPECT_EQ(BothIncluded(r2, r0, r1), naive::BothIncluded(r2, r0, r1));
  }
}

TEST_P(ExtendedPropertyTest, LoopProgramMatchesNative) {
  Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 30;
    options.max_names = 3;
    Instance instance = RandomLaminarInstance(rng, options);
    RegionSet r0 = **instance.Get("R0");
    RegionSet r1 = **instance.Get("R1");
    int iterations = 0;
    EXPECT_EQ(DirectIncludingLoop(instance, r0, r1, &iterations),
              DirectIncluding(instance, r0, r1));
    EXPECT_LE(iterations, instance.TreeDepth());
  }
}

// Two-name chains carry no middle names, so the literal paper program is
// exact on arbitrary instances.
TEST_P(ExtendedPropertyTest, ChainLoopMatchesStepwiseForTwoNames) {
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 40;
    options.max_names = 3;
    Instance instance = RandomLaminarInstance(rng, options);
    for (const std::vector<std::string>& chain :
         {std::vector<std::string>{"R0", "R1"},
          std::vector<std::string>{"R1", "R1"}}) {
      auto single = DirectChainLoop(instance, chain);
      auto stepwise = DirectChainStepwise(instance, chain);
      ASSERT_TRUE(single.ok());
      ASSERT_TRUE(stepwise.ok());
      EXPECT_EQ(*single, *stepwise);
    }
  }
}

// On the program's validity class (middle names neither self-nesting nor
// containing R1 regions) the single-loop program is exact. The RIG below
// guarantees the class: R0 self-nests freely, M and X never do, and no
// middle ever contains an R0 region.
TEST_P(ExtendedPropertyTest, ChainLoopMatchesStepwiseOnValidClass) {
  Rng rng(GetParam() * 13 + 5);
  Digraph rig;
  rig.AddEdge("R0", "R0");
  rig.AddEdge("R0", "M");
  rig.AddEdge("M", "L");
  rig.AddEdge("M", "X");
  rig.AddEdge("X", "L");
  for (int trial = 0; trial < 10; ++trial) {
    Instance instance = RandomInstanceForRig(rng, rig, 60, 8, {"R0"});
    for (const std::vector<std::string>& chain :
         {std::vector<std::string>{"R0", "M", "L"},
          std::vector<std::string>{"R0", "M", "X", "L"}}) {
      auto single = DirectChainLoop(instance, chain);
      auto stepwise = DirectChainStepwise(instance, chain);
      ASSERT_TRUE(single.ok());
      ASSERT_TRUE(stepwise.ok());
      EXPECT_EQ(*single, *stepwise) << "chain size " << chain.size();
    }
  }
}

TEST_P(ExtendedPropertyTest, BoundedExpansionMatchesNative) {
  Rng rng(GetParam() * 3 + 11);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.num_regions = 25;
    options.max_names = 3;
    options.max_depth = 5;
    Instance instance = RandomLaminarInstance(rng, options);
    ExprPtr r0 = Expr::Name("R0");
    ExprPtr r1 = Expr::Name("R1");
    ExprPtr bounded = DirectIncludingBounded(
        r0, r1, instance.TreeDepth(), instance.names());
    auto via_expr = Evaluate(instance, bounded);
    ASSERT_TRUE(via_expr.ok()) << via_expr.status();
    EXPECT_EQ(*via_expr, DirectIncluding(instance, **instance.Get("R0"),
                                         **instance.Get("R1")));
  }
}

TEST_P(ExtendedPropertyTest, BothIncludedBoundedOnAntichains) {
  Rng rng(GetParam() * 17 + 29);
  for (int trial = 0; trial < 10; ++trial) {
    // Flat instances: C containers with leaf children S/T — the antichain
    // precondition of the Prop 5.4 construction.
    std::vector<NodeSpec> forest;
    int containers = static_cast<int>(1 + rng.Below(5));
    int width = 0;
    for (int i = 0; i < containers; ++i) {
      NodeSpec c{"C", {}};
      int kids = static_cast<int>(rng.Below(5));
      width += kids;
      for (int j = 0; j < kids; ++j) {
        c.children.push_back(NodeSpec{rng.Chance(0.5) ? "S" : "T", {}});
      }
      forest.push_back(std::move(c));
    }
    Instance instance = FromForest(forest);
    for (const char* name : {"C", "S", "T"}) {
      if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
    }
    ExprPtr bounded = BothIncludedBounded(
        Expr::Name("C"), Expr::Name("S"), Expr::Name("T"), width + 1);
    auto via_expr = Evaluate(instance, bounded);
    ASSERT_TRUE(via_expr.ok()) << via_expr.status();
    EXPECT_EQ(*via_expr, BothIncluded(**instance.Get("C"), **instance.Get("S"),
                                      **instance.Get("T")));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendedPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(ChainLoopTest, InvalidInputs) {
  Instance instance = ProcInstance();
  EXPECT_FALSE(DirectChainLoop(instance, {"Proc"}).ok());
  EXPECT_FALSE(DirectChainLoop(instance, {"Proc", "Nope"}).ok());
  EXPECT_FALSE(DirectChainStepwise(instance, {"Proc"}).ok());
}

TEST(ChainLoopTest, ProcBodyVarChainExactSemantics) {
  Instance instance = ProcInstance();
  auto result = DirectChainStepwise(instance, {"Proc", "Body", "Var"});
  ASSERT_TRUE(result.ok());
  // Both procs directly include a body that directly includes a var.
  EXPECT_EQ(result->size(), 2u);
}

// REPRODUCTION FINDING: outside its validity class the literal paper
// program under-approximates. ProcInstance nests Body inside Body (via the
// nested proc), and the program loses the inner proc. See extended.h and
// EXPERIMENTS.md.
TEST(ChainLoopTest, PaperProgramDivergesOnSelfNestingMiddles) {
  Instance instance = ProcInstance();
  auto single = DirectChainLoop(instance, {"Proc", "Body", "Var"});
  auto stepwise = DirectChainStepwise(instance, {"Proc", "Body", "Var"});
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(stepwise.ok());
  EXPECT_EQ(stepwise->size(), 2u);  // Exact ⊃_d-chain semantics.
  EXPECT_EQ(single->size(), 1u);    // The program drops the inner proc.
  EXPECT_TRUE(Difference(*single, *stepwise).empty());  // Under-approximation.
}

TEST(ChainLoopTest, SingleLoopUsesFewerIterations) {
  // A deep P-spine where each P directly holds one B holding one V: the
  // validity class, with many R1 layers. Stepwise pays a loop per chain
  // step; the paper program pays one.
  NodeSpec node{"P", {NodeSpec{"B", {NodeSpec{"V", {}}}}}};
  for (int i = 0; i < 6; ++i) {
    NodeSpec p{"P", {NodeSpec{"B", {NodeSpec{"V", {}}}}, std::move(node)}};
    node = std::move(p);
  }
  Instance instance = FromForest({std::move(node)});
  int single_iters = 0;
  int stepwise_iters = 0;
  auto single = DirectChainLoop(instance, {"P", "B", "V"}, &single_iters);
  auto stepwise =
      DirectChainStepwise(instance, {"P", "B", "V"}, &stepwise_iters);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(stepwise.ok());
  EXPECT_EQ(*single, *stepwise);
  EXPECT_EQ(single->size(), 7u);  // Every P qualifies.
  EXPECT_LT(single_iters, stepwise_iters);
}

}  // namespace
}  // namespace regal
