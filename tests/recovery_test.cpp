// Crash-recovery harnesses for the write-ahead log and the self-healing
// durable open (recovery/wal.h, recovery/durable.h, recovery/retry.h):
//
//  * WAL format known-answer vectors (frames pinned as hex computed by an
//    independent CRC32C implementation) and an exhaustive single-bit-flip
//    sweep — every flipped bit in a record must truncate replay exactly at
//    that record, never admit altered data, never crash;
//  * a differential mutation/replay fuzzer (REGAL_FUZZ_ITERS-scaled):
//    journal a random mutation sequence, replay it, and require the
//    recovered catalog bit-identical to an in-memory oracle;
//  * retry-with-backoff against FaultInjectionEnv's transient
//    fail-N-times-then-succeed modes, with the fake-clock sleeper;
//  * quarantine + salvage: a corrupted snapshot opens degraded (damaged
//    bytes set aside, never deleted), serves what its per-section CRCs
//    vouch for, and the next checkpoint heals it;
//  * the crash-loop chaos matrix: kill the store at every mutating env
//    syscall x torn tails x bit flips in the torn region, reopen, and
//    require the recovered state bit-identical to the oracle of
//    *acknowledged* mutations — zero acknowledged-then-lost under
//    SyncPolicy::kAlways;
//  * a reload-vs-queries hammer (run under TSAN via the `recovery` label)
//    proving queries never observe a half-swapped catalog.
//
// The binary carries the ctest label `recovery`; tests whose names contain
// "Crash" additionally carry `crash` (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "query/engine.h"
#include "recovery/durable.h"
#include "recovery/retry.h"
#include "recovery/wal.h"
#include "safety/context.h"
#include "safety/failpoint.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/snapshot.h"
#include "text/text.h"
#include "util/random.h"

namespace regal {
namespace recovery {
namespace {

using storage::EnvOpKind;
using storage::FaultInjectionEnv;

// --- Helpers --------------------------------------------------------------

std::string FromHex(std::string_view hex) {
  std::string out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    auto nibble = [](char c) {
      return c <= '9' ? c - '0' : c - 'a' + 10;
    };
    out.push_back(static_cast<char>(nibble(hex[i]) * 16 + nibble(hex[i + 1])));
  }
  return out;
}

// A fresh, empty directory under the test tempdir.
std::string MakeStoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/recovery_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string CatalogBytes(const Instance& instance) {
  auto encoded = storage::EncodeSnapshot(instance);
  EXPECT_TRUE(encoded.ok()) << encoded.status();
  return encoded.ok() ? *encoded : std::string();
}

size_t FuzzIterations(size_t fallback) {
  const char* spec = std::getenv("REGAL_FUZZ_ITERS");
  if (spec == nullptr || *spec == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(spec, nullptr, 10));
}

class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(const char* name) {
    safety::FailpointRegistry::Default().Arm(name);
  }
  ~ScopedFailpoint() { safety::FailpointRegistry::Default().DisarmAll(); }
};

RegionSet RandomRegions(Rng* rng, int max_regions = 8) {
  std::vector<Region> regions;
  const int n = static_cast<int>(rng->Between(1, max_regions));
  Offset left = 0;
  for (int i = 0; i < n; ++i) {
    left += static_cast<Offset>(rng->Between(1, 40));
    const Offset width = static_cast<Offset>(rng->Between(0, 25));
    regions.push_back(Region{left, left + width});
  }
  return RegionSet::FromUnsorted(std::move(regions));
}

std::string RandomText(Rng* rng) {
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "omega"};
  std::string text;
  const int n = static_cast<int>(rng->Between(3, 30));
  for (int i = 0; i < n; ++i) {
    if (!text.empty()) text += ' ';
    text += kWords[rng->Below(5)];
  }
  return text;
}

// A random applicable mutation against the current `oracle` state.
Mutation RandomMutation(Rng* rng, const Instance& oracle) {
  switch (rng->Below(4)) {
    case 0: {
      std::string name = "r" + std::to_string(rng->Below(6));
      if (!oracle.Has(name)) {
        return Mutation::DefineRegions(name, RandomRegions(rng));
      }
      return Mutation::ReplaceRegions(name, RandomRegions(rng));
    }
    case 1:
      return Mutation::ReplaceRegions("r" + std::to_string(rng->Below(6)),
                                      RandomRegions(rng));
    case 2:
      return Mutation::BindText(RandomText(rng));
    default: {
      Pattern p = *Pattern::Parse(rng->Chance(0.5) ? "alp*" : "beta");
      return Mutation::SetPattern(p, RandomRegions(rng, 3));
    }
  }
}

// --- WAL format -----------------------------------------------------------

// Hex frames computed by an independent Python CRC32C implementation, so a
// codec bug and its mirror in the decoder cannot cancel out.
constexpr char kHeaderHex[] = "524547414c570001";
// lsn=1, DefineRegions("sec", {[5,9],[12,20]}) — zigzag-varint deltas
// 0a 08 0e 10 for lefts 5,12 and widths 4,8.
constexpr char kFrame1Hex[] =
    "d75fc395130000000100000000000000010300000073656302000000000000000a080e"
    "10";
// lsn=2, BindText("alpha beta") (stored codec, short text).
constexpr char kFrame2Hex[] =
    "b04af68913000000020000000000000003000a00000000000000616c7068612062657461";

TEST(WalFormatTest, KnownAnswerVectors) {
  EXPECT_EQ(WalHeader(), FromHex(kHeaderHex));

  Mutation define = Mutation::DefineRegions(
      "sec", RegionSet{Region{5, 9}, Region{12, 20}});
  auto frame1 = EncodeWalRecord(1, define);
  ASSERT_TRUE(frame1.ok()) << frame1.status();
  EXPECT_EQ(*frame1, FromHex(kFrame1Hex));

  auto frame2 = EncodeWalRecord(2, Mutation::BindText("alpha beta"));
  ASSERT_TRUE(frame2.ok()) << frame2.status();
  EXPECT_EQ(*frame2, FromHex(kFrame2Hex));

  // And the reader inverts the pinned bytes.
  auto read = ReadWalBytes(FromHex(kHeaderHex) + FromHex(kFrame1Hex) +
                           FromHex(kFrame2Hex));
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->last_lsn, 2u);
  EXPECT_EQ(read->dropped_tail_bytes, 0u);
  EXPECT_EQ(read->records[0].second.name, "sec");
  EXPECT_EQ(read->records[0].second.regions,
            (RegionSet{Region{5, 9}, Region{12, 20}}));
  EXPECT_EQ(read->records[1].second.text, "alpha beta");
}

TEST(WalFormatTest, EmptyAndHeaderOnlyLogsReadAsZeroRecords) {
  auto empty = ReadWalBytes("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());

  auto header_only = ReadWalBytes(WalHeader());
  ASSERT_TRUE(header_only.ok());
  EXPECT_TRUE(header_only->records.empty());
  EXPECT_EQ(header_only->valid_bytes, kWalHeaderSize);
}

TEST(WalFormatTest, BadMagicIsDataLoss) {
  auto read = ReadWalBytes("NOTAWAL!" + FromHex(kFrame1Hex));
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST(WalFormatTest, LsnMustBeStrictlyIncreasing) {
  Mutation m = Mutation::BindText("x");
  std::string log = WalHeader() + *EncodeWalRecord(5, m) +
                    *EncodeWalRecord(5, m);  // Repeated lsn: untrusted tail.
  auto read = ReadWalBytes(log);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_GT(read->dropped_tail_bytes, 0u);
}

TEST(WalFormatTest, ExhaustiveSingleBitFlipSweep) {
  Rng rng(0xf11b);
  Instance oracle;
  std::vector<Mutation> mutations;
  std::vector<size_t> frame_starts;  // Offset of each frame in the log.
  std::string log = WalHeader();
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    Mutation m = RandomMutation(&rng, oracle);
    ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
    frame_starts.push_back(log.size());
    log += *EncodeWalRecord(lsn, m);
    mutations.push_back(std::move(m));
  }
  auto clean = ReadWalBytes(log);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->records.size(), 3u);

  for (size_t bit = 0; bit < log.size() * 8; ++bit) {
    std::string corrupt = log;
    corrupt[bit / 8] = static_cast<char>(corrupt[bit / 8] ^ (1 << (bit % 8)));
    auto read = ReadWalBytes(corrupt);
    if (bit < kWalHeaderSize * 8) {
      // Header flips: nothing identifies the file as our WAL.
      EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << "bit " << bit;
      continue;
    }
    ASSERT_TRUE(read.ok()) << "bit " << bit;
    // The CRC guarantees single-bit detection: replay stops exactly at the
    // frame the flip landed in, and everything before it decodes intact.
    size_t hit_frame = 0;
    while (hit_frame + 1 < frame_starts.size() &&
           bit / 8 >= frame_starts[hit_frame + 1]) {
      ++hit_frame;
    }
    ASSERT_EQ(read->records.size(), hit_frame) << "bit " << bit;
    EXPECT_GT(read->dropped_tail_bytes, 0u) << "bit " << bit;
    for (size_t i = 0; i < read->records.size(); ++i) {
      EXPECT_EQ(read->records[i].first, i + 1);
      EXPECT_EQ(read->records[i].second.kind, mutations[i].kind);
    }
  }
}

TEST(WalFormatTest, TornTailTruncatesAtLastWholeFrame) {
  Rng rng(0x7042);
  Instance oracle;
  std::string log = WalHeader();
  std::vector<size_t> frame_ends;
  for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
    Mutation m = RandomMutation(&rng, oracle);
    ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
    log += *EncodeWalRecord(lsn, m);
    frame_ends.push_back(log.size());
  }
  for (size_t cut = kWalHeaderSize; cut < log.size(); ++cut) {
    auto read = ReadWalBytes(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(read.ok()) << "cut " << cut;
    size_t whole = 0;
    while (whole < frame_ends.size() && frame_ends[whole] <= cut) ++whole;
    EXPECT_EQ(read->records.size(), whole) << "cut " << cut;
    EXPECT_EQ(read->valid_bytes,
              whole == 0 ? kWalHeaderSize : frame_ends[whole - 1])
        << "cut " << cut;
  }
}

TEST(WalFormatTest, DifferentialReplayFuzz) {
  const size_t iters = FuzzIterations(60);
  for (size_t iter = 0; iter < iters; ++iter) {
    Rng rng(0xd1ff + iter);
    Instance oracle;
    std::string log = WalHeader();
    const int n = static_cast<int>(rng.Between(1, 12));
    for (int i = 0; i < n; ++i) {
      Mutation m = RandomMutation(&rng, oracle);
      log += *EncodeWalRecord(static_cast<uint64_t>(i + 1), m);
      ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
    }
    auto read = ReadWalBytes(log);
    ASSERT_TRUE(read.ok()) << read.status();
    ASSERT_EQ(read->records.size(), static_cast<size_t>(n));
    Instance replayed;
    for (const auto& [lsn, m] : read->records) {
      ASSERT_TRUE(ApplyMutation(&replayed, m).ok());
    }
    // Bit-identical recovered catalog, the replay correctness bar.
    EXPECT_EQ(CatalogBytes(replayed), CatalogBytes(oracle)) << "iter " << iter;
  }
}

// --- Retry / transient-failure injection ----------------------------------

TEST(RetryTest, TransientErrorsRetryUntilDeviceRecovers) {
  FaultInjectionEnv env;
  env.InjectTransient(EnvOpKind::kAppend, 2);
  const std::string path = MakeStoreDir("retry_append") + "/wal.log";

  WalWriterOptions options;
  std::vector<double> sleeps;
  options.retry.sleeper = [&](double ms) { sleeps.push_back(ms); };
  auto writer = WalWriter::Open(&env, path, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->Append(Mutation::BindText("hello")).ok());
  EXPECT_EQ(env.TransientRemaining(EnvOpKind::kAppend), 0);
  EXPECT_EQ(sleeps.size(), 2u);  // Two injected failures, two backoffs.
  EXPECT_LE(sleeps[0], sleeps[1] * 2);  // Jittered exponential growth.
}

TEST(RetryTest, ExhaustedBudgetSurfacesTypedError) {
  FaultInjectionEnv env;
  env.InjectTransient(EnvOpKind::kSync, 100, /*enospc=*/true);
  const std::string path = MakeStoreDir("retry_sync") + "/wal.log";

  WalWriterOptions options;
  options.retry.max_attempts = 3;
  options.retry.sleeper = [](double) {};
  auto writer = WalWriter::Open(&env, path, 1, options);
  // Open itself syncs the fresh header, so the injection hits right here.
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(env.TransientRemaining(EnvOpKind::kSync), 100 - 3);
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  int attempts = 0;
  RetryPolicy policy;
  policy.sleeper = [](double) { FAIL() << "must not sleep"; };
  Status status = RetryWithBackoff(policy, nullptr, "test", [&] {
    ++attempts;
    return Status::DataLoss("rotted");
  });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, GovernanceDeadlineWinsOverRetrying) {
  safety::QueryLimits limits;
  limits.deadline_ms = 0.5;
  safety::QueryContext context(limits);
  // Let the deadline lapse before the first attempt: the retry loop's
  // pre-attempt governance check must win over retrying.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int attempts = 0;
  RetryPolicy policy;
  policy.sleeper = [](double) {};
  Status status = RetryWithBackoff(policy, &context, "test", [&] {
    ++attempts;
    return Status::Internal("eio");
  });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(attempts, 0);
}

TEST(RetryTest, BackoffSequenceIsDeterministicAndCapped) {
  auto run = [](uint64_t seed) {
    std::vector<double> sleeps;
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.initial_backoff_ms = 1.0;
    policy.max_backoff_ms = 4.0;
    policy.jitter_seed = seed;
    policy.sleeper = [&](double ms) { sleeps.push_back(ms); };
    (void)RetryWithBackoff(policy, nullptr, "test",
                           [] { return Status::Internal("eio"); });
    return sleeps;
  };
  const std::vector<double> a = run(7);
  const std::vector<double> b = run(7);
  const std::vector<double> c = run(8);
  EXPECT_EQ(a, b);  // Reproducible from the seed.
  EXPECT_NE(a, c);  // But actually jittered.
  ASSERT_EQ(a.size(), 7u);
  for (double ms : a) EXPECT_LE(ms, 4.0);
}

TEST(WalWriterTest, SyncPolicyIntervalBatchesFsyncs) {
  FaultInjectionEnv env;
  const std::string path = MakeStoreDir("sync_interval") + "/wal.log";
  WalWriterOptions options;
  options.sync = SyncPolicy::kInterval;
  options.sync_every_records = 3;
  // Inline mode: FaultInjectionEnv is single-threaded, and the inline
  // threshold behavior is what the crash tests rely on being exact.
  options.background_sync = false;
  auto writer = WalWriter::Open(&env, path, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE((*writer)->Append(Mutation::BindText("x")).ok());
  }
  EXPECT_EQ((*writer)->unsynced_records(), 2);  // Below the interval.
  ASSERT_TRUE((*writer)->Append(Mutation::BindText("y")).ok());
  EXPECT_EQ((*writer)->unsynced_records(), 0);  // Interval reached: fsynced.
}

// The production default for kInterval: the threshold fsync runs on the
// writer's flusher thread, so Append never waits on the device yet the
// durability debt still drains to zero shortly after the threshold.
TEST(WalWriterTest, IntervalBackgroundFlusherDrainsDurabilityDebt) {
  storage::Env* env = storage::Env::Default();
  const std::string path = MakeStoreDir("sync_background") + "/wal.log";
  WalWriterOptions options;
  options.sync = SyncPolicy::kInterval;
  options.sync_interval_ms = 1.0;  // Fast cadence keeps the test snappy.
  ASSERT_TRUE(options.background_sync);  // The default, on purpose.
  auto writer = WalWriter::Open(env, path, 1, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(Mutation::BindText("x")).ok());
  }
  // The flusher's next cadence tick fsyncs everything buffered; poll until
  // the durability debt reaches zero without any explicit Sync() call.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((*writer)->unsynced_records() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ((*writer)->unsynced_records(), 0);
  ASSERT_TRUE((*writer)->Close().ok());

  auto bytes = env->ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto read = ReadWalBytes(*bytes);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 5u);  // Close drained the rest.
}

TEST(WalWriterTest, GroupCommitAssignsContiguousLsns) {
  FaultInjectionEnv env;
  const std::string path = MakeStoreDir("group_commit") + "/wal.log";
  auto writer = WalWriter::Open(&env, path, 10, {});
  ASSERT_TRUE(writer.ok());
  std::vector<uint64_t> lsns;
  std::vector<Mutation> batch = {Mutation::BindText("a"),
                                 Mutation::BindText("b"),
                                 Mutation::BindText("c")};
  ASSERT_TRUE((*writer)->AppendBatch(batch, &lsns).ok());
  EXPECT_EQ(lsns, (std::vector<uint64_t>{10, 11, 12}));
  ASSERT_TRUE((*writer)->Close().ok());

  auto bytes = env.ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  auto read = ReadWalBytes(*bytes);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->last_lsn, 12u);
}

// --- Durable store: open / replay / checkpoint ----------------------------

TEST(DurableStoreTest, MutationsSurviveReopenWithoutCheckpoint) {
  const std::string dir = MakeStoreDir("reopen_wal");
  Rng rng(0xabc1);
  Instance oracle;
  {
    Instance opened;
    auto store = DurableStore::Open(storage::Env::Default(), dir, {}, &opened);
    ASSERT_TRUE(store.ok()) << store.status();
    Instance live;
    for (int i = 0; i < 10; ++i) {
      Mutation m = RandomMutation(&rng, oracle);
      ASSERT_TRUE((*store)->Journal(m).ok());
      ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  Instance recovered;
  auto store = DurableStore::Open(storage::Env::Default(), dir, {}, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->health().replayed_records, 10u);
  EXPECT_FALSE((*store)->degraded());
  EXPECT_EQ(CatalogBytes(recovered), CatalogBytes(oracle));
}

TEST(DurableStoreTest, CheckpointResetsWalAndAdvancesManifest) {
  const std::string dir = MakeStoreDir("checkpoint");
  storage::Env* env = storage::Env::Default();
  Rng rng(0xabc2);
  Instance oracle;
  Instance opened;
  auto store = DurableStore::Open(env, dir, {}, &opened);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5; ++i) {
    Mutation m = RandomMutation(&rng, oracle);
    ASSERT_TRUE((*store)->Journal(m).ok());
    ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
  }
  ASSERT_TRUE((*store)->Checkpoint(oracle).ok());
  EXPECT_EQ((*store)->checkpoint_lsn(), 5u);
  EXPECT_EQ((*store)->records_since_checkpoint(), 0);
  // The WAL is a bare header again.
  auto wal_size = env->FileSize((*store)->WalPath());
  ASSERT_TRUE(wal_size.ok());
  EXPECT_EQ(*wal_size, kWalHeaderSize);
  // Post-checkpoint mutations land with lsns above the checkpoint.
  Mutation m = RandomMutation(&rng, oracle);
  uint64_t lsn = 0;
  ASSERT_TRUE((*store)->Journal(m, &lsn).ok());
  EXPECT_EQ(lsn, 6u);
  ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
  ASSERT_TRUE((*store)->Close().ok());

  Instance recovered;
  auto reopened = DurableStore::Open(env, dir, {}, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->health().replayed_records, 1u);  // Only lsn 6.
  EXPECT_EQ(CatalogBytes(recovered), CatalogBytes(oracle));
}

TEST(DurableStoreTest, CorruptSnapshotQuarantinedSalvagedAndHealed) {
  const std::string dir = MakeStoreDir("salvage");
  storage::Env* env = storage::Env::Default();
  Instance oracle;
  ASSERT_TRUE(
      ApplyMutation(&oracle, Mutation::BindText("alpha beta gamma")).ok());
  ASSERT_TRUE(ApplyMutation(&oracle, Mutation::DefineRegions(
                                         "a", RegionSet{Region{0, 4}}))
                  .ok());
  ASSERT_TRUE(ApplyMutation(&oracle, Mutation::DefineRegions(
                                         "b", RegionSet{Region{6, 9}}))
                  .ok());
  {
    Instance opened;
    auto store = DurableStore::Open(env, dir, {}, &opened);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->JournalBatch({Mutation::BindText("alpha beta gamma"),
                                        Mutation::DefineRegions(
                                            "a", RegionSet{Region{0, 4}}),
                                        Mutation::DefineRegions(
                                            "b", RegionSet{Region{6, 9}})})
                    .ok());
    ASSERT_TRUE((*store)->Checkpoint(oracle).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  const std::string snapshot_path = dir + "/snapshot.regal";
  std::string bytes = *env->ReadFileToString(snapshot_path);
  // Flip a bit inside the "b" region section's payload (u32 name length 1
  // followed by the name): its CRC fails, other sections keep theirs and
  // must be salvaged.
  const size_t victim = bytes.find(std::string({'\x01', '\0', '\0', '\0', 'b'}));
  ASSERT_NE(victim, std::string::npos);
  bytes[victim + 4] = static_cast<char>(bytes[victim + 4] ^ 1);
  {
    auto file = env->NewWritableFile(snapshot_path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(bytes).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Instance recovered;
  auto store = DurableStore::Open(env, dir, {}, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE((*store)->degraded());
  ASSERT_EQ((*store)->health().quarantined.size(), 1u);
  const std::string& quarantine = (*store)->health().quarantined[0];
  // The damaged bytes were set aside verbatim — evidence, not garbage.
  ASSERT_TRUE(env->FileExists(quarantine));
  EXPECT_EQ(*env->ReadFileToString(quarantine), bytes);
  EXPECT_FALSE(env->FileExists(snapshot_path));
  EXPECT_GE((*store)->health().salvage.sections_kept, 1);
  EXPECT_GE((*store)->health().salvage.sections_dropped, 1);
  // Salvage kept the text and at least one region set.
  ASSERT_NE(recovered.text(), nullptr);
  EXPECT_EQ(recovered.text()->content(), "alpha beta gamma");

  // The next checkpoint rewrites a clean snapshot: healed.
  ASSERT_TRUE((*store)->Checkpoint(recovered).ok());
  EXPECT_FALSE((*store)->degraded());
  ASSERT_TRUE((*store)->Close().ok());
  Instance healed;
  auto clean = DurableStore::Open(env, dir, {}, &healed);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE((*clean)->degraded());
  EXPECT_EQ(CatalogBytes(healed), CatalogBytes(recovered));
}

TEST(DurableStoreTest, CorruptManifestDegradesToFullIdempotentReplay) {
  const std::string dir = MakeStoreDir("bad_manifest");
  storage::Env* env = storage::Env::Default();
  Rng rng(0xabc3);
  Instance oracle;
  {
    Instance opened;
    auto store = DurableStore::Open(env, dir, {}, &opened);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 4; ++i) {
      Mutation m = RandomMutation(&rng, oracle);
      ASSERT_TRUE((*store)->Journal(m).ok());
      ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint(oracle).ok());
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Corrupt the manifest.
  {
    auto file = env->NewWritableFile(dir + "/CHECKPOINT");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("REGALCK\x01garbage.....").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  Instance recovered;
  auto store = DurableStore::Open(env, dir, {}, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE((*store)->degraded());
  // The WAL was reset at checkpoint, so nothing needed replay; the
  // snapshot alone already equals the oracle.
  EXPECT_EQ(CatalogBytes(recovered), CatalogBytes(oracle));
}

TEST(DurableStoreTest, FlipInSyncedWalRegionIsDetectedPrefixIntact) {
  // Silent media corruption of already-fsynced WAL bytes cannot be
  // loss-free — the guarantee is *detection* plus an intact prefix.
  const std::string dir = MakeStoreDir("synced_flip");
  storage::Env* env = storage::Env::Default();
  Rng rng(0xabc4);
  Instance oracle;
  std::vector<Mutation> mutations;
  {
    Instance opened;
    auto store = DurableStore::Open(env, dir, {}, &opened);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 6; ++i) {
      Mutation m = RandomMutation(&rng, oracle);
      ASSERT_TRUE((*store)->Journal(m).ok());
      ASSERT_TRUE(ApplyMutation(&oracle, m).ok());
      mutations.push_back(std::move(m));
    }
    ASSERT_TRUE((*store)->Close().ok());
  }
  // Recompute frame boundaries and flip one bit inside record 4 (index 3).
  const std::string wal_path = dir + "/wal.log";
  std::string bytes = *env->ReadFileToString(wal_path);
  size_t offset = kWalHeaderSize;
  for (int i = 0; i < 3; ++i) {
    offset += EncodeWalRecord(static_cast<uint64_t>(i + 1), mutations[i])
                  ->size();
  }
  bytes[offset + 20] = static_cast<char>(bytes[offset + 20] ^ 0x10);
  {
    auto file = env->NewWritableFile(wal_path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(bytes).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  Instance prefix_oracle;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ApplyMutation(&prefix_oracle, mutations[i]).ok());
  }
  Instance recovered;
  auto store = DurableStore::Open(env, dir, {}, &recovered);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->health().replayed_records, 3u);
  EXPECT_GT((*store)->health().torn_tail_bytes, 0u);
  EXPECT_EQ(CatalogBytes(recovered), CatalogBytes(prefix_oracle));
  // The tail was truncated through the Env: the file is clean again.
  EXPECT_EQ(*env->FileSize(wal_path), offset);
}

// --- Failpoints on the journaling pipeline --------------------------------

TEST(RecoveryFailpointTest, WalAppendFailureLeavesEngineUnchanged) {
  const std::string dir = MakeStoreDir("fp_append");
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->BindText("alpha beta").ok());
  ASSERT_TRUE(engine->DefineRegions("a", RegionSet{Region{0, 4}}).ok());
  {
    ScopedFailpoint fp(kFailpointWalAppend);
    Status status = engine->DefineRegions("b", RegionSet{Region{6, 9}});
    EXPECT_FALSE(status.ok());
  }
  EXPECT_FALSE(engine->instance().Has("b"));
  // And the WAL holds exactly the acknowledged mutations.
  auto read = ReadWalBytes(
      *storage::Env::Default()->ReadFileToString(dir + "/wal.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
}

TEST(RecoveryFailpointTest, ReplayFailpointAbortsOpenCleanly) {
  const std::string dir = MakeStoreDir("fp_replay");
  {
    auto engine = QueryEngine::OpenDurable(dir);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->BindText("alpha").ok());
  }
  ScopedFailpoint fp(kFailpointRecoveryReplay);
  auto engine = QueryEngine::OpenDurable(dir);
  EXPECT_FALSE(engine.ok());
}

TEST(RecoveryFailpointTest, CheckpointSwapFailureKeepsWalIntact) {
  const std::string dir = MakeStoreDir("fp_checkpoint");
  Instance oracle;
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->BindText("alpha beta gamma").ok());
  ASSERT_TRUE(ApplyMutation(&oracle, Mutation::BindText("alpha beta gamma"))
                  .ok());
  {
    ScopedFailpoint fp(kFailpointCheckpointSwap);
    EXPECT_FALSE(engine->Checkpoint().ok());
  }
  // Nothing lost: the WAL still carries the mutation, so a reopen
  // converges to the same catalog.
  engine->StopBackgroundCheckpointer();
  engine = Result<QueryEngine>(Status::Internal("dropped"));  // Destruct.
  auto reopened = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(CatalogBytes(reopened->instance()), CatalogBytes(oracle));
}

// --- Engine integration ---------------------------------------------------

TEST(RecoveryEngineTest, DurableEngineAnswersSurviveReopen) {
  const std::string dir = MakeStoreDir("engine_reopen");
  {
    auto engine = QueryEngine::OpenDurable(dir);
    ASSERT_TRUE(engine.ok()) << engine.status();
    ASSERT_TRUE(engine->BindText("alpha beta gamma delta").ok());
    ASSERT_TRUE(engine->DefineRegions(
                          "word", RegionSet{Region{0, 4}, Region{6, 9},
                                            Region{11, 15}, Region{17, 21}})
                    .ok());
    ASSERT_TRUE(
        engine->DefineRegions("head", RegionSet{Region{0, 9}}).ok());
    auto answer = engine->Run("word matching \"gamma\"");
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_EQ(answer->regions, (RegionSet{Region{11, 15}}));
  }
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto answer = engine->Run("word matching \"gamma\"");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->regions, (RegionSet{Region{11, 15}}));
  auto unioned = engine->Run("word | head");
  ASSERT_TRUE(unioned.ok());
  EXPECT_EQ(unioned->regions.size(), 5u);
}

TEST(RecoveryEngineTest, DefineRegionsRejectsDuplicatesBeforeJournaling) {
  const std::string dir = MakeStoreDir("engine_dup");
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->DefineRegions("a", RegionSet{Region{0, 4}}).ok());
  EXPECT_EQ(engine->DefineRegions("a", RegionSet{Region{5, 9}}).code(),
            StatusCode::kAlreadyExists);
  // The rejected mutation never reached the WAL.
  auto read = ReadWalBytes(
      *storage::Env::Default()->ReadFileToString(dir + "/wal.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  // ReplaceRegions on the same name is the journaled upsert.
  EXPECT_TRUE(engine->ReplaceRegions("a", RegionSet{Region{5, 9}}).ok());
}

TEST(RecoveryEngineTest, MutationBumpsEpochSoCachedAnswersRefresh) {
  const std::string dir = MakeStoreDir("engine_epoch");
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->BindText("alpha beta").ok());
  ASSERT_TRUE(engine->DefineRegions("a", RegionSet{Region{0, 4}}).ok());
  ASSERT_TRUE(engine->DefineRegions("b", RegionSet{Region{6, 9}}).ok());
  auto before = engine->Run("a | b");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->regions.size(), 2u);
  // Same query, same expression fingerprint — but the epoch moved, so the
  // result cache must not serve the stale region set.
  ASSERT_TRUE(engine->ReplaceRegions("b", RegionSet{}).ok());
  auto after = engine->Run("a | b");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->regions.size(), 1u);
}

TEST(RecoveryEngineTest, AutoCheckpointTriggersOnThreshold) {
  const std::string dir = MakeStoreDir("engine_auto_ck");
  DurableOptions options;
  options.checkpoint_every_records = 4;
  auto engine = QueryEngine::OpenDurable(dir, options);
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    ->ReplaceRegions("r" + std::to_string(i),
                                     RegionSet{Region{i * 10, i * 10 + 5}})
                    .ok());
  }
  // The 4th mutation crossed the threshold: checkpointed inline.
  EXPECT_EQ(engine->durable_store()->records_since_checkpoint(), 0);
  EXPECT_EQ(engine->durable_store()->checkpoint_lsn(), 4u);
}

TEST(RecoveryEngineTest, BackgroundCheckpointerHealsDegradedOpen) {
  const std::string dir = MakeStoreDir("engine_bg_ck");
  storage::Env* env = storage::Env::Default();
  {
    auto engine = QueryEngine::OpenDurable(dir);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->BindText("alpha beta").ok());
    ASSERT_TRUE(engine->DefineRegions("a", RegionSet{Region{0, 4}}).ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  // Corrupt the snapshot so the next open is degraded.
  const std::string snapshot_path = dir + "/snapshot.regal";
  std::string bytes = *env->ReadFileToString(snapshot_path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 4);
  {
    auto file = env->NewWritableFile(snapshot_path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(bytes).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto engine = QueryEngine::OpenDurable(dir);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(engine->durable_store()->degraded());
  ASSERT_TRUE(engine->StartBackgroundCheckpointer(/*interval_ms=*/5).ok());
  for (int i = 0; i < 400 && engine->durable_store()->degraded(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(engine->durable_store()->degraded());
  engine->StopBackgroundCheckpointer();
}

// --- Reload / mutation vs in-flight queries (run under TSAN) --------------

TEST(RecoveryEngineTest, QueriesNeverObserveHalfSwappedCatalog) {
  const std::string dir = MakeStoreDir("hammer");
  storage::Env* env = storage::Env::Default();
  // Two snapshot files with the same names but different contents; every
  // query answer must match exactly one of them.
  auto build = [](const std::string& text, Offset shift) {
    Instance instance;
    EXPECT_TRUE(ApplyMutation(&instance, Mutation::BindText(text)).ok());
    EXPECT_TRUE(ApplyMutation(&instance,
                              Mutation::DefineRegions(
                                  "a", RegionSet{Region{shift, shift + 4}}))
                    .ok());
    EXPECT_TRUE(ApplyMutation(&instance,
                              Mutation::DefineRegions(
                                  "b", RegionSet{Region{shift + 6,
                                                        shift + 9}}))
                    .ok());
    return instance;
  };
  Instance v1 = build("alpha beta gamma", 0);
  Instance v2 = build("delta beta omega", 6);
  const std::string p1 = dir + "/v1.regal";
  const std::string p2 = dir + "/v2.regal";
  ASSERT_TRUE(storage::SaveSnapshotToFile(v1, p1, env).ok());
  ASSERT_TRUE(storage::SaveSnapshotToFile(v2, p2, env).ok());
  const RegionSet answer1 = **v1.Get("a");
  const RegionSet answer2 = **v2.Get("a");

  QueryEngine engine(v1.Clone());
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  // Simple operators only (union) — the extended operators build a lazy
  // tree that is not part of this harness's contract.
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto answer = engine.Run("a | a");
        if (!answer.ok() ||
            (answer->regions != answer1 && answer->regions != answer2)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.ReloadSnapshot(i % 2 == 0 ? p2 : p1, env).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// --- Crash-loop chaos matrix ----------------------------------------------

// One scripted run against a fault env: open the store, journal `mutations`
// one by one (checkpointing after `checkpoint_after` of them), tracking the
// oracle state of every *acknowledged* mutation. Stops at the first error
// (the armed crash). Returns how many mutations were acknowledged.
int RunChaosScript(FaultInjectionEnv* env, const std::string& dir,
                   const std::vector<Mutation>& mutations,
                   int checkpoint_after, Instance* oracle) {
  DurableOptions options;
  options.retry.max_attempts = 1;  // A crashed env never recovers mid-run.
  options.checkpoint_every_records = 0;
  Instance opened;
  auto store = DurableStore::Open(env, dir, options, &opened);
  if (!store.ok()) return 0;
  Instance live = std::move(opened);
  int acked = 0;
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (!(*store)->Journal(mutations[i]).ok()) return acked;
    EXPECT_TRUE(ApplyMutation(&live, mutations[i]).ok());
    EXPECT_TRUE(ApplyMutation(oracle, mutations[i]).ok());
    ++acked;
    if (static_cast<int>(i) + 1 == checkpoint_after) {
      // A checkpoint failure is not a loss — the WAL still has everything.
      (void)(*store)->Checkpoint(live);
    }
  }
  (void)(*store)->Close();
  return acked;
}

std::vector<Mutation> ChaosMutations(uint64_t seed, int n) {
  Rng rng(seed);
  Instance state;
  std::vector<Mutation> mutations;
  for (int i = 0; i < n; ++i) {
    Mutation m = RandomMutation(&rng, state);
    EXPECT_TRUE(ApplyMutation(&state, m).ok());
    mutations.push_back(std::move(m));
  }
  return mutations;
}

// Reopens after a crash and requires the recovered catalog bit-identical
// to the acknowledged oracle — and a query answer to match it.
void VerifyRecovered(FaultInjectionEnv* env, const std::string& dir,
                     const Instance& oracle, const std::string& context) {
  DurableOptions options;
  Instance recovered;
  auto store = DurableStore::Open(env, dir, options, &recovered);
  ASSERT_TRUE(store.ok()) << context << ": " << store.status();
  EXPECT_EQ(CatalogBytes(recovered), CatalogBytes(oracle)) << context;
  // Spot-check through the query engine: answers, not just bytes.
  if (oracle.Has("r0")) {
    QueryEngine got(recovered.Clone());
    QueryEngine want(oracle.Clone());
    auto got_answer = got.Run("r0 | r0");
    auto want_answer = want.Run("r0 | r0");
    ASSERT_TRUE(got_answer.ok() && want_answer.ok()) << context;
    EXPECT_EQ(got_answer->regions, want_answer->regions) << context;
  }
  EXPECT_TRUE((*store)->Close().ok()) << context;
}

TEST(RecoveryCrashTest, CrashMatrixLosesNoAcknowledgedMutation) {
  const std::vector<Mutation> mutations = ChaosMutations(0xc4a5, 6);
  const int checkpoint_after = 3;

  // Dry run to size the matrix: every mutating env op is a kill point.
  int64_t total_ops = 0;
  {
    const std::string dir = MakeStoreDir("crash_dry");
    FaultInjectionEnv env;
    Instance oracle;
    EXPECT_EQ(RunChaosScript(&env, dir, mutations, checkpoint_after, &oracle),
              static_cast<int>(mutations.size()));
    total_ops = env.op_count();
  }
  ASSERT_GE(total_ops, 20);

  for (int64_t kill = 0; kill < total_ops; ++kill) {
    for (uint64_t torn : {uint64_t{0}, uint64_t{1}, uint64_t{7}}) {
      for (bool renames_survive : {false, true}) {
        const std::string context =
            "kill=" + std::to_string(kill) + " torn=" + std::to_string(torn) +
            " renames=" + std::to_string(renames_survive);
        const std::string dir = MakeStoreDir("crash_matrix");
        FaultInjectionEnv env;
        env.CrashAfterOps(kill, torn);
        Instance oracle;
        RunChaosScript(&env, dir, mutations, checkpoint_after, &oracle);
        ASSERT_TRUE(env.crashed()) << context;
        ASSERT_TRUE(env.Recover(renames_survive).ok()) << context;
        VerifyRecovered(&env, dir, oracle, context);
      }
    }
  }
}

TEST(RecoveryCrashTest, CrashWithBitflipInTornTailStillLosesNothing) {
  const std::vector<Mutation> mutations = ChaosMutations(0xb1f1, 5);
  const size_t iters = FuzzIterations(120);
  for (size_t iter = 0; iter < iters; ++iter) {
    Rng rng(0xb1f2 + iter);
    const std::string dir = MakeStoreDir("crash_bitflip");
    FaultInjectionEnv env;
    const int64_t kill = static_cast<int64_t>(rng.Between(1, 40));
    env.CrashAfterOps(kill, rng.Below(9));
    Instance oracle;
    RunChaosScript(&env, dir, mutations, /*checkpoint_after=*/3, &oracle);
    if (!env.crashed()) continue;  // Script finished before the kill point.
    ASSERT_TRUE(env.Recover(rng.Chance(0.5)).ok());
    // Simulate a torn tail whose bytes additionally rotted: append a whole,
    // never-acknowledged frame to whatever WAL the crash left behind and
    // flip one of its bits. CRC32C detects every single-bit flip, so replay
    // must drop it and recover exactly the acknowledged prefix.
    storage::Env* base = storage::Env::Default();
    const std::string wal_path = dir + "/wal.log";
    if (base->FileExists(wal_path)) {
      std::string bytes = *base->ReadFileToString(wal_path);
      auto pre = ReadWalBytes(bytes);
      if (pre.ok()) {
        std::string frame = *EncodeWalRecord(
            pre->last_lsn + 1, Mutation::BindText("never acknowledged"));
        const size_t flip = static_cast<size_t>(rng.Below(frame.size() * 8));
        frame[flip / 8] =
            static_cast<char>(frame[flip / 8] ^ (1 << (flip % 8)));
        auto file = base->NewWritableFile(wal_path);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE((*file)->Append(bytes + frame).ok());
        ASSERT_TRUE((*file)->Close().ok());
      }
    }
    VerifyRecovered(&env, dir, oracle,
                    "iter=" + std::to_string(iter));
  }
}

TEST(RecoveryCrashTest, RandomizedCrashLoopFuzz) {
  const size_t iters = FuzzIterations(150);
  for (size_t iter = 0; iter < iters; ++iter) {
    Rng rng(0x10af + iter * 2654435761u);
    const std::vector<Mutation> mutations =
        ChaosMutations(rng.Next(), static_cast<int>(rng.Between(1, 8)));
    const int checkpoint_after =
        static_cast<int>(rng.Below(mutations.size() + 1));
    const std::string dir = MakeStoreDir("crash_fuzz");
    FaultInjectionEnv env;
    const int64_t kill = static_cast<int64_t>(rng.Between(0, 60));
    const uint64_t torn = rng.Below(12);
    env.CrashAfterOps(kill, torn);
    Instance oracle;
    const int acked =
        RunChaosScript(&env, dir, mutations, checkpoint_after, &oracle);
    // Recover unconditionally: it also disarms the kill point, which would
    // otherwise fire mid-verification when the script finished early.
    const bool renames_survive = rng.Chance(0.5);
    ASSERT_TRUE(env.Recover(renames_survive).ok());
    VerifyRecovered(&env, dir, oracle,
                    "iter=" + std::to_string(iter) + " n=" +
                        std::to_string(mutations.size()) + " ck=" +
                        std::to_string(checkpoint_after) + " kill=" +
                        std::to_string(kill) + " torn=" +
                        std::to_string(torn) + " renames=" +
                        std::to_string(renames_survive) + " acked=" +
                        std::to_string(acked));
  }
}

}  // namespace
}  // namespace recovery
}  // namespace regal
