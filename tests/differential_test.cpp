// Differential property tests: random expressions evaluated through every
// independent pipeline the library provides —
//   fast operators vs naive oracles,
//   direct evaluation vs the FMFT translation (Prop 3.3),
//   parser round trip (ToString -> ParseQuery),
//   optimizer output vs input.
// Any divergence pins a bug in one of the stacks.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "doc/synthetic.h"
#include "fmft/model.h"
#include "fmft/translate.h"
#include "opt/optimizer.h"
#include "query/parser.h"
#include "util/random.h"

namespace regal {
namespace {

const std::vector<std::string>& Names() {
  static const std::vector<std::string> names{"R0", "R1", "R2"};
  return names;
}

// A random base-algebra expression with ~`ops` operators.
ExprPtr RandomExpr(Rng& rng, int ops, const std::vector<Pattern>& patterns) {
  if (ops <= 0) {
    return Expr::Name(Names()[rng.Below(Names().size())]);
  }
  // Occasionally a selection, otherwise a binary operator.
  if (!patterns.empty() && rng.Chance(0.15)) {
    return Expr::Select(patterns[rng.Below(patterns.size())],
                        RandomExpr(rng, ops - 1, patterns));
  }
  static const OpKind kOps[] = {
      OpKind::kUnion,     OpKind::kIntersect, OpKind::kDifference,
      OpKind::kIncluding, OpKind::kIncluded,  OpKind::kPrecedes,
      OpKind::kFollows};
  OpKind op = kOps[rng.Below(7)];
  int left_ops = static_cast<int>(rng.Below(static_cast<uint64_t>(ops)));
  return Expr::Binary(op, RandomExpr(rng, left_ops, patterns),
                      RandomExpr(rng, ops - 1 - left_ops, patterns));
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, FastVsNaiveOnRandomExpressions) {
  Rng rng(GetParam());
  Pattern p = *Pattern::Parse("w*");
  for (int trial = 0; trial < 25; ++trial) {
    ExprPtr e = RandomExpr(rng, static_cast<int>(1 + rng.Below(6)), {p});
    RandomInstanceOptions options;
    options.num_regions = 20;
    Instance instance = RandomLaminarInstance(rng, options);
    AssignRandomPatterns(&instance, rng, {p}, 0.3);
    EvalOptions naive;
    naive.use_naive = true;
    auto fast = Evaluate(instance, e);
    auto slow = Evaluate(instance, e, naive);
    ASSERT_TRUE(fast.ok() && slow.ok()) << e->ToString();
    EXPECT_EQ(*fast, *slow) << e->ToString();
  }
}

TEST_P(DifferentialTest, AlgebraVsFormulaOnRandomExpressions) {
  Rng rng(GetParam() * 3 + 1);
  Pattern p = *Pattern::Parse("w*");
  for (int trial = 0; trial < 15; ++trial) {
    ExprPtr e = RandomExpr(rng, static_cast<int>(1 + rng.Below(5)), {p});
    RandomInstanceOptions options;
    options.num_regions = 16;
    Instance instance = RandomLaminarInstance(rng, options);
    AssignRandomPatterns(&instance, rng, {p}, 0.4);
    auto formula = AlgebraToFormula(e);
    ASSERT_TRUE(formula.ok());
    std::vector<Region> region_of;
    FmftModel model = ModelFromInstance(instance, {p}, &region_of);
    std::vector<Region> via_formula;
    for (size_t w : (*formula)->Evaluate(model)) {
      via_formula.push_back(region_of[w]);
    }
    auto direct = Evaluate(instance, e);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(RegionSet::FromUnsorted(std::move(via_formula)), *direct)
        << e->ToString();
  }
}

TEST_P(DifferentialTest, ParserRoundTripOnRandomExpressions) {
  Rng rng(GetParam() * 7 + 5);
  Pattern p = *Pattern::Parse("*x?z*");
  Pattern q = *Pattern::Parse("Q", /*case_insensitive=*/true);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr e = RandomExpr(rng, static_cast<int>(rng.Below(8)), {p, q});
    auto reparsed = ParseQuery(e->ToString());
    ASSERT_TRUE(reparsed.ok()) << e->ToString() << ": " << reparsed.status();
    EXPECT_TRUE(e->Equals(**reparsed)) << e->ToString();
  }
}

TEST_P(DifferentialTest, OptimizerPreservesSemantics) {
  Rng rng(GetParam() * 13 + 11);
  for (int trial = 0; trial < 20; ++trial) {
    ExprPtr e = RandomExpr(rng, static_cast<int>(1 + rng.Below(6)), {});
    OptimizerOptions options;  // No RIG: only universally sound rules fire.
    OptimizeOutcome outcome = Optimize(e, options);
    RandomInstanceOptions instance_options;
    instance_options.num_regions = 18;
    Instance instance = RandomLaminarInstance(rng, instance_options);
    auto before = Evaluate(instance, e);
    auto after = Evaluate(instance, outcome.expr);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(*before, *after)
        << e->ToString() << " vs " << outcome.expr->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace regal
