#include "safety/failpoint.h"

#include <cstdio>
#include <cstdlib>

#include "util/stringutil.h"

namespace regal {
namespace safety {

std::atomic<int64_t> FailpointRegistry::armed_count_{0};

namespace {
// Force REGAL_FAILPOINTS parsing before main(): the disabled fast path
// checks only armed_count_ and never touches Default(), so without this a
// process that arms solely through the environment would never fire.
const bool kEnvSpecParsed = (FailpointRegistry::Default(), true);
}  // namespace

FailpointRegistry& FailpointRegistry::Default() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    const char* spec = std::getenv("REGAL_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') {
      Status status = r->ArmFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "REGAL_FAILPOINTS ignored: %s\n",
                     status.ToString().c_str());
        r->DisarmAll();
      }
    }
    return r;
  }();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name) { Arm(name, Config()); }

void FailpointRegistry::Arm(const std::string& name, Config config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.insert_or_assign(
      name, Entry{config, Rng(config.seed), 0, 0});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int64_t>(entries_.size()),
                         std::memory_order_relaxed);
  entries_.clear();
}

Status FailpointRegistry::ArmFromSpec(const std::string& spec) {
  for (const std::string& raw : Split(spec, ';')) {
    std::string entry(StripAscii(raw));
    if (entry.empty()) continue;
    Config config;
    std::string name = entry;
    // Suffix markers may appear in any order after the name; parse from the
    // back so '=' / '@' / '#' inside a name are not supported (names are
    // dotted identifiers).
    auto take_suffix = [&name](char marker) -> std::string {
      size_t pos = name.find_last_of(marker);
      if (pos == std::string::npos) return "";
      std::string value = name.substr(pos + 1);
      name.resize(pos);
      return value;
    };
    std::string fires = take_suffix('#');
    std::string seed = take_suffix('@');
    std::string probability = take_suffix('=');
    char* end = nullptr;
    if (!probability.empty()) {
      config.probability = std::strtod(probability.c_str(), &end);
      // Negated form so NaN (for which both < and > are false) is rejected
      // instead of arming a failpoint that silently never fires.
      if (end == probability.c_str() || *end != '\0' ||
          !(config.probability >= 0 && config.probability <= 1)) {
        return Status::InvalidArgument("bad failpoint probability '" +
                                       probability + "' in '" + entry + "'");
      }
    }
    if (!seed.empty()) {
      config.seed = std::strtoull(seed.c_str(), &end, 10);
      if (end == seed.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad failpoint seed '" + seed +
                                       "' in '" + entry + "'");
      }
    }
    if (!fires.empty()) {
      config.max_fires = std::strtoll(fires.c_str(), &end, 10);
      if (end == fires.c_str() || *end != '\0' || config.max_fires < 0) {
        return Status::InvalidArgument("bad failpoint fire cap '" + fires +
                                       "' in '" + entry + "'");
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument("empty failpoint name in '" + entry +
                                     "'");
    }
    Arm(name, config);
  }
  return Status::OK();
}

bool FailpointRegistry::IsArmed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

int64_t FailpointRegistry::FireCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FailpointRegistry::Armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

bool FailpointRegistry::ShouldFire(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (entry.hits++ < entry.config.skip) return false;
  if (entry.config.max_fires >= 0 && entry.fires >= entry.config.max_fires) {
    return false;
  }
  if (!entry.rng.Chance(entry.config.probability)) return false;
  ++entry.fires;
  return true;
}

}  // namespace safety
}  // namespace regal
