#ifndef REGAL_SAFETY_TENANT_H_
#define REGAL_SAFETY_TENANT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "safety/context.h"
#include "util/status.h"

namespace regal {
namespace safety {

/// Per-tenant resource quota for the multi-tenant query service. Extends
/// the per-query QueryLimits discipline one level up: a tenant's *aggregate*
/// footprint (concurrent queries, response bytes in flight) is bounded the
/// same way a single query's work is.
struct TenantQuota {
  /// Hard cap on this tenant's concurrent queries; <= 0 means "a fair
  /// share of the governor's global cap" (see TenantGovernor::Admit).
  int max_concurrent = 0;
  /// Byte cap on this tenant's responses currently being serialized and
  /// sent (backpressure: a tenant streaming giant results cannot buffer
  /// without bound); <= 0 means unlimited.
  int64_t max_inflight_response_bytes = 0;
  /// Limits applied to each of the tenant's queries (deadline, memory
  /// budget, expression complexity, cancellation).
  QueryLimits limits;
};

/// Admission outcome detail, for metrics labels and error messages.
enum class AdmitReject {
  kNone,       ///< Admitted.
  kCapacity,   ///< The global concurrency cap is exhausted.
  kFairShare,  ///< The tenant exceeded its (explicit or fair-share) cap.
};

const char* AdmitRejectLabel(AdmitReject reject);

/// Thread-safe per-tenant accountant: concurrency admission with
/// fair-share arbitration plus byte-accounted response backpressure.
///
/// Fair share: with a global cap of G slots and A tenants currently
/// holding at least one slot (the candidate counts as active), a tenant
/// without an explicit max_concurrent may hold up to max(1, G / A) slots.
/// The bound adapts as tenants come and go — a tenant alone on the box
/// uses all of it; the moment a second tenant shows up, neither can
/// starve the other below half. Rejection is immediate (no queueing):
/// the service surfaces kResourceExhausted and the client retries, which
/// under load beats accumulating blocked handler threads.
class TenantGovernor {
 public:
  struct Options {
    /// Global concurrent-query cap across all tenants.
    int max_concurrent_total = 64;
    /// Quota for tenants without an explicit SetQuota entry.
    TenantQuota default_quota;
  };

  explicit TenantGovernor(Options options) : options_(std::move(options)) {}

  void SetQuota(const std::string& tenant, TenantQuota quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  /// Takes one concurrency slot for `tenant`, or reports why not. On
  /// success the caller must Release() exactly once (AdmissionTicket
  /// below). `reject` (when non-null) is filled with the rejection kind.
  Status Admit(const std::string& tenant, AdmitReject* reject = nullptr);
  void Release(const std::string& tenant);

  /// Charges `bytes` of response payload against the tenant's in-flight
  /// byte cap; kResourceExhausted when the cap would be exceeded (nothing
  /// is charged then). Release with ReleaseResponseBytes once sent.
  Status ChargeResponseBytes(const std::string& tenant, int64_t bytes);
  void ReleaseResponseBytes(const std::string& tenant, int64_t bytes);

  int inflight_total() const;
  int active_tenants() const;
  int64_t inflight_response_bytes_total() const;

  /// Per-tenant rows for /statusz: name, in-flight queries, in-flight
  /// response bytes, admitted/rejected totals.
  std::vector<std::pair<std::string, std::string>> StatusRows() const;

 private:
  struct TenantState {
    int inflight = 0;
    int64_t response_bytes = 0;
    int64_t admitted_total = 0;
    int64_t rejected_total = 0;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, TenantState> state_;
  int inflight_total_ = 0;
};

/// RAII admission slot: releases on destruction. Empty (ok() == false)
/// when admission was rejected.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(TenantGovernor* governor, std::string tenant)
      : governor_(governor), tenant_(std::move(tenant)) {}
  ~AdmissionTicket() { Release(); }
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : governor_(std::exchange(other.governor_, nullptr)),
        tenant_(std::move(other.tenant_)) {}
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      governor_ = std::exchange(other.governor_, nullptr);
      tenant_ = std::move(other.tenant_);
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool ok() const { return governor_ != nullptr; }
  void Release() {
    if (governor_ != nullptr) {
      governor_->Release(tenant_);
      governor_ = nullptr;
    }
  }

 private:
  TenantGovernor* governor_ = nullptr;
  std::string tenant_;
};

}  // namespace safety
}  // namespace regal

#endif  // REGAL_SAFETY_TENANT_H_
