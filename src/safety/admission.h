#ifndef REGAL_SAFETY_ADMISSION_H_
#define REGAL_SAFETY_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace regal {
namespace safety {

/// Tuning for the CoDel-style admission controller (see AdmissionController).
struct AdmissionOptions {
  /// Concurrent execution slots. Requests beyond this queue; the queue's
  /// sojourn time is the controller's congestion signal.
  int capacity = 1;
  /// Requests waiting beyond this are refused outright (kQueueFull):
  /// an unbounded queue is exactly the failure mode this controller
  /// exists to prevent.
  int max_queue = 64;
  /// Upper bound on how long one request may wait for a slot before it is
  /// shed as kTimedOut. Keeps worst-case added latency explicit.
  int64_t max_wait_ms = 1000;
  /// CoDel target: the acceptable standing sojourn time. Below this the
  /// queue is "good" (absorbing bursts); above it for a full interval the
  /// queue is "bad" (standing) and shedding starts.
  double target_ms = 5.0;
  /// CoDel interval: how long sojourn must stay above target before the
  /// first shed, and the base period of the shedding cadence.
  int64_t interval_ms = 100;
  /// Sustained shedding for this long latches brownout mode.
  int64_t brownout_after_ms = 2000;
  /// Out of the shedding state for this long unlatches it.
  int64_t brownout_exit_ms = 1000;
  /// Test hook: monotonic milliseconds. Defaults to steady_clock.
  std::function<int64_t()> clock_ms;
};

enum class AdmitOutcome {
  kAdmitted,   ///< Caller owns a slot; must call Leave() when done.
  kShed,       ///< CoDel shed: standing queue, lowest-priority first.
  kQueueFull,  ///< The bounded wait queue is at max_queue.
  kTimedOut,   ///< Waited max_wait_ms without reaching a slot.
  kShutdown,   ///< The controller is shutting down; nothing is admitted.
};

/// What Admit() decided, plus the hints a typed kOverloaded reply carries.
struct AdmitDecision {
  AdmitOutcome outcome = AdmitOutcome::kAdmitted;
  /// Time this request spent queued before the decision.
  double sojourn_ms = 0;
  /// Server-suggested client backoff; > 0 on every non-admitted outcome.
  double retry_after_ms = 0;
};

/// Point-in-time state for /statusz.
struct AdmissionSnapshot {
  int in_flight = 0;
  int queued = 0;
  bool dropping = false;
  bool brownout = false;
  int64_t drop_count = 0;
  int64_t admitted_total = 0;
  int64_t shed_total = 0;
  int64_t brownout_entries = 0;
};

/// Adaptive admission control for the query service, adapted from the
/// CoDel AQM (Nichols & Jacobson, "Controlling Queue Delay", CACM 2012)
/// with the packet queue replaced by a bounded slot-wait queue:
///
///  * Each request Admit()s before executing; up to `capacity` run at
///    once, the rest wait (bounded by max_queue / max_wait_ms).
///  * The congestion signal is *sojourn time* — how long a request waited
///    for its slot — not queue length, so a burst that drains quickly is
///    never punished.
///  * When sojourn stays above target_ms for a full interval_ms, the
///    controller enters the dropping state and sheds one sheddable
///    (priority <= 0) request per drop period, with the period shrinking
///    as interval/sqrt(drop_count) — the classic CoDel control law, which
///    ramps pressure until the standing queue dissolves.
///  * Shedding continuously for brownout_after_ms latches *brownout*;
///    the service degrades (cache-hot answers only, tightened deadlines,
///    paused checkpointer) until the controller has been out of the
///    dropping state for brownout_exit_ms.
///
/// Every decision is cheap (one mutex; no allocation on the admit path)
/// and every transition is exported as regal_resilience_* metrics.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Blocks until a slot is free (admitted) or the controller decides to
  /// refuse. Requests with priority >= 1 are never CoDel-shed — only
  /// queue-full/timeout can refuse them.
  AdmitDecision Admit(int64_t priority);

  /// Releases a slot previously granted by an kAdmitted decision.
  void Leave();

  /// Wakes every waiter with kShutdown and refuses all future Admits.
  void Shutdown();

  /// True while brownout is latched (evaluates the exit condition).
  bool InBrownout();

  AdmissionSnapshot Snapshot();

  const AdmissionOptions& options() const { return options_; }

 private:
  int64_t NowMs() const;
  /// Updates the dropping/brownout latches; callers hold mu_.
  void NoteDropping(bool dropping, int64_t now);
  void EvaluateBrownout(int64_t now);
  double RetryAfterMs(int queued) const;

  AdmissionOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;

  int in_flight_ = 0;
  int queued_ = 0;

  // CoDel state (all guarded by mu_).
  int64_t first_above_ms_ = 0;  // 0: sojourn not above target.
  bool dropping_ = false;
  int64_t drop_next_ms_ = 0;
  int64_t drop_count_ = 0;
  int64_t last_drop_count_ = 0;

  // Brownout latch.
  bool brownout_ = false;
  int64_t dropping_since_ms_ = 0;
  int64_t calm_since_ms_ = 0;

  int64_t admitted_total_ = 0;
  int64_t shed_total_ = 0;
  int64_t brownout_entries_ = 0;

  // Cached metric handles (families registered in the constructor).
  obs::Histogram* sojourn_ms_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* brownout_active_ = nullptr;
  obs::Counter* brownout_entries_counter_ = nullptr;
};

/// RAII slot release for an kAdmitted decision.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller) {}
  ~AdmissionSlot() {
    if (controller_ != nullptr) controller_->Leave();
  }
  AdmissionSlot(AdmissionSlot&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      if (controller_ != nullptr) controller_->Leave();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_ = nullptr;
};

/// Stable label for shed metrics and log lines.
const char* AdmitOutcomeLabel(AdmitOutcome outcome);

}  // namespace safety
}  // namespace regal

#endif  // REGAL_SAFETY_ADMISSION_H_
