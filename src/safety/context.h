#ifndef REGAL_SAFETY_CONTEXT_H_
#define REGAL_SAFETY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "core/expr.h"
#include "util/status.h"

namespace regal {
namespace safety {

/// Cooperative cancellation flag, shared between the caller (who cancels)
/// and the execution stack (which polls at operator boundaries and between
/// kernel chunks). Cancellation is a request, not preemption: the query
/// returns Status::Cancelled at the next checkpoint, leaving the engine
/// unchanged.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query resource limits. Default-constructed limits enforce nothing
/// (Any() == false), and the engine then skips governance entirely — the
/// zero-cost-when-idle contract measured by bench_safety.
///
/// The limits follow the paper's own budgeting discipline: the emptiness
/// checker already bounds its search (EmptinessOptions::eval_budget,
/// Theorems 3.4/4.1); QueryLimits extends the same idea to every query —
/// no search or evaluation runs unbudgeted when a limit is set.
struct QueryLimits {
  /// Wall-clock deadline measured from QueryContext construction; <= 0
  /// means none. Exceeding it returns Status::DeadlineExceeded within one
  /// checkpoint interval (one operator node, or one kernel chunk).
  double deadline_ms = 0;
  /// Bytes of region data the query may materialize (memoized intermediate
  /// results, one Region = 2 offsets); <= 0 means unlimited. Exceeding it
  /// returns Status::ResourceExhausted.
  int64_t memory_limit_bytes = 0;
  /// Admission cap on distinct expression nodes (a DAG node counts once,
  /// matching what evaluation actually executes); <= 0 means unlimited.
  int64_t max_expr_nodes = 0;
  /// Admission cap on expression nesting depth; <= 0 means unlimited.
  int max_expr_depth = 0;
  /// Cooperative cancellation; null means not cancellable.
  std::shared_ptr<CancelToken> cancel;

  bool Any() const {
    return deadline_ms > 0 || memory_limit_bytes > 0 || max_expr_nodes > 0 ||
           max_expr_depth > 0 || cancel != nullptr;
  }
};

/// One query's governance state: the deadline resolved to a time point, the
/// byte account, and the cancel token. Threaded through the evaluator, the
/// partitioned kernels and the emptiness search; every layer calls Check()
/// (full status, for paths that can return one) or ShouldAbort() (bool, for
/// kernel chunk loops that bail and let the caller surface Check()).
///
/// Thread-safe: concurrent subtree evaluation and kernel chunks charge and
/// poll the same context.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  explicit QueryContext(const QueryLimits& limits);

  /// OK, or the first violated limit: Cancelled, DeadlineExceeded, or
  /// ResourceExhausted (memory). Cheap when the corresponding limits are
  /// unset — cancellation is one atomic load, the deadline one clock read.
  Status Check() const;

  /// Lock-free variant for kernel chunk loops: true once any limit has been
  /// violated. Callers abandon their chunk; the evaluator surfaces the
  /// precise Status at the next operator boundary.
  bool ShouldAbort() const;

  /// Accounts `bytes` of materialized region data against the budget.
  /// Returns ResourceExhausted when the account exceeds the limit (the
  /// charge stays recorded, so subsequent Check()s keep failing). Charges
  /// are cumulative for the query's lifetime — memoized sets live until the
  /// answer is returned, so the running total is the live footprint and the
  /// peak equals the total at completion.
  Status ChargeMemory(int64_t bytes);

  /// High-water mark of charged bytes.
  int64_t peak_memory_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  const QueryLimits& limits() const { return limits_; }

 private:
  QueryLimits limits_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<int64_t> charged_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<bool> over_budget_{false};
};

/// Size/depth of an expression DAG: `nodes` counts distinct nodes (shared
/// subtrees once — what memoized evaluation executes), `depth` the longest
/// root-to-leaf chain.
struct ExprComplexity {
  int64_t nodes = 0;
  int depth = 0;
};

ExprComplexity MeasureExpr(const ExprPtr& expr);

/// Admission control: ResourceExhausted when `expr` exceeds the node or
/// depth caps in `limits`, OK otherwise (including when no caps are set).
Status AdmitExpr(const ExprPtr& expr, const QueryLimits& limits);

}  // namespace safety
}  // namespace regal

#endif  // REGAL_SAFETY_CONTEXT_H_
