#include "safety/admission.h"

#include <chrono>
#include <cmath>

namespace regal {
namespace safety {

const char* AdmitOutcomeLabel(AdmitOutcome outcome) {
  switch (outcome) {
    case AdmitOutcome::kAdmitted:  return "admitted";
    case AdmitOutcome::kShed:      return "codel";
    case AdmitOutcome::kQueueFull: return "queue_full";
    case AdmitOutcome::kTimedOut:  return "timeout";
    case AdmitOutcome::kShutdown:  return "shutdown";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  if (options_.capacity < 1) options_.capacity = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
  obs::Registry& registry = obs::Registry::Default();
  sojourn_ms_ = registry.GetHistogram("regal_resilience_sojourn_ms");
  admitted_counter_ =
      registry.GetCounter("regal_resilience_admitted_total");
  queue_depth_ = registry.GetGauge("regal_resilience_queue_depth");
  brownout_active_ = registry.GetGauge("regal_resilience_brownout_active");
  brownout_entries_counter_ =
      registry.GetCounter("regal_resilience_brownout_entries_total");
}

int64_t AdmissionController::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double AdmissionController::RetryAfterMs(int queued) const {
  // Rough time for the standing queue to drain at one slot-service per
  // target_ms each: long enough that an obedient client re-arrives after
  // the congestion it would have joined, short enough to keep goodput.
  const double per_slot =
      options_.target_ms > 0 ? options_.target_ms : 1.0;
  double hint = per_slot * (static_cast<double>(queued) + 1.0) /
                static_cast<double>(options_.capacity);
  const double floor_ms = static_cast<double>(options_.interval_ms);
  return hint < floor_ms ? floor_ms : hint;
}

void AdmissionController::NoteDropping(bool dropping, int64_t now) {
  if (dropping == dropping_) return;
  dropping_ = dropping;
  if (dropping) {
    dropping_since_ms_ = now;
  } else {
    calm_since_ms_ = now;
  }
}

void AdmissionController::EvaluateBrownout(int64_t now) {
  if (!brownout_) {
    if (dropping_ && dropping_since_ms_ != 0 &&
        now - dropping_since_ms_ >= options_.brownout_after_ms) {
      brownout_ = true;
      ++brownout_entries_;
      brownout_entries_counter_->Increment();
      brownout_active_->Set(1);
    }
  } else {
    if (!dropping_ && calm_since_ms_ != 0 &&
        now - calm_since_ms_ >= options_.brownout_exit_ms) {
      brownout_ = false;
      brownout_active_->Set(0);
    }
  }
}

AdmitDecision AdmissionController::Admit(int64_t priority) {
  std::unique_lock<std::mutex> lock(mu_);
  AdmitDecision decision;
  const int64_t enqueue_ms = NowMs();
  auto refuse = [&](AdmitOutcome outcome, int64_t now) {
    decision.outcome = outcome;
    decision.sojourn_ms = static_cast<double>(now - enqueue_ms);
    decision.retry_after_ms = RetryAfterMs(queued_);
    ++shed_total_;
    obs::Registry::Default()
        .GetCounter("regal_resilience_shed_total",
                    {{"reason", AdmitOutcomeLabel(outcome)}})
        ->Increment();
    EvaluateBrownout(now);
    return decision;
  };

  if (shutdown_) return refuse(AdmitOutcome::kShutdown, enqueue_ms);
  if (queued_ >= options_.max_queue) {
    return refuse(AdmitOutcome::kQueueFull, enqueue_ms);
  }

  ++queued_;
  queue_depth_->Set(queued_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.max_wait_ms);
  bool timed_out = false;
  while (in_flight_ >= options_.capacity && !shutdown_) {
    if (options_.clock_ms) {
      // Injected clock (tests): poll it rather than trusting wall time,
      // so a fake clock can expire the wait deterministically.
      if (NowMs() - enqueue_ms >= options_.max_wait_ms) {
        timed_out = true;
        break;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
               in_flight_ >= options_.capacity) {
      timed_out = true;
      break;
    }
  }
  --queued_;
  queue_depth_->Set(queued_);
  const int64_t now = NowMs();
  if (shutdown_) {
    cv_.notify_one();
    return refuse(AdmitOutcome::kShutdown, now);
  }
  if (timed_out) return refuse(AdmitOutcome::kTimedOut, now);

  // A slot is free; the CoDel control law decides whether this request
  // gets it or is shed to dissolve a standing queue.
  const double sojourn = static_cast<double>(now - enqueue_ms);
  sojourn_ms_->Observe(sojourn);

  if (sojourn < options_.target_ms || queued_ == 0) {
    // Below target (or no one else waiting): the queue is doing its job,
    // absorbing a burst. Leave the dropping state.
    first_above_ms_ = 0;
    NoteDropping(false, now);
  } else if (first_above_ms_ == 0) {
    // First sojourn above target: give the queue one interval to drain
    // before concluding it is standing.
    first_above_ms_ = now + options_.interval_ms;
  } else if (now >= first_above_ms_) {
    // Above target for a full interval — a standing queue.
    if (!dropping_) {
      NoteDropping(true, now);
      // Re-entering drop state shortly after leaving it resumes near the
      // previous cadence instead of restarting the slow ramp (the CoDel
      // hysteresis that makes the control law converge).
      drop_count_ = last_drop_count_ > 2 ? last_drop_count_ - 2 : 1;
      drop_next_ms_ =
          now + static_cast<int64_t>(
                    static_cast<double>(options_.interval_ms) /
                    std::sqrt(static_cast<double>(drop_count_)));
    }
    if (dropping_ && now >= drop_next_ms_ && priority <= 0) {
      ++drop_count_;
      last_drop_count_ = drop_count_;
      drop_next_ms_ =
          now + static_cast<int64_t>(
                    static_cast<double>(options_.interval_ms) /
                    std::sqrt(static_cast<double>(drop_count_)));
      cv_.notify_one();  // The freed slot goes to the next waiter.
      return refuse(AdmitOutcome::kShed, now);
    }
  }
  EvaluateBrownout(now);

  ++in_flight_;
  ++admitted_total_;
  admitted_counter_->Increment();
  decision.outcome = AdmitOutcome::kAdmitted;
  decision.sojourn_ms = sojourn;
  return decision;
}

void AdmissionController::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool AdmissionController::InBrownout() {
  std::lock_guard<std::mutex> lock(mu_);
  EvaluateBrownout(NowMs());
  return brownout_;
}

AdmissionSnapshot AdmissionController::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  EvaluateBrownout(NowMs());
  AdmissionSnapshot snapshot;
  snapshot.in_flight = in_flight_;
  snapshot.queued = queued_;
  snapshot.dropping = dropping_;
  snapshot.brownout = brownout_;
  snapshot.drop_count = drop_count_;
  snapshot.admitted_total = admitted_total_;
  snapshot.shed_total = shed_total_;
  snapshot.brownout_entries = brownout_entries_;
  return snapshot;
}

}  // namespace safety
}  // namespace regal
