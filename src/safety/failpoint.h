#ifndef REGAL_SAFETY_FAILPOINT_H_
#define REGAL_SAFETY_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace regal {
namespace safety {

/// Deterministic fault-injection registry. Failpoints are named sites
/// planted on the execution paths that a production deployment must survive
/// (thread pool dispatch, partitioned kernels, index builds, evaluator
/// nodes, the FMFT emptiness search, and — via the storage
/// FaultInjectionEnv, see storage/fault_env.h — the snapshot write path:
/// storage.env.{open,write,sync,rename,dirsync}.eio, storage.env.write.
/// {enospc,short,bitflip} and storage.env.crash). A site is *disabled*
/// unless armed, and
/// the disabled check is a single relaxed atomic load of a process-wide
/// armed-site counter plus one branch — no lock, no map lookup, no string
/// hashing — so shipping the probes costs nothing (bench_safety measures
/// this).
///
/// Arming is programmatic (Arm / ArmFromSpec) or via the REGAL_FAILPOINTS
/// environment variable, parsed once when the default registry is first
/// used. Firing decisions come from a per-failpoint xorshift Rng seeded at
/// arm time, so a stress run is reproducible from (spec, seed) alone.
///
/// Two call styles match the two failure modes the engine supports:
///   * CheckFailpoint(name)  — fatal injection: returns a non-OK Status
///     ("injected failure at '<name>'") that propagates like any other
///     error. Planted where a Status can flow.
///   * FailpointFires(name)  — degradation trigger: returns bool; the site
///     falls back to its sequential / slow path and records the fallback.
///     Planted where execution must continue (kernels, index builds, pool
///     saturation).
class FailpointRegistry {
 public:
  /// How an armed failpoint decides to fire.
  struct Config {
    /// Probability that an armed hit fires, decided by the seeded Rng.
    double probability = 1.0;
    /// Hits to let through before the failpoint may fire (0 = immediately).
    int64_t skip = 0;
    /// Cap on total fires; < 0 means unlimited.
    int64_t max_fires = -1;
    /// Seed for the per-failpoint Rng (probability < 1 draws from it).
    uint64_t seed = 1;
  };

  /// The process-wide registry. First use parses REGAL_FAILPOINTS (same
  /// syntax as ArmFromSpec); a malformed variable is reported to stderr and
  /// ignored rather than aborting startup.
  static FailpointRegistry& Default();

  FailpointRegistry() = default;
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  void Arm(const std::string& name);  // Fires every hit (default Config).
  void Arm(const std::string& name, Config config);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Arms failpoints from a spec string:
  ///   spec     := entry (';' entry)*
  ///   entry    := name ['=' probability] ['@' seed] ['#' max_fires]
  /// e.g. "exec.kernel.degrade;eval.node=0.5@7;index.build=1#1".
  Status ArmFromSpec(const std::string& spec);

  /// True iff `name` is currently armed (regardless of whether it would
  /// fire on the next hit).
  bool IsArmed(const std::string& name) const;

  /// Times `name` fired since it was (re-)armed. 0 when not armed.
  int64_t FireCount(const std::string& name) const;

  /// Armed failpoint names, sorted (diagnostics / tests).
  std::vector<std::string> Armed() const;

  /// Decides one hit of `name`. Internal — call through FailpointFires /
  /// CheckFailpoint, which apply the zero-cost disabled gate first.
  bool ShouldFire(const char* name);

  /// Relaxed count of armed failpoints across every registry instance; the
  /// disabled fast path is `armed == 0`.
  static int64_t ArmedCountRelaxed() {
    return armed_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Config config;
    Rng rng{1};
    int64_t hits = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // Process-wide so the inline fast path needs no registry pointer.
  static std::atomic<int64_t> armed_count_;
};

/// Degradation-style probe: true iff `name` is armed and fires on this hit.
/// Disabled cost: one relaxed load + branch.
inline bool FailpointFires(const char* name) {
  if (FailpointRegistry::ArmedCountRelaxed() == 0) return false;
  return FailpointRegistry::Default().ShouldFire(name);
}

/// Fatal-style probe: a non-OK Status when `name` fires, OK otherwise.
/// Pair with REGAL_RETURN_NOT_OK at the planted site.
inline Status CheckFailpoint(const char* name) {
  if (FailpointFires(name)) {
    return Status::Internal(std::string("injected failure at '") + name + "'");
  }
  return Status::OK();
}

}  // namespace safety
}  // namespace regal

#endif  // REGAL_SAFETY_FAILPOINT_H_
