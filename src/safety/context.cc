#include "safety/context.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace regal {
namespace safety {

QueryContext::QueryContext(const QueryLimits& limits) : limits_(limits) {
  if (limits_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       limits_.deadline_ms));
  }
}

Status QueryContext::Check() const {
  if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
    return Status::Cancelled("query cancelled by caller");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        "query deadline of " + std::to_string(limits_.deadline_ms) +
        " ms exceeded");
  }
  if (over_budget_.load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted(
        "query memory budget of " +
        std::to_string(limits_.memory_limit_bytes) + " bytes exceeded");
  }
  return Status::OK();
}

bool QueryContext::ShouldAbort() const {
  if (limits_.cancel != nullptr && limits_.cancel->cancelled()) return true;
  if (over_budget_.load(std::memory_order_relaxed)) return true;
  return has_deadline_ && Clock::now() >= deadline_;
}

Status QueryContext::ChargeMemory(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  int64_t total =
      charged_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (total > peak && !peak_bytes_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
  if (limits_.memory_limit_bytes > 0 && total > limits_.memory_limit_bytes) {
    over_budget_.store(true, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "query memory budget of " +
        std::to_string(limits_.memory_limit_bytes) + " bytes exceeded (" +
        std::to_string(total) + " bytes charged)");
  }
  return Status::OK();
}

namespace {

// DAG-aware measurement: depth memoized per node so shared subtrees are
// visited once, keeping the walk linear in distinct nodes even for the
// exponentially-unfolding expansions of Props 5.2/5.4. Iterative post-order
// with an explicit stack — admission exists to reject pathologically deep
// expressions, so measuring them must not itself recurse to that depth.
int MeasureNode(const Expr* root,
                std::unordered_map<const Expr*, int>* depths) {
  struct Frame {
    const Expr* node;
    size_t next_child = 0;
    int child_depth = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const std::vector<ExprPtr>& children = frame.node->children();
    if (frame.next_child < children.size()) {
      const Expr* child = children[frame.next_child++].get();
      auto it = depths->find(child);
      if (it != depths->end()) {
        frame.child_depth = std::max(frame.child_depth, it->second);
      } else {
        // DFS keeps one path in flight, so an unmemoized child is never
        // already on the stack (expressions are acyclic).
        stack.push_back(Frame{child});
      }
    } else {
      int depth = frame.child_depth + 1;
      depths->emplace(frame.node, depth);
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().child_depth = std::max(stack.back().child_depth, depth);
      }
    }
  }
  return depths->at(root);
}

}  // namespace

ExprComplexity MeasureExpr(const ExprPtr& expr) {
  ExprComplexity complexity;
  if (expr == nullptr) return complexity;
  std::unordered_map<const Expr*, int> depths;
  complexity.depth = MeasureNode(expr.get(), &depths);
  complexity.nodes = static_cast<int64_t>(depths.size());
  return complexity;
}

Status AdmitExpr(const ExprPtr& expr, const QueryLimits& limits) {
  if (limits.max_expr_nodes <= 0 && limits.max_expr_depth <= 0) {
    return Status::OK();
  }
  ExprComplexity complexity = MeasureExpr(expr);
  if (limits.max_expr_nodes > 0 && complexity.nodes > limits.max_expr_nodes) {
    return Status::ResourceExhausted(
        "query rejected: " + std::to_string(complexity.nodes) +
        " expression nodes exceed the limit of " +
        std::to_string(limits.max_expr_nodes));
  }
  if (limits.max_expr_depth > 0 && complexity.depth > limits.max_expr_depth) {
    return Status::ResourceExhausted(
        "query rejected: expression depth " +
        std::to_string(complexity.depth) + " exceeds the limit of " +
        std::to_string(limits.max_expr_depth));
  }
  return Status::OK();
}

}  // namespace safety
}  // namespace regal
