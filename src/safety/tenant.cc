#include "safety/tenant.h"

#include <algorithm>

namespace regal {
namespace safety {

const char* AdmitRejectLabel(AdmitReject reject) {
  switch (reject) {
    case AdmitReject::kNone:
      return "none";
    case AdmitReject::kCapacity:
      return "capacity";
    case AdmitReject::kFairShare:
      return "fair_share";
  }
  return "unknown";
}

void TenantGovernor::SetQuota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  quotas_[tenant] = std::move(quota);
}

TenantQuota TenantGovernor::QuotaFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = quotas_.find(tenant);
  return it != quotas_.end() ? it->second : options_.default_quota;
}

Status TenantGovernor::Admit(const std::string& tenant, AdmitReject* reject) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = state_[tenant];
  auto fail = [&](AdmitReject kind, std::string message) {
    if (reject != nullptr) *reject = kind;
    ++state.rejected_total;
    return Status::ResourceExhausted(std::move(message));
  };
  if (inflight_total_ >= options_.max_concurrent_total) {
    return fail(AdmitReject::kCapacity,
                "server at capacity (" +
                    std::to_string(options_.max_concurrent_total) +
                    " concurrent queries)");
  }
  auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it != quotas_.end() ? quota_it->second : options_.default_quota;
  int cap = quota.max_concurrent;
  if (cap <= 0) {
    // Fair share of the global cap among currently-active tenants, the
    // candidate included. Recomputed per admission, so the share grows
    // back automatically as other tenants drain.
    int active = 0;
    for (const auto& [name, other] : state_) {
      if (other.inflight > 0 && name != tenant) ++active;
    }
    ++active;  // The candidate.
    cap = std::max(1, options_.max_concurrent_total / active);
  }
  if (state.inflight >= cap) {
    return fail(AdmitReject::kFairShare,
                "tenant '" + tenant + "' over fair share (" +
                    std::to_string(cap) + " concurrent queries)");
  }
  if (reject != nullptr) *reject = AdmitReject::kNone;
  ++state.inflight;
  ++state.admitted_total;
  ++inflight_total_;
  return Status::OK();
}

void TenantGovernor::Release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(tenant);
  if (it == state_.end() || it->second.inflight <= 0) return;
  --it->second.inflight;
  --inflight_total_;
}

Status TenantGovernor::ChargeResponseBytes(const std::string& tenant,
                                           int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto quota_it = quotas_.find(tenant);
  const TenantQuota& quota =
      quota_it != quotas_.end() ? quota_it->second : options_.default_quota;
  TenantState& state = state_[tenant];
  if (quota.max_inflight_response_bytes > 0 &&
      state.response_bytes + bytes > quota.max_inflight_response_bytes) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' response backpressure: " +
        std::to_string(state.response_bytes + bytes) + " bytes in flight > " +
        std::to_string(quota.max_inflight_response_bytes) + " byte cap");
  }
  state.response_bytes += bytes;
  return Status::OK();
}

void TenantGovernor::ReleaseResponseBytes(const std::string& tenant,
                                          int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = state_.find(tenant);
  if (it == state_.end()) return;
  it->second.response_bytes = std::max<int64_t>(0, it->second.response_bytes - bytes);
}

int TenantGovernor::inflight_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_total_;
}

int TenantGovernor::active_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  int active = 0;
  for (const auto& [name, state] : state_) {
    (void)name;
    if (state.inflight > 0) ++active;
  }
  return active;
}

int64_t TenantGovernor::inflight_response_bytes_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, state] : state_) {
    (void)name;
    total += state.response_bytes;
  }
  return total;
}

std::vector<std::pair<std::string, std::string>> TenantGovernor::StatusRows()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("max_concurrent_total",
                    std::to_string(options_.max_concurrent_total));
  rows.emplace_back("inflight_total", std::to_string(inflight_total_));
  for (const auto& [name, state] : state_) {
    rows.emplace_back(
        name, "inflight=" + std::to_string(state.inflight) +
                  " response_bytes=" + std::to_string(state.response_bytes) +
                  " admitted=" + std::to_string(state.admitted_total) +
                  " rejected=" + std::to_string(state.rejected_total));
  }
  return rows;
}

}  // namespace safety
}  // namespace regal
