#include "graph/digraph.h"

#include <algorithm>

namespace regal {

Digraph::NodeId Digraph::AddNode(const std::string& label) {
  auto it = label_to_id_.find(label);
  if (it != label_to_id_.end()) return it->second;
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  adjacency_.emplace_back();
  reverse_adjacency_.emplace_back();
  label_to_id_.emplace(label, id);
  return id;
}

Result<Digraph::NodeId> Digraph::FindNode(const std::string& label) const {
  auto it = label_to_id_.find(label);
  if (it == label_to_id_.end()) {
    return Status::NotFound("no graph node labelled '" + label + "'");
  }
  return it->second;
}

bool Digraph::HasNode(const std::string& label) const {
  return label_to_id_.count(label) > 0;
}

void Digraph::AddEdge(NodeId from, NodeId to) {
  if (HasEdge(from, to)) return;
  adjacency_[static_cast<size_t>(from)].push_back(to);
  reverse_adjacency_[static_cast<size_t>(to)].push_back(from);
}

void Digraph::AddEdge(const std::string& from, const std::string& to) {
  AddEdge(AddNode(from), AddNode(to));
}

bool Digraph::HasEdge(NodeId from, NodeId to) const {
  const auto& out = adjacency_[static_cast<size_t>(from)];
  return std::find(out.begin(), out.end(), to) != out.end();
}

int Digraph::NumEdges() const {
  int count = 0;
  for (const auto& out : adjacency_) count += static_cast<int>(out.size());
  return count;
}

}  // namespace regal
