#ifndef REGAL_GRAPH_MAXFLOW_H_
#define REGAL_GRAPH_MAXFLOW_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// Dinic's maximum-flow algorithm over an integer-capacity flow network.
/// Used for the polynomial special case of the paper's minimal-set problem
/// (Prop 6.1 remark: a single-operation expression reduces to min-cut).
class MaxFlow {
 public:
  /// Creates a network with `num_nodes` nodes and no edges.
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge with the given capacity; returns its edge id.
  /// A residual reverse edge with capacity 0 is added implicitly.
  int AddEdge(int from, int to, int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`. May be called once.
  int64_t Compute(int source, int sink);

  /// After Compute: flow currently assigned to edge `edge_id`.
  int64_t Flow(int edge_id) const;

  /// After Compute: nodes on the source side of a minimum cut.
  std::vector<bool> MinCutSourceSide(int source) const;

 private:
  struct Edge {
    int to;
    int64_t capacity;
    int rev;  // Index of the reverse edge in graph_[to].
  };

  bool Bfs(int source, int sink);
  int64_t Dfs(int v, int sink, int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
  std::vector<std::pair<int, int>> edge_index_;  // (node, offset) per edge id.
};

/// Minimum *vertex* cut separating `source` from `sink` in a digraph:
/// the smallest set of interior nodes (excluding the endpoints) meeting
/// every directed path from source to sink. Solved by node splitting
/// (v -> v_in, v_out with a unit-capacity internal edge) + Dinic.
///
/// Returns the cut as node ids. Errors if there is a direct edge
/// source -> sink (no vertex set can separate them) — callers in the RIG
/// optimizer treat that case separately.
Result<std::vector<Digraph::NodeId>> MinVertexCut(const Digraph& g,
                                                  Digraph::NodeId source,
                                                  Digraph::NodeId sink);

}  // namespace regal

#endif  // REGAL_GRAPH_MAXFLOW_H_
