#include "graph/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace regal {

MaxFlow::MaxFlow(int num_nodes)
    : graph_(static_cast<size_t>(num_nodes)),
      level_(static_cast<size_t>(num_nodes)),
      iter_(static_cast<size_t>(num_nodes)) {}

int MaxFlow::AddEdge(int from, int to, int64_t capacity) {
  int id = static_cast<int>(edge_index_.size());
  edge_index_.emplace_back(from, static_cast<int>(graph_[static_cast<size_t>(from)].size()));
  graph_[static_cast<size_t>(from)].push_back(
      Edge{to, capacity, static_cast<int>(graph_[static_cast<size_t>(to)].size())});
  graph_[static_cast<size_t>(to)].push_back(
      Edge{from, 0, static_cast<int>(graph_[static_cast<size_t>(from)].size()) - 1});
  return id;
}

bool MaxFlow::Bfs(int source, int sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> q;
  level_[static_cast<size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    int v = q.front();
    q.pop();
    for (const Edge& e : graph_[static_cast<size_t>(v)]) {
      if (e.capacity > 0 && level_[static_cast<size_t>(e.to)] < 0) {
        level_[static_cast<size_t>(e.to)] = level_[static_cast<size_t>(v)] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] >= 0;
}

int64_t MaxFlow::Dfs(int v, int sink, int64_t pushed) {
  if (v == sink) return pushed;
  for (size_t& i = iter_[static_cast<size_t>(v)];
       i < graph_[static_cast<size_t>(v)].size(); ++i) {
    Edge& e = graph_[static_cast<size_t>(v)][i];
    if (e.capacity <= 0 ||
        level_[static_cast<size_t>(e.to)] != level_[static_cast<size_t>(v)] + 1) {
      continue;
    }
    int64_t got = Dfs(e.to, sink, std::min(pushed, e.capacity));
    if (got > 0) {
      e.capacity -= got;
      graph_[static_cast<size_t>(e.to)][static_cast<size_t>(e.rev)].capacity +=
          got;
      return got;
    }
  }
  return 0;
}

int64_t MaxFlow::Compute(int source, int sink) {
  int64_t flow = 0;
  while (Bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (int64_t got =
               Dfs(source, sink, std::numeric_limits<int64_t>::max())) {
      flow += got;
    }
  }
  return flow;
}

int64_t MaxFlow::Flow(int edge_id) const {
  auto [node, offset] = edge_index_[static_cast<size_t>(edge_id)];
  const Edge& e = graph_[static_cast<size_t>(node)][static_cast<size_t>(offset)];
  // Residual capacity on the reverse edge equals the flow pushed forward.
  return graph_[static_cast<size_t>(e.to)][static_cast<size_t>(e.rev)].capacity;
}

std::vector<bool> MaxFlow::MinCutSourceSide(int source) const {
  std::vector<bool> side(graph_.size(), false);
  std::vector<int> stack{source};
  side[static_cast<size_t>(source)] = true;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (const Edge& e : graph_[static_cast<size_t>(v)]) {
      if (e.capacity > 0 && !side[static_cast<size_t>(e.to)]) {
        side[static_cast<size_t>(e.to)] = true;
        stack.push_back(e.to);
      }
    }
  }
  return side;
}

Result<std::vector<Digraph::NodeId>> MinVertexCut(const Digraph& g,
                                                  Digraph::NodeId source,
                                                  Digraph::NodeId sink) {
  if (source == sink) {
    return Status::InvalidArgument("source and sink must differ");
  }
  if (g.HasEdge(source, sink)) {
    return Status::FailedPrecondition(
        "direct edge from source to sink: no vertex cut exists");
  }
  const int n = g.NumNodes();
  // Node splitting: node v becomes v_in = 2v, v_out = 2v+1.
  // Interior nodes get a unit edge v_in -> v_out; endpoints get infinite
  // capacity so they are never chosen for the cut. Every original edge
  // (u, v) becomes u_out -> v_in with infinite capacity.
  const int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
  MaxFlow flow(2 * n);
  std::vector<int> internal_edge(static_cast<size_t>(n), -1);
  for (Digraph::NodeId v = 0; v < n; ++v) {
    int64_t cap = (v == source || v == sink) ? kInf : 1;
    internal_edge[static_cast<size_t>(v)] = flow.AddEdge(2 * v, 2 * v + 1, cap);
  }
  for (Digraph::NodeId u = 0; u < n; ++u) {
    for (Digraph::NodeId v : g.OutNeighbors(u)) {
      flow.AddEdge(2 * u + 1, 2 * v, kInf);
    }
  }
  int64_t cut_size = flow.Compute(2 * source, 2 * sink + 1);
  if (cut_size >= kInf) {
    return Status::Internal("vertex cut should be finite without a direct edge");
  }
  // A node is in the cut iff its internal edge crosses the minimum cut:
  // v_in on the source side, v_out not.
  std::vector<bool> side = flow.MinCutSourceSide(2 * source);
  std::vector<Digraph::NodeId> cut;
  for (Digraph::NodeId v = 0; v < n; ++v) {
    if (v == source || v == sink) continue;
    if (side[static_cast<size_t>(2 * v)] && !side[static_cast<size_t>(2 * v + 1)]) {
      cut.push_back(v);
    }
  }
  if (static_cast<int64_t>(cut.size()) != cut_size) {
    return Status::Internal("min vertex cut reconstruction mismatch");
  }
  return cut;
}

}  // namespace regal
