#ifndef REGAL_GRAPH_ALGORITHMS_H_
#define REGAL_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// Nodes reachable from `source` (including `source` itself).
std::vector<bool> Reachable(const Digraph& g, Digraph::NodeId source);

/// Nodes reachable from `source` without passing *through* any node marked
/// in `blocked`. `source` and the visited endpoints may themselves be
/// blocked-marked only if they equal source. Used for vertex-separator
/// tests: v separates s from t iff t is not in ReachableAvoiding(g, s, {v}).
std::vector<bool> ReachableAvoiding(const Digraph& g, Digraph::NodeId source,
                                    const std::vector<bool>& blocked);

/// True iff every path from `from` to `to` passes through `via`
/// (vacuously true when `to` is unreachable from `from`). `via` must differ
/// from both endpoints.
bool IsVertexSeparator(const Digraph& g, Digraph::NodeId from,
                       Digraph::NodeId to, Digraph::NodeId via);

/// True iff `blocked` (a node subset excluding `from`/`to`) intersects every
/// path from `from` to `to`.
bool SeparatesAll(const Digraph& g, Digraph::NodeId from, Digraph::NodeId to,
                  const std::vector<bool>& blocked);

/// True iff the graph has a directed cycle (self-loops count).
bool HasCycle(const Digraph& g);

/// Strongly connected components (Tarjan, iterative). Returns a component
/// id per node; ids are in reverse topological order of the condensation.
std::vector<int> StronglyConnectedComponents(const Digraph& g);

/// Topological order of a DAG; error if the graph has a cycle.
Result<std::vector<Digraph::NodeId>> TopologicalOrder(const Digraph& g);

/// Length (edge count) of the longest directed path in a DAG; error if the
/// graph has a cycle. A single node gives 0.
Result<int> LongestPathLength(const Digraph& g);

/// Per-node longest path length starting at each node of a DAG.
Result<std::vector<int>> LongestPathFrom(const Digraph& g);

}  // namespace regal

#endif  // REGAL_GRAPH_ALGORITHMS_H_
