#include "graph/algorithms.h"

#include <algorithm>

namespace regal {

namespace {

// Iterative DFS from `source`; nodes marked in `blocked` are not expanded
// (they may be *reached*, but their out-edges are not followed). When
// `mark_blocked_reached` is false, blocked nodes are not even marked
// reached. For separator semantics we want "paths through", so a blocked
// node terminates the walk; reachability of `to` itself only counts if the
// walk arrives at `to`, and callers guarantee `to` is not blocked.
std::vector<bool> Dfs(const Digraph& g, Digraph::NodeId source,
                      const std::vector<bool>* blocked) {
  std::vector<bool> seen(static_cast<size_t>(g.NumNodes()), false);
  if (g.NumNodes() == 0) return seen;
  std::vector<Digraph::NodeId> stack;
  stack.push_back(source);
  seen[static_cast<size_t>(source)] = true;
  while (!stack.empty()) {
    Digraph::NodeId n = stack.back();
    stack.pop_back();
    // A blocked node (other than the source) absorbs the walk.
    if (blocked != nullptr && n != source && (*blocked)[static_cast<size_t>(n)]) {
      continue;
    }
    for (Digraph::NodeId m : g.OutNeighbors(n)) {
      if (!seen[static_cast<size_t>(m)]) {
        seen[static_cast<size_t>(m)] = true;
        stack.push_back(m);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> Reachable(const Digraph& g, Digraph::NodeId source) {
  return Dfs(g, source, nullptr);
}

std::vector<bool> ReachableAvoiding(const Digraph& g, Digraph::NodeId source,
                                    const std::vector<bool>& blocked) {
  return Dfs(g, source, &blocked);
}

bool IsVertexSeparator(const Digraph& g, Digraph::NodeId from,
                       Digraph::NodeId to, Digraph::NodeId via) {
  std::vector<bool> blocked(static_cast<size_t>(g.NumNodes()), false);
  blocked[static_cast<size_t>(via)] = true;
  return SeparatesAll(g, from, to, blocked);
}

bool SeparatesAll(const Digraph& g, Digraph::NodeId from, Digraph::NodeId to,
                  const std::vector<bool>& blocked) {
  std::vector<bool> seen = ReachableAvoiding(g, from, blocked);
  // `to` reachable while avoiding blocked interior nodes => not separated.
  if (!seen[static_cast<size_t>(to)]) return true;
  // Reached `to`: if `to` itself is blocked the caller misused the API;
  // treat a blocked `to` as separated for robustness.
  return blocked[static_cast<size_t>(to)];
}

bool HasCycle(const Digraph& g) {
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(static_cast<size_t>(g.NumNodes()), 0);
  std::vector<std::pair<Digraph::NodeId, size_t>> stack;
  for (Digraph::NodeId start = 0; start < g.NumNodes(); ++start) {
    if (color[static_cast<size_t>(start)] != 0) continue;
    stack.emplace_back(start, 0);
    color[static_cast<size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [n, idx] = stack.back();
      const auto& out = g.OutNeighbors(n);
      if (idx == out.size()) {
        color[static_cast<size_t>(n)] = 2;
        stack.pop_back();
        continue;
      }
      Digraph::NodeId m = out[idx++];
      if (color[static_cast<size_t>(m)] == 1) return true;
      if (color[static_cast<size_t>(m)] == 0) {
        color[static_cast<size_t>(m)] = 1;
        stack.emplace_back(m, 0);
      }
    }
  }
  return false;
}

std::vector<int> StronglyConnectedComponents(const Digraph& g) {
  const int n = g.NumNodes();
  std::vector<int> comp(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<int> num(static_cast<size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<Digraph::NodeId> scc_stack;
  int counter = 0;
  int num_components = 0;

  // Iterative Tarjan with an explicit call stack of (node, child index).
  std::vector<std::pair<Digraph::NodeId, size_t>> call;
  for (Digraph::NodeId start = 0; start < n; ++start) {
    if (num[static_cast<size_t>(start)] != -1) continue;
    call.emplace_back(start, 0);
    num[static_cast<size_t>(start)] = low[static_cast<size_t>(start)] =
        counter++;
    scc_stack.push_back(start);
    on_stack[static_cast<size_t>(start)] = true;
    while (!call.empty()) {
      auto& [v, idx] = call.back();
      const auto& out = g.OutNeighbors(v);
      if (idx < out.size()) {
        Digraph::NodeId w = out[idx++];
        if (num[static_cast<size_t>(w)] == -1) {
          num[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] =
              counter++;
          scc_stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = true;
          call.emplace_back(w, 0);
        } else if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(v)] =
              std::min(low[static_cast<size_t>(v)], num[static_cast<size_t>(w)]);
        }
        continue;
      }
      // Post-visit of v.
      if (low[static_cast<size_t>(v)] == num[static_cast<size_t>(v)]) {
        while (true) {
          Digraph::NodeId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          comp[static_cast<size_t>(w)] = num_components;
          if (w == v) break;
        }
        ++num_components;
      }
      Digraph::NodeId finished = v;
      call.pop_back();
      if (!call.empty()) {
        Digraph::NodeId parent = call.back().first;
        low[static_cast<size_t>(parent)] =
            std::min(low[static_cast<size_t>(parent)],
                     low[static_cast<size_t>(finished)]);
      }
    }
  }
  return comp;
}

Result<std::vector<Digraph::NodeId>> TopologicalOrder(const Digraph& g) {
  if (HasCycle(g)) {
    return Status::FailedPrecondition("graph has a directed cycle");
  }
  const int n = g.NumNodes();
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  for (Digraph::NodeId v = 0; v < n; ++v) {
    for (Digraph::NodeId w : g.OutNeighbors(v)) {
      ++indegree[static_cast<size_t>(w)];
    }
  }
  std::vector<Digraph::NodeId> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<Digraph::NodeId> ready;
  for (Digraph::NodeId v = 0; v < n; ++v) {
    if (indegree[static_cast<size_t>(v)] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    Digraph::NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (Digraph::NodeId w : g.OutNeighbors(v)) {
      if (--indegree[static_cast<size_t>(w)] == 0) ready.push_back(w);
    }
  }
  return order;
}

Result<std::vector<int>> LongestPathFrom(const Digraph& g) {
  REGAL_ASSIGN_OR_RETURN(std::vector<Digraph::NodeId> order,
                         TopologicalOrder(g));
  std::vector<int> longest(static_cast<size_t>(g.NumNodes()), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (Digraph::NodeId w : g.OutNeighbors(*it)) {
      longest[static_cast<size_t>(*it)] =
          std::max(longest[static_cast<size_t>(*it)],
                   1 + longest[static_cast<size_t>(w)]);
    }
  }
  return longest;
}

Result<int> LongestPathLength(const Digraph& g) {
  REGAL_ASSIGN_OR_RETURN(std::vector<int> longest, LongestPathFrom(g));
  int best = 0;
  for (int v : longest) best = std::max(best, v);
  return best;
}

}  // namespace regal
