#ifndef REGAL_GRAPH_DIGRAPH_H_
#define REGAL_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace regal {

/// A simple directed graph over dense integer node ids, with optional string
/// labels. Multi-edges are collapsed; self-loops are allowed (the RIG of a
/// self-nesting region type has one).
class Digraph {
 public:
  using NodeId = int32_t;

  Digraph() = default;

  /// Adds a node labelled `label` and returns its id; returns the existing
  /// id if the label is already present.
  NodeId AddNode(const std::string& label);

  /// Returns the id for `label`, or an error if absent.
  Result<NodeId> FindNode(const std::string& label) const;

  bool HasNode(const std::string& label) const;

  /// Adds the edge (from, to) if not already present. Ids must be valid.
  void AddEdge(NodeId from, NodeId to);

  /// Convenience: adds both endpoints by label, then the edge.
  void AddEdge(const std::string& from, const std::string& to);

  bool HasEdge(NodeId from, NodeId to) const;

  int NumNodes() const { return static_cast<int>(adjacency_.size()); }
  int NumEdges() const;

  const std::vector<NodeId>& OutNeighbors(NodeId n) const {
    return adjacency_[static_cast<size_t>(n)];
  }
  const std::vector<NodeId>& InNeighbors(NodeId n) const {
    return reverse_adjacency_[static_cast<size_t>(n)];
  }

  const std::string& Label(NodeId n) const {
    return labels_[static_cast<size_t>(n)];
  }

  /// All node labels, in id order.
  const std::vector<std::string>& Labels() const { return labels_; }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<NodeId>> reverse_adjacency_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, NodeId> label_to_id_;
};

}  // namespace regal

#endif  // REGAL_GRAPH_DIGRAPH_H_
