#include "storage/snapshot.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "index/word_index.h"
#include "obs/metrics.h"
#include "storage/checksum.h"
#include "storage/compress.h"
#include "storage/serialize.h"
#include "storage/wire.h"
#include "util/timer.h"

namespace regal {
namespace storage {

namespace {

// "REGAL2\0" + format version 1.
constexpr char kMagic[8] = {'R', 'E', 'G', 'A', 'L', '2', '\0', '\x01'};
constexpr size_t kMagicSize = sizeof(kMagic);

constexpr uint8_t kTagText = 0x01;
constexpr uint8_t kTagRegions = 0x02;
constexpr uint8_t kTagPattern = 0x03;
constexpr uint8_t kTagFooter = 0x7F;

// tag (1) + payload_len (8); the trailing CRC adds 4 more after the payload.
constexpr size_t kSectionHeader = 9;
constexpr size_t kSectionCrc = 4;
constexpr size_t kFooterPayload = 8 + 4;  // body_section_count + file crc.

// Frames `payload` as a section: tag, length, payload, CRC over all three.
void AppendSection(std::string* out, uint8_t tag, std::string_view payload) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(tag));
  PutU64(out, payload.size());
  out->append(payload.data(), payload.size());
  PutU32(out, Crc32c(std::string_view(out->data() + start,
                                      out->size() - start)));
}

Status DataLossCounted(const char* kind, std::string message) {
  obs::Registry::Default()
      .GetCounter("regal_storage_checksum_failures_total", {{"kind", kind}})
      ->Increment();
  return Status::DataLoss(std::move(message));
}

// Parses a regions/pattern payload: u32 label_len, label, u64 count, then
// count x (zigzag-varint left-delta, zigzag-varint width). The count is
// validated against the payload size *before* the reserve — and the payload
// itself already passed its section CRC — so no allocation is ever driven
// by unverified bytes.
Status ParseLabeledRegions(std::string_view payload, std::string* label,
                           std::vector<Region>* regions) {
  if (payload.size() < 4) {
    return Status::DataLoss("corrupt snapshot: section payload too short");
  }
  const uint64_t label_len = GetU32(payload.data());
  if (payload.size() < 4 + label_len + 8) {
    return Status::DataLoss("corrupt snapshot: label overruns section");
  }
  label->assign(payload.data() + 4, label_len);
  const uint64_t count = GetU64(payload.data() + 4 + label_len);
  const char* p = payload.data() + 4 + label_len + 8;
  const char* end = payload.data() + payload.size();
  // Two varints of at least one byte each per region.
  if (count > static_cast<uint64_t>(end - p) / 2) {
    return Status::DataLoss(
        "corrupt snapshot: region count disagrees with section size");
  }
  regions->reserve(count);
  int64_t prev_left = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t left_delta = 0;
    uint64_t width = 0;
    if (!GetVarint(&p, end, &left_delta) || !GetVarint(&p, end, &width)) {
      return Status::DataLoss("corrupt snapshot: truncated region varints");
    }
    const int64_t left = prev_left + UnZigZag(left_delta);
    const int64_t right = left + UnZigZag(width);
    if (left < INT32_MIN || left > INT32_MAX || right < INT32_MIN ||
        right > INT32_MAX) {
      return Status::DataLoss("corrupt snapshot: region offset out of range");
    }
    if (left > right) {
      return Status::InvalidArgument("region with left > right");
    }
    regions->push_back(Region{static_cast<Offset>(left),
                              static_cast<Offset>(right)});
    prev_left = left;
  }
  if (p != end) {
    return Status::DataLoss(
        "corrupt snapshot: trailing bytes after region list");
  }
  return Status::OK();
}

struct Section {
  uint8_t tag;
  std::string_view payload;
};

}  // namespace

bool LooksLikeRegal2(std::string_view bytes) {
  return bytes.size() >= kMagicSize &&
         std::memcmp(bytes.data(), kMagic, kMagicSize) == 0;
}

Result<std::string> EncodeSnapshot(const Instance& instance) {
  std::string out;
  out.append(kMagic, kMagicSize);
  uint64_t body_sections = 0;
  std::string payload;
  if (instance.text() != nullptr) {
    // Text dominates snapshot size, and a durable save pays disk writeback
    // for every byte fsynced — so the text ships LZ-compressed whenever
    // that actually shrinks it (codec byte 1; 0 = stored raw).
    const std::string& content = instance.text()->content();
    const std::string compressed = LzCompress(content);
    payload.clear();
    if (compressed.size() < content.size()) {
      payload.push_back('\x01');
      PutU64(&payload, content.size());
      payload += compressed;
    } else {
      payload.push_back('\x00');
      PutU64(&payload, content.size());
      payload += content;
    }
    AppendSection(&out, kTagText, payload);
    ++body_sections;
  }
  for (const std::string& name : instance.names()) {
    if (name.size() > UINT32_MAX) {
      return Status::InvalidArgument("region name too long to encode");
    }
    payload.clear();
    PutU32(&payload, static_cast<uint32_t>(name.size()));
    payload += name;
    AppendRegionList(&payload, **instance.Get(name));
    AppendSection(&out, kTagRegions, payload);
    ++body_sections;
  }
  for (const auto& [key, set] : instance.synthetic_patterns()) {
    if (key.size() > UINT32_MAX) {
      return Status::InvalidArgument("pattern key too long to encode");
    }
    payload.clear();
    PutU32(&payload, static_cast<uint32_t>(key.size()));
    payload += key;
    AppendRegionList(&payload, set);
    AppendSection(&out, kTagPattern, payload);
    ++body_sections;
  }
  // The footer commits the file: section count + CRC of everything above.
  payload.clear();
  PutU64(&payload, body_sections);
  PutU32(&payload, Crc32c(out));
  AppendSection(&out, kTagFooter, payload);
  return out;
}

Result<Instance> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kMagicSize) {
    return DataLossCounted("truncated",
                           "truncated snapshot: missing header");
  }
  if (!LooksLikeRegal2(bytes)) {
    return DataLossCounted("format", "corrupt snapshot: bad REGAL2 magic");
  }

  // Pass 1 — structural validation of the framing. No instance state is
  // built until every section CRC, the footer and the whole-file CRC have
  // been verified, so a corrupt file can never yield a partially-loaded
  // (silently wrong) instance.
  std::vector<Section> sections;
  size_t pos = kMagicSize;
  bool saw_footer = false;
  while (!saw_footer) {
    if (pos == bytes.size()) {
      return DataLossCounted("truncated",
                             "truncated snapshot: missing footer");
    }
    const size_t remaining = bytes.size() - pos;
    if (remaining < kSectionHeader + kSectionCrc) {
      return DataLossCounted(
          "truncated", "truncated snapshot: section header overruns file");
    }
    const uint8_t tag = static_cast<uint8_t>(bytes[pos]);
    const uint64_t len = GetU64(bytes.data() + pos + 1);
    if (len > remaining - kSectionHeader - kSectionCrc) {
      return DataLossCounted("truncated",
                             "truncated snapshot: section payload overruns "
                             "file (torn tail)");
    }
    const std::string_view framed = bytes.substr(pos, kSectionHeader + len);
    const uint32_t stored_crc =
        GetU32(bytes.data() + pos + kSectionHeader + len);
    if (Crc32c(framed) != stored_crc) {
      return DataLossCounted(
          "section", "checksum mismatch in section at offset " +
                         std::to_string(pos) + " (mid-file corruption)");
    }
    const std::string_view payload = framed.substr(kSectionHeader);
    if (tag == kTagFooter) {
      if (len != kFooterPayload) {
        return DataLossCounted("format",
                               "corrupt snapshot: footer payload size");
      }
      const uint64_t declared_sections = GetU64(payload.data());
      if (declared_sections != sections.size()) {
        return DataLossCounted(
            "file", "corrupt snapshot: footer section count mismatch");
      }
      const uint32_t declared_file_crc = GetU32(payload.data() + 8);
      if (Crc32c(bytes.substr(0, pos)) != declared_file_crc) {
        return DataLossCounted(
            "file",
            "checksum mismatch for whole file (sections spliced, "
            "reordered or dropped)");
      }
      pos += kSectionHeader + len + kSectionCrc;
      if (pos != bytes.size()) {
        return DataLossCounted("format",
                               "corrupt snapshot: bytes after footer");
      }
      saw_footer = true;
      break;
    }
    if (tag != kTagText && tag != kTagRegions && tag != kTagPattern) {
      return DataLossCounted(
          "format", "corrupt snapshot: unknown section tag " +
                        std::to_string(tag) + " at offset " +
                        std::to_string(pos));
    }
    sections.push_back(Section{tag, payload});
    pos += kSectionHeader + len + kSectionCrc;
  }

  // Pass 2 — build the instance from the verified sections.
  Instance instance;
  std::shared_ptr<Text> text;
  for (const Section& section : sections) {
    if (section.tag == kTagText) {
      if (text != nullptr) {
        return Status::DataLoss("corrupt snapshot: duplicate text section");
      }
      if (section.payload.size() < 9) {
        return Status::DataLoss("corrupt snapshot: text header too short");
      }
      const uint8_t codec = static_cast<uint8_t>(section.payload[0]);
      const uint64_t raw_size = GetU64(section.payload.data() + 1);
      // Offsets are int32, so no valid catalog can carry a larger text; the
      // cap also bounds the decompression allocation for crafted files.
      if (raw_size > INT32_MAX) {
        return Status::DataLoss("corrupt snapshot: text size out of range");
      }
      const std::string_view body = section.payload.substr(9);
      if (codec == 0) {
        if (body.size() != raw_size) {
          return Status::DataLoss(
              "corrupt snapshot: stored text size disagrees with section");
        }
        text = std::make_shared<Text>(std::string(body));
      } else if (codec == 1) {
        REGAL_ASSIGN_OR_RETURN(std::string content,
                               LzDecompress(body, raw_size));
        text = std::make_shared<Text>(std::move(content));
      } else {
        return Status::DataLoss("corrupt snapshot: unknown text codec " +
                                std::to_string(codec));
      }
      continue;
    }
    std::string label;
    std::vector<Region> regions;
    REGAL_RETURN_NOT_OK(ParseLabeledRegions(section.payload, &label,
                                            &regions));
    if (section.tag == kTagRegions) {
      REGAL_RETURN_NOT_OK(instance.AddRegionSet(
          label, RegionSet::FromUnsorted(std::move(regions))));
    } else {
      REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(label));
      instance.SetSyntheticPattern(p,
                                   RegionSet::FromUnsorted(std::move(regions)));
    }
  }
  if (text != nullptr) {
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
  }
  return instance;
}

Result<Instance> SalvageSnapshot(std::string_view bytes,
                                 SalvageReport* report) {
  *report = SalvageReport{};
  if (!LooksLikeRegal2(bytes)) {
    // Without the magic nothing marks these bytes as a snapshot at all;
    // "salvaging" arbitrary data would fabricate regions out of noise.
    return Status::DataLoss("salvage: REGAL2 magic is gone");
  }
  obs::Registry& registry = obs::Registry::Default();
  auto note = [&](std::string message) {
    report->damage.push_back(std::move(message));
  };
  auto drop = [&](std::string message) {
    ++report->sections_dropped;
    registry
        .GetCounter("regal_recovery_salvaged_sections_total",
                    {{"outcome", "dropped"}})
        ->Increment();
    note(std::move(message));
  };

  // Walk the section framing, keeping what verifies. A section whose CRC
  // fails is skipped by its declared length — the length is unverified at
  // that point, but every subsequent position is re-validated against the
  // buffer, so a corrupt length can only lose more sections, never read
  // out of bounds or admit unverified data.
  std::vector<Section> kept;
  size_t pos = kMagicSize;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kSectionHeader + kSectionCrc) {
      report->tail_bytes_dropped = remaining;
      note("salvage: " + std::to_string(remaining) +
           " trailing bytes too short for a section frame");
      break;
    }
    const uint8_t tag = static_cast<uint8_t>(bytes[pos]);
    const uint64_t len = GetU64(bytes.data() + pos + 1);
    if (tag != kTagText && tag != kTagRegions && tag != kTagPattern &&
        tag != kTagFooter) {
      // An unknown tag means the frame boundary itself is untrustworthy;
      // everything from here on is abandoned rather than misparsed.
      report->tail_bytes_dropped = remaining;
      note("salvage: unknown section tag " + std::to_string(tag) +
           " at offset " + std::to_string(pos) + "; abandoning tail");
      break;
    }
    if (len > remaining - kSectionHeader - kSectionCrc) {
      report->tail_bytes_dropped = remaining;
      note("salvage: section at offset " + std::to_string(pos) +
           " overruns the file (torn tail)");
      break;
    }
    const std::string_view framed = bytes.substr(pos, kSectionHeader + len);
    const uint32_t stored_crc =
        GetU32(bytes.data() + pos + kSectionHeader + len);
    const bool crc_ok = Crc32c(framed) == stored_crc;
    if (tag == kTagFooter) {
      if (crc_ok && len == kFooterPayload) report->footer_ok = true;
      // The whole-file CRC cannot hold once any section was dropped; the
      // footer's only salvage value is marking "the writer finished".
      pos += kSectionHeader + len + kSectionCrc;
      continue;
    }
    if (!crc_ok) {
      drop("salvage: checksum mismatch in section at offset " +
           std::to_string(pos));
    } else {
      kept.push_back(Section{tag, framed.substr(kSectionHeader)});
    }
    pos += kSectionHeader + len + kSectionCrc;
  }

  // Build the instance from the surviving sections, tolerantly: a payload
  // that fails to parse is dropped (its CRC passed, so this means the
  // writer died mid-format or the damage hit the length field), and a
  // duplicate name replaces rather than errors — replay must converge.
  Instance instance;
  std::shared_ptr<Text> text;
  for (const Section& section : kept) {
    if (section.tag == kTagText) {
      if (section.payload.size() < 9) {
        drop("salvage: text section header too short");
        continue;
      }
      const uint8_t codec = static_cast<uint8_t>(section.payload[0]);
      const uint64_t raw_size = GetU64(section.payload.data() + 1);
      const std::string_view body = section.payload.substr(9);
      if (raw_size > INT32_MAX) {
        drop("salvage: text size out of range");
        continue;
      }
      if (codec == 0 && body.size() == raw_size) {
        text = std::make_shared<Text>(std::string(body));
      } else if (codec == 1) {
        Result<std::string> content = LzDecompress(body, raw_size);
        if (!content.ok()) {
          drop("salvage: text failed to decompress: " +
               content.status().message());
          continue;
        }
        text = std::make_shared<Text>(std::move(content).value());
      } else {
        drop("salvage: bad text codec/size");
        continue;
      }
    } else {
      std::string label;
      std::vector<Region> regions;
      Status parsed = ParseLabeledRegions(section.payload, &label, &regions);
      if (!parsed.ok()) {
        drop("salvage: section payload unparsable: " + parsed.message());
        continue;
      }
      if (section.tag == kTagRegions) {
        instance.SetRegionSet(label, RegionSet::FromUnsorted(std::move(regions)));
      } else {
        Result<Pattern> p = Pattern::FromCacheKey(label);
        if (!p.ok()) {
          drop("salvage: bad pattern key: " + p.status().message());
          continue;
        }
        instance.SetSyntheticPattern(
            *p, RegionSet::FromUnsorted(std::move(regions)));
      }
    }
    ++report->sections_kept;
    registry
        .GetCounter("regal_recovery_salvaged_sections_total",
                    {{"outcome", "kept"}})
        ->Increment();
  }
  if (text != nullptr) {
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
  }
  return instance;
}

Status SaveSnapshotToFile(const Instance& instance, const std::string& path,
                          Env* env, SnapshotFormat format) {
  // Always-on latency histogram: encode + the full durable commit protocol
  // (temp write, fsyncs, rename), success or not.
  ScopedTimer timed([](double ms) {
    obs::Registry::Default()
        .GetHistogram("regal_storage_save_latency_ms")
        ->Observe(ms);
  });
  if (env == nullptr) env = Env::Default();
  std::string payload;
  if (format == SnapshotFormat::kRegal2) {
    REGAL_ASSIGN_OR_RETURN(payload, EncodeSnapshot(instance));
  } else {
    std::ostringstream out;
    REGAL_RETURN_NOT_OK(SaveInstance(instance, out));
    payload = out.str();
  }
  return AtomicWriteFile(env, path, payload);
}

Result<Instance> LoadSnapshotFromFile(const std::string& path, Env* env) {
  ScopedTimer timed([](double ms) {
    obs::Registry::Default()
        .GetHistogram("regal_storage_load_latency_ms")
        ->Observe(ms);
  });
  if (env == nullptr) env = Env::Default();
  REGAL_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  obs::Registry& registry = obs::Registry::Default();
  if (LooksLikeRegal2(bytes)) {
    Result<Instance> decoded = DecodeSnapshot(bytes);
    registry
        .GetCounter("regal_storage_loads_total",
                    {{"format", "regal2"},
                     {"outcome", decoded.ok() ? "ok" : "error"}})
        ->Increment();
    return decoded;
  }
  if (bytes.rfind("REGAL1", 0) == 0) {
    std::istringstream in(bytes);
    Result<Instance> loaded = LoadInstance(in);
    registry
        .GetCounter("regal_storage_loads_total",
                    {{"format", "regal1"},
                     {"outcome", loaded.ok() ? "ok" : "error"}})
        ->Increment();
    return loaded;
  }
  registry
      .GetCounter("regal_storage_loads_total",
                  {{"format", "unknown"}, {"outcome", "error"}})
      ->Increment();
  return Status::DataLoss("corrupt snapshot '" + path +
                          "': unrecognized magic");
}

}  // namespace storage
}  // namespace regal
