#include "storage/snapshot.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "index/word_index.h"
#include "obs/metrics.h"
#include "storage/checksum.h"
#include "storage/compress.h"
#include "storage/serialize.h"
#include "util/timer.h"

namespace regal {
namespace storage {

namespace {

// "REGAL2\0" + format version 1.
constexpr char kMagic[8] = {'R', 'E', 'G', 'A', 'L', '2', '\0', '\x01'};
constexpr size_t kMagicSize = sizeof(kMagic);

constexpr uint8_t kTagText = 0x01;
constexpr uint8_t kTagRegions = 0x02;
constexpr uint8_t kTagPattern = 0x03;
constexpr uint8_t kTagFooter = 0x7F;

// tag (1) + payload_len (8); the trailing CRC adds 4 more after the payload.
constexpr size_t kSectionHeader = 9;
constexpr size_t kSectionCrc = 4;
constexpr size_t kFooterPayload = 8 + 4;  // body_section_count + file crc.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);  // Little-endian host assumed (x86/arm64 linux).
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

// Frames `payload` as a section: tag, length, payload, CRC over all three.
void AppendSection(std::string* out, uint8_t tag, std::string_view payload) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(tag));
  PutU64(out, payload.size());
  out->append(payload.data(), payload.size());
  PutU32(out, Crc32c(std::string_view(out->data() + start,
                                      out->size() - start)));
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Zigzag maps small-magnitude signed deltas to small unsigned varints
// (0,-1,1,-2 -> 0,1,2,3); region lists are sorted by left, so both deltas
// below are typically tiny and a region costs ~2 bytes instead of 8.
uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

bool GetVarint(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*p == end) return false;
    const uint8_t byte = static_cast<uint8_t>(*(*p)++);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // More than 10 continuation bytes: not a valid varint.
}

void AppendRegions(std::string* out, const RegionSet& set) {
  PutU64(out, set.size());
  int64_t prev_left = 0;
  for (const Region& r : set) {
    PutVarint(out, ZigZag(r.left - prev_left));
    PutVarint(out, ZigZag(r.right - static_cast<int64_t>(r.left)));
    prev_left = r.left;
  }
}

Status DataLossCounted(const char* kind, std::string message) {
  obs::Registry::Default()
      .GetCounter("regal_storage_checksum_failures_total", {{"kind", kind}})
      ->Increment();
  return Status::DataLoss(std::move(message));
}

// Parses a regions/pattern payload: u32 label_len, label, u64 count, then
// count x (zigzag-varint left-delta, zigzag-varint width). The count is
// validated against the payload size *before* the reserve — and the payload
// itself already passed its section CRC — so no allocation is ever driven
// by unverified bytes.
Status ParseLabeledRegions(std::string_view payload, std::string* label,
                           std::vector<Region>* regions) {
  if (payload.size() < 4) {
    return Status::DataLoss("corrupt snapshot: section payload too short");
  }
  const uint64_t label_len = GetU32(payload.data());
  if (payload.size() < 4 + label_len + 8) {
    return Status::DataLoss("corrupt snapshot: label overruns section");
  }
  label->assign(payload.data() + 4, label_len);
  const uint64_t count = GetU64(payload.data() + 4 + label_len);
  const char* p = payload.data() + 4 + label_len + 8;
  const char* end = payload.data() + payload.size();
  // Two varints of at least one byte each per region.
  if (count > static_cast<uint64_t>(end - p) / 2) {
    return Status::DataLoss(
        "corrupt snapshot: region count disagrees with section size");
  }
  regions->reserve(count);
  int64_t prev_left = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t left_delta = 0;
    uint64_t width = 0;
    if (!GetVarint(&p, end, &left_delta) || !GetVarint(&p, end, &width)) {
      return Status::DataLoss("corrupt snapshot: truncated region varints");
    }
    const int64_t left = prev_left + UnZigZag(left_delta);
    const int64_t right = left + UnZigZag(width);
    if (left < INT32_MIN || left > INT32_MAX || right < INT32_MIN ||
        right > INT32_MAX) {
      return Status::DataLoss("corrupt snapshot: region offset out of range");
    }
    if (left > right) {
      return Status::InvalidArgument("region with left > right");
    }
    regions->push_back(Region{static_cast<Offset>(left),
                              static_cast<Offset>(right)});
    prev_left = left;
  }
  if (p != end) {
    return Status::DataLoss(
        "corrupt snapshot: trailing bytes after region list");
  }
  return Status::OK();
}

struct Section {
  uint8_t tag;
  std::string_view payload;
};

}  // namespace

bool LooksLikeRegal2(std::string_view bytes) {
  return bytes.size() >= kMagicSize &&
         std::memcmp(bytes.data(), kMagic, kMagicSize) == 0;
}

Result<std::string> EncodeSnapshot(const Instance& instance) {
  std::string out;
  out.append(kMagic, kMagicSize);
  uint64_t body_sections = 0;
  std::string payload;
  if (instance.text() != nullptr) {
    // Text dominates snapshot size, and a durable save pays disk writeback
    // for every byte fsynced — so the text ships LZ-compressed whenever
    // that actually shrinks it (codec byte 1; 0 = stored raw).
    const std::string& content = instance.text()->content();
    const std::string compressed = LzCompress(content);
    payload.clear();
    if (compressed.size() < content.size()) {
      payload.push_back('\x01');
      PutU64(&payload, content.size());
      payload += compressed;
    } else {
      payload.push_back('\x00');
      PutU64(&payload, content.size());
      payload += content;
    }
    AppendSection(&out, kTagText, payload);
    ++body_sections;
  }
  for (const std::string& name : instance.names()) {
    if (name.size() > UINT32_MAX) {
      return Status::InvalidArgument("region name too long to encode");
    }
    payload.clear();
    PutU32(&payload, static_cast<uint32_t>(name.size()));
    payload += name;
    AppendRegions(&payload, **instance.Get(name));
    AppendSection(&out, kTagRegions, payload);
    ++body_sections;
  }
  for (const auto& [key, set] : instance.synthetic_patterns()) {
    if (key.size() > UINT32_MAX) {
      return Status::InvalidArgument("pattern key too long to encode");
    }
    payload.clear();
    PutU32(&payload, static_cast<uint32_t>(key.size()));
    payload += key;
    AppendRegions(&payload, set);
    AppendSection(&out, kTagPattern, payload);
    ++body_sections;
  }
  // The footer commits the file: section count + CRC of everything above.
  payload.clear();
  PutU64(&payload, body_sections);
  PutU32(&payload, Crc32c(out));
  AppendSection(&out, kTagFooter, payload);
  return out;
}

Result<Instance> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kMagicSize) {
    return DataLossCounted("truncated",
                           "truncated snapshot: missing header");
  }
  if (!LooksLikeRegal2(bytes)) {
    return DataLossCounted("format", "corrupt snapshot: bad REGAL2 magic");
  }

  // Pass 1 — structural validation of the framing. No instance state is
  // built until every section CRC, the footer and the whole-file CRC have
  // been verified, so a corrupt file can never yield a partially-loaded
  // (silently wrong) instance.
  std::vector<Section> sections;
  size_t pos = kMagicSize;
  bool saw_footer = false;
  while (!saw_footer) {
    if (pos == bytes.size()) {
      return DataLossCounted("truncated",
                             "truncated snapshot: missing footer");
    }
    const size_t remaining = bytes.size() - pos;
    if (remaining < kSectionHeader + kSectionCrc) {
      return DataLossCounted(
          "truncated", "truncated snapshot: section header overruns file");
    }
    const uint8_t tag = static_cast<uint8_t>(bytes[pos]);
    const uint64_t len = GetU64(bytes.data() + pos + 1);
    if (len > remaining - kSectionHeader - kSectionCrc) {
      return DataLossCounted("truncated",
                             "truncated snapshot: section payload overruns "
                             "file (torn tail)");
    }
    const std::string_view framed = bytes.substr(pos, kSectionHeader + len);
    const uint32_t stored_crc =
        GetU32(bytes.data() + pos + kSectionHeader + len);
    if (Crc32c(framed) != stored_crc) {
      return DataLossCounted(
          "section", "checksum mismatch in section at offset " +
                         std::to_string(pos) + " (mid-file corruption)");
    }
    const std::string_view payload = framed.substr(kSectionHeader);
    if (tag == kTagFooter) {
      if (len != kFooterPayload) {
        return DataLossCounted("format",
                               "corrupt snapshot: footer payload size");
      }
      const uint64_t declared_sections = GetU64(payload.data());
      if (declared_sections != sections.size()) {
        return DataLossCounted(
            "file", "corrupt snapshot: footer section count mismatch");
      }
      const uint32_t declared_file_crc = GetU32(payload.data() + 8);
      if (Crc32c(bytes.substr(0, pos)) != declared_file_crc) {
        return DataLossCounted(
            "file",
            "checksum mismatch for whole file (sections spliced, "
            "reordered or dropped)");
      }
      pos += kSectionHeader + len + kSectionCrc;
      if (pos != bytes.size()) {
        return DataLossCounted("format",
                               "corrupt snapshot: bytes after footer");
      }
      saw_footer = true;
      break;
    }
    if (tag != kTagText && tag != kTagRegions && tag != kTagPattern) {
      return DataLossCounted(
          "format", "corrupt snapshot: unknown section tag " +
                        std::to_string(tag) + " at offset " +
                        std::to_string(pos));
    }
    sections.push_back(Section{tag, payload});
    pos += kSectionHeader + len + kSectionCrc;
  }

  // Pass 2 — build the instance from the verified sections.
  Instance instance;
  std::shared_ptr<Text> text;
  for (const Section& section : sections) {
    if (section.tag == kTagText) {
      if (text != nullptr) {
        return Status::DataLoss("corrupt snapshot: duplicate text section");
      }
      if (section.payload.size() < 9) {
        return Status::DataLoss("corrupt snapshot: text header too short");
      }
      const uint8_t codec = static_cast<uint8_t>(section.payload[0]);
      const uint64_t raw_size = GetU64(section.payload.data() + 1);
      // Offsets are int32, so no valid catalog can carry a larger text; the
      // cap also bounds the decompression allocation for crafted files.
      if (raw_size > INT32_MAX) {
        return Status::DataLoss("corrupt snapshot: text size out of range");
      }
      const std::string_view body = section.payload.substr(9);
      if (codec == 0) {
        if (body.size() != raw_size) {
          return Status::DataLoss(
              "corrupt snapshot: stored text size disagrees with section");
        }
        text = std::make_shared<Text>(std::string(body));
      } else if (codec == 1) {
        REGAL_ASSIGN_OR_RETURN(std::string content,
                               LzDecompress(body, raw_size));
        text = std::make_shared<Text>(std::move(content));
      } else {
        return Status::DataLoss("corrupt snapshot: unknown text codec " +
                                std::to_string(codec));
      }
      continue;
    }
    std::string label;
    std::vector<Region> regions;
    REGAL_RETURN_NOT_OK(ParseLabeledRegions(section.payload, &label,
                                            &regions));
    if (section.tag == kTagRegions) {
      REGAL_RETURN_NOT_OK(instance.AddRegionSet(
          label, RegionSet::FromUnsorted(std::move(regions))));
    } else {
      REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(label));
      instance.SetSyntheticPattern(p,
                                   RegionSet::FromUnsorted(std::move(regions)));
    }
  }
  if (text != nullptr) {
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
  }
  return instance;
}

Status SaveSnapshotToFile(const Instance& instance, const std::string& path,
                          Env* env, SnapshotFormat format) {
  // Always-on latency histogram: encode + the full durable commit protocol
  // (temp write, fsyncs, rename), success or not.
  ScopedTimer timed([](double ms) {
    obs::Registry::Default()
        .GetHistogram("regal_storage_save_latency_ms")
        ->Observe(ms);
  });
  if (env == nullptr) env = Env::Default();
  std::string payload;
  if (format == SnapshotFormat::kRegal2) {
    REGAL_ASSIGN_OR_RETURN(payload, EncodeSnapshot(instance));
  } else {
    std::ostringstream out;
    REGAL_RETURN_NOT_OK(SaveInstance(instance, out));
    payload = out.str();
  }
  return AtomicWriteFile(env, path, payload);
}

Result<Instance> LoadSnapshotFromFile(const std::string& path, Env* env) {
  ScopedTimer timed([](double ms) {
    obs::Registry::Default()
        .GetHistogram("regal_storage_load_latency_ms")
        ->Observe(ms);
  });
  if (env == nullptr) env = Env::Default();
  REGAL_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  obs::Registry& registry = obs::Registry::Default();
  if (LooksLikeRegal2(bytes)) {
    Result<Instance> decoded = DecodeSnapshot(bytes);
    registry
        .GetCounter("regal_storage_loads_total",
                    {{"format", "regal2"},
                     {"outcome", decoded.ok() ? "ok" : "error"}})
        ->Increment();
    return decoded;
  }
  if (bytes.rfind("REGAL1", 0) == 0) {
    std::istringstream in(bytes);
    Result<Instance> loaded = LoadInstance(in);
    registry
        .GetCounter("regal_storage_loads_total",
                    {{"format", "regal1"},
                     {"outcome", loaded.ok() ? "ok" : "error"}})
        ->Increment();
    return loaded;
  }
  registry
      .GetCounter("regal_storage_loads_total",
                  {{"format", "unknown"}, {"outcome", "error"}})
      ->Increment();
  return Status::DataLoss("corrupt snapshot '" + path +
                          "': unrecognized magic");
}

}  // namespace storage
}  // namespace regal
