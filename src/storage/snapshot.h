#ifndef REGAL_STORAGE_SNAPSHOT_H_
#define REGAL_STORAGE_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "storage/env.h"
#include "util/status.h"

namespace regal {
namespace storage {

/// REGAL2: the durable binary snapshot format. Every byte up to and
/// including the footer is covered by a checksum, so a torn write, flipped
/// bit, dropped/duplicated/reordered section or truncated tail is *detected*
/// (reported as kDataLoss) rather than silently loaded. Layout (all
/// integers little-endian):
///
///   [0, 8)   magic "REGAL2\0" + format version 0x01
///   sections, each framed as
///     u8   tag          0x01 text | 0x02 regions | 0x03 pattern | 0x7F footer
///     u64  payload_len
///     payload
///     u32  crc32c(tag || payload_len || payload)
///   payloads:
///     text:    u8 codec (0 = stored, 1 = LZ — storage/compress.h),
///              u64 raw_size, the stored or compressed text bytes
///     regions: u32 name_len, name, u64 count, count x region
///     pattern: u32 key_len, key, u64 count, count x region
///     footer:  u64 body_section_count,
///              u32 crc32c of every byte before the footer's tag
///   region:    zigzag-varint(left - previous left), zigzag-varint(right -
///              left) — region lists are sorted by left, so both deltas are
///              small and a region typically costs 2 bytes instead of 8
///              (smaller snapshots fsync faster)
///   nothing may follow the footer's trailing CRC.
///
/// The footer is the commit marker: a file without a valid footer is a
/// truncated write, never a shorter-but-plausible snapshot. The whole-file
/// CRC in the footer catches splices of individually-valid sections
/// (duplication, reordering, cross-file grafts) that per-section CRCs alone
/// would admit. Sections appear in a canonical order (text, regions in
/// definition order, patterns in key order, footer), so encoding is
/// deterministic and save -> load -> save is bit-identical.
///
/// Failure taxonomy of the reader — all kDataLoss, distinguished in the
/// message (and the regal_storage_checksum_failures_total{kind} metric):
///   * "truncated snapshot ..."       the tail is missing (header cut
///                                    short, a section overruns EOF, or no
///                                    footer) — the signature of a torn
///                                    write or lost unsynced tail;
///   * "checksum mismatch ..."        a section or the file CRC failed —
///                                    mid-file corruption;
///   * "corrupt snapshot ..."         framing is structurally wrong (bad
///                                    magic, unknown tag, payload/count
///                                    disagreement, bytes after footer).
/// Declared lengths are validated against the actual buffer before any
/// allocation, so corrupt counts cannot OOM the loader.

/// Encodes `instance` as REGAL2 bytes. Fails (InvalidArgument) only for
/// un-encodable inputs (name/text larger than 4 GiB guards).
Result<std::string> EncodeSnapshot(const Instance& instance);

/// Decodes REGAL2 bytes; text-backed instances rebuild their word index.
Result<Instance> DecodeSnapshot(std::string_view bytes);

/// What SalvageSnapshot managed to pull out of a damaged REGAL2 file.
struct SalvageReport {
  int sections_kept = 0;     ///< Body sections whose CRC and payload parsed.
  int sections_dropped = 0;  ///< Sections skipped over damage.
  uint64_t tail_bytes_dropped = 0;  ///< Bytes abandoned at the first
                                    ///< unrecoverable framing break.
  bool footer_ok = false;  ///< A structurally valid footer was reached.
  /// One human-readable note per piece of damage, for /statusz and logs.
  std::vector<std::string> damage;
};

/// Best-effort reader for a *damaged* REGAL2 snapshot: where DecodeSnapshot
/// refuses the whole file on the first bad byte, this walks the section
/// framing, keeps every section whose own CRC and payload still verify, and
/// skips (or abandons, when the framing itself is broken) the rest. Each
/// kept section is individually checksummed, so salvage never admits
/// silently corrupted data — it only tolerates *missing* data. Fails only
/// when the REGAL2 magic itself is gone (nothing identifies the bytes as a
/// snapshot). The degraded-open path (recovery/durable.h) quarantines the
/// damaged file and serves the salvaged instance until the next checkpoint
/// rewrites a clean one.
Result<Instance> SalvageSnapshot(std::string_view bytes,
                                 SalvageReport* report);

/// True when `bytes` begin with the REGAL2 magic (format sniffing).
bool LooksLikeRegal2(std::string_view bytes);

/// On-disk snapshot format selector for the file-level helpers.
enum class SnapshotFormat {
  kRegal1,  ///< Legacy line-oriented text format (storage/serialize.h).
  kRegal2,  ///< Checksummed binary format (this header). The default.
};

/// Serializes and atomically writes `instance` to `path` via `env`
/// (Env::Default() when null) using the temp+fsync+rename protocol of
/// AtomicWriteFile: a crash at any point leaves the previous committed
/// snapshot (or no file) — never a partial one.
Status SaveSnapshotToFile(const Instance& instance, const std::string& path,
                          Env* env = nullptr,
                          SnapshotFormat format = SnapshotFormat::kRegal2);

/// Reads `path` via `env` and decodes it, sniffing REGAL2 vs legacy REGAL1
/// by magic. Corruption in a REGAL2 file reports kDataLoss; a REGAL1 file
/// keeps its legacy InvalidArgument reporting (it has no checksums to
/// distinguish corruption from malformed input).
Result<Instance> LoadSnapshotFromFile(const std::string& path,
                                      Env* env = nullptr);

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_SNAPSHOT_H_
