#include "storage/fault_env.h"

#include <algorithm>

#include "safety/failpoint.h"

namespace regal {
namespace storage {

namespace {

Status CrashedStatus() {
  return Status::Internal("simulated crash: process died mid-write");
}

}  // namespace

/// Write handle that forwards to the base file while consulting the env's
/// crash state and the write-path failpoints on every operation.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path,
                             std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    REGAL_RETURN_NOT_OK(env_->ConsumeTransient(EnvOpKind::kAppend, path_));
    if (safety::FailpointFires(kFailpointWriteEnospc)) {
      return Status::ResourceExhausted(
          "no space left on device (injected at '" + path_ + "')");
    }
    if (safety::FailpointFires(kFailpointWriteEio)) {
      return Status::Internal("I/O error (injected write failure at '" +
                              path_ + "')");
    }
    if (safety::FailpointFires(kFailpointWriteShort)) {
      // Half the buffer lands, then the device errors out.
      const size_t landed = data.size() / 2;
      ForwardBytes(data.substr(0, landed));
      return Status::Internal("short write (injected at '" + path_ + "'): " +
                              std::to_string(landed) + " of " +
                              std::to_string(data.size()) + " bytes");
    }
    uint64_t torn_budget = 0;
    if (!env_->AdmitOp(&torn_budget)) {
      if (torn_budget > 0 && !data.empty()) {
        ForwardBytes(data.substr(
            0, std::min<size_t>(torn_budget, data.size())));
      }
      return CrashedStatus();
    }
    if (safety::FailpointFires(kFailpointWriteBitflip)) {
      // Silent corruption: one bit of the payload flips and the write
      // reports success — only checksums can catch this downstream.
      std::string corrupted(data);
      corrupted[corrupted.size() / 2] ^= 0x10;
      return ForwardBytes(corrupted);
    }
    return ForwardBytes(data);
  }

  Status Sync() override {
    REGAL_RETURN_NOT_OK(env_->ConsumeTransient(EnvOpKind::kSync, path_));
    if (safety::FailpointFires(kFailpointSyncEio)) {
      return Status::Internal("I/O error (injected fsync failure at '" +
                              path_ + "')");
    }
    uint64_t torn = 0;
    if (!env_->AdmitOp(&torn)) return CrashedStatus();
    REGAL_RETURN_NOT_OK(base_->Sync());
    auto& state = env_->files_[path_];
    state.synced = state.written;
    return Status::OK();
  }

  Status Close() override {
    uint64_t torn = 0;
    if (!env_->AdmitOp(&torn)) return CrashedStatus();
    return base_->Close();
  }

 private:
  Status ForwardBytes(std::string_view data) {
    REGAL_RETURN_NOT_OK(base_->Append(data));
    env_->files_[path_].written += data.size();
    return Status::OK();
  }

  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::InjectTransient(EnvOpKind kind, int count,
                                        bool enospc) {
  transient_[kind] = TransientState{count, enospc};
}

int FaultInjectionEnv::TransientRemaining(EnvOpKind kind) const {
  auto it = transient_.find(kind);
  return it == transient_.end() ? 0 : it->second.remaining;
}

Status FaultInjectionEnv::ConsumeTransient(EnvOpKind kind,
                                           const std::string& path) {
  auto it = transient_.find(kind);
  if (it == transient_.end() || it->second.remaining <= 0) {
    return Status::OK();
  }
  --it->second.remaining;
  if (it->second.enospc) {
    return Status::ResourceExhausted(
        "no space left on device (transient injection at '" + path + "')");
  }
  return Status::Internal("I/O error (transient injection at '" + path +
                          "')");
}

void FaultInjectionEnv::CrashAfterOps(int64_t op, uint64_t torn_tail_bytes) {
  crash_at_op_ = op_count_ + op;
  torn_tail_bytes_ = torn_tail_bytes;
}

bool FaultInjectionEnv::AdmitOp(uint64_t* torn_budget) {
  *torn_budget = 0;
  if (crashed_) return false;
  if (safety::FailpointFires(kFailpointCrash)) {
    crashed_ = true;
    *torn_budget = torn_tail_bytes_;
    return false;
  }
  const int64_t index = op_count_++;
  if (crash_at_op_ >= 0 && index >= crash_at_op_) {
    crashed_ = true;
    *torn_budget = torn_tail_bytes_;
    return false;
  }
  return true;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kOpen, path));
  if (safety::FailpointFires(kFailpointOpenEio)) {
    return Status::Internal("I/O error (injected open failure at '" + path +
                            "')");
  }
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  REGAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  files_[path] = FileState{};  // Fresh, nothing synced, entry not durable.
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(this, path,
                                                   std::move(base)));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewAppendableFile(
    const std::string& path) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kOpen, path));
  if (safety::FailpointFires(kFailpointOpenEio)) {
    return Status::Internal("I/O error (injected open failure at '" + path +
                            "')");
  }
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  const bool existed = base_->FileExists(path);
  REGAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewAppendableFile(path));
  if (files_.find(path) == files_.end()) {
    // Pre-existing bytes are already on the platter: a simulated crash can
    // only lose what was appended (and not synced) through *this* env.
    FileState state;
    if (existed) {
      auto size = base_->FileSize(path);
      state.written = state.synced = size.ok() ? *size : 0;
      state.durable_entry = true;
    }
    files_[path] = state;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(this, path,
                                                   std::move(base)));
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kRename, from));
  if (safety::FailpointFires(kFailpointRenameEio)) {
    return Status::Internal("I/O error (injected rename failure '" + from +
                            "' -> '" + to + "')");
  }
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  PendingRename pending;
  pending.from = from;
  pending.to = to;
  pending.to_existed = base_->FileExists(to);
  if (pending.to_existed) {
    // Keep the clobbered destination so an un-fsynced rename can be undone
    // at recovery (the kernel may resurrect either directory entry).
    REGAL_ASSIGN_OR_RETURN(pending.shadow_of_to, base_->ReadFileToString(to));
  }
  REGAL_RETURN_NOT_OK(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    FileState state = it->second;
    files_.erase(it);
    state.durable_entry = false;  // The rename itself needs a dir fsync.
    files_[to] = state;
  }
  pending_renames_.push_back(std::move(pending));
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kDirSync, dir));
  if (safety::FailpointFires(kFailpointDirSyncEio)) {
    return Status::Internal("I/O error (injected dir-fsync failure at '" +
                            dir + "')");
  }
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  REGAL_RETURN_NOT_OK(base_->SyncDir(dir));
  pending_renames_.erase(
      std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                     [&](const PendingRename& p) {
                       return ParentDir(p.to) == dir;
                     }),
      pending_renames_.end());
  for (auto& [path, state] : files_) {
    if (ParentDir(path) == dir) state.durable_entry = true;
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kRemove, path));
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  REGAL_RETURN_NOT_OK(base_->RemoveFile(path));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  REGAL_RETURN_NOT_OK(ConsumeTransient(EnvOpKind::kTruncate, path));
  uint64_t torn = 0;
  if (!AdmitOp(&torn)) return CrashedStatus();
  REGAL_RETURN_NOT_OK(base_->TruncateFile(path, size));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.written = std::min(it->second.written, size);
    it->second.synced = std::min(it->second.synced, size);
  }
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::Recover(bool renames_survive) {
  Status first_error;
  auto note = [&first_error](Status status) {
    if (first_error.ok() && !status.ok()) first_error = status;
  };

  // 1. Unsynced appended bytes are gone, except a torn prefix of at most
  //    torn_tail_bytes_ (writes reach the platter in order).
  for (const auto& [path, state] : files_) {
    if (!base_->FileExists(path)) continue;
    const uint64_t keep =
        std::min(state.written, state.synced + torn_tail_bytes_);
    if (keep < state.written) note(base_->TruncateFile(path, keep));
  }

  // 2. Renames whose directory fsync never completed land on either side
  //    of the crash; the caller picks which outcome to simulate.
  if (!renames_survive) {
    for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
         ++it) {
      if (!base_->FileExists(it->to)) continue;
      note(base_->RenameFile(it->to, it->from));
      auto state_it = files_.find(it->to);
      if (state_it != files_.end()) {
        FileState state = state_it->second;
        files_.erase(state_it);
        files_[it->from] = state;
      }
      if (it->to_existed) {
        // Restore the clobbered destination from its shadow copy.
        auto file = base_->NewWritableFile(it->to);
        if (!file.ok()) {
          note(file.status());
          continue;
        }
        note((*file)->Append(it->shadow_of_to));
        note((*file)->Sync());
        note((*file)->Close());
      }
    }
  }

  // 3. Directory entries created after the last dir fsync are lost — except
  //    the targets of renames this recovery chose to keep, whose survival
  //    is the premise of the renames_survive branch.
  for (const auto& [path, state] : files_) {
    if (state.durable_entry || !base_->FileExists(path)) continue;
    if (renames_survive &&
        std::any_of(pending_renames_.begin(), pending_renames_.end(),
                    [&](const PendingRename& p) { return p.to == path; })) {
      continue;
    }
    note(base_->RemoveFile(path));
  }

  files_.clear();
  pending_renames_.clear();
  crashed_ = false;
  crash_at_op_ = -1;
  torn_tail_bytes_ = 0;
  return first_error;
}

}  // namespace storage
}  // namespace regal
