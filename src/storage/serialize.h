#ifndef REGAL_STORAGE_SERIALIZE_H_
#define REGAL_STORAGE_SERIALIZE_H_

#include <iostream>
#include <string>

#include "core/instance.h"
#include "storage/env.h"
#include "util/status.h"

namespace regal {

/// A simple line-oriented persistence format for region indexes, so an
/// indexed corpus can be built once and reopened (the workflow of the
/// commercial system the paper studies). Versioned header "REGAL1".
///
///   REGAL1
///   text <byte-count>
///   <raw text bytes>
///   name <region-name> <count>
///   <left> <right>            (count lines)
///   pattern <cache-key> <count>
///   <left> <right>            (count lines; synthetic W tables)
///   patternb <key-bytes> <count>
///   <raw cache-key bytes>     (keys containing whitespace — e.g. the
///   <left> <right>             phrase pattern "new york" — are written
///                              length-prefixed; `pattern` stays the record
///                              for whitespace-free keys so existing
///                              corpora keep loading)
///   end
///
/// The reader tolerates CRLF ("\r\n") line endings throughout. Corrupt or
/// truncated records are reported as InvalidArgument, and declared counts
/// and sizes are validated against the remaining input before any
/// allocation (a hand-edited "name r 999999999" cannot OOM the loader).
///
/// Text-backed instances rebuild their suffix-array word index on load.
/// Region names may contain any non-whitespace characters.
///
/// REGAL1 has no checksums: corruption that still parses (a flipped digit)
/// loads silently. New snapshots should use the REGAL2 binary format
/// (storage/snapshot.h), which detects torn writes and bit rot as
/// kDataLoss; this text format remains the compatibility read/write path.
Status SaveInstance(const Instance& instance, std::ostream& out);

Result<Instance> LoadInstance(std::istream& in);

/// File-path conveniences, routed through the storage Env (Env::Default()
/// when null). Saving writes REGAL1 via the atomic temp+fsync+rename
/// protocol — a crash or failure mid-save leaves the previous file intact.
/// Loading sniffs the format by magic, so both REGAL1 and REGAL2 files
/// open through this entry point.
Status SaveInstanceToFile(const Instance& instance, const std::string& path,
                          storage::Env* env = nullptr);
Result<Instance> LoadInstanceFromFile(const std::string& path,
                                      storage::Env* env = nullptr);

}  // namespace regal

#endif  // REGAL_STORAGE_SERIALIZE_H_
