#ifndef REGAL_STORAGE_SERIALIZE_H_
#define REGAL_STORAGE_SERIALIZE_H_

#include <iostream>
#include <string>

#include "core/instance.h"
#include "util/status.h"

namespace regal {

/// A simple line-oriented persistence format for region indexes, so an
/// indexed corpus can be built once and reopened (the workflow of the
/// commercial system the paper studies). Versioned header "REGAL1".
///
///   REGAL1
///   text <byte-count>
///   <raw text bytes>
///   name <region-name> <count>
///   <left> <right>            (count lines)
///   pattern <cache-key> <count>
///   <left> <right>            (count lines; synthetic W tables)
///   patternb <key-bytes> <count>
///   <raw cache-key bytes>     (keys containing whitespace — e.g. the
///   <left> <right>             phrase pattern "new york" — are written
///                              length-prefixed; `pattern` stays the record
///                              for whitespace-free keys so existing
///                              corpora keep loading)
///   end
///
/// The reader tolerates CRLF ("\r\n") line endings throughout. Corrupt or
/// truncated records are reported as InvalidArgument.
///
/// Text-backed instances rebuild their suffix-array word index on load.
/// Region names may contain any non-whitespace characters.
Status SaveInstance(const Instance& instance, std::ostream& out);

Result<Instance> LoadInstance(std::istream& in);

/// File-path conveniences.
Status SaveInstanceToFile(const Instance& instance, const std::string& path);
Result<Instance> LoadInstanceFromFile(const std::string& path);

}  // namespace regal

#endif  // REGAL_STORAGE_SERIALIZE_H_
