#ifndef REGAL_STORAGE_ENV_H_
#define REGAL_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace regal {
namespace storage {

/// A file opened for sequential writing. Durability contract (the one WAL /
/// LSM engines rely on): bytes Append()ed are *not* durable until Sync()
/// returns OK, and a newly created file's directory entry is not durable
/// until the parent directory is SyncDir()ed. Close() releases the
/// descriptor and implies nothing about durability.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// fsync(2): flushes file data + metadata to stable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem abstraction the storage engine writes and reads through
/// (LevelDB-style). Production uses the POSIX implementation behind
/// Env::Default(); tests substitute a FaultInjectionEnv (fault_env.h) to
/// inject short writes, ENOSPC/EIO, bit flips and crash-at-syscall-boundary
/// without touching kernel state. All paths are plain byte strings; the
/// engine never walks directories, so only file-level operations exist.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for appending, creating it when absent and preserving any
  /// existing contents — the open mode of a write-ahead log, which must
  /// survive reopen-after-crash without truncating its history.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;

  /// Size of `path` in bytes; NotFound when absent. The WAL reader uses it
  /// to truncate torn tails through the Env (never raw syscalls), so fault
  /// injection covers that path too.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Reads an entire file. NotFound when absent; snapshot loads work on the
  /// full byte buffer (the snapshot reader validates framing before trusting
  /// any length field, so no allocation is driven by file *content*).
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// rename(2): atomic replacement of `to` within one filesystem. The
  /// commit point of the atomic write protocol below.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// fsyncs a directory so entry creations/renames inside it are durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// truncate(2) — used by crash simulation to drop unsynced tails.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// mkdir -p. Defaulted (not pure) so Env implementations that never see
  /// a missing directory — fault-injection wrappers drive pre-created
  /// stores — inherit the POSIX behavior without forwarding it.
  virtual Status CreateDirs(const std::string& dir);

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Directory component of `path` ("." when none) — the directory that must
/// be fsynced for a rename/creation of `path` to be durable.
std::string ParentDir(const std::string& path);

/// The temp-file name the atomic write protocol uses for `path`. Exposed so
/// crash tests can assert on leftover state.
std::string AtomicTempPath(const std::string& path);

/// Atomically replaces the contents of `path` with `payload`:
///
///   1. write payload to `path`.tmp (chunked appends)
///   2. fsync the temp file
///   3. close
///   4. rename(tmp -> path)        <- commit point
///   5. fsync the parent directory
///
/// On any failure the destination is untouched (a reader sees either the
/// previous committed contents or, before the first commit, no file) and
/// the temp file is best-effort removed. A leftover `.tmp` from a crashed
/// writer is simply overwritten by the next attempt (counted in
/// regal_storage_orphan_tmp_recovered_total). Also records
/// regal_storage_bytes_written_total / _fsyncs_total / _commits_total and
/// the snapshot-size histogram.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view payload);

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_ENV_H_
