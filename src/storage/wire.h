#ifndef REGAL_STORAGE_WIRE_H_
#define REGAL_STORAGE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "core/region.h"
#include "core/region_set.h"

namespace regal {
namespace storage {

/// Binary wire primitives shared by the REGAL2 snapshot format
/// (storage/snapshot.cc) and the write-ahead log (recovery/wal.cc). Both
/// formats must stay bit-identical across saves, so these helpers are the
/// single definition of how integers, varints and region lists are framed.
/// All fixed-width integers are little-endian (x86/arm64 linux assumed, as
/// everywhere else in the storage layer).

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Zigzag maps small-magnitude signed deltas to small unsigned varints
/// (0,-1,1,-2 -> 0,1,2,3); region lists are sorted by left, so delta
/// encoding makes a region cost ~2 bytes instead of 8.
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline bool GetVarint(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*p == end) return false;
    const uint8_t byte = static_cast<uint8_t>(*(*p)++);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;  // More than 10 continuation bytes: not a valid varint.
}

/// u64 count, then count x (zigzag-varint left-delta, zigzag-varint width).
inline void AppendRegionList(std::string* out, const RegionSet& set) {
  PutU64(out, set.size());
  int64_t prev_left = 0;
  for (const Region& r : set) {
    PutVarint(out, ZigZag(r.left - prev_left));
    PutVarint(out, ZigZag(r.right - static_cast<int64_t>(r.left)));
    prev_left = r.left;
  }
}

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_WIRE_H_
