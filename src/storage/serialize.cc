#include "storage/serialize.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "index/word_index.h"

namespace regal {

namespace {

constexpr char kMagic[] = "REGAL1";

void WriteRegions(const RegionSet& set, std::ostream& out) {
  for (const Region& r : set) {
    out << r.left << " " << r.right << "\n";
  }
}

// Consumes one line terminator after a fixed-size payload or a formatted
// read: "\n", "\r\n" or a bare "\r" (and nothing at EOF). A plain
// in.ignore() would leave the '\n' of a CRLF pair in the stream.
void SkipLineBreak(std::istream& in) {
  if (in.peek() == '\r') in.get();
  if (in.peek() == '\n') in.get();
}

// Line reader tolerating CRLF endings: a trailing '\r' left by getline is
// stripped before the caller parses the line.
bool GetLine(std::istream& in, std::string* line) {
  if (!std::getline(in, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

Result<RegionSet> ReadRegions(std::istream& in, size_t count) {
  std::vector<Region> regions;
  regions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Region r;
    if (!(in >> r.left >> r.right)) {
      return Status::InvalidArgument("truncated region list");
    }
    if (r.left > r.right) {
      return Status::InvalidArgument("region with left > right");
    }
    regions.push_back(r);
  }
  SkipLineBreak(in);
  return RegionSet::FromUnsorted(std::move(regions));
}

}  // namespace

Status SaveInstance(const Instance& instance, std::ostream& out) {
  out << kMagic << "\n";
  if (instance.text() != nullptr) {
    const std::string& content = instance.text()->content();
    out << "text " << content.size() << "\n";
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out << "\n";
  }
  for (const std::string& name : instance.names()) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      return Status::InvalidArgument("region name '" + name +
                                     "' contains whitespace");
    }
    const RegionSet& set = **instance.Get(name);
    out << "name " << name << " " << set.size() << "\n";
    WriteRegions(set, out);
  }
  for (const auto& [key, set] : instance.synthetic_patterns()) {
    // A pattern key is user-controlled (the pattern spec may hold spaces,
    // tabs, even CR/LF — think phrase patterns like "new york"). The bare
    // `pattern <key> <count>` header tokenizes on whitespace, so such keys
    // go out length-prefixed as `patternb` instead; whitespace-free keys
    // keep the legacy record for compatibility with existing corpora.
    if (key.find_first_of(" \t\r\n") == std::string::npos) {
      out << "pattern " << key << " " << set.size() << "\n";
    } else {
      out << "patternb " << key.size() << " " << set.size() << "\n";
      out.write(key.data(), static_cast<std::streamsize>(key.size()));
      out << "\n";
    }
    WriteRegions(set, out);
  }
  out << "end\n";
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<Instance> LoadInstance(std::istream& in) {
  std::string line;
  if (!GetLine(in, &line) || line != kMagic) {
    return Status::InvalidArgument("bad magic: expected " +
                                   std::string(kMagic));
  }
  Instance instance;
  bool saw_end = false;
  std::shared_ptr<Text> text;
  while (GetLine(in, &line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string keyword;
    header >> keyword;
    if (keyword == "end") {
      saw_end = true;
      break;
    }
    if (keyword == "text") {
      size_t size = 0;
      if (!(header >> size)) {
        return Status::InvalidArgument("malformed text header");
      }
      std::string content(size, '\0');
      in.read(content.data(), static_cast<std::streamsize>(size));
      if (in.gcount() != static_cast<std::streamsize>(size)) {
        return Status::InvalidArgument("truncated text payload");
      }
      SkipLineBreak(in);
      text = std::make_shared<Text>(std::move(content));
      continue;
    }
    if (keyword == "name" || keyword == "pattern") {
      std::string name;
      size_t count = 0;
      if (!(header >> name >> count)) {
        return Status::InvalidArgument("malformed '" + keyword + "' header");
      }
      REGAL_ASSIGN_OR_RETURN(RegionSet set, ReadRegions(in, count));
      if (keyword == "name") {
        REGAL_RETURN_NOT_OK(instance.AddRegionSet(name, std::move(set)));
      } else {
        REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(name));
        instance.SetSyntheticPattern(p, std::move(set));
      }
      continue;
    }
    if (keyword == "patternb") {
      size_t key_size = 0;
      size_t count = 0;
      if (!(header >> key_size >> count)) {
        return Status::InvalidArgument("malformed 'patternb' header");
      }
      std::string key(key_size, '\0');
      in.read(key.data(), static_cast<std::streamsize>(key_size));
      if (in.gcount() != static_cast<std::streamsize>(key_size)) {
        return Status::InvalidArgument("truncated 'patternb' key");
      }
      SkipLineBreak(in);
      REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(key));
      REGAL_ASSIGN_OR_RETURN(RegionSet set, ReadRegions(in, count));
      instance.SetSyntheticPattern(p, std::move(set));
      continue;
    }
    return Status::InvalidArgument("unknown record '" + keyword + "'");
  }
  if (!saw_end) {
    return Status::InvalidArgument("missing 'end' record");
  }
  if (text != nullptr) {
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
  }
  return instance;
}

Status SaveInstanceToFile(const Instance& instance, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "'");
  return SaveInstance(instance, out);
}

Result<Instance> LoadInstanceFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return LoadInstance(in);
}

}  // namespace regal
