#include "storage/serialize.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "index/word_index.h"
#include "storage/env.h"
#include "storage/snapshot.h"

namespace regal {

namespace {

constexpr char kMagic[] = "REGAL1";

// Upper bound on the bytes left in a seekable stream, or -1 when the stream
// cannot tell. Used to reject absurd declared counts *before* allocating:
// a hand-edited "name r 999999999" header must fail with InvalidArgument,
// not OOM the process reserving gigabytes it can never read.
std::streamoff RemainingBytes(std::istream& in) {
  const std::streamoff current = in.tellg();
  if (current < 0) return -1;
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  in.seekg(current);
  if (end < 0 || end < current) return -1;
  return end - current;
}

// Fallback reserve cap when the stream is not seekable; vectors still grow
// to any genuine size, they just do it incrementally.
constexpr size_t kBlindReserveCap = 1 << 20;

// The smallest serialized region is "0 0" plus a separator: 4 bytes per
// record (the final record may omit its terminator, hence the +1).
bool RegionCountPlausible(size_t count, std::streamoff remaining) {
  if (remaining < 0) return true;  // Unknown size: parse will hit EOF.
  return count <= (static_cast<uint64_t>(remaining) + 1) / 4;
}

void WriteRegions(const RegionSet& set, std::ostream& out) {
  for (const Region& r : set) {
    out << r.left << " " << r.right << "\n";
  }
}

// Consumes one line terminator after a fixed-size payload or a formatted
// read: "\n", "\r\n" or a bare "\r" (and nothing at EOF). A plain
// in.ignore() would leave the '\n' of a CRLF pair in the stream.
void SkipLineBreak(std::istream& in) {
  if (in.peek() == '\r') in.get();
  if (in.peek() == '\n') in.get();
}

// Line reader tolerating CRLF endings: a trailing '\r' left by getline is
// stripped before the caller parses the line.
bool GetLine(std::istream& in, std::string* line) {
  if (!std::getline(in, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

Result<RegionSet> ReadRegions(std::istream& in, size_t count) {
  if (!RegionCountPlausible(count, RemainingBytes(in))) {
    return Status::InvalidArgument(
        "declared region count " + std::to_string(count) +
        " exceeds remaining input");
  }
  std::vector<Region> regions;
  regions.reserve(std::min(count, kBlindReserveCap));
  for (size_t i = 0; i < count; ++i) {
    Region r;
    if (!(in >> r.left >> r.right)) {
      return Status::InvalidArgument("truncated region list");
    }
    if (r.left > r.right) {
      return Status::InvalidArgument("region with left > right");
    }
    regions.push_back(r);
  }
  SkipLineBreak(in);
  return RegionSet::FromUnsorted(std::move(regions));
}

}  // namespace

Status SaveInstance(const Instance& instance, std::ostream& out) {
  out << kMagic << "\n";
  if (instance.text() != nullptr) {
    const std::string& content = instance.text()->content();
    out << "text " << content.size() << "\n";
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out << "\n";
  }
  for (const std::string& name : instance.names()) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      return Status::InvalidArgument("region name '" + name +
                                     "' contains whitespace");
    }
    const RegionSet& set = **instance.Get(name);
    out << "name " << name << " " << set.size() << "\n";
    WriteRegions(set, out);
  }
  for (const auto& [key, set] : instance.synthetic_patterns()) {
    // A pattern key is user-controlled (the pattern spec may hold spaces,
    // tabs, even CR/LF — think phrase patterns like "new york"). The bare
    // `pattern <key> <count>` header tokenizes on whitespace, so such keys
    // go out length-prefixed as `patternb` instead; whitespace-free keys
    // keep the legacy record for compatibility with existing corpora.
    if (key.find_first_of(" \t\r\n") == std::string::npos) {
      out << "pattern " << key << " " << set.size() << "\n";
    } else {
      out << "patternb " << key.size() << " " << set.size() << "\n";
      out.write(key.data(), static_cast<std::streamsize>(key.size()));
      out << "\n";
    }
    WriteRegions(set, out);
  }
  out << "end\n";
  if (!out) return Status::Internal("stream write failed");
  return Status::OK();
}

Result<Instance> LoadInstance(std::istream& in) {
  std::string line;
  if (!GetLine(in, &line) || line != kMagic) {
    return Status::InvalidArgument("bad magic: expected " +
                                   std::string(kMagic));
  }
  Instance instance;
  bool saw_end = false;
  std::shared_ptr<Text> text;
  while (GetLine(in, &line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string keyword;
    header >> keyword;
    if (keyword == "end") {
      saw_end = true;
      break;
    }
    if (keyword == "text") {
      size_t size = 0;
      if (!(header >> size)) {
        return Status::InvalidArgument("malformed text header");
      }
      if (std::streamoff remaining = RemainingBytes(in);
          remaining >= 0 && size > static_cast<uint64_t>(remaining)) {
        return Status::InvalidArgument(
            "declared text size " + std::to_string(size) +
            " exceeds remaining input");
      }
      std::string content(size, '\0');
      in.read(content.data(), static_cast<std::streamsize>(size));
      if (in.gcount() != static_cast<std::streamsize>(size)) {
        return Status::InvalidArgument("truncated text payload");
      }
      SkipLineBreak(in);
      text = std::make_shared<Text>(std::move(content));
      continue;
    }
    if (keyword == "name" || keyword == "pattern") {
      std::string name;
      size_t count = 0;
      if (!(header >> name >> count)) {
        return Status::InvalidArgument("malformed '" + keyword + "' header");
      }
      REGAL_ASSIGN_OR_RETURN(RegionSet set, ReadRegions(in, count));
      if (keyword == "name") {
        REGAL_RETURN_NOT_OK(instance.AddRegionSet(name, std::move(set)));
      } else {
        REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(name));
        instance.SetSyntheticPattern(p, std::move(set));
      }
      continue;
    }
    if (keyword == "patternb") {
      size_t key_size = 0;
      size_t count = 0;
      if (!(header >> key_size >> count)) {
        return Status::InvalidArgument("malformed 'patternb' header");
      }
      if (std::streamoff remaining = RemainingBytes(in);
          remaining >= 0 && key_size > static_cast<uint64_t>(remaining)) {
        return Status::InvalidArgument(
            "declared key size " + std::to_string(key_size) +
            " exceeds remaining input");
      }
      std::string key(key_size, '\0');
      in.read(key.data(), static_cast<std::streamsize>(key_size));
      if (in.gcount() != static_cast<std::streamsize>(key_size)) {
        return Status::InvalidArgument("truncated 'patternb' key");
      }
      SkipLineBreak(in);
      REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(key));
      REGAL_ASSIGN_OR_RETURN(RegionSet set, ReadRegions(in, count));
      instance.SetSyntheticPattern(p, std::move(set));
      continue;
    }
    return Status::InvalidArgument("unknown record '" + keyword + "'");
  }
  if (!saw_end) {
    return Status::InvalidArgument("missing 'end' record");
  }
  if (text != nullptr) {
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
  }
  return instance;
}

Status SaveInstanceToFile(const Instance& instance, const std::string& path,
                          storage::Env* env) {
  // The legacy REGAL1 format, but through the same atomic temp+fsync+rename
  // protocol as REGAL2: the destination is never clobbered before the new
  // contents are known-good and durable.
  return storage::SaveSnapshotToFile(instance, path, env,
                                     storage::SnapshotFormat::kRegal1);
}

Result<Instance> LoadInstanceFromFile(const std::string& path,
                                      storage::Env* env) {
  return storage::LoadSnapshotFromFile(path, env);
}

}  // namespace regal
