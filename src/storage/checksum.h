#ifndef REGAL_STORAGE_CHECKSUM_H_
#define REGAL_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace regal {
namespace storage {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum LSM
/// and WAL engines frame their records with. Chosen over CRC32 (ANSI) for
/// its better error-detection properties on short records, and over
/// xxhash-style hashes because single-bit-flip detection is *guaranteed*
/// (any burst error up to 32 bits is caught), which the corruption-fuzz
/// harness asserts. Uses the SSE4.2 CRC32 instruction when the CPU has it
/// (runtime cpuid dispatch, ~8 bytes/cycle) and falls back to software
/// slice-by-8 (~1 byte/cycle) otherwise; both compute the identical value.

/// CRC of `data` continuing from `crc` (0 for a fresh checksum).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC of a complete buffer.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_CHECKSUM_H_
