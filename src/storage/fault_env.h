#ifndef REGAL_STORAGE_FAULT_ENV_H_
#define REGAL_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace regal {
namespace storage {

/// Failpoint sites planted in FaultInjectionEnv, armable through the
/// REGAL_FAILPOINTS registry (safety/failpoint.h) — e.g.
/// REGAL_FAILPOINTS="storage.env.write.enospc=0.01@7" makes one save in a
/// hundred hit a simulated full disk, deterministically from the seed.
inline constexpr char kFailpointOpenEio[] = "storage.env.open.eio";
inline constexpr char kFailpointWriteEio[] = "storage.env.write.eio";
inline constexpr char kFailpointWriteEnospc[] = "storage.env.write.enospc";
inline constexpr char kFailpointWriteShort[] = "storage.env.write.short";
inline constexpr char kFailpointWriteBitflip[] = "storage.env.write.bitflip";
inline constexpr char kFailpointSyncEio[] = "storage.env.sync.eio";
inline constexpr char kFailpointRenameEio[] = "storage.env.rename.eio";
inline constexpr char kFailpointDirSyncEio[] = "storage.env.dirsync.eio";
inline constexpr char kFailpointCrash[] = "storage.env.crash";

/// An Env that forwards to a base Env (the real filesystem by default)
/// while injecting the failures a production deployment must survive:
///
///  * **Typed syscall failures** via the failpoint sites above: EIO on
///    open/write/sync/rename/dir-sync, ENOSPC (reported as
///    kResourceExhausted, like the POSIX env), *short writes* (a prefix of
///    the buffer lands, then EIO) and *silent bit flips* (one bit of the
///    appended data is corrupted and the write "succeeds" — what the
///    REGAL2 checksums exist to catch).
///
///  * **Crash-at-syscall-boundary** simulation: CrashAfterOps(k) kills the
///    "process" at the k-th mutating env operation (0-based; open, append,
///    sync, close, rename, dir-sync, remove, truncate each count one).
///    The op at index k and everything after it has no filesystem effect
///    and returns an error, except that an append at the kill point may
///    first land `torn_tail_bytes` of its buffer — a torn write.
///
/// After a simulated crash, Recover() applies the losses a real kernel may
/// inflict on the surviving disk image, then resets the env for reuse:
///
///  * appended-but-unsynced bytes are dropped (files truncate back to
///    their last Sync()ed size, plus the torn tail at the kill point);
///  * renames in directories whose SyncDir() never completed are undone —
///    or kept, when `renames_survive` is true, since a real crash may land
///    either way (the crash matrix asserts both outcomes are consistent);
///  * files created but never made durable by a SyncDir() are deleted.
///
/// Reads are never failed or counted: the injection models the write path,
/// and recovery asserts what a *reader* observes afterwards.
/// The mutating env operations, for per-operation transient injection.
enum class EnvOpKind {
  kOpen,
  kAppend,
  kSync,
  kRename,
  kDirSync,
  kRemove,
  kTruncate,
};

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default());
  ~FaultInjectionEnv() override;

  // --- Transient failures ----------------------------------------------
  /// Transient-vs-permanent error modes: the next `count` operations of
  /// `kind` fail — with kResourceExhausted (a filling disk) when `enospc`,
  /// kInternal (EIO) otherwise — and then operations succeed again. This
  /// models a device that recovers, so the retry/backoff path
  /// (recovery/retry.h) is testable deterministically: arm `count` below
  /// the retry budget and the operation must eventually succeed; arm it
  /// above and the typed error must surface. Failed ops have no filesystem
  /// effect and do not advance the crash-simulation op counter.
  void InjectTransient(EnvOpKind kind, int count, bool enospc = false);
  /// Injected failures of `kind` not yet consumed.
  int TransientRemaining(EnvOpKind kind) const;

  // --- Crash simulation -------------------------------------------------
  /// Arms the crash: the op with 0-based index `op` (counting from *now*)
  /// dies. `torn_tail_bytes` of an append at the kill point still land.
  void CrashAfterOps(int64_t op, uint64_t torn_tail_bytes = 0);
  bool crashed() const { return crashed_; }
  /// Mutating env ops seen so far (to size a crash matrix).
  int64_t op_count() const { return op_count_; }
  /// Applies post-crash data loss (see class comment) and disarms.
  Status Recover(bool renames_survive = false);

  // --- Env interface ----------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t written = 0;  ///< Bytes appended through this env.
    uint64_t synced = 0;   ///< Bytes covered by the last successful Sync().
    bool durable_entry = false;  ///< Parent dir fsynced since creation.
  };

  struct PendingRename {
    std::string from;
    std::string to;
    bool to_existed = false;
    std::string shadow_of_to;  ///< Pre-rename contents of `to`, for revert.
  };

  /// Returns false when the env is dead (crashed) or the crash fires on
  /// this op; `torn_budget` is set to the torn-tail byte allowance when the
  /// kill point is exactly this op (appends only).
  bool AdmitOp(uint64_t* torn_budget);

  /// Consumes one armed transient failure of `kind`, returning its typed
  /// error; OK when none is armed.
  Status ConsumeTransient(EnvOpKind kind, const std::string& path);

  Env* base_;
  struct TransientState {
    int remaining = 0;
    bool enospc = false;
  };
  std::map<EnvOpKind, TransientState> transient_;
  bool crashed_ = false;
  int64_t op_count_ = 0;
  int64_t crash_at_op_ = -1;
  uint64_t torn_tail_bytes_ = 0;
  std::map<std::string, FileState> files_;
  std::vector<PendingRename> pending_renames_;
};

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_FAULT_ENV_H_
