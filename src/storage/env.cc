#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace regal {
namespace storage {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg = op + " '" + path + "': " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::Internal(msg);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    obs::Registry::Default()
        .GetCounter("regal_storage_bytes_written_total")
        ->Increment(static_cast<int64_t>(data.size()));
    return Status::OK();
  }

  Status Sync() override {
    // fdatasync: data plus the metadata needed to read it back (file size);
    // skipping the mtime/atime journal commit saves a disk round trip per
    // snapshot and gives up nothing the durability contract promises.
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path_, errno);
    obs::Registry::Default()
        .GetCounter("regal_storage_fsyncs_total", {{"kind", "file"}})
        ->Increment();
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    std::string out;
    char buffer[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + "' -> '" + to, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open dir", dir, errno);
    Status status;
    if (::fsync(fd) != 0) status = ErrnoStatus("fsync dir", dir, errno);
    ::close(fd);
    if (status.ok()) {
      obs::Registry::Default()
          .GetCounter("regal_storage_fsyncs_total", {{"kind", "dir"}})
          ->Increment();
    }
    return status;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

// Chunked appends give the crash-consistency matrix syscall boundaries
// *inside* the payload, so "torn in the middle of the data" is a reachable
// kill point and not just a theoretical one.
constexpr size_t kAtomicWriteChunk = 1 << 16;

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status Env::CreateDirs(const std::string& dir) {
  if (dir.empty()) return Status::OK();
  // mkdir -p: create each prefix, tolerating the ones that already exist
  // (EEXIST covers a concurrent creator too, which is the same outcome).
  for (size_t slash = dir.find('/', 1); true;
       slash = dir.find('/', slash + 1)) {
    const std::string prefix =
        slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!prefix.empty() &&
        ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", prefix, errno);
    }
    if (slash == std::string::npos) return Status::OK();
  }
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view payload) {
  obs::Registry& registry = obs::Registry::Default();
  const std::string tmp = AtomicTempPath(path);
  if (env->FileExists(tmp)) {
    // A previous writer died between creating the temp file and committing
    // it; the truncating open below discards the orphan.
    registry.GetCounter("regal_storage_orphan_tmp_recovered_total")
        ->Increment();
  }
  auto fail = [&](const char* stage, Status status) {
    registry
        .GetCounter("regal_storage_write_failures_total", {{"stage", stage}})
        ->Increment();
    // Best effort: the temp file is garbage either way; the *destination*
    // has not been touched unless the rename already happened.
    if (env->FileExists(tmp)) (void)env->RemoveFile(tmp);
    return status;
  };

  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return fail("open", file.status());
  for (size_t offset = 0; offset < payload.size();
       offset += kAtomicWriteChunk) {
    Status appended = (*file)->Append(
        payload.substr(offset, kAtomicWriteChunk));
    if (!appended.ok()) return fail("append", appended);
  }
  if (Status synced = (*file)->Sync(); !synced.ok()) {
    return fail("sync", synced);
  }
  if (Status closed = (*file)->Close(); !closed.ok()) {
    return fail("close", closed);
  }
  if (Status renamed = env->RenameFile(tmp, path); !renamed.ok()) {
    return fail("rename", renamed);
  }
  if (Status dir_synced = env->SyncDir(ParentDir(path)); !dir_synced.ok()) {
    // The rename already happened; the temp file is gone. Report the
    // failure (durability of the commit is not yet guaranteed) without
    // touching the destination.
    registry
        .GetCounter("regal_storage_write_failures_total", {{"stage", "dirsync"}})
        ->Increment();
    return dir_synced;
  }
  registry.GetCounter("regal_storage_commits_total")->Increment();
  registry
      .GetHistogram("regal_storage_snapshot_bytes", {},
                    obs::Registry::DefaultSizeBytesBuckets())
      ->Observe(static_cast<double>(payload.size()));
  return Status::OK();
}

}  // namespace storage
}  // namespace regal
