#ifndef REGAL_STORAGE_COMPRESS_H_
#define REGAL_STORAGE_COMPRESS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace regal {
namespace storage {

/// A small dependency-free byte-oriented LZ codec (LZ4-flavored) for
/// snapshot text sections. Durable saves pay real disk writeback for every
/// byte fsynced, so shrinking the payload is the main lever on save
/// latency: SGML/dictionary corpus text typically compresses ~3x, and
/// decompression runs at memcpy-like speed next to the word-index rebuild
/// that dominates loading.
///
/// Stream format — a sequence of tokens:
///
///   u8 token:  high nibble = literal count, low nibble = match length - 4
///   [length extension bytes]   when a nibble is 15: add bytes (each 0-255)
///                              until one is < 255
///   literal bytes
///   u16le offset               distance back into the output (1-65535);
///                              omitted after the final literals run
///
/// Matches are at least 4 bytes and may overlap their own output (offset <
/// match length repeats a period, so runs compress well). The stream ends
/// exactly when the declared raw size has been produced.
///
/// LzCompress is deterministic (greedy, fixed hash probe), which the
/// snapshot format relies on for bit-identical re-encoding. LzDecompress
/// validates every read and write bound and fails with kDataLoss rather
/// than over-reading, over-writing or over-allocating: `raw_size` drives
/// the only allocation and callers must bound it first (see
/// kMaxLzExpansion).
std::string LzCompress(std::string_view input);

/// Hard ceiling on LzDecompress output per input byte: one extension byte
/// adds at most 255 bytes of match. A `raw_size` claim above
/// kMaxLzExpansion * stream-size (+ a small constant) cannot be produced by
/// any valid stream — reject it before allocating.
inline constexpr uint64_t kMaxLzExpansion = 255;

Result<std::string> LzDecompress(std::string_view stream, uint64_t raw_size);

}  // namespace storage
}  // namespace regal

#endif  // REGAL_STORAGE_COMPRESS_H_
