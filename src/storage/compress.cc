#include "storage/compress.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace regal {
namespace storage {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint32_t Hash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a nibble-extension length: `value` is what remains after the 15
// stored in the nibble.
void PutLength(std::string* out, size_t value) {
  while (value >= 255) {
    out->push_back(static_cast<char>(0xFF));
    value -= 255;
  }
  out->push_back(static_cast<char>(value));
}

void EmitToken(std::string* out, const char* literals, size_t literal_len,
               size_t match_len_minus4_or_0, bool has_match) {
  const size_t lit_nibble = literal_len < 15 ? literal_len : 15;
  const size_t match_nibble =
      !has_match ? 0
                 : (match_len_minus4_or_0 < 15 ? match_len_minus4_or_0 : 15);
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLength(out, literal_len - 15);
  out->append(literals, literal_len);
}

}  // namespace

std::string LzCompress(std::string_view input) {
  std::string out;
  const size_t n = input.size();
  if (n == 0) return out;
  out.reserve(n / 2 + 16);

  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);
  // Position 0 is also the table's "empty" marker; harmless, since a
  // candidate at 0 is simply verified like any other.
  const char* base = input.data();
  size_t anchor = 0;  // First literal not yet emitted.
  size_t i = 0;
  while (n >= kMinMatch && i + kMinMatch <= n) {
    const uint32_t sequence = Load32(base + i);
    const uint32_t h = Hash(sequence);
    const size_t candidate = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (candidate < i && i - candidate <= kMaxOffset &&
        Load32(base + candidate) == sequence) {
      // Extend the match as far as the input allows.
      size_t len = kMinMatch;
      while (i + len < n && base[candidate + len] == base[i + len]) ++len;
      EmitToken(&out, base + anchor, i - anchor, len - kMinMatch, true);
      const size_t offset = i - candidate;
      out.push_back(static_cast<char>(offset & 0xFF));
      out.push_back(static_cast<char>(offset >> 8));
      if (len - kMinMatch >= 15) PutLength(&out, len - kMinMatch - 15);
      i += len;
      anchor = i;
    } else {
      ++i;
    }
  }
  // Final literals run (no match follows).
  EmitToken(&out, base + anchor, n - anchor, 0, false);
  return out;
}

Result<std::string> LzDecompress(std::string_view stream, uint64_t raw_size) {
  // The expansion bound makes the allocation below proportional to the
  // *input* size, so a crafted header cannot turn a small file into a
  // multi-gigabyte reserve (the snapshot loader additionally caps raw_size
  // at the text-offset limit).
  if (raw_size > kMaxLzExpansion * stream.size() + 16) {
    return Status::DataLoss(
        "corrupt snapshot: compressed text claims impossible expansion");
  }
  std::string out;
  out.reserve(raw_size);
  const char* p = stream.data();
  const char* end = p + stream.size();

  auto read_length = [&](size_t nibble, size_t* value) {
    *value = nibble;
    if (nibble < 15) return true;
    for (;;) {
      if (p == end) return false;
      const uint8_t byte = static_cast<uint8_t>(*p++);
      *value += byte;
      if (byte < 255) return true;
    }
  };

  while (p != end) {
    const uint8_t token = static_cast<uint8_t>(*p++);
    size_t literal_len = 0;
    if (!read_length(token >> 4, &literal_len)) {
      return Status::DataLoss("corrupt snapshot: truncated literal length");
    }
    if (static_cast<size_t>(end - p) < literal_len) {
      return Status::DataLoss("corrupt snapshot: literals overrun stream");
    }
    if (out.size() + literal_len > raw_size) {
      return Status::DataLoss("corrupt snapshot: decompressed text too long");
    }
    out.append(p, literal_len);
    p += literal_len;
    if (p == end) break;  // Final literals run carries no match.

    if (end - p < 2) {
      return Status::DataLoss("corrupt snapshot: truncated match offset");
    }
    const size_t offset = static_cast<uint8_t>(p[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(p[1]))
                           << 8);
    p += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::DataLoss("corrupt snapshot: match offset out of range");
    }
    size_t match_len = 0;
    if (!read_length(token & 0xF, &match_len)) {
      return Status::DataLoss("corrupt snapshot: truncated match length");
    }
    match_len += kMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::DataLoss("corrupt snapshot: decompressed text too long");
    }
    // Byte-at-a-time: matches may overlap their own output (offset <
    // match_len repeats a period).
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  if (out.size() != raw_size) {
    return Status::DataLoss(
        "corrupt snapshot: decompressed text shorter than declared");
  }
  return out;
}

}  // namespace storage
}  // namespace regal
