#include "storage/checksum.h"

#include <array>
#include <cstring>

#include "util/cpu.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define REGAL_CRC32C_HW 1
#endif

namespace regal {
namespace storage {

namespace {

// Slice-by-8 lookup tables, built once at first use. table[0] is the plain
// byte-at-a-time table; table[k] advances a byte seen k positions earlier.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // Reflected Castagnoli.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

#ifdef REGAL_CRC32C_HW
// SSE4.2 CRC32 instruction path, ~8x the table throughput. Compiled with a
// per-function target attribute (the build has no global -msse4.2) and
// selected once at runtime via cpuid, so the binary still runs on pre-2008
// hardware through the slice-by-8 fallback below.
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  uint64_t c = ~crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
    --n;
  }
  return ~c32;
}
#endif  // REGAL_CRC32C_HW

uint32_t Crc32cSoftware(uint32_t crc, const uint8_t* p, size_t n);

uint32_t (*ResolveCrc32c())(uint32_t, const uint8_t*, size_t) {
#ifdef REGAL_CRC32C_HW
  // Shared cpuid detection with the operator kernel dispatch (util/cpu).
  if (util::CpuInfo().sse42) return &Crc32cHardware;
#endif
  return &Crc32cSoftware;
}

uint32_t Crc32cSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& t = Tables().t;
  crc = ~crc;
  // Align the hot loop to 8-byte strides.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    const uint32_t lo = LoadLe32(p) ^ crc;
    const uint32_t hi = LoadLe32(p + 4);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static uint32_t (*const impl)(uint32_t, const uint8_t*, size_t) =
      ResolveCrc32c();
  return impl(crc, static_cast<const uint8_t*>(data), n);
}

}  // namespace storage
}  // namespace regal
