#include "server/resilience.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "obs/metrics.h"

namespace regal {
namespace server {

RetryBudget::RetryBudget() : RetryBudget(Options{}) {}

RetryBudget::RetryBudget(Options options)
    : options_(options), tokens_(options.max_tokens) {}

void RetryBudget::OnRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(tokens_ + options_.earn_per_request,
                     options_.max_tokens);
}

bool RetryBudget::TrySpend() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++denied_;
    obs::Registry::Default()
        .GetCounter("regal_resilience_budget_denied_total")
        ->Increment();
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

int64_t RetryBudget::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

const char* CircuitBreaker::StateLabel(State state) {
  switch (state) {
    case State::kClosed:   return "closed";
    case State::kOpen:     return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options{}) {}

CircuitBreaker::CircuitBreaker(Options options)
    : options_(std::move(options)) {}

int64_t CircuitBreaker::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CircuitBreaker::TransitionLocked(State to, int64_t now) {
  if (state_ == to) return;
  state_ = to;
  if (to == State::kOpen) opened_at_ms_ = now;
  if (to != State::kClosed) half_open_successes_ = 0;
  if (to == State::kClosed) consecutive_failures_ = 0;
  probe_in_flight_ = false;
  obs::Registry::Default()
      .GetCounter("regal_resilience_breaker_transitions_total",
                  {{"to", StateLabel(to)}})
      ->Increment();
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowMs();
  if (state_ == State::kOpen && now - opened_at_ms_ >= options_.open_ms) {
    TransitionLocked(State::kHalfOpen, now);
  }
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++denied_;
      return false;
    case State::kHalfOpen:
      // One probe at a time: a half-open endpoint gets a trickle, not a
      // stampede of hopeful callers.
      if (probe_in_flight_) {
        ++denied_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowMs();
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= options_.close_after) {
        TransitionLocked(State::kClosed, now);
      }
      break;
    case State::kOpen:
      // A straggler from before the trip finished late; the breaker's
      // verdict stands until the timer allows a deliberate probe.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowMs();
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(State::kOpen, now);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: the endpoint is still sick. Full open period
      // again before the next probe.
      TransitionLocked(State::kOpen, now);
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = NowMs();
  if (state_ == State::kOpen && now - opened_at_ms_ >= options_.open_ms) {
    TransitionLocked(State::kHalfOpen, now);
  }
  return state_;
}

int64_t CircuitBreaker::denied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return denied_;
}

CircuitBreaker* BreakerForEndpoint(const std::string& endpoint) {
  return BreakerForEndpoint(endpoint, CircuitBreaker::Options{});
}

CircuitBreaker* BreakerForEndpoint(const std::string& endpoint,
                                   CircuitBreaker::Options options) {
  static std::mutex registry_mu;
  static std::map<std::string, std::unique_ptr<CircuitBreaker>>* breakers =
      new std::map<std::string, std::unique_ptr<CircuitBreaker>>();
  std::lock_guard<std::mutex> lock(registry_mu);
  auto it = breakers->find(endpoint);
  if (it == breakers->end()) {
    it = breakers
             ->emplace(endpoint,
                       std::make_unique<CircuitBreaker>(std::move(options)))
             .first;
  }
  return it->second.get();
}

LatencyTracker::LatencyTracker(size_t window)
    : ring_(window > 0 ? window : 1) {}

void LatencyTracker::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = ms;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++total_;
}

int64_t LatencyTracker::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double LatencyTracker::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ == 0) return 0;
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<ptrdiff_t>(filled_));
  std::sort(sorted.begin(), sorted.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace server
}  // namespace regal
