#include "server/service.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace regal {
namespace server {

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)), governor_(options_.governance) {
  obs::Registry& registry = obs::Registry::Default();
  safety::AdmissionOptions admission = options_.admission;
  if (admission.capacity <= 0) {
    // Never stricter than the governor: with the derived capacity the
    // governor's own capacity/fair-share verdicts stay reachable (and
    // keep their RESOURCE_EXHAUSTED wire code).
    admission.capacity =
        std::max(1, options_.governance.max_concurrent_total);
  }
  admission_ = std::make_unique<safety::AdmissionController>(admission);
  if (options_.frame_deadline_ms > 0) {
    net::WatchdogOptions watchdog;
    watchdog.deadline_ms = options_.frame_deadline_ms;
    watchdog.reaped_counter =
        registry.GetCounter("regal_resilience_watchdog_reaped_total");
    watchdog_ = std::make_unique<net::Watchdog>(std::move(watchdog));
  }
  connections_counter_ =
      registry.GetCounter("regal_server_connections_total");
  connections_active_ = registry.GetGauge("regal_server_connections_active");
  accept_errors_ = registry.GetCounter("regal_server_accept_errors_total");
  bytes_received_ = registry.GetCounter("regal_server_bytes_received_total");
  bytes_sent_ = registry.GetCounter("regal_server_bytes_sent_total");
  latency_ms_ = registry.GetHistogram("regal_server_request_latency_ms");
  inflight_response_bytes_ =
      registry.GetGauge("regal_server_inflight_response_bytes");
}

Result<std::unique_ptr<QueryService>> QueryService::Start(
    ServiceOptions options) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<QueryService> service(new QueryService(std::move(options)));
  net::ListenerOptions listen;
  listen.bind_address = service->options_.bind_address;
  listen.port = service->options_.port;
  REGAL_ASSIGN_OR_RETURN(service->listener_, net::Listener::Open(listen));
  service->accept_thread_ =
      std::thread([raw = service.get()] { raw->AcceptLoop(); });
  obs::EventLog::Default().Log(
      obs::Severity::kInfo, "server", "query service listening", 0,
      {{"address", service->options_.bind_address},
       {"port", std::to_string(service->listener_.port())}});
  return service;
}

QueryService::~QueryService() { Stop(); }

void QueryService::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    // A second Stop still waits for the first teardown's threads.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake any request parked in the admission queue — it answers its
  // client with a typed shutdown refusal rather than holding the drain.
  admission_->Shutdown();
  // Bounded drain: handlers get drain_grace_ms to finish (and send) the
  // request they are executing and observe EOF; stragglers — typically a
  // handler wedged in send() toward a frozen peer — are force-closed, so
  // Stop() is bounded even when a peer stops reading mid-response.
  const int forced = conns_.DrainAndJoin(options_.drain_grace_ms);
  forced_closes_.fetch_add(forced, std::memory_order_relaxed);
  if (watchdog_ != nullptr) watchdog_->Stop();
  listener_.Close();
  obs::EventLog::Default().Log(
      obs::Severity::kInfo, "server", "query service stopped", 0,
      {{"requests_total", std::to_string(requests_total())},
       {"connections_total", std::to_string(connections_total())},
       {"forced_closes", std::to_string(forced)}});
}

Status QueryService::AddInstance(const std::string& name, QueryEngine engine) {
  if (name.empty()) {
    return Status::InvalidArgument("server: instance name must be non-empty");
  }
  auto hosted = std::make_shared<QueryEngine>(std::move(engine));
  if (options_.recorder != nullptr) {
    hosted->set_flight_recorder(options_.recorder);
  }
  std::unique_lock<std::shared_mutex> lock(engines_mu_);
  auto [it, inserted] = engines_.emplace(name, std::move(hosted));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("server: instance '" + name +
                                 "' already hosted");
  }
  return Status::OK();
}

std::shared_ptr<QueryEngine> QueryService::engine(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(engines_mu_);
  auto it = engines_.find(name);
  return it != engines_.end() ? it->second : nullptr;
}

std::vector<std::string> QueryService::instance_names() const {
  std::shared_lock<std::shared_mutex> lock(engines_mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, hosted] : engines_) {
    (void)hosted;
    names.push_back(name);
  }
  return names;
}

void QueryService::SetTenantQuota(const std::string& tenant,
                                  safety::TenantQuota quota) {
  governor_.SetQuota(tenant, std::move(quota));
}

Status QueryService::EnableAdminServer(admin::AdminOptions options) {
  if (admin_server_ != nullptr) {
    return Status::AlreadyExists("server: admin endpoint already running");
  }
  if (options.recorder == nullptr && options_.recorder != nullptr) {
    options.recorder = options_.recorder;
  }
  REGAL_ASSIGN_OR_RETURN(std::unique_ptr<admin::AdminServer> server,
                         admin::AdminServer::Start(std::move(options)));
  server->AddStatusSection("server", [this] {
    admin::StatusRows rows;
    rows.emplace_back("port", std::to_string(port()));
    rows.emplace_back("stopping", stopping() ? "true" : "false");
    rows.emplace_back("connections_active",
                      std::to_string(active_connections()));
    rows.emplace_back("connections_total",
                      std::to_string(connections_total()));
    rows.emplace_back("requests_total", std::to_string(requests_total()));
    {
      std::shared_lock<std::shared_mutex> lock(engines_mu_);
      std::string names;
      for (const auto& [name, hosted] : engines_) {
        (void)hosted;
        if (!names.empty()) names += ' ';
        names += name;
      }
      rows.emplace_back("instances", std::to_string(engines_.size()));
      rows.emplace_back("instance_names", names.empty() ? "(none)" : names);
    }
    rows.emplace_back("max_connections",
                      std::to_string(options_.max_connections));
    rows.emplace_back("max_frame_bytes",
                      std::to_string(options_.max_frame_bytes));
    return rows;
  });
  server->AddStatusSection("tenants",
                           [this] { return governor_.StatusRows(); });
  server->AddStatusSection("resilience", [this] {
    admin::StatusRows rows;
    safety::AdmissionSnapshot snap = admission_->Snapshot();
    rows.emplace_back("capacity",
                      std::to_string(admission_->options().capacity));
    rows.emplace_back("in_flight", std::to_string(snap.in_flight));
    rows.emplace_back("queued", std::to_string(snap.queued));
    rows.emplace_back("dropping", snap.dropping ? "true" : "false");
    rows.emplace_back("brownout", snap.brownout ? "true" : "false");
    rows.emplace_back("drop_count", std::to_string(snap.drop_count));
    rows.emplace_back("admitted_total",
                      std::to_string(snap.admitted_total));
    rows.emplace_back("shed_total", std::to_string(snap.shed_total));
    rows.emplace_back("brownout_entries",
                      std::to_string(snap.brownout_entries));
    rows.emplace_back("watchdog_reaped",
                      std::to_string(watchdog_reaped()));
    rows.emplace_back("forced_closes", std::to_string(forced_closes()));
    return rows;
  });
  // One catalog/cache/exec/telemetry block per hosted instance, prefixed
  // by its name. Instances added after this call are served for queries
  // but absent from /statusz until the admin server is re-enabled.
  {
    std::shared_lock<std::shared_mutex> lock(engines_mu_);
    for (const auto& [name, hosted] : engines_) {
      hosted->RegisterStatusSections(server.get(), name + ".");
    }
  }
  QueryEngine::RegisterCpuStatusSection(server.get());
  admin_server_ = std::move(server);
  return Status::OK();
}

void QueryService::DisableAdminServer() { admin_server_.reset(); }

void QueryService::AcceptLoop() {
  while (true) {
    int fd = listener_.AcceptOne(stopping_, accept_errors_);
    if (fd < 0) break;  // Stop requested — the only way out.
    connections_counter_->Increment();
    connections_seen_.fetch_add(1, std::memory_order_relaxed);
    if (!conns_.Spawn(
            fd, [this](int conn_fd) { HandleConnection(conn_fd); },
            options_.max_connections)) {
      obs::Registry::Default()
          .GetCounter("regal_server_connections_rejected_total")
          ->Increment();
    }
  }
}

void QueryService::HandleConnection(int fd) {
  net::SetSocketTimeouts(fd, options_.idle_timeout_ms);
  if (options_.sockbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.sockbuf_bytes,
               sizeof(options_.sockbuf_bytes));
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sockbuf_bytes,
               sizeof(options_.sockbuf_bytes));
  }
  connections_active_->Add(1);
  obs::Registry& registry = obs::Registry::Default();
  auto frame_error = [&registry](const char* kind) {
    registry
        .GetCounter("regal_server_frame_errors_total", {{"kind", kind}})
        ->Increment();
  };
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::string payload;
    FrameRead read =
        ReadFrame(fd, options_.max_frame_bytes, &payload, watchdog_.get());
    if (read == FrameRead::kClosed || read == FrameRead::kTimeout) break;
    if (read == FrameRead::kTorn) {
      frame_error("torn");
      break;
    }
    if (read == FrameRead::kOversized) {
      frame_error("oversized");
      Response refuse;
      refuse.ok = false;
      refuse.code = StatusCodeToString(StatusCode::kInvalidArgument);
      refuse.message = "frame exceeds " +
                       std::to_string(options_.max_frame_bytes) +
                       " byte cap; closing (cannot resync)";
      net::SendAll(fd, EncodeFrame(RenderResponse(refuse)));
      break;
    }
    bytes_received_->Increment(
        static_cast<int64_t>(payload.size() + kFrameHeaderBytes));

    Response response;
    std::string tenant;
    Result<Request> request = ParseRequest(payload);
    if (!request.ok()) {
      frame_error("bad_request");
      response.ok = false;
      response.code = StatusCodeToString(request.status().code());
      response.message = request.status().message();
    } else {
      tenant = request->tenant;
      response = Execute(*request);
    }

    std::string frame = EncodeFrame(RenderResponse(response));
    // Byte-accounted backpressure: the response is charged against the
    // tenant's in-flight cap for the duration of the (possibly slow)
    // send. Over the cap, the rows are dropped and a small retryable
    // error goes out instead.
    int64_t charged = 0;
    if (!tenant.empty()) {
      Status charge = governor_.ChargeResponseBytes(
          tenant, static_cast<int64_t>(frame.size()));
      if (!charge.ok()) {
        registry
            .GetCounter("regal_server_admission_rejects_total",
                        {{"reason", "backpressure"}})
            ->Increment();
        Response refused;
        refused.id = response.id;
        refused.ok = false;
        refused.code = StatusCodeToString(charge.code());
        refused.message = charge.message();
        frame = EncodeFrame(RenderResponse(refused));
      } else {
        charged = static_cast<int64_t>(frame.size());
      }
    }
    inflight_response_bytes_->Add(static_cast<double>(frame.size()));
    const bool sent = net::SendAll(fd, frame);
    inflight_response_bytes_->Add(-static_cast<double>(frame.size()));
    if (charged > 0) governor_.ReleaseResponseBytes(tenant, charged);
    if (!sent) {
      // EPIPE/ECONNRESET from a vanished client, or a send timeout. With
      // MSG_NOSIGNAL this is a counter, not a process obituary.
      registry.GetCounter("regal_server_send_errors_total")->Increment();
      break;
    }
    bytes_sent_->Increment(static_cast<int64_t>(frame.size()));
  }
  connections_active_->Add(-1);
}

Response QueryService::Execute(const Request& request) {
  obs::Registry& registry = obs::Registry::Default();
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  Response response;
  response.id = request.id;
  Timer timer;
  auto finish = [&](bool ok) {
    response.ok = ok;
    if (response.elapsed_ms == 0) response.elapsed_ms = timer.Millis();
    latency_ms_->Observe(response.elapsed_ms);
    registry
        .GetCounter("regal_server_requests_total",
                    {{"tenant", request.tenant},
                     {"outcome", ok ? "ok" : "error"}})
        ->Increment();
    return response;
  };
  auto fail = [&](const Status& status) {
    response.code = StatusCodeToString(status.code());
    response.message = status.message();
    return finish(false);
  };

  std::shared_ptr<QueryEngine> hosted;
  {
    std::shared_lock<std::shared_mutex> lock(engines_mu_);
    if (!request.instance.empty()) {
      auto it = engines_.find(request.instance);
      if (it != engines_.end()) hosted = it->second;
    } else if (engines_.size() == 1) {
      hosted = engines_.begin()->second;
    }
  }
  if (hosted == nullptr) {
    if (request.instance.empty()) {
      return fail(Status::InvalidArgument(
          "request names no instance and the service hosts " +
          std::to_string(instance_names().size())));
    }
    return fail(Status::NotFound("unknown instance '" + request.instance +
                                 "'"));
  }

  // Adaptive admission before any engine work: when the slot queue's
  // sojourn time says the box is behind, this request is shed *here*,
  // with a typed OVERLOADED reply carrying the server's backoff hint —
  // never a silent drop or a timeout the client must diagnose.
  safety::AdmitDecision decision = admission_->Admit(request.priority);
  if (decision.outcome != safety::AdmitOutcome::kAdmitted) {
    response.retry_after_ms = decision.retry_after_ms;
    return fail(Status::Overloaded(
        std::string("admission: shed (") +
        safety::AdmitOutcomeLabel(decision.outcome) + ") after " +
        std::to_string(decision.sojourn_ms) + " ms queued; retry after " +
        std::to_string(decision.retry_after_ms) + " ms"));
  }
  safety::AdmissionSlot slot(admission_.get());

  // Brownout: sustained shedding degrades the service to work it can
  // still do cheaply — cache-resident answers under tight deadlines —
  // instead of failing everything slowly.
  const bool brownout = admission_->InBrownout();
  ApplyBrownoutTransition(brownout);
  if (brownout && !hosted->IsCacheResident(request.query)) {
    response.retry_after_ms =
        static_cast<double>(admission_->options().interval_ms);
    registry
        .GetCounter("regal_resilience_shed_total",
                    {{"reason", "brownout"}})
        ->Increment();
    return fail(Status::Overloaded(
        "brownout: serving cache-resident queries only; retry after " +
        std::to_string(response.retry_after_ms) + " ms"));
  }

  safety::AdmitReject why = safety::AdmitReject::kNone;
  Status admitted = governor_.Admit(request.tenant, &why);
  if (!admitted.ok()) {
    registry
        .GetCounter("regal_server_admission_rejects_total",
                    {{"reason", safety::AdmitRejectLabel(why)}})
        ->Increment();
    return fail(admitted);
  }
  safety::AdmissionTicket ticket(&governor_, request.tenant);

  // The tenant quota's per-query limits, tightened by the request's own
  // deadline when that is stricter.
  safety::TenantQuota quota = governor_.QuotaFor(request.tenant);
  safety::QueryLimits limits = quota.limits;
  if (request.deadline_ms > 0 &&
      (limits.deadline_ms <= 0 || request.deadline_ms < limits.deadline_ms)) {
    limits.deadline_ms = request.deadline_ms;
  }
  if (brownout && options_.brownout_deadline_ms > 0 &&
      (limits.deadline_ms <= 0 ||
       limits.deadline_ms > options_.brownout_deadline_ms)) {
    // Even admitted (cache-resident) work runs on a short leash while
    // browned out: anything that turns out slow is cut, not queued.
    limits.deadline_ms = options_.brownout_deadline_ms;
  }

  Result<QueryAnswer> answer = hosted->Run(request.query, limits);
  if (!answer.ok()) return fail(answer.status());

  response.code = "OK";
  response.row_count = static_cast<int64_t>(answer->regions.size());
  response.elapsed_ms = answer->elapsed_ms;
  int64_t limit = request.limit >= 0 ? request.limit
                                     : options_.default_row_limit;
  limit = std::min<int64_t>(limit, response.row_count);
  if (limit > 0) {
    response.rows =
        answer->Rows(hosted->instance(), static_cast<int>(limit));
  }
  return finish(true);
}

void QueryService::ApplyBrownoutTransition(bool brownout) {
  bool was = brownout_applied_.load(std::memory_order_relaxed);
  if (was == brownout) return;
  if (!brownout_applied_.compare_exchange_strong(was, brownout,
                                                 std::memory_order_relaxed)) {
    return;  // Another request already applied this transition.
  }
  // Checkpoint IO competes with serving for the same disk and catalog
  // lock; while browned out it is deferred (the WAL keeps acknowledged
  // mutations durable regardless).
  std::shared_lock<std::shared_mutex> lock(engines_mu_);
  for (const auto& [name, hosted] : engines_) {
    (void)name;
    hosted->SetCheckpointerPaused(brownout);
  }
  obs::EventLog::Default().Log(
      obs::Severity::kWarning, "server",
      brownout ? "brownout entered: cache-resident queries only"
               : "brownout exited: full service restored",
      0, {});
}

}  // namespace server
}  // namespace regal
