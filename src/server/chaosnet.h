#ifndef REGAL_SERVER_CHAOSNET_H_
#define REGAL_SERVER_CHAOSNET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "server/net.h"
#include "util/status.h"

namespace regal {
namespace server {

/// Tuning for ChaosNet (see class comment). Fault *selection* is driven by
/// the failpoint registry; these options shape what a selected fault does.
struct ChaosOptions {
  std::string listen_address = "127.0.0.1";
  /// Upstream (real) service to proxy to.
  std::string upstream_host = "127.0.0.1";
  int upstream_port = 0;
  /// Added one-way latency per forwarded chunk, both directions.
  int latency_ms = 0;
  /// Trickle mode: bytes forwarded per gap.
  int trickle_bytes = 1;
  /// Trickle mode: pause between trickled chunks.
  int trickle_gap_ms = 20;
  /// Torn mode: client→server bytes forwarded before the connection is
  /// cut (mid-frame for any realistic request).
  int torn_after_bytes = 6;
  /// Freeze mode: how long a frozen connection stays wedged (it neither
  /// forwards nor closes; the peer just stops hearing from it).
  int freeze_ms = 60000;
  /// Test knob: when > 0, SO_RCVBUF/SO_SNDBUF on both sides of the proxy,
  /// making send-side wedges reproducible with small payloads.
  int sockbuf_bytes = 0;
};

/// A fault-injecting TCP proxy: clients connect to ChaosNet instead of the
/// real service, and each accepted connection consults the failpoint
/// registry (safety/failpoint.h) to decide its fate:
///
///   chaos.net.rst      — proxy both ways, then RST both sides mid-stream
///                        on the first client→server chunk.
///   chaos.net.torn     — forward exactly torn_after_bytes of the first
///                        client request (tearing the frame mid-payload),
///                        then FIN both sides.
///   chaos.net.freeze   — forward the first client→server chunk, then go
///                        silent: nothing moves in either direction until
///                        freeze_ms elapses or the harness stops. The
///                        stuck-mid-frame scenario watchdogs exist for.
///   chaos.net.trickle  — forward client→server traffic trickle_bytes at
///                        a time with trickle_gap_ms pauses (the
///                        slow-loris shape that defeats per-byte
///                        SO_RCVTIMEO).
///
/// Unselected connections proxy cleanly (plus latency_ms per chunk when
/// configured), so a probabilistic failpoint spec ("chaos.net.rst=0.3@7")
/// yields a reproducible mixed stream of good and bad connections from a
/// seed — the same determinism contract as every other fault harness in
/// the repo.
class ChaosNet {
 public:
  /// Listens and starts the accept thread.
  static Result<std::unique_ptr<ChaosNet>> Start(ChaosOptions options);

  ~ChaosNet();
  ChaosNet(const ChaosNet&) = delete;
  ChaosNet& operator=(const ChaosNet&) = delete;

  /// Stops accepting, unfreezes and joins every proxy connection.
  void Stop();

  int port() const { return listener_.port(); }

  /// Connections that were dealt each fate (diagnostics / test asserts).
  int64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  int64_t connections_proxied() const {
    return connections_proxied_.load(std::memory_order_relaxed);
  }

 private:
  explicit ChaosNet(ChaosOptions options);

  void AcceptLoop();
  void HandleConnection(int client_fd);
  /// Pumps upstream→client until EOF/error or stop; runs on its own
  /// thread per connection. `state_ptr` is the handler's ConnState (an
  /// internal type, hence the erased pointer).
  void PumpDownstream(int upstream_fd, int client_fd, const void* state_ptr);
  /// Sleeps in small steps so Stop() is never held up by a long fault.
  void InterruptibleSleep(int ms) const;

  ChaosOptions options_;
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  net::ConnectionSet conns_;
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> connections_proxied_{0};
};

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_CHAOSNET_H_
