#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

// MSG_NOSIGNAL is POSIX.1-2008 and present everywhere this code builds
// (Linux, BSDs); the fallback ignores SIGPIPE process-wide at listener
// startup so a platform without the flag still cannot be killed by a
// disconnecting client.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#define REGAL_NET_NEEDS_SIGPIPE_IGNORE 1
#endif

namespace regal {
namespace net {

namespace {

void IgnoreSigpipeOnce() {
#ifdef REGAL_NET_NEEDS_SIGPIPE_IGNORE
  static const bool installed = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
#endif
}

}  // namespace

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE here
    // instead of a process-terminating SIGPIPE.
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

RecvOutcome RecvFull(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = recv(fd, data + got, size - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return RecvOutcome::kTimeout;
    }
    if (n <= 0) return got == 0 ? RecvOutcome::kClosed : RecvOutcome::kTorn;
    got += static_cast<size_t>(n);
  }
  return RecvOutcome::kOk;
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

AcceptErrorAction ClassifyAcceptError(int error) {
  switch (error) {
    case EINTR:
    case ECONNABORTED:  // Peer reset between handshake and accept.
    case EAGAIN:        // Kernel-level drop; also EWOULDBLOCK on Linux.
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EPROTO:
      return AcceptErrorAction::kRetry;
    case EMFILE:   // Process fd table full —
    case ENFILE:   // — or the system's.
    case ENOBUFS:
    case ENOMEM:
      return AcceptErrorAction::kRetryBackoff;
    default:
      // Unclassified errors also back off and retry: the loop's contract
      // is that only a stop request ends it, and a brief sleep turns a
      // would-be spin (e.g. EBADF from a misuse bug) into bounded noise.
      return AcceptErrorAction::kRetryBackoff;
  }
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Result<Listener> Listener::Open(const ListenerOptions& options) {
  IgnoreSigpipeOnce();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("net: socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("net: bad bind address '" +
                                   options.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(fd, options.backlog) < 0) {
    Status status = Status::Internal(
        "net: cannot listen on " + options.bind_address + ":" +
        std::to_string(options.port) + ": " + std::strerror(errno));
    close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    close(fd);
    return Status::Internal("net: getsockname() failed");
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

int Listener::AcceptOne(const std::atomic<bool>& stopping,
                        obs::Counter* accept_errors) const {
  while (!stopping.load(std::memory_order_relaxed)) {
    int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    const int error = errno;
    // Stop() shuts the listener down, which fails the blocked accept
    // (EINVAL on Linux) *after* setting the stop flag — checked above on
    // the next turn, so the error itself never decides to exit.
    if (stopping.load(std::memory_order_relaxed)) break;
    if (accept_errors != nullptr) accept_errors->Increment();
    if (ClassifyAcceptError(error) == AcceptErrorAction::kRetryBackoff) {
      // Under fd exhaustion immediate retry would busy-loop failing; a
      // short sleep lets in-flight connections close and return fds.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return -1;
}

void Listener::Shutdown() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool ConnectionSet::Spawn(int fd, std::function<void(int)> handler,
                          int max_connections) {
  std::vector<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Reap handlers that already returned (join is instant for them), so
    // long-lived servers don't accumulate dead threads.
    for (size_t i = 0; i < conns_.size();) {
      if (conns_[i].done->load(std::memory_order_acquire)) {
        finished.push_back(std::move(conns_[i]));
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (closed_ || static_cast<int>(conns_.size()) >= max_connections) {
      close(fd);
      for (Conn& conn : finished) {
        conn.thread.join();
        close(conn.fd);
      }
      return false;
    }
    Conn conn;
    conn.fd = fd;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    conn.thread = std::thread(
        [fd, done = conn.done, handler = std::move(handler)] {
          handler(fd);
          // FIN the peer now — it must not wait for the (lazy, join-time)
          // close() to learn the conversation is over. The fd number stays
          // allocated until after the join, so Stop()'s shutdown() of live
          // connections can never hit a reused descriptor.
          shutdown(fd, SHUT_RDWR);
          done->store(true, std::memory_order_release);
        });
    conns_.push_back(std::move(conn));
  }
  for (Conn& conn : finished) {
    conn.thread.join();
    close(conn.fd);
  }
  return true;
}

void ConnectionSet::ShutdownAndJoin(int how) {
  std::vector<Conn> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    taken.swap(conns_);
  }
  for (Conn& conn : taken) {
    // The fd stays open until after join, so this can never hit a reused
    // descriptor. SHUT_RD unblocks a handler waiting in recv (it sees
    // EOF and finishes its in-flight response); SHUT_RDWR also aborts
    // pending sends.
    if (!conn.done->load(std::memory_order_acquire)) shutdown(conn.fd, how);
  }
  for (Conn& conn : taken) {
    conn.thread.join();
    close(conn.fd);
  }
}

void ConnectionSet::ShutdownAndJoin() { ShutdownAndJoin(SHUT_RD); }

int ConnectionSet::DrainAndJoin(int grace_ms) {
  std::vector<Conn> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    taken.swap(conns_);
  }
  // Phase 1, polite: EOF the read side so handlers finish their in-flight
  // response and return through the normal clean-close path.
  for (Conn& conn : taken) {
    if (!conn.done->load(std::memory_order_acquire)) shutdown(conn.fd, SHUT_RD);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  for (;;) {
    bool all_done = true;
    for (Conn& conn : taken) {
      if (!conn.done->load(std::memory_order_acquire)) {
        all_done = false;
        break;
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 2, forced: a handler still running is wedged — typically blocked
  // in send() toward a peer that stopped reading. SHUT_RDWR fails the
  // blocked send (EPIPE) so the handler exits now instead of waiting out
  // its SO_SNDTIMEO.
  int forced = 0;
  for (Conn& conn : taken) {
    if (!conn.done->load(std::memory_order_acquire)) {
      shutdown(conn.fd, SHUT_RDWR);
      ++forced;
    }
  }
  for (Conn& conn : taken) {
    conn.thread.join();
    close(conn.fd);
  }
  return forced;
}

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {
  thread_ = std::thread([this] { ScanLoop(); });
}

Watchdog::~Watchdog() { Stop(); }

int64_t Watchdog::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Watchdog::Arm(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  armed_[token] = Armed{fd, NowMs() + options_.deadline_ms};
  return token;
}

void Watchdog::Disarm(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(token);
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::ScanLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::milliseconds(options_.scan_interval_ms));
    if (stop_) break;
    const int64_t now = NowMs();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (now >= it->second.deadline_ms) {
        // shutdown, never close: the fd stays allocated until the owning
        // ConnectionSet joins the handler, so no reuse race.
        shutdown(it->second.fd, SHUT_RDWR);
        reaped_.fetch_add(1, std::memory_order_relaxed);
        if (options_.reaped_counter != nullptr) {
          options_.reaped_counter->Increment();
        }
        it = armed_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

int ConnectionSet::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const Conn& conn : conns_) {
    if (!conn.done->load(std::memory_order_acquire)) ++live;
  }
  return live;
}

}  // namespace net
}  // namespace regal
