#ifndef REGAL_SERVER_NET_H_
#define REGAL_SERVER_NET_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace regal {
namespace net {

/// The hardened socket utility layer shared by the admin endpoint and the
/// query service front-end. Everything here exists because a plain
/// socket/bind/listen/accept/send loop has three production-killing
/// failure modes:
///
///  * send() to a peer that already closed raises SIGPIPE, whose default
///    disposition terminates the *process* — one disconnecting client
///    takes down every tenant. SendAll() suppresses the signal.
///  * accept() fails transiently (ECONNABORTED, EMFILE under fd pressure,
///    EAGAIN after a kernel-dropped handshake); a loop that exits on any
///    failure dies permanently the first busy weekend. AcceptLoop() only
///    exits when the owner asked it to stop.
///  * per-connection handler threads leak (or race their fds) unless one
///    place owns spawn / force-unblock / join. ConnectionSet is that place.

/// Sends all of `size` bytes, retrying EINTR and suppressing SIGPIPE
/// (MSG_NOSIGNAL; on platforms without it, SIGPIPE is ignored process-wide
/// the first time a Listener opens). Returns false on any other error or
/// send timeout, with errno left for the caller.
bool SendAll(int fd, const char* data, size_t size);
inline bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

/// Outcome of a fixed-length read.
enum class RecvOutcome {
  kOk,       ///< All `size` bytes arrived.
  kClosed,   ///< Peer closed before the *first* byte (clean EOF).
  kTorn,     ///< Peer closed or errored mid-read (partial data lost).
  kTimeout,  ///< SO_RCVTIMEO expired (idle peer).
};

/// Reads exactly `size` bytes, retrying EINTR.
RecvOutcome RecvFull(int fd, char* data, size_t size);

/// Bounds both directions: SO_RCVTIMEO and SO_SNDTIMEO to `timeout_ms`.
/// Every connection gets one so a wedged peer can never hold a handler
/// thread forever.
void SetSocketTimeouts(int fd, int timeout_ms);

/// How the accept loop treats a failed accept(). There is deliberately no
/// "fatal" action: the loop's contract is that only a stop request ends it
/// (an unclassified errno is retried with backoff rather than killing the
/// listener — spinning briefly beats dying permanently).
enum class AcceptErrorAction {
  kRetry,         ///< Per-connection transient: try again immediately.
  kRetryBackoff,  ///< Resource exhaustion (fds, memory): brief sleep first,
                  ///< giving in-flight connections a chance to close.
};

/// Classification used by AcceptLoop; exposed so the policy is unit-testable
/// without provoking real EMFILE. ECONNABORTED/EAGAIN/EWOULDBLOCK/EPROTO/
/// EINTR retry immediately; EMFILE/ENFILE/ENOBUFS/ENOMEM back off; anything
/// else backs off too (see AcceptErrorAction).
AcceptErrorAction ClassifyAcceptError(int error);

struct ListenerOptions {
  /// Loopback by default: both servers expose query text and corpus
  /// structure, so binding wider is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read back via port()).
  int port = 0;
  int backlog = 64;
};

/// A bound, listening TCP socket plus the hardened accept loop.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. kInvalidArgument for a malformed address,
  /// kInternal when the address/port cannot be bound.
  static Result<Listener> Open(const ListenerOptions& options);

  /// Blocks until a connection arrives or `stopping` becomes true.
  /// Transient accept failures are counted in `accept_errors` (when
  /// non-null) and retried per ClassifyAcceptError — the loop never exits
  /// on an error alone. Returns the accepted fd, or -1 iff stopping.
  int AcceptOne(const std::atomic<bool>& stopping,
                obs::Counter* accept_errors) const;

  /// Wakes a blocked AcceptOne (the caller sets its stop flag first).
  void Shutdown();
  void Close();

  int port() const { return port_; }
  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Owns one thread + fd per live connection. The set closes each fd only
/// after its handler thread has been joined, so a Stop() path can safely
/// shutdown() live fds (to unblock recv) without racing fd reuse.
class ConnectionSet {
 public:
  ConnectionSet() = default;
  ~ConnectionSet() { ShutdownAndJoin(); }
  ConnectionSet(const ConnectionSet&) = delete;
  ConnectionSet& operator=(const ConnectionSet&) = delete;

  /// Spawns `handler(fd)` on a new thread. The set takes ownership of `fd`
  /// (closing it after the handler returns). Returns false — and closes
  /// `fd` immediately — when `max_connections` handlers are already live.
  /// Finished handlers are reaped opportunistically on the next Spawn.
  bool Spawn(int fd, std::function<void(int)> handler, int max_connections);

  /// shutdown(2)s every live connection with `how` (SHUT_RD drains:
  /// handlers finish their in-flight response, then see EOF; SHUT_RDWR
  /// aborts pending sends too), joins every handler thread, closes the
  /// fds. Idempotent; new Spawns after this are refused.
  void ShutdownAndJoin(int how /* = SHUT_RD */);
  void ShutdownAndJoin();

  /// Bounded-deadline drain: SHUT_RD everything (polite — handlers finish
  /// the response in flight), wait up to `grace_ms` for handlers to
  /// report done, then SHUT_RDWR the stragglers (waking handlers blocked
  /// in send() toward a frozen peer) and join. Returns how many
  /// connections needed the force-close — an operator-visible signal that
  /// peers were wedged at shutdown. A frozen connection can therefore
  /// delay Stop() by at most grace_ms plus scheduling noise, never hang it.
  int DrainAndJoin(int grace_ms);

  int active() const;

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  mutable std::mutex mu_;
  std::vector<Conn> conns_;
  bool closed_ = false;
};

struct WatchdogOptions {
  /// How long an armed fd may sit without being disarmed before the
  /// watchdog shuts it down. Generous by design: this backstops peers
  /// that keep the per-byte SO_RCVTIMEO alive by trickling, not normal
  /// slow clients.
  int64_t deadline_ms = 10000;
  /// Scan cadence; the reap latency is deadline_ms + up to one interval.
  int64_t scan_interval_ms = 100;
  /// Test hook: monotonic milliseconds. Defaults to steady_clock.
  std::function<int64_t()> clock_ms;
  /// Incremented once per reaped connection (optional).
  obs::Counter* reaped_counter = nullptr;
};

/// Reaps sockets stuck mid-frame. A handler arms its fd once the frame
/// header has arrived (the peer now *owes* the payload) and disarms after
/// the payload read returns; if the deadline lapses first, a scan thread
/// shutdown(2)s the fd, so the blocked recv returns and the handler exits
/// through its normal torn-frame path. shutdown() (not close()) keeps the
/// fd number allocated — the owning ConnectionSet still closes it after
/// join, so there is no reuse race with the scan thread.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the deadline clock for `fd`. Returns a token for Disarm;
  /// tokens are never 0, so 0 can mean "not armed" at call sites.
  uint64_t Arm(int fd);
  /// Stops the clock. Disarming an already-reaped (or unknown) token is a
  /// no-op — the reap already counted.
  void Disarm(uint64_t token);

  /// Stops the scan thread. Armed entries are abandoned unreaped (their
  /// owner is shutting down anyway). Idempotent; called by the destructor.
  void Stop();

  /// Connections shut down for overstaying their deadline.
  int64_t reaped() const { return reaped_.load(std::memory_order_relaxed); }

 private:
  void ScanLoop();
  int64_t NowMs() const;

  struct Armed {
    int fd = -1;
    int64_t deadline_ms = 0;
  };

  WatchdogOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  uint64_t next_token_ = 1;
  std::map<uint64_t, Armed> armed_;
  std::atomic<int64_t> reaped_{0};
  std::thread thread_;
};

}  // namespace net
}  // namespace regal

#endif  // REGAL_SERVER_NET_H_
