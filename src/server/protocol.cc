#include "server/protocol.h"

#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "server/net.h"

namespace regal {
namespace server {

std::string EncodeFrame(std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>(len & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.append(payload);
  return frame;
}

FrameRead ReadFrame(int fd, uint32_t max_payload_bytes, std::string* payload,
                    net::Watchdog* watchdog) {
  unsigned char header[kFrameHeaderBytes];
  switch (net::RecvFull(fd, reinterpret_cast<char*>(header), sizeof(header))) {
    case net::RecvOutcome::kOk:
      break;
    case net::RecvOutcome::kClosed:
      return FrameRead::kClosed;
    case net::RecvOutcome::kTimeout:
      return FrameRead::kTimeout;
    case net::RecvOutcome::kTorn:
      return FrameRead::kTorn;
  }
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  // An over-limit length is indistinguishable from a corrupted prefix, and
  // either way skipping `len` bytes would trust the corruption; the caller
  // must close the connection.
  if (len > max_payload_bytes) return FrameRead::kOversized;
  payload->resize(len);
  if (len == 0) return FrameRead::kOk;
  // SO_RCVTIMEO resets on every byte, so a one-byte-per-tick trickler can
  // hold the payload read open forever; the watchdog deadline covers the
  // *whole* remainder of the frame and shuts the socket down if it lapses.
  const uint64_t token =
      watchdog != nullptr ? watchdog->Arm(fd) : 0;
  net::RecvOutcome outcome = net::RecvFull(fd, payload->data(), len);
  if (watchdog != nullptr) watchdog->Disarm(token);
  switch (outcome) {
    case net::RecvOutcome::kOk:
      return FrameRead::kOk;
    case net::RecvOutcome::kTimeout:
      return FrameRead::kTimeout;
    default:
      // EOF inside a frame is torn whether 0 or n bytes of payload came.
      return FrameRead::kTorn;
  }
}

namespace {

/// Bounded-cursor scanner over the payload. Every accessor checks the
/// remaining length; running out of input is a parse error, never a read
/// past the buffer.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          if (!ParseHex4(&code)) return Error("bad \\u escape");
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            uint32_t low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            if (!ParseHex4(&low) || low < 0xdc00 || low > 0xdfff) {
              return Error("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(double* out) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    // Bounded copy for strtod: string_view is not NUL-terminated.
    std::string digits(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(digits.c_str(), &end);
    if (end != digits.c_str() + digits.size()) return Error("bad number");
    return Status::OK();
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = std::strlen(literal);
    if (text_.substr(pos_, len) != literal) return false;
    pos_ += len;
    return true;
  }

  Status Error(const char* what) const {
    return Status::InvalidArgument("protocol: " + std::string(what) +
                                   " at byte " + std::to_string(pos_));
  }

 private:
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return false;
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseValue(Scanner* s, JsonValue* value) {
  s->SkipSpace();
  char c = s->Peek();
  if (c == '"') {
    value->kind = JsonValue::Kind::kString;
    return s->ParseString(&value->str);
  }
  if (c == '-' || (c >= '0' && c <= '9')) {
    value->kind = JsonValue::Kind::kNumber;
    return s->ParseNumber(&value->num);
  }
  if (c == 't' || c == 'f') {
    value->kind = JsonValue::Kind::kBool;
    value->boolean = (c == 't');
    if (!s->ConsumeLiteral(c == 't' ? "true" : "false")) {
      return s->Error("bad literal");
    }
    return Status::OK();
  }
  if (c == 'n') {
    value->kind = JsonValue::Kind::kNull;
    if (!s->ConsumeLiteral("null")) return s->Error("bad literal");
    return Status::OK();
  }
  if (c == '[') {
    s->Consume('[');
    value->kind = JsonValue::Kind::kStringArray;
    s->SkipSpace();
    if (s->Consume(']')) return Status::OK();
    for (;;) {
      s->SkipSpace();
      std::string element;
      REGAL_RETURN_NOT_OK(s->ParseString(&element));
      value->strings.push_back(std::move(element));
      s->SkipSpace();
      if (s->Consume(']')) return Status::OK();
      if (!s->Consume(',')) return s->Error("expected ',' or ']'");
    }
  }
  if (c == '{') return s->Error("nested objects not allowed");
  return s->Error("unexpected value");
}

}  // namespace

Status ParseFlatObject(std::string_view text,
                       std::map<std::string, JsonValue>* out) {
  out->clear();
  Scanner s(text);
  s.SkipSpace();
  if (!s.Consume('{')) return s.Error("expected '{'");
  s.SkipSpace();
  if (s.Consume('}')) {
    s.SkipSpace();
    return s.AtEnd() ? Status::OK() : s.Error("trailing bytes");
  }
  for (;;) {
    s.SkipSpace();
    std::string key;
    REGAL_RETURN_NOT_OK(s.ParseString(&key));
    s.SkipSpace();
    if (!s.Consume(':')) return s.Error("expected ':'");
    JsonValue value;
    REGAL_RETURN_NOT_OK(ParseValue(&s, &value));
    // Last key wins on duplicates, like every permissive JSON decoder.
    (*out)[std::move(key)] = std::move(value);
    s.SkipSpace();
    if (s.Consume('}')) break;
    if (!s.Consume(',')) return s.Error("expected ',' or '}'");
  }
  s.SkipSpace();
  return s.AtEnd() ? Status::OK() : s.Error("trailing bytes");
}

namespace {

Status TakeString(const std::map<std::string, JsonValue>& fields,
                  const std::string& key, bool required, std::string* out) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    if (required) {
      return Status::InvalidArgument("protocol: missing field '" + key + "'");
    }
    return Status::OK();
  }
  if (it->second.kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("protocol: field '" + key +
                                   "' must be a string");
  }
  *out = it->second.str;
  return Status::OK();
}

Status TakeNumber(const std::map<std::string, JsonValue>& fields,
                  const std::string& key, double* out) {
  auto it = fields.find(key);
  if (it == fields.end()) return Status::OK();
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument("protocol: field '" + key +
                                   "' must be a number");
  }
  *out = it->second.num;
  return Status::OK();
}

}  // namespace

Result<Request> ParseRequest(std::string_view payload) {
  std::map<std::string, JsonValue> fields;
  REGAL_RETURN_NOT_OK(ParseFlatObject(payload, &fields));
  Request request;
  REGAL_RETURN_NOT_OK(TakeString(fields, "tenant", true, &request.tenant));
  REGAL_RETURN_NOT_OK(TakeString(fields, "instance", false, &request.instance));
  REGAL_RETURN_NOT_OK(TakeString(fields, "query", true, &request.query));
  if (request.tenant.empty()) {
    return Status::InvalidArgument("protocol: 'tenant' must be non-empty");
  }
  if (request.query.empty()) {
    return Status::InvalidArgument("protocol: 'query' must be non-empty");
  }
  double id = 0, limit = -1, priority = 0;
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "id", &id));
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "limit", &limit));
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "deadline_ms", &request.deadline_ms));
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "priority", &priority));
  request.id = static_cast<int64_t>(id);
  request.limit = static_cast<int64_t>(limit);
  request.priority = static_cast<int64_t>(priority);
  return request;
}

std::string RenderRequest(const Request& request) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("tenant").String(request.tenant);
  if (!request.instance.empty()) w.Key("instance").String(request.instance);
  w.Key("query").String(request.query);
  w.Key("id").Int(request.id);
  if (request.limit >= 0) w.Key("limit").Int(request.limit);
  if (request.deadline_ms > 0) w.Key("deadline_ms").Double(request.deadline_ms);
  if (request.priority != 0) w.Key("priority").Int(request.priority);
  w.EndObject();
  return w.Take();
}

std::string RenderResponse(const Response& response) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("id").Int(response.id);
  w.Key("ok").Bool(response.ok);
  w.Key("code").String(response.code);
  if (!response.message.empty()) w.Key("message").String(response.message);
  w.Key("row_count").Int(response.row_count);
  w.Key("rows").BeginArray();
  for (const std::string& row : response.rows) w.String(row);
  w.EndArray();
  w.Key("elapsed_ms").Double(response.elapsed_ms);
  if (response.retry_after_ms > 0) {
    w.Key("retry_after_ms").Double(response.retry_after_ms);
  }
  w.EndObject();
  return w.Take();
}

Result<Response> ParseResponse(std::string_view payload) {
  std::map<std::string, JsonValue> fields;
  REGAL_RETURN_NOT_OK(ParseFlatObject(payload, &fields));
  Response response;
  double id = 0, row_count = 0;
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "id", &id));
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "row_count", &row_count));
  REGAL_RETURN_NOT_OK(TakeNumber(fields, "elapsed_ms", &response.elapsed_ms));
  REGAL_RETURN_NOT_OK(
      TakeNumber(fields, "retry_after_ms", &response.retry_after_ms));
  REGAL_RETURN_NOT_OK(TakeString(fields, "code", false, &response.code));
  REGAL_RETURN_NOT_OK(TakeString(fields, "message", false, &response.message));
  response.id = static_cast<int64_t>(id);
  response.row_count = static_cast<int64_t>(row_count);
  auto ok_it = fields.find("ok");
  if (ok_it == fields.end() || ok_it->second.kind != JsonValue::Kind::kBool) {
    return Status::InvalidArgument("protocol: response missing 'ok'");
  }
  response.ok = ok_it->second.boolean;
  auto rows_it = fields.find("rows");
  if (rows_it != fields.end()) {
    if (rows_it->second.kind != JsonValue::Kind::kStringArray) {
      return Status::InvalidArgument("protocol: 'rows' must be an array");
    }
    response.rows = rows_it->second.strings;
  }
  return response;
}

}  // namespace server
}  // namespace regal
