#ifndef REGAL_SERVER_SERVICE_H_
#define REGAL_SERVER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>

#include "admin/admin_server.h"
#include "obs/flight_recorder.h"
#include "query/engine.h"
#include "safety/admission.h"
#include "safety/tenant.h"
#include "server/net.h"
#include "server/protocol.h"
#include "util/status.h"

namespace regal {
namespace server {

/// Configuration for the multi-tenant query service front-end.
struct ServiceOptions {
  /// Loopback by default; binding wider is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read back via port()).
  int port = 0;
  /// Frames larger than this are rejected and the connection closed (a
  /// corrupt length prefix cannot be resynchronized).
  uint32_t max_frame_bytes = 1u << 20;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 256;
  /// recv/send timeout per connection: an idle or wedged peer is
  /// disconnected after this long.
  int idle_timeout_ms = 30000;
  /// Row-render cap when the request does not carry its own `limit`.
  int64_t default_row_limit = 10;
  /// Global concurrency cap + default tenant quota (per-tenant overrides
  /// via QueryService::SetTenantQuota).
  safety::TenantGovernor::Options governance;
  /// When set, every hosted engine records into this flight recorder (so
  /// one /tracez covers all tenants); null leaves each engine on the
  /// process-wide default.
  obs::FlightRecorder* recorder = nullptr;
  /// CoDel-style adaptive admission (see safety/admission.h). A
  /// non-positive capacity derives max(1, governance.max_concurrent_total)
  /// so the admission layer never out-restricts the governor it fronts.
  safety::AdmissionOptions admission = DerivedCapacityAdmission();
  /// The default `admission` value: capacity 0, i.e. "derive from
  /// governance" (see above).
  static safety::AdmissionOptions DerivedCapacityAdmission() {
    safety::AdmissionOptions options;
    options.capacity = 0;
    return options;
  }
  /// Stop() drain bound: handlers get this long to finish politely before
  /// their sockets are force-closed (see ConnectionSet::DrainAndJoin).
  int drain_grace_ms = 2000;
  /// Stuck-connection watchdog: a peer that sent a frame header owes the
  /// payload within this deadline or its socket is reaped. <= 0 disables.
  int64_t frame_deadline_ms = 10000;
  /// Brownout tightens every request's effective deadline to at most this.
  double brownout_deadline_ms = 50;
  /// Test knob: when > 0, SO_RCVBUF/SO_SNDBUF for accepted connections —
  /// small buffers make send-side wedges reproducible in tests.
  int sockbuf_bytes = 0;
};

/// The multi-tenant query service: a thread-per-connection request loop
/// over the length-prefixed JSON frame protocol (see protocol.h), hosting
/// a catalog of named engines (one per corpus Instance) and executing
/// region-algebra queries for many concurrent clients under per-tenant
/// governance.
///
/// Concurrency model: one accept thread (hardened loop — transient accept
/// errors are counted and retried, never fatal) plus one handler thread
/// per live connection, capped by max_connections. Queries on distinct
/// connections execute genuinely concurrently; the engines' catalog
/// read-write locks, result caches and thread pool are all shared and
/// internally synchronized, so this layer adds no locking around
/// evaluation itself.
///
/// Governance: each request is admitted through the TenantGovernor
/// (global concurrency cap, per-tenant fair share), executed under the
/// tenant quota's QueryLimits (tightened further by the request's own
/// deadline_ms), and its response bytes are charged against the tenant's
/// in-flight byte cap before the send — the backpressure path that turns
/// a slow-reading client into that tenant's problem instead of the
/// box's. All rejections are immediate errors the client can retry.
///
/// Shutdown/drain: Stop() stops accepting, then SHUT_RDs every live
/// connection — handlers finish the request they are executing, send its
/// response, observe EOF and exit — and joins every thread. Sends to
/// stuck clients are bounded by idle_timeout_ms, so Stop() always
/// terminates.
class QueryService {
 public:
  /// Binds, listens, starts the accept thread. The service is usable (and
  /// AddInstance callable) immediately; requests naming instances that do
  /// not exist yet fail with NOT_FOUND.
  static Result<std::unique_ptr<QueryService>> Start(ServiceOptions options = {});

  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Graceful shutdown (see class comment). Idempotent.
  void Stop();

  int port() const { return listener_.port(); }

  /// Hosts `engine` under `name`. kAlreadyExists if taken. Thread-safe
  /// against concurrent requests (they see the catalog before or after,
  /// never half-way).
  Status AddInstance(const std::string& name, QueryEngine engine);

  /// The hosted engine (shared_ptr: stays valid across a concurrent
  /// catalog change), or null.
  std::shared_ptr<QueryEngine> engine(const std::string& name) const;

  std::vector<std::string> instance_names() const;

  /// Per-tenant quota override (default comes from options.governance).
  void SetTenantQuota(const std::string& tenant, safety::TenantQuota quota);

  safety::TenantGovernor& governor() { return governor_; }

  /// The adaptive admission controller (overload state, for tests and
  /// /statusz; its lifecycle belongs to the service).
  safety::AdmissionController& admission() { return *admission_; }

  /// Connections force-closed by the last Stop() drain.
  int64_t forced_closes() const {
    return forced_closes_.load(std::memory_order_relaxed);
  }
  /// Connections reaped by the stuck-frame watchdog.
  int64_t watchdog_reaped() const {
    return watchdog_ != nullptr ? watchdog_->reaped() : 0;
  }

  /// Starts an embedded admin endpoint exposing this service's /statusz
  /// sections ("server", "tenants", one catalog section per instance,
  /// "cpu") plus /metrics and /tracez. The options' recorder defaults to
  /// the service recorder when one was configured.
  Status EnableAdminServer(admin::AdminOptions options = {});
  void DisableAdminServer();
  admin::AdminServer* admin_server() { return admin_server_.get(); }

  // Aggregate stats (also exported as regal_server_* metrics).
  int64_t requests_total() const {
    return requests_seen_.load(std::memory_order_relaxed);
  }
  int64_t connections_total() const {
    return connections_seen_.load(std::memory_order_relaxed);
  }
  int active_connections() const { return conns_.active(); }
  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

 private:
  explicit QueryService(ServiceOptions options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Parses, admits, executes; fills the response (never throws, never
  /// kills the connection — transport errors are the caller's job).
  Response Execute(const Request& request);

  /// Applies brownout side effects exactly once per transition (pause or
  /// resume every hosted engine's background checkpointer).
  void ApplyBrownoutTransition(bool brownout);

  ServiceOptions options_;
  safety::TenantGovernor governor_;
  std::unique_ptr<safety::AdmissionController> admission_;
  std::unique_ptr<net::Watchdog> watchdog_;
  std::atomic<bool> brownout_applied_{false};
  std::atomic<int64_t> forced_closes_{0};
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  net::ConnectionSet conns_;

  mutable std::shared_mutex engines_mu_;
  std::map<std::string, std::shared_ptr<QueryEngine>> engines_;

  std::atomic<int64_t> requests_seen_{0};
  std::atomic<int64_t> connections_seen_{0};

  // Cached unlabeled metric handles (labeled families are fetched per use).
  obs::Counter* connections_counter_ = nullptr;
  obs::Gauge* connections_active_ = nullptr;
  obs::Counter* accept_errors_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
  obs::Gauge* inflight_response_bytes_ = nullptr;

  std::unique_ptr<admin::AdminServer> admin_server_;
};

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_SERVICE_H_
