#ifndef REGAL_SERVER_RESILIENCE_H_
#define REGAL_SERVER_RESILIENCE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace regal {
namespace server {

/// Client-side overload-resilience primitives. Each is a small, separately
/// testable state machine; ResilientClient (client.h) composes them. All
/// are thread-safe — a CircuitBreaker in particular is *shared* by every
/// client to the same endpoint (see BreakerForEndpoint), so concurrent
/// probes under TSAN are part of its contract.

/// Token-bucket retry budget: the invariant that makes retries safe at
/// fleet scale. Each first-try request earns a fraction of a token; each
/// retry spends a whole one. Healthy traffic accumulates budget; an
/// outage drains it after at most tokens + earn_rate * offered extra
/// attempts, so retries amplify load by a bounded factor (~1 +
/// earn_per_request) instead of multiplying it by max_attempts.
class RetryBudget {
 public:
  struct Options {
    /// Budget earned per first-try request (0.1 => up to 10% extra load
    /// from retries in steady state).
    double earn_per_request = 0.1;
    /// Bucket capacity (also the starting balance, so a fresh client can
    /// retry through a brief hiccup immediately).
    double max_tokens = 10.0;
  };

  RetryBudget();
  explicit RetryBudget(Options options);

  /// A first-try request happened: earn budget.
  void OnRequest();
  /// Attempts to spend one token for a retry. False (and counted) when
  /// the bucket is dry — the caller must give up, not wait.
  bool TrySpend();

  double tokens() const;
  int64_t denied() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  double tokens_;
  int64_t denied_ = 0;
};

/// Per-endpoint circuit breaker: closed (normal) → open after
/// `failure_threshold` consecutive transport failures (every call is
/// refused locally, costing the endpoint nothing) → half-open after
/// `open_ms` (exactly one probe request allowed at a time) → closed again
/// after `close_after` consecutive probe successes, or back to open on a
/// probe failure. Transitions are exported as
/// regal_resilience_breaker_transitions_total{to}.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive transport failures that trip the breaker.
    int failure_threshold = 5;
    /// How long the breaker stays open before allowing a probe.
    int64_t open_ms = 1000;
    /// Consecutive half-open probe successes that close it again.
    int close_after = 2;
    /// Test hook: monotonic milliseconds. Defaults to steady_clock.
    std::function<int64_t()> clock_ms;
  };

  CircuitBreaker();
  explicit CircuitBreaker(Options options);

  /// True when a call may proceed. While open: false (counted in
  /// denied()). While half-open: true for exactly one in-flight probe at
  /// a time — concurrent callers racing for the probe slot get false.
  bool Allow();
  /// The last Allow()'d call completed with a well-formed response.
  void RecordSuccess();
  /// The last Allow()'d call failed at the transport layer.
  void RecordFailure();

  /// Current state (evaluates the open → half-open timer).
  State state();
  int64_t denied() const;

  static const char* StateLabel(State state);

 private:
  int64_t NowMs() const;
  /// Callers hold mu_.
  void TransitionLocked(State to, int64_t now);

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t opened_at_ms_ = 0;
  int64_t denied_ = 0;
};

/// Returns the process-wide breaker for `endpoint` ("host:port"),
/// creating it with `options` on first use. Sharing is the point: when
/// one connection discovers an endpoint is down, every client in the
/// process stops hammering it.
CircuitBreaker* BreakerForEndpoint(const std::string& endpoint,
                                   CircuitBreaker::Options options);
CircuitBreaker* BreakerForEndpoint(const std::string& endpoint);

/// Sliding-window latency tracker feeding the hedging delay: hedge only
/// after the p99 of recently observed latencies, so at most ~1% of
/// requests ever duplicate.
class LatencyTracker {
 public:
  explicit LatencyTracker(size_t window = 128);

  void Record(double ms);
  int64_t count() const;
  /// Percentile over the current window; 0 when empty.
  double Percentile(double p) const;

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t filled_ = 0;
  int64_t total_ = 0;
};

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_RESILIENCE_H_
