#include "server/chaosnet.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "safety/failpoint.h"

namespace regal {
namespace server {

namespace {

/// What a connection has been sentenced to at accept time.
enum class Fault { kNone, kRst, kTorn, kFreeze, kTrickle };

Fault PickFault() {
  // Precedence matters only when several failpoints are armed at once;
  // rst > torn > freeze > trickle mirrors decreasing severity.
  if (safety::FailpointFires("chaos.net.rst")) return Fault::kRst;
  if (safety::FailpointFires("chaos.net.torn")) return Fault::kTorn;
  if (safety::FailpointFires("chaos.net.freeze")) return Fault::kFreeze;
  if (safety::FailpointFires("chaos.net.trickle")) return Fault::kTrickle;
  return Fault::kNone;
}

void SetSockBuf(int fd, int bytes) {
  if (bytes <= 0) return;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

void LingerRst(int fd) {
  // Zero-timeout linger: close() becomes RST, discarding queued data.
  struct linger hard = {1, 0};
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Handler ↔ downstream-pump coordination for one proxied connection.
/// Lives on the handler's stack; the handler joins the pump before
/// returning, so raw pointers into it are safe.
struct ConnState {
  std::atomic<bool> stop{false};
  std::atomic<bool> frozen{false};
};

}  // namespace

ChaosNet::ChaosNet(ChaosOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<ChaosNet>> ChaosNet::Start(ChaosOptions options) {
  if (options.upstream_port <= 0) {
    return Status::InvalidArgument("chaosnet: upstream_port is required");
  }
  std::unique_ptr<ChaosNet> chaos(new ChaosNet(std::move(options)));
  net::ListenerOptions listen;
  listen.bind_address = chaos->options_.listen_address;
  Result<net::Listener> listener = net::Listener::Open(listen);
  if (!listener.ok()) return listener.status();
  chaos->listener_ = std::move(listener).value();
  chaos->accept_thread_ = std::thread([raw = chaos.get()] {
    raw->AcceptLoop();
  });
  return chaos;
}

ChaosNet::~ChaosNet() { Stop(); }

void ChaosNet::Stop() {
  bool was_stopping = stopping_.exchange(true);
  if (was_stopping && !accept_thread_.joinable()) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // SHUT_RDWR wakes client-side recv/send immediately; the upstream-side
  // pumps notice stopping_ at their next recv timeout tick.
  conns_.ShutdownAndJoin(SHUT_RDWR);
  listener_.Close();
}

void ChaosNet::InterruptibleSleep(int ms) const {
  const int64_t deadline = NowMs() + ms;
  while (!stopping_.load(std::memory_order_relaxed) && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<int64_t>(10, std::max<int64_t>(1, deadline - NowMs()))));
  }
}

void ChaosNet::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = listener_.AcceptOne(stopping_, nullptr);
    if (fd < 0) break;
    if (!conns_.Spawn(
            fd, [this](int client_fd) { HandleConnection(client_fd); },
            /*max_connections=*/256)) {
      // Spawn refused (at capacity or stopping) and closed the fd.
      continue;
    }
  }
}

void ChaosNet::PumpDownstream(int upstream_fd, int client_fd,
                              const void* state_ptr) {
  const ConnState* state = static_cast<const ConnState*>(state_ptr);
  char buf[4096];
  while (!stopping_.load(std::memory_order_relaxed) &&
         !state->stop.load(std::memory_order_relaxed)) {
    ssize_t n = recv(upstream_fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // Recv timeout tick: re-check the stop flags.
      }
      break;
    }
    // A frozen connection holds the server's response instead of
    // forwarding it — from the client's seat, the service went silent.
    while (state->frozen.load(std::memory_order_relaxed) &&
           !state->stop.load(std::memory_order_relaxed) &&
           !stopping_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (state->stop.load(std::memory_order_relaxed) ||
        stopping_.load(std::memory_order_relaxed)) {
      break;
    }
    if (options_.latency_ms > 0) InterruptibleSleep(options_.latency_ms);
    if (!net::SendAll(client_fd, buf, static_cast<size_t>(n))) break;
  }
}

void ChaosNet::HandleConnection(int client_fd) {
  connections_proxied_.fetch_add(1, std::memory_order_relaxed);
  const Fault fault = PickFault();
  if (fault != Fault::kNone) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }

  int upstream_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (upstream_fd < 0) return;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.upstream_port));
  if (inet_pton(AF_INET, options_.upstream_host.c_str(), &addr.sin_addr) !=
          1 ||
      connect(upstream_fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    close(upstream_fd);
    return;  // Client sees an immediate FIN — indistinguishable from a
             // refused upstream, which is what it is.
  }
  SetSockBuf(client_fd, options_.sockbuf_bytes);
  SetSockBuf(upstream_fd, options_.sockbuf_bytes);
  // Short recv timeouts make both pumps poll their stop flags; chaos
  // connections must never outlive Stop() by more than a tick.
  net::SetSocketTimeouts(client_fd, 200);
  net::SetSocketTimeouts(upstream_fd, 200);

  ConnState state;
  std::thread pump([this, upstream_fd, client_fd, &state] {
    PumpDownstream(upstream_fd, client_fd, &state);
  });

  char buf[4096];
  int64_t c2s_forwarded = 0;
  bool froze_once = false;
  bool rst = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    ssize_t n = recv(client_fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    if (fault == Fault::kRst) {
      // The connection dies abruptly the moment the client commits to a
      // request: both sides get an RST, the server's mid-read.
      rst = true;
      break;
    }
    if (fault == Fault::kTorn) {
      const int64_t keep =
          std::min<int64_t>(n, std::max<int64_t>(
                                   0, options_.torn_after_bytes -
                                          c2s_forwarded));
      if (keep > 0) {
        net::SendAll(upstream_fd, buf, static_cast<size_t>(keep));
        c2s_forwarded += keep;
      }
      if (c2s_forwarded >= options_.torn_after_bytes) break;  // FIN both.
      continue;
    }
    if (options_.latency_ms > 0) InterruptibleSleep(options_.latency_ms);
    if (fault == Fault::kTrickle) {
      const int gap = std::max(1, options_.trickle_gap_ms);
      const int step = std::max(1, options_.trickle_bytes);
      for (ssize_t off = 0; off < n;
           off += step) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        const size_t len =
            std::min<size_t>(static_cast<size_t>(step),
                             static_cast<size_t>(n - off));
        if (!net::SendAll(upstream_fd, buf + off, len)) break;
        InterruptibleSleep(gap);
      }
      c2s_forwarded += n;
      continue;
    }
    if (!net::SendAll(upstream_fd, buf, static_cast<size_t>(n))) break;
    c2s_forwarded += n;
    if (fault == Fault::kFreeze && !froze_once) {
      // First request through, then the line goes dead both ways until
      // the freeze lapses (or the harness stops). This is the wedge the
      // bounded drain and the watchdog are measured against.
      froze_once = true;
      state.frozen.store(true, std::memory_order_relaxed);
      InterruptibleSleep(options_.freeze_ms);
      state.frozen.store(false, std::memory_order_relaxed);
    }
  }

  state.stop.store(true, std::memory_order_relaxed);
  pump.join();
  if (rst) {
    LingerRst(upstream_fd);
    LingerRst(client_fd);  // ConnectionSet's close() now sends RST too.
  }
  close(upstream_fd);
  // client_fd is closed by the owning ConnectionSet after this returns.
}

}  // namespace server
}  // namespace regal
