#ifndef REGAL_SERVER_PROTOCOL_H_
#define REGAL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace regal {
namespace net {
class Watchdog;
}  // namespace net
namespace server {

/// The query service wire protocol: length-prefixed binary frames, each
/// carrying one JSON line.
///
///   +----------------+----------------------------------+
///   | u32 LE length  |  payload: one UTF-8 JSON object  |
///   +----------------+----------------------------------+
///
/// A connection is a persistent sequence of request frames answered in
/// order by response frames. The length prefix makes framing trivial for
/// clients in any language; the JSON payload keeps the message schema
/// self-describing and diffable in packet captures. Because a corrupted
/// length prefix desynchronizes the stream permanently, any framing error
/// (oversized, torn) closes the connection — there is no resync.
///
/// Request object (flat; unknown keys are ignored for forward compat):
///   {"tenant": "team-a",          required — quota accounting identity
///    "instance": "corpus1",       optional when exactly one is hosted
///    "query": "para within sec",  required — region algebra text
///    "id": 7,                     optional, echoed verbatim in response
///    "limit": 10,                 optional row-render cap (-1: default)
///    "deadline_ms": 50,           optional per-request deadline; the
///                                 effective deadline is the tighter of
///                                 this and the tenant quota's
///    "priority": 1}               optional; <= 0 (default) is sheddable
///                                 under overload, >= 1 is shed only when
///                                 the admission queue is full
///
/// Response object:
///   {"id": 7, "ok": true, "code": "OK", "row_count": 3,
///    "rows": ["[0, 12) ..."], "elapsed_ms": 0.21}
/// or on error:
///   {"id": 7, "ok": false, "code": "RESOURCE_EXHAUSTED",
///    "message": "tenant over fair share", "row_count": 0,
///    "rows": [], "elapsed_ms": 0}
/// Shed requests carry code "OVERLOADED" plus "retry_after_ms", the
/// server's backoff hint; resilient clients wait at least that long.

/// Frame length prefix size (u32 little-endian payload byte count).
constexpr size_t kFrameHeaderBytes = 4;

/// Prepends the length prefix.
std::string EncodeFrame(std::string_view payload);

/// Outcome of reading one frame off a socket.
enum class FrameRead {
  kOk,         ///< Payload filled.
  kClosed,     ///< Clean EOF at a frame boundary.
  kTorn,       ///< Peer vanished mid-frame.
  kOversized,  ///< Declared length exceeds the cap; stream unrecoverable.
  kTimeout,    ///< Socket receive timeout expired (idle peer).
};

/// Reads one length-prefixed frame from `fd`. On kOversized the declared
/// length was > `max_payload_bytes` and nothing further was read. When
/// `watchdog` is non-null the fd is armed for the payload read — a header
/// arrived, so the peer owes the rest of the frame within the watchdog's
/// deadline; byte-tricklers that keep resetting SO_RCVTIMEO get reaped.
FrameRead ReadFrame(int fd, uint32_t max_payload_bytes, std::string* payload,
                    net::Watchdog* watchdog = nullptr);

/// A scalar-or-string-array JSON value — everything the wire protocol
/// needs. Nested objects / mixed arrays are rejected at parse.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull, kStringArray };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0;
  bool boolean = false;
  std::vector<std::string> strings;
};

/// Parses a flat JSON object: string keys, values that are strings,
/// numbers, booleans, null, or arrays of strings. Built to face the
/// network: malformed input of any shape returns kInvalidArgument, never
/// crashes, and never reads past `text`.
Status ParseFlatObject(std::string_view text,
                       std::map<std::string, JsonValue>* out);

struct Request {
  std::string tenant;
  std::string instance;
  std::string query;
  int64_t id = 0;
  int64_t limit = -1;        // < 0: service default.
  double deadline_ms = 0;    // <= 0: none beyond the tenant quota's.
  int64_t priority = 0;      // <= 0: sheddable first under overload.
};

/// Validates required fields (tenant, query) and types.
Result<Request> ParseRequest(std::string_view payload);
std::string RenderRequest(const Request& request);

struct Response {
  int64_t id = 0;
  bool ok = false;
  std::string code = "OK";   // StatusCodeToString rendering.
  std::string message;       // Error detail; empty on success.
  int64_t row_count = 0;     // Total result regions (not capped by limit).
  std::vector<std::string> rows;
  double elapsed_ms = 0;
  double retry_after_ms = 0; // > 0 on OVERLOADED: server's backoff hint.
};

std::string RenderResponse(const Response& response);
/// Client-side decode of a response frame payload.
Result<Response> ParseResponse(std::string_view payload);

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_PROTOCOL_H_
