#ifndef REGAL_SERVER_CLIENT_H_
#define REGAL_SERVER_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "recovery/retry.h"
#include "server/protocol.h"
#include "server/resilience.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {
namespace server {

/// Minimal blocking client for the query service wire protocol — the
/// in-repo counterpart of admin::HttpGet, used by the tests, bench_server
/// and tools/regal_loadgen. One Client is one connection; it is not
/// thread-safe (each concurrent caller opens its own).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (IPv4 literals only, like HttpGet). `timeout_ms` bounds every
  /// subsequent send/recv.
  static Result<Client> Connect(const std::string& host, int port,
                                int timeout_ms = 5000);

  /// One request/response round trip. Transport failures are kInternal
  /// ("server closed connection", timeouts); protocol-level errors come
  /// back as an ok() Result whose Response has ok == false.
  Result<Response> Call(const Request& request);

  /// Sends raw bytes as-is (fuzzing and torn-frame tests).
  bool SendRaw(const std::string& bytes);

  /// Reads one response frame (paired with SendRaw for half-manual tests).
  Result<Response> ReadResponse();

  /// Closes the connection. `rst` forces an RST instead of FIN (SO_LINGER
  /// with zero timeout) — the chaos-client behavior that historically
  /// SIGPIPEd servers mid-response.
  void Close(bool rst = false);

  int fd() const { return fd_; }
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint32_t max_response_bytes_ = 64u << 20;
};

/// Tuning for ResilientClient. The defaults suit an interactive caller of
/// a loaded service; the chaos tests override nearly everything with a
/// deterministic seed and a fake sleeper.
struct ResilientClientOptions {
  /// Total tries per Call including the first; <= 1 disables retrying.
  int max_attempts = 4;
  /// Capped exponential backoff with full jitter between attempts. A
  /// server-provided retry_after_ms hint raises (never lowers) a delay.
  recovery::BackoffPolicy backoff;
  /// Seed for the backoff jitter Rng: the delay sequence is reproducible
  /// from (options, seed) alone.
  uint64_t jitter_seed = 0x5eed;
  RetryBudget::Options budget;
  /// Breaker tuning used when this endpoint's breaker is first created
  /// (endpoints share one breaker process-wide; later options are
  /// ignored for an existing breaker).
  CircuitBreaker::Options breaker;
  /// Hedging: after a p99-based delay, fire a duplicate of an idempotent
  /// request on a second connection and take whichever answers first.
  bool enable_hedging = false;
  /// Floor on the hedge delay (a hot cache can drive p99 near zero, and
  /// hedging every request would double load for nothing).
  double hedge_min_ms = 5.0;
  /// Observed latencies required before hedging activates.
  int64_t hedge_warmup = 20;
  /// Socket send/recv timeout for each underlying connection.
  int timeout_ms = 5000;
  /// Test hook: called instead of sleeping between attempts.
  std::function<void(double ms)> sleeper;
};

/// The resilient counterpart of Client: same Call surface, but survives
/// the failures Client dies on. Composes (1) transparent
/// reconnect-and-replay for idempotent requests — EPIPE/ECONNRESET/torn
/// responses reconnect and retry instead of failing forever; (2) capped
/// exponential backoff with full jitter; (3) a retry *budget* so retries
/// can never amplify an outage; (4) a per-endpoint circuit breaker shared
/// process-wide; (5) optional hedged requests after a p99-based delay.
/// Typed OVERLOADED/RESOURCE_EXHAUSTED replies are retried with the
/// server's retry_after_ms hint honored as a lower bound.
///
/// Not thread-safe (like Client): one ResilientClient per caller; the
/// breaker underneath is shared and thread-safe.
class ResilientClient {
 public:
  struct Stats {
    int64_t attempts = 0;       ///< Wire round trips issued (incl. hedges).
    int64_t retries = 0;        ///< Attempts after the first, per Call.
    int64_t reconnects = 0;     ///< Successful re-establishments.
    int64_t overloaded = 0;     ///< Typed shed replies received.
    int64_t budget_denied = 0;  ///< Retries refused by the token bucket.
    int64_t breaker_denied = 0; ///< Calls refused by an open breaker.
    int64_t hedges = 0;         ///< Duplicate requests fired.
    int64_t hedge_wins = 0;     ///< Hedges that answered first.
  };

  /// Resolves the endpoint's shared breaker and connects eagerly (a
  /// failed initial connect is an error here, not a deferred one).
  static Result<ResilientClient> Connect(const std::string& host, int port,
                                         ResilientClientOptions options = {});

  /// One logical request. `idempotent` gates replay: a request that died
  /// mid-flight (send accepted, connection lost before the response) is
  /// replayed only when the caller declares re-execution safe — plain
  /// queries are; anything with side effects is not. Non-idempotent
  /// requests still retry failures that provably happened before the
  /// request was sent (connect refused, breaker denial).
  Result<Response> Call(const Request& request, bool idempotent = true);

  const Stats& stats() const { return stats_; }
  CircuitBreaker* breaker() { return breaker_; }
  RetryBudget& budget() { return *budget_; }
  bool connected() const { return client_.connected(); }
  void Close(bool rst = false) { client_.Close(rst); }

 private:
  ResilientClient(std::string host, int port, ResilientClientOptions options);

  Status EnsureConnected();
  /// One wire attempt, hedged when warranted.
  Result<Response> CallOnce(const Request& request, bool hedgeable);
  Result<Response> HedgedCall(const Request& request);
  void Sleep(double ms);

  std::string host_;
  int port_ = 0;
  ResilientClientOptions options_;
  Client client_;
  bool ever_connected_ = false;
  Rng jitter_{0x5eed};
  // unique_ptr: both own mutexes and the client must stay movable (it
  // rides in a Result).
  std::unique_ptr<RetryBudget> budget_;
  std::unique_ptr<LatencyTracker> latency_;
  CircuitBreaker* breaker_ = nullptr;  // Shared; owned by the registry.
  Stats stats_;
};

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_CLIENT_H_
