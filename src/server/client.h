#ifndef REGAL_SERVER_CLIENT_H_
#define REGAL_SERVER_CLIENT_H_

#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace regal {
namespace server {

/// Minimal blocking client for the query service wire protocol — the
/// in-repo counterpart of admin::HttpGet, used by the tests, bench_server
/// and tools/regal_loadgen. One Client is one connection; it is not
/// thread-safe (each concurrent caller opens its own).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (IPv4 literals only, like HttpGet). `timeout_ms` bounds every
  /// subsequent send/recv.
  static Result<Client> Connect(const std::string& host, int port,
                                int timeout_ms = 5000);

  /// One request/response round trip. Transport failures are kInternal
  /// ("server closed connection", timeouts); protocol-level errors come
  /// back as an ok() Result whose Response has ok == false.
  Result<Response> Call(const Request& request);

  /// Sends raw bytes as-is (fuzzing and torn-frame tests).
  bool SendRaw(const std::string& bytes);

  /// Reads one response frame (paired with SendRaw for half-manual tests).
  Result<Response> ReadResponse();

  /// Closes the connection. `rst` forces an RST instead of FIN (SO_LINGER
  /// with zero timeout) — the chaos-client behavior that historically
  /// SIGPIPEd servers mid-response.
  void Close(bool rst = false);

  int fd() const { return fd_; }
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint32_t max_response_bytes_ = 64u << 20;
};

}  // namespace server
}  // namespace regal

#endif  // REGAL_SERVER_CLIENT_H_
