#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/net.h"

namespace regal {
namespace server {

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_response_bytes_(other.max_response_bytes_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    max_response_bytes_ = other.max_response_bytes_;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, int port,
                               int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("client: socket() failed: ") +
                            std::strerror(errno));
  }
  net::SetSocketTimeouts(fd, timeout_ms);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("client: bad host '" + host +
                                   "' (IPv4 literals only)");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal("client: cannot connect to " + host +
                                     ":" + std::to_string(port) + ": " +
                                     std::strerror(errno));
    close(fd);
    return status;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Result<Response> Client::Call(const Request& request) {
  if (!SendRaw(EncodeFrame(RenderRequest(request)))) {
    return Status::Internal(std::string("client: send failed: ") +
                            std::strerror(errno));
  }
  return ReadResponse();
}

bool Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  return net::SendAll(fd_, bytes);
}

Result<Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::Internal("client: not connected");
  std::string payload;
  switch (ReadFrame(fd_, max_response_bytes_, &payload)) {
    case FrameRead::kOk:
      return ParseResponse(payload);
    case FrameRead::kClosed:
      return Status::Internal("client: server closed connection");
    case FrameRead::kTimeout:
      return Status::DeadlineExceeded("client: response timed out");
    case FrameRead::kTorn:
      return Status::Internal("client: connection torn mid-response");
    case FrameRead::kOversized:
      return Status::Internal("client: oversized response frame");
  }
  return Status::Internal("client: unreachable");
}

void Client::Close(bool rst) {
  if (fd_ < 0) return;
  if (rst) {
    // Zero-timeout linger: close() sends RST, discarding queued data — the
    // abrupt-disconnect behavior the SIGPIPE regression tests need.
    struct linger hard = {1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  close(fd_);
  fd_ = -1;
}

}  // namespace server
}  // namespace regal
