#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "server/net.h"
#include "util/timer.h"

namespace regal {
namespace server {

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      max_response_bytes_(other.max_response_bytes_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    max_response_bytes_ = other.max_response_bytes_;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, int port,
                               int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("client: socket() failed: ") +
                            std::strerror(errno));
  }
  net::SetSocketTimeouts(fd, timeout_ms);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("client: bad host '" + host +
                                   "' (IPv4 literals only)");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal("client: cannot connect to " + host +
                                     ":" + std::to_string(port) + ": " +
                                     std::strerror(errno));
    close(fd);
    return status;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Result<Response> Client::Call(const Request& request) {
  if (!SendRaw(EncodeFrame(RenderRequest(request)))) {
    return Status::Internal(std::string("client: send failed: ") +
                            std::strerror(errno));
  }
  return ReadResponse();
}

bool Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  return net::SendAll(fd_, bytes);
}

Result<Response> Client::ReadResponse() {
  if (fd_ < 0) return Status::Internal("client: not connected");
  std::string payload;
  switch (ReadFrame(fd_, max_response_bytes_, &payload)) {
    case FrameRead::kOk:
      return ParseResponse(payload);
    case FrameRead::kClosed:
      return Status::Internal("client: server closed connection");
    case FrameRead::kTimeout:
      return Status::DeadlineExceeded("client: response timed out");
    case FrameRead::kTorn:
      return Status::Internal("client: connection torn mid-response");
    case FrameRead::kOversized:
      return Status::Internal("client: oversized response frame");
  }
  return Status::Internal("client: unreachable");
}

void Client::Close(bool rst) {
  if (fd_ < 0) return;
  if (rst) {
    // Zero-timeout linger: close() sends RST, discarding queued data — the
    // abrupt-disconnect behavior the SIGPIPE regression tests need.
    struct linger hard = {1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  close(fd_);
  fd_ = -1;
}

ResilientClient::ResilientClient(std::string host, int port,
                                 ResilientClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      jitter_(options_.jitter_seed),
      budget_(std::make_unique<RetryBudget>(options_.budget)),
      latency_(std::make_unique<LatencyTracker>()),
      breaker_(BreakerForEndpoint(host_ + ":" + std::to_string(port),
                                  options_.breaker)) {}

Result<ResilientClient> ResilientClient::Connect(
    const std::string& host, int port, ResilientClientOptions options) {
  ResilientClient client(host, port, std::move(options));
  REGAL_RETURN_NOT_OK(client.EnsureConnected());
  return client;
}

Status ResilientClient::EnsureConnected() {
  if (client_.connected()) return Status::OK();
  Result<Client> fresh = Client::Connect(host_, port_, options_.timeout_ms);
  if (!fresh.ok()) return fresh.status();
  client_ = std::move(fresh).value();
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return Status::OK();
}

void ResilientClient::Sleep(double ms) {
  if (options_.sleeper) {
    options_.sleeper(ms);
    return;
  }
  if (ms <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(std::min(ms, 10000.0)));
}

Result<Response> ResilientClient::Call(const Request& request,
                                       bool idempotent) {
  budget_->OnRequest();
  Status last = Status::Internal("resilient client: no attempt made");
  double hint_ms = 0;
  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Every retry spends a budget token first: when the bucket is dry
      // the client gives up *immediately* — a retry storm against a
      // struggling service is precisely the amplification this prevents.
      if (!budget_->TrySpend()) {
        ++stats_.budget_denied;
        return Status(last.code(),
                      last.message() + " (retry budget exhausted)");
      }
      ++stats_.retries;
      double delay = options_.backoff.DelayMs(attempt - 1, &jitter_);
      // The server's hint is a lower bound, never a shortcut: jitter
      // still applies on top via max(), so hinted clients don't return
      // in lockstep.
      if (hint_ms > delay) delay = hint_ms;
      Sleep(delay);
    }
    hint_ms = 0;

    if (!breaker_->Allow()) {
      ++stats_.breaker_denied;
      last = Status::Overloaded("resilient client: circuit breaker open for " +
                                host_ + ":" + std::to_string(port_));
      continue;  // Back off and re-check; the open window may lapse.
    }
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      breaker_->RecordFailure();
      last = connected;
      continue;  // Nothing was sent: replayable regardless of idempotence.
    }

    const bool hedgeable =
        options_.enable_hedging && idempotent &&
        latency_->count() >= options_.hedge_warmup;
    Timer timer;
    Result<Response> response =
        hedgeable ? HedgedCall(request) : client_.Call(request);
    ++stats_.attempts;
    if (!response.ok()) {
      // Transport failure (EPIPE/ECONNRESET, torn response, timeout).
      // Close so the next attempt reconnects on a fresh socket.
      breaker_->RecordFailure();
      client_.Close();
      last = response.status();
      if (!idempotent) {
        // The request may have executed before the connection died;
        // replaying could double its effect. The caller decides.
        return last;
      }
      continue;
    }
    breaker_->RecordSuccess();
    latency_->Record(timer.Millis());
    if (!response->ok && response->code == "OVERLOADED") {
      // Typed shed: the server refused before executing, so replay is
      // always safe — and it told us when to come back.
      ++stats_.overloaded;
      hint_ms = response->retry_after_ms;
      last = Status::Overloaded(response->message);
      continue;
    }
    if (!response->ok && response->code == "RESOURCE_EXHAUSTED") {
      // Quota/backpressure verdicts are retryable by design.
      hint_ms = response->retry_after_ms;
      last = Status::ResourceExhausted(response->message);
      continue;
    }
    // A well-formed reply — success or a non-retryable application error
    // (bad query, unknown instance) the caller must see as-is.
    return response;
  }
  return last;
}

Result<Response> ResilientClient::HedgedCall(const Request& request) {
  const std::string frame = EncodeFrame(RenderRequest(request));
  if (!client_.SendRaw(frame)) {
    return Status::Internal(std::string("client: send failed: ") +
                            std::strerror(errno));
  }
  const double hedge_delay =
      std::max(latency_->Percentile(0.99), options_.hedge_min_ms);
  struct pollfd primary;
  primary.fd = client_.fd();
  primary.events = POLLIN;
  primary.revents = 0;
  int ready = poll(&primary, 1, static_cast<int>(std::ceil(hedge_delay)));
  if (ready != 0) {
    // Answered within the hedge delay (or poll errored — fall through to
    // the blocking read, which reports the real failure).
    return client_.ReadResponse();
  }
  // Slower than p99: fire the duplicate on a fresh connection and race
  // them. Hedging is bounded to idempotent requests by the caller, and to
  // ~1% of traffic by the p99 trigger.
  ++stats_.hedges;
  Result<Client> hedge = Client::Connect(host_, port_, options_.timeout_ms);
  if (!hedge.ok() || !hedge->SendRaw(frame)) {
    // Could not hedge (endpoint saturated?) — just wait for the primary.
    return client_.ReadResponse();
  }
  struct pollfd race[2];
  race[0].fd = client_.fd();
  race[0].events = POLLIN;
  race[0].revents = 0;
  race[1].fd = hedge->fd();
  race[1].events = POLLIN;
  race[1].revents = 0;
  ready = poll(race, 2, options_.timeout_ms);
  if (ready <= 0) {
    hedge->Close();
    return Status::DeadlineExceeded("client: hedged request timed out");
  }
  if ((race[0].revents & POLLIN) != 0) {
    // Primary got there first after all; the loser connection is closed
    // unread (the server sees the EPIPE and moves on).
    hedge->Close();
    return client_.ReadResponse();
  }
  if ((race[1].revents & POLLIN) != 0) {
    ++stats_.hedge_wins;
    client_.Close();
    client_ = std::move(hedge).value();
    return client_.ReadResponse();
  }
  // Only error events: let the primary's read surface the failure.
  hedge->Close();
  return client_.ReadResponse();
}

}  // namespace server
}  // namespace regal
