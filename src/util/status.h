#ifndef REGAL_UTIL_STATUS_H_
#define REGAL_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace regal {

/// Error categories used across the library. The set is deliberately small:
/// callers usually branch only on ok()/!ok() and surface the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input supplied by the caller.
  kNotFound,          ///< A named entity (region set, pattern, node) is absent.
  kAlreadyExists,     ///< Attempt to redefine an existing named entity.
  kFailedPrecondition,///< Data violates a required invariant (e.g. laminarity).
  kOutOfRange,        ///< Position or size outside the valid domain.
  kUnimplemented,     ///< Feature intentionally not supported.
  kResourceExhausted, ///< A configured search/size budget was exceeded.
  kInternal,          ///< Invariant violation inside the library (a bug).
  kDeadlineExceeded,  ///< A wall-clock deadline passed before completion.
  kCancelled,         ///< Caller-requested cooperative cancellation.
  kDataLoss,          ///< Persistent data is unrecoverably corrupt or torn
                      ///< (checksum mismatch, truncated snapshot, bad
                      ///< framing). Distinct from kInvalidArgument: the
                      ///< *caller* did nothing wrong — the bytes rotted.
  kOverloaded,        ///< The serving layer shed this request to protect
                      ///< itself (admission queue over its sojourn target,
                      ///< brownout mode, circuit breaker open). Always
                      ///< retryable after a backoff; distinct from
                      ///< kResourceExhausted, which is a per-caller quota
                      ///< verdict rather than a whole-system health one.
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. Functions that can fail return Status
/// (or Result<T>); exceptions are not used across API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {
/// Prints the carried status to stderr and aborts. Out-of-line so the
/// checked accessors below stay inlineable.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

/// Value-or-error wrapper, analogous to arrow::Result. A Result either holds
/// a T (ok) or a non-OK Status. Accessing the value of an error Result
/// aborts with the carried status code and message (not an opaque
/// bad_variant_access), so callers must check ok() first
/// (ASSIGN_OR_RETURN-style macros below make this terse).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites natural: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns OK if this holds a value, the stored error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& { CheckOk(); return std::get<T>(data_); }
  T& value() & { CheckOk(); return std::get<T>(data_); }
  T&& value() && { CheckOk(); return std::get<T>(std::move(data_)); }

  /// Explicitly named crash-on-error accessors for call sites that have
  /// established ok() out of band (tests, examples).
  const T& ValueOrDie() const& { return value(); }
  T& ValueOrDie() & { return value(); }
  T&& ValueOrDie() && { return std::move(*this).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(data_));
  }

  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression evaluating to Status.
#define REGAL_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::regal::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define REGAL_CONCAT_IMPL(a, b) a##b
#define REGAL_CONCAT(a, b) REGAL_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define REGAL_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  REGAL_ASSIGN_OR_RETURN_IMPL(REGAL_CONCAT(_regal_result_, __LINE__),    \
                              lhs, rexpr)

#define REGAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace regal

#endif  // REGAL_UTIL_STATUS_H_
