#ifndef REGAL_UTIL_CPU_H_
#define REGAL_UTIL_CPU_H_

namespace regal {
namespace util {

/// Instruction-set features the dispatching subsystems care about, detected
/// once per process via cpuid. On non-x86 builds every flag is false and the
/// scalar fallbacks run everywhere.
struct CpuFeatures {
  bool sse42 = false;  ///< SSE4.2: pcmpgtq and the CRC32 instruction family.
  bool avx2 = false;   ///< AVX2 (implies the OS saves ymm state via xgetbv).
};

/// The detected feature set, computed on first use and cached. Thread-safe.
const CpuFeatures& CpuInfo();

}  // namespace util
}  // namespace regal

#endif  // REGAL_UTIL_CPU_H_
