#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace regal {

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result<T> accessed without a value: %s\n",
               status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace regal
