#include "util/stringutil.h"

namespace regal {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToLowerAscii(c);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace regal
