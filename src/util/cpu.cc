#include "util/cpu.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <cpuid.h>
#define REGAL_CPU_X86 1
#endif

namespace regal {
namespace util {

namespace {

#ifdef REGAL_CPU_X86

// AVX2 usability needs three independent facts: the CPU decodes the
// instructions (cpuid leaf 7), the CPU supports xsave/avx state (leaf 1),
// and the OS actually saves the ymm halves on context switch (xgetbv bit 2).
// Skipping the xgetbv check is the classic way to SIGILL inside a VM.
bool OsSavesYmm() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  unsigned lo, hi;
  __asm__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (lo & 0x6) == 0x6;  // xmm and ymm state enabled.
}

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse42 = (ecx & (1u << 20)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0 && OsSavesYmm();
  }
  return f;
}

#else  // !REGAL_CPU_X86

CpuFeatures Detect() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& CpuInfo() {
  static const CpuFeatures features = Detect();
  return features;
}

}  // namespace util
}  // namespace regal
