#ifndef REGAL_UTIL_RMQ_H_
#define REGAL_UTIL_RMQ_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace regal {

/// Sparse-table range query over a static array: O(n log n) build,
/// O(1) query. `Cmp` selects the winner (std::less -> range minimum).
///
/// Used by the region algebra operators to answer "minimum right endpoint
/// among regions whose left endpoint falls in [i, j)" style questions.
template <typename T, typename Cmp = std::less<T>>
class SparseTable {
 public:
  SparseTable() = default;

  explicit SparseTable(std::vector<T> values, Cmp cmp = Cmp())
      : cmp_(cmp) {
    const size_t n = values.size();
    levels_.push_back(std::move(values));
    for (size_t len = 2; len <= n; len *= 2) {
      const std::vector<T>& prev = levels_.back();
      std::vector<T> next(n - len + 1);
      for (size_t i = 0; i + len <= n; ++i) {
        const T& a = prev[i];
        const T& b = prev[i + len / 2];
        next[i] = cmp_(b, a) ? b : a;
      }
      levels_.push_back(std::move(next));
    }
  }

  size_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Best element in the half-open range [lo, hi). Requires lo < hi <= size().
  T Query(size_t lo, size_t hi) const {
    const size_t len = hi - lo;
    const size_t k = FloorLog2(len);
    const T& a = levels_[k][lo];
    const T& b = levels_[k][hi - (size_t{1} << k)];
    return cmp_(b, a) ? b : a;
  }

 private:
  static size_t FloorLog2(size_t x) {
    size_t k = 0;
    while ((size_t{2} << k) <= x) ++k;
    return k;
  }

  std::vector<std::vector<T>> levels_;
  Cmp cmp_;
};

}  // namespace regal

#endif  // REGAL_UTIL_RMQ_H_
