#ifndef REGAL_UTIL_TIMER_H_
#define REGAL_UTIL_TIMER_H_

#include <chrono>

namespace regal {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// examples; google-benchmark binaries use their own timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace regal

#endif  // REGAL_UTIL_TIMER_H_
