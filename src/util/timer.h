#ifndef REGAL_UTIL_TIMER_H_
#define REGAL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

namespace regal {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses, the
/// examples and the obs span tracer; google-benchmark binaries use their own
/// timing. steady_clock gives nanosecond resolution on the supported
/// platforms.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

  /// Integral nanoseconds elapsed — the full clock resolution, for
  /// instrumentation that must not lose precision on sub-microsecond spans.
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: measures from construction to destruction and reports the
/// elapsed milliseconds into a double, or to a callback. Because reporting
/// happens in the destructor, the measurement survives early returns — the
/// query engine times evaluation this way around error propagation.
///
///   double parse_ms = 0;
///   { ScopedTimer t(&parse_ms); ... }           // writes on scope exit
///   ScopedTimer t([&](double ms) { ... });      // or deliver to a sink
class ScopedTimer {
 public:
  explicit ScopedTimer(double* elapsed_ms) : elapsed_ms_(elapsed_ms) {}
  explicit ScopedTimer(std::function<void(double)> callback)
      : callback_(std::move(callback)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    double ms = timer_.Millis();
    if (elapsed_ms_ != nullptr) *elapsed_ms_ = ms;
    if (callback_) callback_(ms);
  }

  /// The running value, without stopping.
  double Millis() const { return timer_.Millis(); }
  int64_t Nanos() const { return timer_.Nanos(); }

 private:
  Timer timer_;
  double* elapsed_ms_ = nullptr;
  std::function<void(double)> callback_;
};

}  // namespace regal

#endif  // REGAL_UTIL_TIMER_H_
