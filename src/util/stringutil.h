#ifndef REGAL_UTIL_STRINGUTIL_H_
#define REGAL_UTIL_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace regal {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLowerAscii(std::string_view s);
char ToLowerAscii(char c);

/// True iff `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripAscii(std::string_view s);

/// True iff c is an ASCII letter, digit or underscore (identifier char).
bool IsIdentChar(char c);

}  // namespace regal

#endif  // REGAL_UTIL_STRINGUTIL_H_
