#ifndef REGAL_UTIL_RANDOM_H_
#define REGAL_UTIL_RANDOM_H_

#include <cstdint>

namespace regal {

/// Deterministic xorshift128+ pseudo-random generator. Used by synthetic
/// corpus generators and randomized property tests so that runs are
/// reproducible from the seed alone (no dependence on std::random_device or
/// libstdc++ distribution implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding avoids weak all-zero / low-entropy states.
    uint64_t z = seed;
    for (uint64_t* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      *s = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

}  // namespace regal

#endif  // REGAL_UTIL_RANDOM_H_
