#include "core/construct.h"

#include <algorithm>

namespace regal {

RegionSet SpanJoin(const RegionSet& starts, const RegionSet& ends) {
  // For each start a: the end b minimizing left(b) subject to
  // left(b) > right(a); since ends are document-ordered, binary search on
  // left endpoints finds it. Ties on left(b) (nested ends sharing a left
  // endpoint) resolve to the *shortest* such end — PAT's "nearest match".
  std::vector<Offset> end_lefts;
  end_lefts.reserve(ends.size());
  for (const Region& b : ends) end_lefts.push_back(b.left);
  std::vector<Region> out;
  for (const Region& a : starts) {
    auto it = std::upper_bound(end_lefts.begin(), end_lefts.end(), a.right);
    if (it == end_lefts.end()) continue;
    size_t index = static_cast<size_t>(it - end_lefts.begin());
    // Among ends sharing this left endpoint, document order lists the
    // longest first; advance to the last (shortest) one.
    size_t best = index;
    while (best + 1 < ends.size() && ends[best + 1].left == ends[best].left) {
      ++best;
    }
    out.push_back(Region{a.left, ends[best].right});
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet Windows(const std::vector<Token>& tokens, Offset before,
                  Offset after, Offset text_size) {
  std::vector<Region> out;
  out.reserve(tokens.size());
  for (const Token& t : tokens) {
    Offset left = std::max<Offset>(0, t.left - before);
    Offset right = std::min<Offset>(text_size - 1, t.right + after);
    if (left <= right) out.push_back(Region{left, right});
  }
  return RegionSet::FromUnsorted(std::move(out));
}

}  // namespace regal
