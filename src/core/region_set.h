#ifndef REGAL_CORE_REGION_SET_H_
#define REGAL_CORE_REGION_SET_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "core/region.h"
#include "util/status.h"

namespace regal {

/// A set of regions, stored sorted in document order with no duplicates.
/// This is the value type flowing through the algebra: operands and results
/// of every operator.
class RegionSet {
 public:
  RegionSet() = default;

  /// Builds a set from arbitrary input: sorts and deduplicates.
  static RegionSet FromUnsorted(std::vector<Region> regions);

  /// Wraps a vector the caller guarantees to be document-ordered and
  /// duplicate-free (checked in debug builds by Validate in callers/tests).
  static RegionSet FromSortedUnique(std::vector<Region> regions);

  RegionSet(std::initializer_list<Region> regions);

  const std::vector<Region>& regions() const { return regions_; }
  size_t size() const { return regions_.size(); }
  bool empty() const { return regions_.empty(); }

  auto begin() const { return regions_.begin(); }
  auto end() const { return regions_.end(); }
  const Region& operator[](size_t i) const { return regions_[i]; }

  /// Membership test, O(log n).
  bool Member(const Region& r) const;

  bool operator==(const RegionSet& other) const {
    return regions_ == other.regions_;
  }

  /// True iff the document order + uniqueness invariant holds.
  bool IsValid() const;

  /// True iff no two member regions partially overlap and no two are equal
  /// (every pair is disjoint or strictly nested) — the hierarchy property.
  bool IsLaminar() const;

  /// "{[l,r], ...}" for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Region> regions_;
};

}  // namespace regal

#endif  // REGAL_CORE_REGION_SET_H_
