#ifndef REGAL_CORE_CONSTRUCT_H_
#define REGAL_CORE_CONSTRUCT_H_

#include <vector>

#include "core/region_set.h"
#include "text/tokenizer.h"

namespace regal {

/// Dynamic region construction — the part of the full PAT algebra the
/// paper's footnote 1 sets aside ("we can treat regions defined
/// dynamically as if they were views"). These operators *create* region
/// sets rather than filter them; QueryEngine exposes them through named
/// views.

/// The PAT `A .. B` span constructor: for each start region a ∈ starts,
/// the region from left(a) to right(b) of the *nearest* end region b that
/// begins after a ends (right(a) < left(b)). Starts with no following end
/// produce nothing. The result regions may nest when starts do; with
/// non-nested inputs the spans are non-nested (classic PAT behaviour).
RegionSet SpanJoin(const RegionSet& starts, const RegionSet& ends);

/// Windows around match points: each token grows into the inclusive region
/// [left - before, right + after], clipped to [0, text_size - 1]. Used for
/// keyword-in-context style views. Overlapping windows are kept as-is
/// (dynamic sets need not satisfy the hierarchy assumption; treat them as
/// views, per the footnote).
RegionSet Windows(const std::vector<Token>& tokens, Offset before,
                  Offset after, Offset text_size);

/// Hull: the smallest region covering each pair (a, b) with a ∈ firsts,
/// b = nearest lasts-region *containing or following* a is intentionally
/// not provided; PAT's other constructors reduce to SpanJoin/Windows.

}  // namespace regal

#endif  // REGAL_CORE_CONSTRUCT_H_
