#ifndef REGAL_CORE_EXPR_H_
#define REGAL_CORE_EXPR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/pattern.h"

namespace regal {

/// Node kinds of the region algebra expression grammar (Definition 2.2),
/// plus the extended operators of Sections 5-6 (direct inclusion and
/// both-included), which are first-class AST nodes so that the optimizer
/// and the expressiveness harnesses can reason about them.
enum class OpKind {
  kName,            // R_i
  kUnion,           // e ∪ e
  kIntersect,       // e ∩ e
  kDifference,      // e - e
  kIncluding,       // e ⊃ e
  kIncluded,        // e ⊂ e
  kPrecedes,        // e < e
  kFollows,         // e > e
  kSelect,          // σ_p(e)
  kDirectIncluding, // e ⊃_d e   (Section 5.1; not expressible in the base algebra)
  kDirectIncluded,  // e ⊂_d e
  kBothIncluded,    // BI(e; e, e) (Section 5.2)
  kWordMatch,       // word "p" — the PAT word index as a leaf: the token
                    // (match point) regions matching pattern p. Needs a
                    // text-backed instance.
};

/// True for ⊃ ⊂ < > and their direct variants (binary structural
/// semi-joins).
bool IsStructuralOp(OpKind kind);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable region algebra expression. Nodes are shared; build with the
/// factory functions below.
class Expr {
 public:
  OpKind kind() const { return kind_; }

  /// For kName: the region name.
  const std::string& name() const { return name_; }

  /// For kSelect / kWordMatch: the pattern.
  const Pattern& pattern() const { return *pattern_; }

  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  /// Number of operations |e| (kName counts 0, every operator node 1).
  /// Theorem 4.1's nesting bound is stated in terms of this size.
  int NumOps() const;

  /// Number of < and > operations (the k of Theorem 4.4).
  int NumOrderOps() const;

  /// All region names mentioned, deduplicated, in first-mention order.
  std::vector<std::string> NamesUsed() const;

  /// All selection patterns mentioned (the P of Definition 3.2),
  /// deduplicated by cache key.
  std::vector<Pattern> PatternsUsed() const;

  /// True iff the node uses only Definition 2.2 operators (no ⊃_d/⊂_d/BI)
  /// anywhere in the subtree.
  bool IsBaseAlgebra() const;

  /// Query-language rendering; Parse(ToString(e)) == e (see query/parser.h).
  std::string ToString() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Canonical structural hash: equal for expressions the engine treats as
  /// interchangeable regardless of parse provenance. Union/intersection
  /// operand order (and grouping) does not affect the hash, duplicate
  /// operands of those operators collapse, and so do repeated selections
  /// with the same pattern — the normalizations whose soundness the
  /// optimizer's identity rules already rely on. This is the fingerprint
  /// half of the cross-query result cache key (see cache/result_cache.h);
  /// colliding fingerprints are disambiguated with CanonicalEquals.
  uint64_t CanonicalHash() const;

  /// True iff Canonicalize maps both expressions to the same tree — i.e.
  /// they are equal up to the normalizations described at CanonicalHash.
  bool CanonicalEquals(const Expr& other) const;

  /// The canonical form itself: union/intersection chains are flattened,
  /// deduplicated and re-grouped to the right in fingerprint order, and
  /// selection chains with a repeated pattern collapse to one selection.
  /// Evaluating the canonical form yields the same result set on every
  /// instance. Idempotent; preserves subtree sharing.
  static ExprPtr Canonicalize(const ExprPtr& e);

  // --- Factories ---
  static ExprPtr Name(std::string name);
  static ExprPtr Union(ExprPtr a, ExprPtr b);
  static ExprPtr Intersect(ExprPtr a, ExprPtr b);
  static ExprPtr Difference(ExprPtr a, ExprPtr b);
  static ExprPtr Including(ExprPtr a, ExprPtr b);
  static ExprPtr Included(ExprPtr a, ExprPtr b);
  static ExprPtr Precedes(ExprPtr a, ExprPtr b);
  static ExprPtr Follows(ExprPtr a, ExprPtr b);
  static ExprPtr Select(Pattern p, ExprPtr e);
  static ExprPtr WordMatch(Pattern p);
  static ExprPtr DirectIncluding(ExprPtr a, ExprPtr b);
  static ExprPtr DirectIncluded(ExprPtr a, ExprPtr b);
  static ExprPtr BothIncluded(ExprPtr r, ExprPtr s, ExprPtr t);

  /// Generic binary factory for the given operator kind.
  static ExprPtr Binary(OpKind kind, ExprPtr a, ExprPtr b);

  /// Right-grouped chain `n1 ∘ n2 ∘ ... ∘ nk` of the given operator over
  /// region names, following the paper's convention that structural
  /// operators group from the right. Requires at least one name.
  static ExprPtr Chain(OpKind op, const std::vector<std::string>& names);

 private:
  Expr(OpKind kind, std::string name, std::optional<Pattern> pattern,
       std::vector<ExprPtr> children)
      : kind_(kind),
        name_(std::move(name)),
        pattern_(std::move(pattern)),
        children_(std::move(children)) {}

  OpKind kind_;
  std::string name_;
  std::optional<Pattern> pattern_;
  std::vector<ExprPtr> children_;
};

/// Keyword used by the query language / ToString for each operator.
const char* OpKindToken(OpKind kind);

/// Memoizing canonicalizer: Expr::CanonicalHash / Canonicalize wrap one of
/// these per call, but bulk users (the evaluator fingerprints every node of
/// the executed tree once per query) hold one so shared DAG subtrees are
/// canonicalized exactly once. Not thread-safe; guard externally.
class ExprCanonicalizer {
 public:
  /// Canonical form of `e` (see Expr::Canonicalize). Memoized by node.
  ExprPtr Canonical(const ExprPtr& e);
  /// Canonical structural hash of `e` (see Expr::CanonicalHash).
  uint64_t Hash(const ExprPtr& e);

 private:
  uint64_t HashCanonical(const ExprPtr& canonical);

  std::unordered_map<const Expr*, ExprPtr> canon_;     // input -> canonical
  std::unordered_map<const Expr*, uint64_t> hashes_;   // canonical -> hash
};

}  // namespace regal

#endif  // REGAL_CORE_EXPR_H_
