#ifndef REGAL_CORE_ALGEBRA_KERNELS_H_
#define REGAL_CORE_ALGEBRA_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/region.h"
#include "obs/counters.h"

namespace regal {
namespace kernels {

/// Span-level merge kernels behind the set operators. The sequential
/// operators in core/algebra.cc run them over the full operands; the
/// partitioned parallel kernels in exec/parallel_algebra.cc run them per
/// contiguous chunk. Sharing the loop bodies is what makes the parallel
/// results bit-identical to the sequential ones by construction.
///
/// Inputs are document-ordered, duplicate-free ranges; output is appended to
/// `out` in document order. Work is tallied into `counters` (never into the
/// thread-local obs sink — chunks run on pool workers, and the coordinating
/// thread flushes the summed counters once via FlushCounters).
///
/// When one side is at least kGallopRatio times longer than the other, the
/// merges switch to galloping (exponential search + bulk append) so skewed
/// set operations cost O(small * log(large)) instead of O(small + large).
inline constexpr ptrdiff_t kGallopRatio = 16;

/// Every function below dispatches once per call to the active SIMD kernel
/// set (core/simd), selected from the CPU's capabilities and the REGAL_SIMD
/// environment override. All variants are bit-identical in output and exact
/// in counters, so callers — sequential and partitioned alike — see the same
/// results on every tier; only throughput differs.

void UnionSpan(const Region* rb, const Region* re, const Region* sb,
               const Region* se, std::vector<Region>* out,
               obs::OpCounters* counters);

void IntersectSpan(const Region* rb, const Region* re, const Region* sb,
                   const Region* se, std::vector<Region>* out,
                   obs::OpCounters* counters);

/// R - S restricted to the given spans.
void DifferenceSpan(const Region* rb, const Region* re, const Region* sb,
                    const Region* se, std::vector<Region>* out,
                    obs::OpCounters* counters);

/// Smallest position in [first, last) not ordered before `v` (lower bound by
/// document order), found by exponential search from `first`. The exponential
/// probes charge one comparison each; the binary phase then charges the
/// deterministic ceil(log2(window)) for the window it narrowed to, so the
/// charge is a pure function of the inputs and identical across ISA tiers.
const Region* GallopLowerBound(const Region* first, const Region* last,
                               const Region& v, int64_t* comparisons);

/// Order-preserving endpoint filters behind the ordering joins: append to
/// `out` every x in [b, b+n) with x.right < bound (FilterRightBefore), resp.
/// x.left > bound (FilterLeftAfter). No counter tallying — the join
/// operators charge analytically per element scanned.
void FilterRightBefore(const Region* b, size_t n, Offset bound,
                       std::vector<Region>* out);
void FilterLeftAfter(const Region* b, size_t n, Offset bound,
                     std::vector<Region>* out);

/// Minimum right endpoint over [b, b+n); n must be > 0.
Offset MinRightEndpoint(const Region* b, size_t n);

/// Batched lower_bound: out[i] = index of the first element of the sorted
/// array arr[0, n) that is >= q[i], for each of the m queries. Wide tiers
/// resolve 8 probes per gather instruction.
void LowerBoundOffsets(const Offset* arr, size_t n, const Offset* q, size_t m,
                       uint32_t* out);

/// Adds `counters` to the calling thread's obs sink, if one is installed —
/// the flush half of the tally-locally/flush-once discipline of
/// core/algebra.cc, exposed here so the parallel kernels follow it too.
void FlushCounters(const obs::OpCounters& counters);

}  // namespace kernels
}  // namespace regal

#endif  // REGAL_CORE_ALGEBRA_KERNELS_H_
