#ifndef REGAL_CORE_ALGEBRA_KERNELS_H_
#define REGAL_CORE_ALGEBRA_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/region.h"
#include "obs/counters.h"

namespace regal {
namespace kernels {

/// Span-level merge kernels behind the set operators. The sequential
/// operators in core/algebra.cc run them over the full operands; the
/// partitioned parallel kernels in exec/parallel_algebra.cc run them per
/// contiguous chunk. Sharing the loop bodies is what makes the parallel
/// results bit-identical to the sequential ones by construction.
///
/// Inputs are document-ordered, duplicate-free ranges; output is appended to
/// `out` in document order. Work is tallied into `counters` (never into the
/// thread-local obs sink — chunks run on pool workers, and the coordinating
/// thread flushes the summed counters once via FlushCounters).
///
/// When one side is at least kGallopRatio times longer than the other, the
/// merges switch to galloping (exponential search + bulk append) so skewed
/// set operations cost O(small * log(large)) instead of O(small + large).
inline constexpr ptrdiff_t kGallopRatio = 16;

void UnionSpan(const Region* rb, const Region* re, const Region* sb,
               const Region* se, std::vector<Region>* out,
               obs::OpCounters* counters);

void IntersectSpan(const Region* rb, const Region* re, const Region* sb,
                   const Region* se, std::vector<Region>* out,
                   obs::OpCounters* counters);

/// R - S restricted to the given spans.
void DifferenceSpan(const Region* rb, const Region* re, const Region* sb,
                    const Region* se, std::vector<Region>* out,
                    obs::OpCounters* counters);

/// Smallest position in [first, last) not ordered before `v` (lower bound by
/// document order), found by exponential search from `first`. Probe count is
/// charged to `comparisons`.
const Region* GallopLowerBound(const Region* first, const Region* last,
                               const Region& v, int64_t* comparisons);

/// Adds `counters` to the calling thread's obs sink, if one is installed —
/// the flush half of the tally-locally/flush-once discipline of
/// core/algebra.cc, exposed here so the parallel kernels follow it too.
void FlushCounters(const obs::OpCounters& counters);

}  // namespace kernels
}  // namespace regal

#endif  // REGAL_CORE_ALGEBRA_KERNELS_H_
