#ifndef REGAL_CORE_ALGEBRA_H_
#define REGAL_CORE_ALGEBRA_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/region.h"
#include "core/region_set.h"
#include "text/tokenizer.h"
#include "util/rmq.h"

namespace regal {

namespace simd {
struct KernelTable;
}  // namespace simd

/// Efficient implementations of the region algebra operators of
/// Definition 2.3. All inputs/outputs are document-ordered RegionSets; no
/// laminarity is assumed (the operators are correct for arbitrary region
/// sets), so they also serve instances that violate the hierarchy
/// assumption.
///
/// Complexities: set operations are linear merges; the structural
/// semi-joins (Including/Included/Select) run in O((|R|+|S|) log |S|) using
/// a sparse-table index over S; Precedes/Follows are O(|R| + |S|).
///
/// `naive::` holds O(|R|*|S|) reference implementations used as oracles by
/// the property tests and as the baseline in bench_operators (experiment E8).

/// R ∪ S.
RegionSet Union(const RegionSet& r, const RegionSet& s);
/// R ∩ S.
RegionSet Intersect(const RegionSet& r, const RegionSet& s);
/// R - S.
RegionSet Difference(const RegionSet& r, const RegionSet& s);

/// R ⊃ S = {r ∈ R : ∃s ∈ S, r strictly includes s}.
RegionSet Including(const RegionSet& r, const RegionSet& s);
/// R ⊂ S = {r ∈ R : ∃s ∈ S, s strictly includes r}.
RegionSet Included(const RegionSet& r, const RegionSet& s);
/// R < S = {r ∈ R : ∃s ∈ S, r precedes s}.
RegionSet Precedes(const RegionSet& r, const RegionSet& s);
/// R > S = {r ∈ R : ∃s ∈ S, r follows s}.
RegionSet Follows(const RegionSet& r, const RegionSet& s);

/// σ_p(R) given the sorted list of tokens matching p: the regions of R
/// containing (not necessarily strictly) at least one matching token.
RegionSet SelectByTokens(const RegionSet& r, const std::vector<Token>& tokens);

/// A reusable index over a fixed region set S answering the existential
/// tests behind the structural semi-joins in O(log |S|) per probe. Built in
/// O(|S| log |S|). The extended operators (both-included) reuse it.
class ContainmentIndex {
 public:
  ContainmentIndex() = default;
  explicit ContainmentIndex(const RegionSet& s);

  /// ∃s ∈ S strictly included in r.
  bool ExistsIncludedIn(const Region& r) const;
  /// ∃s ∈ S strictly including r.
  bool ExistsIncluding(const Region& r) const;
  /// ∃s ∈ S with s contained in r, allowing s == r.
  bool ExistsContainedIn(const Region& r) const;

  /// Batched forms of the existential tests: keep[i] = whether the predicate
  /// holds for b[i], for all n query regions. Equivalent to calling the
  /// corresponding Exists* per element, but the left-endpoint binary
  /// searches are batched through the SIMD lower-bound kernel (8 probes per
  /// gather on AVX2). `kernels` selects the kernel tier; nullptr means the
  /// process-wide active set. The structural semi-joins and their
  /// partitioned parallel counterparts both route through these.
  void ProbeIncludedIn(const Region* b, size_t n, unsigned char* keep,
                       const simd::KernelTable* kernels = nullptr) const;
  void ProbeIncluding(const Region* b, size_t n, unsigned char* keep,
                      const simd::KernelTable* kernels = nullptr) const;
  void ProbeContainedIn(const Region* b, size_t n, unsigned char* keep,
                        const simd::KernelTable* kernels = nullptr) const;

  /// Smallest right endpoint among S-regions contained in r (equality with
  /// r allowed); returns false if none.
  bool MinRightContainedIn(const Region& r, Offset* out) const;
  /// Largest left endpoint among S-regions contained in r.
  bool MaxLeftContainedIn(const Region& r, Offset* out) const;

  bool empty() const { return lefts_.empty(); }

 private:
  /// Index range [lo, hi) of S whose left endpoints lie in [a, b].
  std::pair<size_t, size_t> LeftRange(Offset a, Offset b) const;

  std::vector<Offset> lefts_;   // Sorted ascending (document order majors).
  std::vector<Offset> rights_;  // Parallel to lefts_.
  SparseTable<Offset> min_right_;
  SparseTable<Offset, std::greater<Offset>> max_right_;
};

namespace naive {

RegionSet Including(const RegionSet& r, const RegionSet& s);
RegionSet Included(const RegionSet& r, const RegionSet& s);
RegionSet Precedes(const RegionSet& r, const RegionSet& s);
RegionSet Follows(const RegionSet& r, const RegionSet& s);
RegionSet Union(const RegionSet& r, const RegionSet& s);
RegionSet Intersect(const RegionSet& r, const RegionSet& s);
RegionSet Difference(const RegionSet& r, const RegionSet& s);
RegionSet SelectByTokens(const RegionSet& r, const std::vector<Token>& tokens);

}  // namespace naive

}  // namespace regal

#endif  // REGAL_CORE_ALGEBRA_H_
