#include "core/expr.h"

#include <set>

namespace regal {

bool IsStructuralOp(OpKind kind) {
  switch (kind) {
    case OpKind::kIncluding:
    case OpKind::kIncluded:
    case OpKind::kPrecedes:
    case OpKind::kFollows:
    case OpKind::kDirectIncluding:
    case OpKind::kDirectIncluded:
      return true;
    default:
      return false;
  }
}

const char* OpKindToken(OpKind kind) {
  switch (kind) {
    case OpKind::kName:
      return "<name>";
    case OpKind::kUnion:
      return "|";
    case OpKind::kIntersect:
      return "&";
    case OpKind::kDifference:
      return "-";
    case OpKind::kIncluding:
      return "including";
    case OpKind::kIncluded:
      return "within";
    case OpKind::kPrecedes:
      return "before";
    case OpKind::kFollows:
      return "after";
    case OpKind::kSelect:
      return "matching";
    case OpKind::kDirectIncluding:
      return "dincluding";
    case OpKind::kDirectIncluded:
      return "dwithin";
    case OpKind::kBothIncluded:
      return "bi";
    case OpKind::kWordMatch:
      return "word";
  }
  return "?";
}

int Expr::NumOps() const {
  int total = (kind_ == OpKind::kName) ? 0 : 1;  // kWordMatch counts 1.
  for (const ExprPtr& c : children_) total += c->NumOps();
  return total;
}

int Expr::NumOrderOps() const {
  int total =
      (kind_ == OpKind::kPrecedes || kind_ == OpKind::kFollows) ? 1 : 0;
  for (const ExprPtr& c : children_) total += c->NumOrderOps();
  return total;
}

namespace {

void CollectNames(const Expr& e, std::vector<std::string>* out,
                  std::set<std::string>* seen) {
  if (e.kind() == OpKind::kName) {
    if (seen->insert(e.name()).second) out->push_back(e.name());
  }
  for (const ExprPtr& c : e.children()) CollectNames(*c, out, seen);
}

void CollectPatterns(const Expr& e, std::vector<Pattern>* out,
                     std::set<std::string>* seen) {
  if (e.kind() == OpKind::kSelect || e.kind() == OpKind::kWordMatch) {
    if (seen->insert(e.pattern().CacheKey()).second) out->push_back(e.pattern());
  }
  for (const ExprPtr& c : e.children()) CollectPatterns(*c, out, seen);
}

}  // namespace

std::vector<std::string> Expr::NamesUsed() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  CollectNames(*this, &out, &seen);
  return out;
}

std::vector<Pattern> Expr::PatternsUsed() const {
  std::vector<Pattern> out;
  std::set<std::string> seen;
  CollectPatterns(*this, &out, &seen);
  return out;
}

bool Expr::IsBaseAlgebra() const {
  if (kind_ == OpKind::kDirectIncluding || kind_ == OpKind::kDirectIncluded ||
      kind_ == OpKind::kBothIncluded || kind_ == OpKind::kWordMatch) {
    return false;
  }
  for (const ExprPtr& c : children_) {
    if (!c->IsBaseAlgebra()) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case OpKind::kName:
      return name_;
    case OpKind::kSelect:
      return "(" + children_[0]->ToString() + " matching " +
             (pattern_->case_insensitive() ? "~" : "") + "\"" +
             pattern_->ToString() + "\")";
    case OpKind::kBothIncluded:
      return "bi(" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ", " + children_[2]->ToString() + ")";
    case OpKind::kWordMatch:
      return std::string("word ") + (pattern_->case_insensitive() ? "~" : "") +
             "\"" + pattern_->ToString() + "\"";
    default:
      return "(" + children_[0]->ToString() + " " + OpKindToken(kind_) + " " +
             children_[1]->ToString() + ")";
  }
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == OpKind::kName) return name_ == other.name_;
  if ((kind_ == OpKind::kSelect || kind_ == OpKind::kWordMatch) &&
      !(pattern_->CacheKey() == other.pattern_->CacheKey())) {
    return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::Name(std::string name) {
  return ExprPtr(new Expr(OpKind::kName, std::move(name), std::nullopt, {}));
}

ExprPtr Expr::Binary(OpKind kind, ExprPtr a, ExprPtr b) {
  return ExprPtr(new Expr(kind, "", std::nullopt,
                          {std::move(a), std::move(b)}));
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kUnion, std::move(a), std::move(b));
}
ExprPtr Expr::Intersect(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIntersect, std::move(a), std::move(b));
}
ExprPtr Expr::Difference(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDifference, std::move(a), std::move(b));
}
ExprPtr Expr::Including(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIncluding, std::move(a), std::move(b));
}
ExprPtr Expr::Included(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIncluded, std::move(a), std::move(b));
}
ExprPtr Expr::Precedes(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kPrecedes, std::move(a), std::move(b));
}
ExprPtr Expr::Follows(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kFollows, std::move(a), std::move(b));
}
ExprPtr Expr::DirectIncluding(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDirectIncluding, std::move(a), std::move(b));
}
ExprPtr Expr::DirectIncluded(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDirectIncluded, std::move(a), std::move(b));
}

ExprPtr Expr::Select(Pattern p, ExprPtr e) {
  return ExprPtr(
      new Expr(OpKind::kSelect, "", std::move(p), {std::move(e)}));
}

ExprPtr Expr::WordMatch(Pattern p) {
  return ExprPtr(new Expr(OpKind::kWordMatch, "", std::move(p), {}));
}

ExprPtr Expr::BothIncluded(ExprPtr r, ExprPtr s, ExprPtr t) {
  return ExprPtr(new Expr(OpKind::kBothIncluded, "", std::nullopt,
                          {std::move(r), std::move(s), std::move(t)}));
}

ExprPtr Expr::Chain(OpKind op, const std::vector<std::string>& names) {
  ExprPtr e = Name(names.back());
  for (size_t i = names.size() - 1; i-- > 0;) {
    e = Binary(op, Name(names[i]), std::move(e));
  }
  return e;
}

}  // namespace regal
