#include "core/expr.h"

#include <algorithm>
#include <set>
#include <utility>

namespace regal {

bool IsStructuralOp(OpKind kind) {
  switch (kind) {
    case OpKind::kIncluding:
    case OpKind::kIncluded:
    case OpKind::kPrecedes:
    case OpKind::kFollows:
    case OpKind::kDirectIncluding:
    case OpKind::kDirectIncluded:
      return true;
    default:
      return false;
  }
}

const char* OpKindToken(OpKind kind) {
  switch (kind) {
    case OpKind::kName:
      return "<name>";
    case OpKind::kUnion:
      return "|";
    case OpKind::kIntersect:
      return "&";
    case OpKind::kDifference:
      return "-";
    case OpKind::kIncluding:
      return "including";
    case OpKind::kIncluded:
      return "within";
    case OpKind::kPrecedes:
      return "before";
    case OpKind::kFollows:
      return "after";
    case OpKind::kSelect:
      return "matching";
    case OpKind::kDirectIncluding:
      return "dincluding";
    case OpKind::kDirectIncluded:
      return "dwithin";
    case OpKind::kBothIncluded:
      return "bi";
    case OpKind::kWordMatch:
      return "word";
  }
  return "?";
}

int Expr::NumOps() const {
  int total = (kind_ == OpKind::kName) ? 0 : 1;  // kWordMatch counts 1.
  for (const ExprPtr& c : children_) total += c->NumOps();
  return total;
}

int Expr::NumOrderOps() const {
  int total =
      (kind_ == OpKind::kPrecedes || kind_ == OpKind::kFollows) ? 1 : 0;
  for (const ExprPtr& c : children_) total += c->NumOrderOps();
  return total;
}

namespace {

void CollectNames(const Expr& e, std::vector<std::string>* out,
                  std::set<std::string>* seen) {
  if (e.kind() == OpKind::kName) {
    if (seen->insert(e.name()).second) out->push_back(e.name());
  }
  for (const ExprPtr& c : e.children()) CollectNames(*c, out, seen);
}

void CollectPatterns(const Expr& e, std::vector<Pattern>* out,
                     std::set<std::string>* seen) {
  if (e.kind() == OpKind::kSelect || e.kind() == OpKind::kWordMatch) {
    if (seen->insert(e.pattern().CacheKey()).second) out->push_back(e.pattern());
  }
  for (const ExprPtr& c : e.children()) CollectPatterns(*c, out, seen);
}

}  // namespace

std::vector<std::string> Expr::NamesUsed() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  CollectNames(*this, &out, &seen);
  return out;
}

std::vector<Pattern> Expr::PatternsUsed() const {
  std::vector<Pattern> out;
  std::set<std::string> seen;
  CollectPatterns(*this, &out, &seen);
  return out;
}

bool Expr::IsBaseAlgebra() const {
  if (kind_ == OpKind::kDirectIncluding || kind_ == OpKind::kDirectIncluded ||
      kind_ == OpKind::kBothIncluded || kind_ == OpKind::kWordMatch) {
    return false;
  }
  for (const ExprPtr& c : children_) {
    if (!c->IsBaseAlgebra()) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case OpKind::kName:
      return name_;
    case OpKind::kSelect:
      return "(" + children_[0]->ToString() + " matching " +
             (pattern_->case_insensitive() ? "~" : "") + "\"" +
             pattern_->ToString() + "\")";
    case OpKind::kBothIncluded:
      return "bi(" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ", " + children_[2]->ToString() + ")";
    case OpKind::kWordMatch:
      return std::string("word ") + (pattern_->case_insensitive() ? "~" : "") +
             "\"" + pattern_->ToString() + "\"";
    default:
      return "(" + children_[0]->ToString() + " " + OpKindToken(kind_) + " " +
             children_[1]->ToString() + ")";
  }
}

bool Expr::Equals(const Expr& other) const {
  if (this == &other) return true;  // Shared DAG subtrees compare in O(1).
  if (kind_ != other.kind_) return false;
  if (kind_ == OpKind::kName) return name_ == other.name_;
  if ((kind_ == OpKind::kSelect || kind_ == OpKind::kWordMatch) &&
      !(pattern_->CacheKey() == other.pattern_->CacheKey())) {
    return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::Name(std::string name) {
  return ExprPtr(new Expr(OpKind::kName, std::move(name), std::nullopt, {}));
}

ExprPtr Expr::Binary(OpKind kind, ExprPtr a, ExprPtr b) {
  return ExprPtr(new Expr(kind, "", std::nullopt,
                          {std::move(a), std::move(b)}));
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kUnion, std::move(a), std::move(b));
}
ExprPtr Expr::Intersect(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIntersect, std::move(a), std::move(b));
}
ExprPtr Expr::Difference(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDifference, std::move(a), std::move(b));
}
ExprPtr Expr::Including(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIncluding, std::move(a), std::move(b));
}
ExprPtr Expr::Included(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kIncluded, std::move(a), std::move(b));
}
ExprPtr Expr::Precedes(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kPrecedes, std::move(a), std::move(b));
}
ExprPtr Expr::Follows(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kFollows, std::move(a), std::move(b));
}
ExprPtr Expr::DirectIncluding(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDirectIncluding, std::move(a), std::move(b));
}
ExprPtr Expr::DirectIncluded(ExprPtr a, ExprPtr b) {
  return Binary(OpKind::kDirectIncluded, std::move(a), std::move(b));
}

ExprPtr Expr::Select(Pattern p, ExprPtr e) {
  return ExprPtr(
      new Expr(OpKind::kSelect, "", std::move(p), {std::move(e)}));
}

ExprPtr Expr::WordMatch(Pattern p) {
  return ExprPtr(new Expr(OpKind::kWordMatch, "", std::move(p), {}));
}

ExprPtr Expr::BothIncluded(ExprPtr r, ExprPtr s, ExprPtr t) {
  return ExprPtr(new Expr(OpKind::kBothIncluded, "", std::nullopt,
                          {std::move(r), std::move(s), std::move(t)}));
}

ExprPtr Expr::Chain(OpKind op, const std::vector<std::string>& names) {
  ExprPtr e = Name(names.back());
  for (size_t i = names.size() - 1; i-- > 0;) {
    e = Binary(op, Name(names[i]), std::move(e));
  }
  return e;
}

// --- Canonical form & fingerprint ---

namespace {

// splitmix64 finalizer: cheap, well-distributed mixing for the fingerprint.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t h, uint64_t x) { return Mix(h ^ Mix(x)); }

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the bytes.
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ull;
  return h;
}

/// Non-owning alias, for fingerprinting from a bare `this`. The resulting
/// pointers never escape the member-function call that made them.
ExprPtr BorrowExpr(const Expr* e) { return ExprPtr(ExprPtr(), e); }

// Appends the operands of a right-grouped canonical `op` chain (or the
// single node itself when it is not an `op` node).
void AppendChainOperands(OpKind op, const ExprPtr& e,
                         std::vector<ExprPtr>* out) {
  ExprPtr node = e;
  while (node->kind() == op) {
    out->push_back(node->child(0));
    node = node->child(1);
  }
  out->push_back(std::move(node));
}

}  // namespace

ExprPtr ExprCanonicalizer::Canonical(const ExprPtr& e) {
  auto it = canon_.find(e.get());
  if (it != canon_.end()) return it->second;
  ExprPtr result;
  switch (e->kind()) {
    case OpKind::kName:
    case OpKind::kWordMatch:
      result = e;
      break;
    case OpKind::kSelect: {
      ExprPtr child = Canonical(e->child(0));
      if (child->kind() == OpKind::kSelect &&
          child->pattern().CacheKey() == e->pattern().CacheKey()) {
        // σ_p is a filter: σ_p∘σ_p = σ_p (the optimizer's select-dedup).
        result = child;
      } else if (child.get() == e->child(0).get()) {
        result = e;
      } else {
        result = Expr::Select(e->pattern(), std::move(child));
      }
      break;
    }
    case OpKind::kUnion:
    case OpKind::kIntersect: {
      // Flatten the same-operator subtree (associativity), canonicalize
      // every operand, drop duplicates (idempotence) and re-group to the
      // right in fingerprint order (commutativity).
      std::vector<ExprPtr> operands;
      AppendChainOperands(e->kind(), Canonical(e->child(0)), &operands);
      AppendChainOperands(e->kind(), Canonical(e->child(1)), &operands);
      std::vector<std::pair<uint64_t, ExprPtr>> keyed;
      keyed.reserve(operands.size());
      for (ExprPtr& op : operands) {
        uint64_t h = HashCanonical(op);
        keyed.emplace_back(h, std::move(op));
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) {
                         if (a.first != b.first) return a.first < b.first;
                         return a.second->ToString() < b.second->ToString();
                       });
      std::vector<ExprPtr> unique;
      unique.reserve(keyed.size());
      for (auto& [h, op] : keyed) {
        if (!unique.empty() && h == HashCanonical(unique.back()) &&
            unique.back()->Equals(*op)) {
          continue;
        }
        unique.push_back(std::move(op));
      }
      result = unique.back();
      for (size_t i = unique.size() - 1; i-- > 0;) {
        result = Expr::Binary(e->kind(), unique[i], std::move(result));
      }
      break;
    }
    case OpKind::kBothIncluded: {
      ExprPtr r = Canonical(e->child(0));
      ExprPtr s = Canonical(e->child(1));
      ExprPtr t = Canonical(e->child(2));
      if (r.get() == e->child(0).get() && s.get() == e->child(1).get() &&
          t.get() == e->child(2).get()) {
        result = e;
      } else {
        result = Expr::BothIncluded(std::move(r), std::move(s), std::move(t));
      }
      break;
    }
    default: {  // Non-commutative binary operators.
      ExprPtr a = Canonical(e->child(0));
      ExprPtr b = Canonical(e->child(1));
      if (a.get() == e->child(0).get() && b.get() == e->child(1).get()) {
        result = e;
      } else {
        result = Expr::Binary(e->kind(), std::move(a), std::move(b));
      }
      break;
    }
  }
  canon_.emplace(e.get(), result);
  return result;
}

uint64_t ExprCanonicalizer::HashCanonical(const ExprPtr& canonical) {
  auto it = hashes_.find(canonical.get());
  if (it != hashes_.end()) return it->second;
  uint64_t h = Mix(static_cast<uint64_t>(canonical->kind()) + 1);
  switch (canonical->kind()) {
    case OpKind::kName:
      h = Combine(h, HashString(canonical->name()));
      break;
    case OpKind::kSelect:
    case OpKind::kWordMatch:
      h = Combine(h, HashString(canonical->pattern().CacheKey()));
      break;
    default:
      break;
  }
  for (const ExprPtr& c : canonical->children()) {
    h = Combine(h, HashCanonical(c));
  }
  hashes_.emplace(canonical.get(), h);
  return h;
}

uint64_t ExprCanonicalizer::Hash(const ExprPtr& e) {
  return HashCanonical(Canonical(e));
}

uint64_t Expr::CanonicalHash() const {
  ExprCanonicalizer canonicalizer;
  return canonicalizer.Hash(BorrowExpr(this));
}

bool Expr::CanonicalEquals(const Expr& other) const {
  if (this == &other) return true;
  ExprCanonicalizer canonicalizer;
  ExprPtr a = canonicalizer.Canonical(BorrowExpr(this));
  ExprPtr b = canonicalizer.Canonical(BorrowExpr(&other));
  return a->Equals(*b);
}

ExprPtr Expr::Canonicalize(const ExprPtr& e) {
  ExprCanonicalizer canonicalizer;
  return canonicalizer.Canonical(e);
}

}  // namespace regal
