#include "core/algebra.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/algebra_kernels.h"
#include "core/simd/simd_kernels.h"
#include "obs/counters.h"

namespace regal {

namespace {

// Query regions probed through the batched lower-bound kernel per call;
// sized so the query/index scratch stays within a couple of L1 cache lines'
// worth of stack.
constexpr size_t kProbeTile = 256;

// Keep x in r iff keep[i] != 0; r is already sorted and duplicate-free, and
// filtering preserves both.
RegionSet KeepMarked(const RegionSet& r, const unsigned char* keep) {
  std::vector<Region> out;
  for (size_t i = 0; i < r.size(); ++i) {
    if (keep[i]) out.push_back(r[i]);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

// Binary-search depth over an index of n entries: the per-probe comparison
// charge reported by the structural semi-joins.
int64_t ProbeDepth(size_t n) {
  return static_cast<int64_t>(std::bit_width(n) + 1);
}

// Flushes counters tallied in locals to the thread sink, if one is
// installed. Operators tally into stack variables (register-resident, no
// cost) and pay one load + branch here per call — the disabled fast path.
void ReportCounters(int64_t comparisons, int64_t merge_steps,
                    int64_t index_probes) {
  if (obs::OpCounters* sink = obs::CountersSink()) {
    sink->comparisons += comparisons;
    sink->merge_steps += merge_steps;
    sink->index_probes += index_probes;
  }
}

}  // namespace

// The set operations run the span kernels of core/algebra_kernels.h over the
// full operands; the parallel layer (exec/parallel_algebra.cc) runs the same
// kernels per contiguous chunk, which keeps the two paths bit-identical.
RegionSet Union(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  out.reserve(r.size() + s.size());
  obs::OpCounters c;
  kernels::UnionSpan(r.regions().data(), r.regions().data() + r.size(),
                     s.regions().data(), s.regions().data() + s.size(), &out,
                     &c);
  kernels::FlushCounters(c);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Intersect(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  obs::OpCounters c;
  kernels::IntersectSpan(r.regions().data(), r.regions().data() + r.size(),
                         s.regions().data(), s.regions().data() + s.size(),
                         &out, &c);
  kernels::FlushCounters(c);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Difference(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  obs::OpCounters c;
  kernels::DifferenceSpan(r.regions().data(), r.regions().data() + r.size(),
                          s.regions().data(), s.regions().data() + s.size(),
                          &out, &c);
  kernels::FlushCounters(c);
  return RegionSet::FromSortedUnique(std::move(out));
}

ContainmentIndex::ContainmentIndex(const RegionSet& s) {
  lefts_.reserve(s.size());
  rights_.reserve(s.size());
  for (const Region& x : s) {
    lefts_.push_back(x.left);
    rights_.push_back(x.right);
  }
  min_right_ = SparseTable<Offset>(rights_);
  max_right_ = SparseTable<Offset, std::greater<Offset>>(rights_);
}

std::pair<size_t, size_t> ContainmentIndex::LeftRange(Offset a, Offset b) const {
  auto lo = std::lower_bound(lefts_.begin(), lefts_.end(), a);
  auto hi = std::upper_bound(lo, lefts_.end(), b);
  return {static_cast<size_t>(lo - lefts_.begin()),
          static_cast<size_t>(hi - lefts_.begin())};
}

bool ContainmentIndex::ExistsIncludedIn(const Region& r) const {
  if (lefts_.empty()) return false;
  // s with left(s) == left(r) must have right(s) < right(r)...
  auto [a0, a1] = LeftRange(r.left, r.left);
  if (a0 < a1 && min_right_.Query(a0, a1) < r.right) return true;
  // ... while s with left(s) in (left(r), right(r)] only needs
  // right(s) <= right(r).
  auto [b0, b1] = LeftRange(r.left + 1, r.right);
  return b0 < b1 && min_right_.Query(b0, b1) <= r.right;
}

bool ContainmentIndex::ExistsIncluding(const Region& r) const {
  if (lefts_.empty()) return false;
  // s with left(s) < left(r) needs right(s) >= right(r)...
  auto lo = std::lower_bound(lefts_.begin(), lefts_.end(), r.left);
  size_t a = static_cast<size_t>(lo - lefts_.begin());
  if (a > 0 && max_right_.Query(0, a) >= r.right) return true;
  // ... while s with left(s) == left(r) needs right(s) > right(r).
  auto [a0, a1] = LeftRange(r.left, r.left);
  return a0 < a1 && max_right_.Query(a0, a1) > r.right;
}

bool ContainmentIndex::ExistsContainedIn(const Region& r) const {
  if (lefts_.empty()) return false;
  auto [a, b] = LeftRange(r.left, r.right);
  return a < b && min_right_.Query(a, b) <= r.right;
}

// The batched probes rewrite each Exists* predicate in terms of plain lower
// bounds only — upper_bound(x) over integer left endpoints equals
// lower_bound(x + 1) — so one lower_bound_offsets kernel call resolves every
// binary search of a tile, and only the O(1) sparse-table range-minimum
// checks remain per query region. Endpoints at the Offset maximum cannot
// form the +1 query; their bound is the full array, patched after the call.

void ContainmentIndex::ProbeIncludedIn(const Region* b, size_t n,
                                       unsigned char* keep,
                                       const simd::KernelTable* kernels) const {
  if (lefts_.empty()) {
    std::fill(keep, keep + n, 0);
    return;
  }
  const simd::KernelTable& kt = kernels ? *kernels : simd::ActiveKernels();
  constexpr Offset kMaxOff = std::numeric_limits<Offset>::max();
  const size_t sn = lefts_.size();
  Offset q[3 * kProbeTile];
  uint32_t idx[3 * kProbeTile];
  for (size_t base = 0; base < n; base += kProbeTile) {
    const size_t m = std::min(kProbeTile, n - base);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      q[i] = r.left;
      q[m + i] = r.left == kMaxOff ? kMaxOff : r.left + 1;
      q[2 * m + i] = r.right == kMaxOff ? kMaxOff : r.right + 1;
    }
    kt.lower_bound_offsets(lefts_.data(), sn, q, 3 * m, idx);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      const size_t a0 = idx[i];
      const size_t a1 = r.left == kMaxOff ? sn : idx[m + i];
      const size_t b1 = r.right == kMaxOff ? sn : idx[2 * m + i];
      // s with left(s) == left(r) needs right(s) < right(r); s with left(s)
      // in (left(r), right(r)] only needs right(s) <= right(r).
      keep[base + i] =
          (a0 < a1 && min_right_.Query(a0, a1) < r.right) ||
          (a1 < b1 && min_right_.Query(a1, b1) <= r.right);
    }
  }
}

void ContainmentIndex::ProbeIncluding(const Region* b, size_t n,
                                      unsigned char* keep,
                                      const simd::KernelTable* kernels) const {
  if (lefts_.empty()) {
    std::fill(keep, keep + n, 0);
    return;
  }
  const simd::KernelTable& kt = kernels ? *kernels : simd::ActiveKernels();
  constexpr Offset kMaxOff = std::numeric_limits<Offset>::max();
  const size_t sn = lefts_.size();
  Offset q[2 * kProbeTile];
  uint32_t idx[2 * kProbeTile];
  for (size_t base = 0; base < n; base += kProbeTile) {
    const size_t m = std::min(kProbeTile, n - base);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      q[i] = r.left;
      q[m + i] = r.left == kMaxOff ? kMaxOff : r.left + 1;
    }
    kt.lower_bound_offsets(lefts_.data(), sn, q, 2 * m, idx);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      const size_t a0 = idx[i];
      const size_t a1 = r.left == kMaxOff ? sn : idx[m + i];
      // s with left(s) < left(r) needs right(s) >= right(r); s with
      // left(s) == left(r) needs right(s) > right(r).
      keep[base + i] =
          (a0 > 0 && max_right_.Query(0, a0) >= r.right) ||
          (a0 < a1 && max_right_.Query(a0, a1) > r.right);
    }
  }
}

void ContainmentIndex::ProbeContainedIn(const Region* b, size_t n,
                                        unsigned char* keep,
                                        const simd::KernelTable* kernels) const {
  if (lefts_.empty()) {
    std::fill(keep, keep + n, 0);
    return;
  }
  const simd::KernelTable& kt = kernels ? *kernels : simd::ActiveKernels();
  constexpr Offset kMaxOff = std::numeric_limits<Offset>::max();
  const size_t sn = lefts_.size();
  Offset q[2 * kProbeTile];
  uint32_t idx[2 * kProbeTile];
  for (size_t base = 0; base < n; base += kProbeTile) {
    const size_t m = std::min(kProbeTile, n - base);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      q[i] = r.left;
      q[m + i] = r.right == kMaxOff ? kMaxOff : r.right + 1;
    }
    kt.lower_bound_offsets(lefts_.data(), sn, q, 2 * m, idx);
    for (size_t i = 0; i < m; ++i) {
      const Region& r = b[base + i];
      const size_t a0 = idx[i];
      const size_t b1 = r.right == kMaxOff ? sn : idx[m + i];
      keep[base + i] = a0 < b1 && min_right_.Query(a0, b1) <= r.right;
    }
  }
}

bool ContainmentIndex::MinRightContainedIn(const Region& r, Offset* out) const {
  if (lefts_.empty()) return false;
  auto [a, b] = LeftRange(r.left, r.right);
  if (a >= b) return false;
  Offset m = min_right_.Query(a, b);
  if (m > r.right) return false;
  *out = m;
  return true;
}

bool ContainmentIndex::MaxLeftContainedIn(const Region& r, Offset* out) const {
  if (lefts_.empty()) return false;
  auto [a, b] = LeftRange(r.left, r.right);
  if (a >= b || min_right_.Query(a, b) > r.right) return false;
  // Largest index in [a, b) whose right endpoint fits inside r; since lefts
  // are ascending, it carries the largest qualifying left endpoint.
  size_t lo = a;
  size_t hi = b;  // Invariant: some qualifying index lies in [lo, hi).
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (min_right_.Query(mid, hi) <= r.right) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  *out = lefts_[lo];
  return true;
}

RegionSet Including(const RegionSet& r, const RegionSet& s) {
  ContainmentIndex index(s);
  ReportCounters(static_cast<int64_t>(r.size()) * ProbeDepth(s.size()), 0,
                 static_cast<int64_t>(r.size()));
  std::vector<unsigned char> keep(r.size());
  index.ProbeIncludedIn(r.regions().data(), r.size(), keep.data());
  return KeepMarked(r, keep.data());
}

RegionSet Included(const RegionSet& r, const RegionSet& s) {
  ContainmentIndex index(s);
  ReportCounters(static_cast<int64_t>(r.size()) * ProbeDepth(s.size()), 0,
                 static_cast<int64_t>(r.size()));
  std::vector<unsigned char> keep(r.size());
  index.ProbeIncluding(r.regions().data(), r.size(), keep.data());
  return KeepMarked(r, keep.data());
}

RegionSet Precedes(const RegionSet& r, const RegionSet& s) {
  ReportCounters(static_cast<int64_t>(r.size()),
                 static_cast<int64_t>(r.size()) + (s.empty() ? 0 : 1), 0);
  if (s.empty()) return RegionSet();
  // r precedes some s iff right(r) < the largest left endpoint in S, which
  // document order puts in the last element.
  const Offset max_left = s[s.size() - 1].left;
  std::vector<Region> out;
  kernels::FilterRightBefore(r.regions().data(), r.size(), max_left, &out);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Follows(const RegionSet& r, const RegionSet& s) {
  ReportCounters(static_cast<int64_t>(r.size()),
                 static_cast<int64_t>(r.size() + s.size()), 0);
  if (s.empty()) return RegionSet();
  const Offset min_right = kernels::MinRightEndpoint(s.regions().data(), s.size());
  std::vector<Region> out;
  kernels::FilterLeftAfter(r.regions().data(), r.size(), min_right, &out);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet SelectByTokens(const RegionSet& r, const std::vector<Token>& tokens) {
  std::vector<Region> as_regions;
  as_regions.reserve(tokens.size());
  for (const Token& t : tokens) as_regions.push_back(Region{t.left, t.right});
  ContainmentIndex index(RegionSet::FromUnsorted(std::move(as_regions)));
  ReportCounters(static_cast<int64_t>(r.size()) * ProbeDepth(tokens.size()), 0,
                 static_cast<int64_t>(r.size()));
  std::vector<unsigned char> keep(r.size());
  index.ProbeContainedIn(r.regions().data(), r.size(), keep.data());
  return KeepMarked(r, keep.data());
}

namespace naive {

RegionSet Including(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  int64_t comparisons = 0;
  for (const Region& x : r) {
    for (const Region& y : s) {
      ++comparisons;
      if (StrictlyIncludes(x, y)) {
        out.push_back(x);
        break;
      }
    }
  }
  ReportCounters(comparisons, 0, 0);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Included(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  int64_t comparisons = 0;
  for (const Region& x : r) {
    for (const Region& y : s) {
      ++comparisons;
      if (StrictlyIncludes(y, x)) {
        out.push_back(x);
        break;
      }
    }
  }
  ReportCounters(comparisons, 0, 0);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Precedes(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  int64_t comparisons = 0;
  for (const Region& x : r) {
    for (const Region& y : s) {
      ++comparisons;
      if (regal::Precedes(x, y)) {
        out.push_back(x);
        break;
      }
    }
  }
  ReportCounters(comparisons, 0, 0);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Follows(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  int64_t comparisons = 0;
  for (const Region& x : r) {
    for (const Region& y : s) {
      ++comparisons;
      if (regal::Precedes(y, x)) {
        out.push_back(x);
        break;
      }
    }
  }
  ReportCounters(comparisons, 0, 0);
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Union(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out(r.begin(), r.end());
  out.insert(out.end(), s.begin(), s.end());
  ReportCounters(0, static_cast<int64_t>(r.size() + s.size()), 0);
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet Intersect(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  for (const Region& x : r) {
    if (s.Member(x)) out.push_back(x);
  }
  ReportCounters(static_cast<int64_t>(r.size()) * ProbeDepth(s.size()), 0,
                 static_cast<int64_t>(r.size()));
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Difference(const RegionSet& r, const RegionSet& s) {
  std::vector<Region> out;
  for (const Region& x : r) {
    if (!s.Member(x)) out.push_back(x);
  }
  ReportCounters(static_cast<int64_t>(r.size()) * ProbeDepth(s.size()), 0,
                 static_cast<int64_t>(r.size()));
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet SelectByTokens(const RegionSet& r, const std::vector<Token>& tokens) {
  std::vector<Region> out;
  int64_t comparisons = 0;
  for (const Region& x : r) {
    for (const Token& t : tokens) {
      ++comparisons;
      if (x.left <= t.left && t.right <= x.right) {
        out.push_back(x);
        break;
      }
    }
  }
  ReportCounters(comparisons, 0, 0);
  return RegionSet::FromSortedUnique(std::move(out));
}

}  // namespace naive

}  // namespace regal
