#include "core/extended.h"

#include <algorithm>
#include <map>

#include "core/algebra.h"

namespace regal {

RegionSet DirectIncluding(const Instance& instance, const RegionSet& r,
                          const RegionSet& s) {
  std::vector<Region> out;
  for (const Region& x : s) {
    int idx = instance.TreeFind(x);
    if (idx < 0) continue;  // Not an instance region; cannot have a parent.
    int p = instance.TreeParent(static_cast<size_t>(idx));
    if (p >= 0 && r.Member(instance.TreeRegion(static_cast<size_t>(p)))) {
      out.push_back(instance.TreeRegion(static_cast<size_t>(p)));
    }
  }
  return RegionSet::FromUnsorted(std::move(out));
}

RegionSet DirectIncluded(const Instance& instance, const RegionSet& r,
                         const RegionSet& s) {
  std::vector<Region> out;
  for (const Region& x : r) {
    int idx = instance.TreeFind(x);
    if (idx < 0) continue;
    int p = instance.TreeParent(static_cast<size_t>(idx));
    if (p >= 0 && s.Member(instance.TreeRegion(static_cast<size_t>(p)))) {
      out.push_back(x);
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet BothIncluded(const RegionSet& r, const RegionSet& s,
                       const RegionSet& t) {
  ContainmentIndex s_index(s);
  ContainmentIndex t_index(t);
  std::vector<Region> out;
  for (const Region& x : r) {
    Offset first_s_end;
    Offset last_t_start;
    // Containment here is non-strict, but a non-strict witness (s == x or
    // t == x) can never satisfy s < t inside x, so the test below is exact
    // for the strict definition too.
    if (s_index.MinRightContainedIn(x, &first_s_end) &&
        t_index.MaxLeftContainedIn(x, &last_t_start) &&
        first_s_end < last_t_start) {
      out.push_back(x);
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

namespace naive {

RegionSet DirectIncluding(const Instance& instance, const RegionSet& r,
                          const RegionSet& s) {
  RegionSet all = instance.AllRegions();
  std::vector<Region> out;
  for (const Region& x : r) {
    bool keep = false;
    for (const Region& y : s) {
      if (!StrictlyIncludes(x, y)) continue;
      bool intervening = false;
      for (const Region& t : all) {
        if (StrictlyIncludes(x, t) && StrictlyIncludes(t, y)) {
          intervening = true;
          break;
        }
      }
      if (!intervening) {
        keep = true;
        break;
      }
    }
    if (keep) out.push_back(x);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet DirectIncluded(const Instance& instance, const RegionSet& r,
                         const RegionSet& s) {
  RegionSet all = instance.AllRegions();
  std::vector<Region> out;
  for (const Region& x : r) {
    bool keep = false;
    for (const Region& y : s) {
      if (!StrictlyIncludes(y, x)) continue;
      bool intervening = false;
      for (const Region& t : all) {
        if (StrictlyIncludes(y, t) && StrictlyIncludes(t, x)) {
          intervening = true;
          break;
        }
      }
      if (!intervening) {
        keep = true;
        break;
      }
    }
    if (keep) out.push_back(x);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet BothIncluded(const RegionSet& r, const RegionSet& s,
                       const RegionSet& t) {
  std::vector<Region> out;
  for (const Region& x : r) {
    bool keep = false;
    for (const Region& y : s) {
      if (!StrictlyIncludes(x, y)) continue;
      for (const Region& z : t) {
        if (StrictlyIncludes(x, z) && regal::Precedes(y, z)) {
          keep = true;
          break;
        }
      }
      if (keep) break;
    }
    if (keep) out.push_back(x);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

}  // namespace naive

RegionSet DirectIncludingLoop(const Instance& instance, const RegionSet& r1,
                              const RegionSet& r2, int* iterations) {
  // The first program of Section 6, verbatim:
  //   R1_layer := R1 - (R1 ⊂ R1); R1_rest := R1 - R1_layer; result := ∅;
  //   All := ∪_T T;
  //   while (R1_layer ⊃ R2) ≠ ∅ do
  //     result ∪= R1_layer ⊃ (R2 - (R2 ⊂ All ⊂ R1_layer));
  //     advance to the next nesting layer of R1;
  RegionSet layer = Difference(r1, Included(r1, r1));
  RegionSet rest = Difference(r1, layer);
  RegionSet result;
  RegionSet all = instance.AllRegions();
  if (iterations != nullptr) *iterations = 0;
  while (!Including(layer, r2).empty()) {
    if (iterations != nullptr) ++*iterations;
    RegionSet blocked = Included(r2, Included(all, layer));
    result = Union(result, Including(layer, Difference(r2, blocked)));
    layer = Difference(rest, Included(rest, rest));
    rest = Difference(rest, layer);
  }
  return result;
}

namespace {

// T(⊂T)^m, grouped from the right: m = 0 gives T itself; m = 1 gives
// T ⊂ T; m = 2 gives T ⊂ (T ⊂ T); i.e. the T regions with at least m
// proper T-ancestors.
RegionSet IncludedPower(const RegionSet& t, int m) {
  RegionSet x = t;
  for (int i = 0; i < m; ++i) x = Included(t, x);
  return x;
}

}  // namespace

Result<RegionSet> DirectChainLoop(
    const Instance& instance, const std::vector<std::string>& names,
    int* iterations, const std::vector<std::string>& restrict_all_to) {
  if (names.size() < 2) {
    return Status::InvalidArgument("a direct-inclusion chain needs >= 2 names");
  }
  const size_t n = names.size();
  REGAL_ASSIGN_OR_RETURN(const RegionSet* r1, instance.Get(names[0]));
  REGAL_ASSIGN_OR_RETURN(const RegionSet* rn, instance.Get(names[n - 1]));
  std::vector<const RegionSet*> middle;  // names[1] .. names[n-2].
  for (size_t i = 1; i + 1 < n; ++i) {
    REGAL_ASSIGN_OR_RETURN(const RegionSet* ri, instance.Get(names[i]));
    middle.push_back(ri);
  }

  // #_e^T: occurrences of T among R_2..R_{n-1}.
  std::map<std::string, int> multiplicity;
  for (size_t i = 1; i + 1 < n; ++i) ++multiplicity[names[i]];

  // All := ∪_T T(⊂T)^{#_e^T} — over all names, or over the separator
  // subset chosen by the RIG optimization when provided.
  const std::vector<std::string>& all_names =
      restrict_all_to.empty() ? instance.names() : restrict_all_to;
  RegionSet all;
  for (const std::string& t_name : all_names) {
    REGAL_ASSIGN_OR_RETURN(const RegionSet* t, instance.Get(t_name));
    auto it = multiplicity.find(t_name);
    int m = (it == multiplicity.end()) ? 0 : it->second;
    all = Union(all, IncludedPower(*t, m));
  }

  // The second program of Section 6, verbatim.
  RegionSet layer = Difference(*r1, Included(*r1, *r1));
  RegionSet rest = Difference(*r1, layer);
  RegionSet result;
  if (iterations != nullptr) *iterations = 0;
  while (!layer.empty()) {
    if (iterations != nullptr) ++*iterations;
    RegionSet inner =
        Difference(*rn, Included(*rn, Included(all, layer)));
    for (size_t i = middle.size(); i-- > 0;) {
      inner = Including(*middle[i], inner);
    }
    result = Union(result, Including(layer, inner));
    layer = Difference(rest, Included(rest, rest));
    rest = Difference(rest, layer);
  }
  return result;
}

Result<RegionSet> DirectChainStepwise(const Instance& instance,
                                      const std::vector<std::string>& names,
                                      int* iterations) {
  if (names.size() < 2) {
    return Status::InvalidArgument("a direct-inclusion chain needs >= 2 names");
  }
  if (iterations != nullptr) *iterations = 0;
  REGAL_ASSIGN_OR_RETURN(const RegionSet* last,
                         instance.Get(names[names.size() - 1]));
  RegionSet current = *last;
  for (size_t i = names.size() - 1; i-- > 0;) {
    REGAL_ASSIGN_OR_RETURN(const RegionSet* ri, instance.Get(names[i]));
    int step_iterations = 0;
    current = DirectIncludingLoop(instance, *ri, current, &step_iterations);
    if (iterations != nullptr) *iterations += step_iterations;
  }
  return current;
}

ExprPtr DirectIncludingBounded(const ExprPtr& e1, const ExprPtr& e2,
                               int max_depth,
                               const std::vector<std::string>& catalog_names) {
  // All regions of the instance, as an expression (Prop 5.2 proof sketch).
  ExprPtr all = Expr::Name(catalog_names[0]);
  for (size_t i = 1; i < catalog_names.size(); ++i) {
    all = Expr::Union(all, Expr::Name(catalog_names[i]));
  }
  // Nesting layers of e1: C_1 = e1, C_{i+1} = e1 ⊂ C_i (regions of e1 with
  // >= i proper e1-ancestors); L_i = C_i - C_{i+1} is non-nested, so the
  // paper's non-nested formula L ⊃ (R - (R ⊂ All ⊂ L)) applies per layer.
  ExprPtr result;
  ExprPtr c = e1;
  for (int i = 0; i < max_depth; ++i) {
    ExprPtr c_next = Expr::Included(e1, c);
    ExprPtr layer = Expr::Difference(c, c_next);
    ExprPtr blocked = Expr::Included(e2, Expr::Included(all, layer));
    ExprPtr term = Expr::Including(layer, Expr::Difference(e2, blocked));
    result = (result == nullptr) ? term : Expr::Union(result, term);
    c = c_next;
  }
  // max_depth == 0: the empty union, i.e. the empty set.
  if (result == nullptr) result = Expr::Difference(e1, e1);
  return result;
}

ExprPtr DirectIncludedBounded(const ExprPtr& e1, const ExprPtr& e2,
                              int max_depth,
                              const std::vector<std::string>& catalog_names) {
  ExprPtr all = Expr::Name(catalog_names[0]);
  for (size_t i = 1; i < catalog_names.size(); ++i) {
    all = Expr::Union(all, Expr::Name(catalog_names[i]));
  }
  // Nesting layers of e2 (the container side); r is directly included in a
  // layer region iff it is inside one with no instance region in between.
  ExprPtr result;
  ExprPtr c = e2;
  for (int i = 0; i < max_depth; ++i) {
    ExprPtr c_next = Expr::Included(e2, c);
    ExprPtr layer = Expr::Difference(c, c_next);
    ExprPtr term = Expr::Difference(
        Expr::Included(e1, layer),
        Expr::Included(e1, Expr::Included(all, layer)));
    result = (result == nullptr) ? term : Expr::Union(result, term);
    c = c_next;
  }
  if (result == nullptr) result = Expr::Difference(e1, e1);
  return result;
}

ExprPtr BothIncludedBounded(const ExprPtr& r, const ExprPtr& s,
                            const ExprPtr& t, int max_width) {
  // Order layers of U = s ∪ t: F_1 = U, F_{i+1} = U > F_i, so F_i holds the
  // U regions ending a chain of >= i pairwise disjoint U regions, and
  // L_i = F_i - F_{i+1} holds those whose longest such chain is exactly i.
  // When U is an antichain, s' ∈ L_i and t' ∈ L_j with i < j and both inside
  // the same region x satisfy s' < t' (see extended.h for the argument).
  ExprPtr u = Expr::Union(s, t);
  std::vector<ExprPtr> layers;
  ExprPtr f = u;
  for (int i = 0; i < max_width; ++i) {
    ExprPtr f_next = Expr::Follows(u, f);
    layers.push_back(Expr::Difference(f, f_next));
    f = f_next;
  }
  ExprPtr result;
  for (int i = 0; i < max_width; ++i) {
    ExprPtr s_in_i = Expr::Including(r, Expr::Intersect(s, layers[static_cast<size_t>(i)]));
    for (int j = i + 1; j < max_width; ++j) {
      ExprPtr t_in_j =
          Expr::Including(r, Expr::Intersect(t, layers[static_cast<size_t>(j)]));
      ExprPtr term = Expr::Intersect(s_in_i, t_in_j);
      result = (result == nullptr) ? term : Expr::Union(result, term);
    }
  }
  // max_width < 2 leaves no (i, j) pair: the empty set.
  if (result == nullptr) result = Expr::Difference(r, r);
  return result;
}

}  // namespace regal
