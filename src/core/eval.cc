#include "core/eval.h"

#include "core/algebra.h"
#include "core/extended.h"

namespace regal {

const char* ExprSpanName(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kName:
      return "scan";
    case OpKind::kUnion:
      return "union";
    case OpKind::kIntersect:
      return "intersect";
    case OpKind::kDifference:
      return "difference";
    default:
      return OpKindToken(e.kind());
  }
}

std::string ExprSpanDetail(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kName:
      return e.name();
    case OpKind::kSelect:
    case OpKind::kWordMatch:
      return "\"" + e.pattern().body() + "\"";
    default:
      return "";
  }
}

Result<RegionSet> Evaluator::Evaluate(const ExprPtr& e) {
  memo_.clear();
  return Eval(e);
}

Result<RegionSet> Evaluator::Eval(const ExprPtr& e) {
  obs::SpanScope span(options_.tracer, ExprSpanName(*e),
                      options_.tracer != nullptr ? ExprSpanDetail(*e) : "");
  auto hit = memo_.find(e.get());
  if (hit != memo_.end()) {
    span.MarkCached();
    span.SetRows(0, static_cast<int64_t>(hit->second.size()));
    return hit->second;
  }

  RegionSet result;
  int64_t rows_in = 0;
  switch (e->kind()) {
    case OpKind::kName: {
      if (options_.bindings != nullptr) {
        auto it = options_.bindings->find(e->name());
        if (it != options_.bindings->end()) {
          result = it->second;
          break;
        }
      }
      REGAL_ASSIGN_OR_RETURN(const RegionSet* set, instance_->Get(e->name()));
      result = *set;
      break;
    }
    case OpKind::kWordMatch: {
      if (instance_->word_index() == nullptr) {
        return Status::FailedPrecondition(
            "'word' queries need a text-backed instance");
      }
      ++stats_.operator_evals;
      std::vector<Region> tokens;
      for (const Token& t : instance_->word_index()->Matches(e->pattern())) {
        tokens.push_back(Region{t.left, t.right});
      }
      result = RegionSet::FromUnsorted(std::move(tokens));
      break;
    }
    case OpKind::kSelect: {
      REGAL_ASSIGN_OR_RETURN(RegionSet child, Eval(e->child(0)));
      ++stats_.operator_evals;
      rows_in = static_cast<int64_t>(child.size());
      stats_.rows_scanned += rows_in;
      result = instance_->Select(child, e->pattern());
      break;
    }
    case OpKind::kBothIncluded: {
      REGAL_ASSIGN_OR_RETURN(RegionSet r, Eval(e->child(0)));
      REGAL_ASSIGN_OR_RETURN(RegionSet s, Eval(e->child(1)));
      REGAL_ASSIGN_OR_RETURN(RegionSet t, Eval(e->child(2)));
      ++stats_.operator_evals;
      rows_in = static_cast<int64_t>(r.size() + s.size() + t.size());
      stats_.rows_scanned += rows_in;
      result = options_.use_naive ? naive::BothIncluded(r, s, t)
                                  : BothIncluded(r, s, t);
      break;
    }
    default: {
      REGAL_ASSIGN_OR_RETURN(RegionSet a, Eval(e->child(0)));
      REGAL_ASSIGN_OR_RETURN(RegionSet b, Eval(e->child(1)));
      ++stats_.operator_evals;
      rows_in = static_cast<int64_t>(a.size() + b.size());
      stats_.rows_scanned += rows_in;
      const bool naive_mode = options_.use_naive;
      switch (e->kind()) {
        case OpKind::kUnion:
          result = naive_mode ? naive::Union(a, b) : Union(a, b);
          break;
        case OpKind::kIntersect:
          result = naive_mode ? naive::Intersect(a, b) : Intersect(a, b);
          break;
        case OpKind::kDifference:
          result = naive_mode ? naive::Difference(a, b) : Difference(a, b);
          break;
        case OpKind::kIncluding:
          result = naive_mode ? naive::Including(a, b) : Including(a, b);
          break;
        case OpKind::kIncluded:
          result = naive_mode ? naive::Included(a, b) : Included(a, b);
          break;
        case OpKind::kPrecedes:
          result = naive_mode ? naive::Precedes(a, b) : Precedes(a, b);
          break;
        case OpKind::kFollows:
          result = naive_mode ? naive::Follows(a, b) : Follows(a, b);
          break;
        case OpKind::kDirectIncluding:
          result = naive_mode ? naive::DirectIncluding(*instance_, a, b)
                              : DirectIncluding(*instance_, a, b);
          break;
        case OpKind::kDirectIncluded:
          result = naive_mode ? naive::DirectIncluded(*instance_, a, b)
                              : DirectIncluded(*instance_, a, b);
          break;
        default:
          return Status::Internal("unexpected operator kind in Eval");
      }
      break;
    }
  }
  stats_.rows_produced += static_cast<int64_t>(result.size());
  span.SetRows(rows_in, static_cast<int64_t>(result.size()));
  memo_.emplace(e.get(), result);
  return result;
}

Result<RegionSet> Evaluate(const Instance& instance, const ExprPtr& e,
                           EvalOptions options) {
  Evaluator evaluator(&instance, options);
  return evaluator.Evaluate(e);
}

}  // namespace regal
