#include "core/eval.h"

#include <optional>
#include <utility>

#include "core/algebra.h"
#include "core/extended.h"
#include "exec/thread_pool.h"
#include "safety/failpoint.h"

namespace regal {

namespace {

/// Non-owning view of a set owned by the instance or the bindings map (both
/// outlive the evaluation): the aliasing constructor with an empty owner
/// yields a shared_ptr that never copies or frees the set.
std::shared_ptr<const RegionSet> Borrow(const RegionSet* set) {
  return std::shared_ptr<const RegionSet>(std::shared_ptr<const RegionSet>(),
                                          set);
}

std::shared_ptr<const RegionSet> Adopt(RegionSet set) {
  return std::make_shared<const RegionSet>(std::move(set));
}

bool IsLeaf(const Expr& e) {
  return e.kind() == OpKind::kName || e.kind() == OpKind::kWordMatch;
}

}  // namespace

const char* ExprSpanName(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kName:
      return "scan";
    case OpKind::kUnion:
      return "union";
    case OpKind::kIntersect:
      return "intersect";
    case OpKind::kDifference:
      return "difference";
    default:
      return OpKindToken(e.kind());
  }
}

std::string ExprSpanDetail(const Expr& e) {
  switch (e.kind()) {
    case OpKind::kName:
      return e.name();
    case OpKind::kSelect:
    case OpKind::kWordMatch:
      return "\"" + e.pattern().body() + "\"";
    default:
      return "";
  }
}

Result<RegionSet> Evaluator::Evaluate(const ExprPtr& e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memo_.clear();
  }
  if (options_.result_cache != nullptr) {
    std::lock_guard<std::mutex> lock(canon_mu_);
    cache_epoch_ = instance_->epoch();
  }
  REGAL_ASSIGN_OR_RETURN(SharedSet result, Eval(e));
  // A partitioned kernel whose chunks saw ShouldAbort() bails and leaves a
  // truncated set; under the ROOT operator there is no later operator
  // boundary to surface the violation. Abort conditions are monotone, so
  // one final Check() here turns any such partial result into the proper
  // non-OK Status instead of a silently wrong answer.
  if (options_.context != nullptr) {
    REGAL_RETURN_NOT_OK(options_.context->Check());
  }
  return *result;
}

bool Evaluator::SubtreeParallelismEnabled() const {
  // Span trees are strictly nested per thread, so a Tracer pins evaluation
  // to the coordinating thread (parallel *kernels* stay available: they
  // flush their counters on the coordinating thread).
  return options_.parallel != nullptr && options_.parallel->parallel_subtrees &&
         options_.tracer == nullptr;
}

Result<Evaluator::SharedSet> Evaluator::Eval(const ExprPtr& e) {
  obs::SpanScope span(options_.tracer, ExprSpanName(*e),
                      options_.tracer != nullptr ? ExprSpanDetail(*e) : "");
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = memo_.find(e.get());
    if (it != memo_.end()) {
      MemoEntry& entry = it->second;
      memo_cv_.wait(lock, [&] { return entry.ready; });
      if (!entry.status.ok()) return entry.status;
      span.MarkCached();
      span.SetRows(0, static_cast<int64_t>(entry.value->size()));
      return entry.value;
    }
    memo_.emplace(e.get(), MemoEntry{});  // Claim the slot; others wait.
  }

  // Cross-query cache probe (first arrival only — the memo guarantees one
  // probe per node per query). Name scans are borrowed from the instance
  // for free and the naive oracle must stay a pure re-execution, so
  // neither participates.
  const bool cacheable = options_.result_cache != nullptr &&
                         !options_.use_naive && e->kind() != OpKind::kName;
  cache::ResultCache::Key cache_key;
  ExprPtr canonical;
  if (cacheable) {
    {
      std::lock_guard<std::mutex> lock(canon_mu_);
      canonical = canonicalizer_.Canonical(e);
      cache_key = cache::ResultCache::Key{instance_->id(), cache_epoch_,
                                          canonicalizer_.Hash(e)};
    }
    std::shared_ptr<const RegionSet> hit = options_.result_cache->Lookup(
        cache_key, canonical, options_.cache_stats);
    if (hit != nullptr) {
      // Seed the memo so every further mention short-circuits, and charge
      // the set against the budget — it is part of this query's live
      // footprint whether computed or recalled.
      Result<SharedSet> seeded = SharedSet(hit);
      if (options_.context != nullptr) {
        Status charged = options_.context->ChargeMemory(
            static_cast<int64_t>(hit->size() * sizeof(Region)));
        if (!charged.ok()) seeded = charged;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        MemoEntry& entry = memo_[e.get()];
        if (seeded.ok()) {
          entry.value = seeded.value();
        } else {
          entry.status = seeded.status();
        }
        entry.ready = true;
      }
      memo_cv_.notify_all();
      if (seeded.ok()) {
        span.MarkCached();
        span.SetRows(0, static_cast<int64_t>(hit->size()));
      }
      return seeded;
    }
  }

  int64_t rows_in = 0;
  Result<SharedSet> result = EvalNode(e, &rows_in);
  // Charge materialized results (leaf name scans are borrowed from the
  // instance, not new memory) so a runaway intermediate trips the budget at
  // the node that produced it.
  if (result.ok() && options_.context != nullptr &&
      e->kind() != OpKind::kName) {
    Status charged = options_.context->ChargeMemory(
        static_cast<int64_t>(result.value()->size() * sizeof(Region)));
    if (!charged.ok()) result = charged;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MemoEntry& entry = memo_[e.get()];
    if (result.ok()) {
      entry.value = result.value();
      stats_.rows_produced += static_cast<int64_t>(entry.value->size());
    } else {
      entry.status = result.status();
    }
    entry.ready = true;
  }
  memo_cv_.notify_all();
  if (result.ok()) {
    span.SetRows(rows_in, static_cast<int64_t>(result.value()->size()));
    // Publish to the shared cache — but never from a query whose context
    // has tripped: abort conditions are monotone and a partitioned kernel
    // that saw ShouldAbort() mid-chunk leaves a truncated set, which must
    // not outlive this (failing) query.
    if (cacheable && (options_.context == nullptr ||
                      !options_.context->ShouldAbort())) {
      options_.result_cache->Insert(cache_key, canonical, result.value(),
                                    options_.cache_stats);
    }
  }
  return result;
}

Status Evaluator::EvalChildren(const ExprPtr& e, SharedSet* a, SharedSet* b) {
  const ExprPtr& left = e->child(0);
  const ExprPtr& right = e->child(1);
  // Concurrency only pays when both sides have operator work; a leaf child
  // is a memo/borrow lookup.
  if (SubtreeParallelismEnabled() && !IsLeaf(*left) && !IsLeaf(*right)) {
    // Failpoint: a fault while handing a subtree to the pool must surface
    // as a Status, not a lost task or a stuck Wait().
    REGAL_RETURN_NOT_OK(safety::CheckFailpoint("exec.pool.subtree"));
    exec::ThreadPool& pool = options_.parallel->pool != nullptr
                                 ? *options_.parallel->pool
                                 : exec::ThreadPool::Default();
    std::optional<Result<SharedSet>> left_result;
    exec::ThreadPool::TaskHandle task =
        pool.Submit([this, &left, &left_result] {
          left_result.emplace(Eval(left));
        });
    Result<SharedSet> right_result = Eval(right);
    task.Wait();
    // Prefer the left error so the surfaced diagnostic is deterministic.
    if (!left_result->ok()) return left_result->status();
    if (!right_result.ok()) return right_result.status();
    *a = std::move(*left_result).value();
    *b = std::move(right_result).value();
    return Status::OK();
  }
  REGAL_ASSIGN_OR_RETURN(*a, Eval(left));
  REGAL_ASSIGN_OR_RETURN(*b, Eval(right));
  return Status::OK();
}

Result<Evaluator::SharedSet> Evaluator::EvalNode(const ExprPtr& e,
                                                 int64_t* rows_in) {
  // Operator-boundary checkpoint: cancellation, deadline and budget are
  // polled once per executed node, bounding the time from a violated limit
  // to a clean non-OK return by one operator's work.
  if (options_.context != nullptr) {
    REGAL_RETURN_NOT_OK(options_.context->Check());
  }
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint("eval.node"));
  switch (e->kind()) {
    case OpKind::kName: {
      if (options_.bindings != nullptr) {
        auto it = options_.bindings->find(e->name());
        if (it != options_.bindings->end()) return Borrow(&it->second);
      }
      REGAL_ASSIGN_OR_RETURN(const RegionSet* set, instance_->Get(e->name()));
      return Borrow(set);
    }
    case OpKind::kWordMatch: {
      if (instance_->word_index() == nullptr) {
        return Status::FailedPrecondition(
            "'word' queries need a text-backed instance");
      }
      std::vector<Token> matches = instance_->word_index()->Matches(e->pattern());
      std::vector<Region> tokens;
      tokens.reserve(matches.size());
      for (const Token& t : matches) tokens.push_back(Region{t.left, t.right});
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.operator_evals;
      }
      return Adopt(RegionSet::FromUnsorted(std::move(tokens)));
    }
    case OpKind::kSelect: {
      REGAL_ASSIGN_OR_RETURN(SharedSet child, Eval(e->child(0)));
      *rows_in = static_cast<int64_t>(child->size());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.operator_evals;
        stats_.rows_scanned += *rows_in;
      }
      const ParallelEvalPolicy* pp = options_.parallel;
      if (pp != nullptr && instance_->word_index() != nullptr &&
          !options_.use_naive) {
        REGAL_RETURN_NOT_OK(safety::CheckFailpoint("exec.kernel.fault"));
        exec::ParallelConfig cfg{pp->pool, pp->min_rows, 0, options_.context,
                                 options_.kernel_fallbacks};
        return Adopt(exec::ParallelSelectByTokens(
            *child, instance_->word_index()->Matches(e->pattern()), cfg));
      }
      return Adopt(instance_->Select(*child, e->pattern()));
    }
    case OpKind::kBothIncluded: {
      REGAL_ASSIGN_OR_RETURN(SharedSet r, Eval(e->child(0)));
      REGAL_ASSIGN_OR_RETURN(SharedSet s, Eval(e->child(1)));
      REGAL_ASSIGN_OR_RETURN(SharedSet t, Eval(e->child(2)));
      *rows_in = static_cast<int64_t>(r->size() + s->size() + t->size());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.operator_evals;
        stats_.rows_scanned += *rows_in;
      }
      return Adopt(options_.use_naive ? naive::BothIncluded(*r, *s, *t)
                                      : BothIncluded(*r, *s, *t));
    }
    default: {
      SharedSet sa, sb;
      REGAL_RETURN_NOT_OK(EvalChildren(e, &sa, &sb));
      const RegionSet& a = *sa;
      const RegionSet& b = *sb;
      *rows_in = static_cast<int64_t>(a.size() + b.size());
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.operator_evals;
        stats_.rows_scanned += *rows_in;
      }
      const bool naive_mode = options_.use_naive;
      const ParallelEvalPolicy* pp = naive_mode ? nullptr : options_.parallel;
      exec::ParallelConfig cfg;
      if (pp != nullptr) {
        REGAL_RETURN_NOT_OK(safety::CheckFailpoint("exec.kernel.fault"));
        cfg = exec::ParallelConfig{pp->pool, pp->min_rows, 0, options_.context,
                                   options_.kernel_fallbacks};
      }
      RegionSet result;
      switch (e->kind()) {
        case OpKind::kUnion:
          result = naive_mode ? naive::Union(a, b)
                   : pp != nullptr ? exec::ParallelUnion(a, b, cfg)
                                   : Union(a, b);
          break;
        case OpKind::kIntersect:
          result = naive_mode ? naive::Intersect(a, b)
                   : pp != nullptr ? exec::ParallelIntersect(a, b, cfg)
                                   : Intersect(a, b);
          break;
        case OpKind::kDifference:
          result = naive_mode ? naive::Difference(a, b)
                   : pp != nullptr ? exec::ParallelDifference(a, b, cfg)
                                   : Difference(a, b);
          break;
        case OpKind::kIncluding:
          result = naive_mode ? naive::Including(a, b)
                   : pp != nullptr ? exec::ParallelIncluding(a, b, cfg)
                                   : Including(a, b);
          break;
        case OpKind::kIncluded:
          result = naive_mode ? naive::Included(a, b)
                   : pp != nullptr ? exec::ParallelIncluded(a, b, cfg)
                                   : Included(a, b);
          break;
        case OpKind::kPrecedes:
          result = naive_mode ? naive::Precedes(a, b)
                   : pp != nullptr ? exec::ParallelPrecedes(a, b, cfg)
                                   : Precedes(a, b);
          break;
        case OpKind::kFollows:
          result = naive_mode ? naive::Follows(a, b)
                   : pp != nullptr ? exec::ParallelFollows(a, b, cfg)
                                   : Follows(a, b);
          break;
        case OpKind::kDirectIncluding:
          result = naive_mode ? naive::DirectIncluding(*instance_, a, b)
                              : DirectIncluding(*instance_, a, b);
          break;
        case OpKind::kDirectIncluded:
          result = naive_mode ? naive::DirectIncluded(*instance_, a, b)
                              : DirectIncluded(*instance_, a, b);
          break;
        default:
          return Status::Internal("unexpected operator kind in Eval");
      }
      return Adopt(std::move(result));
    }
  }
}

Result<RegionSet> Evaluate(const Instance& instance, const ExprPtr& e,
                           EvalOptions options) {
  Evaluator evaluator(&instance, options);
  return evaluator.Evaluate(e);
}

}  // namespace regal
