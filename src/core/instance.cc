#include "core/instance.h"

#include <algorithm>
#include <atomic>

#include "core/algebra.h"

namespace regal {

uint64_t Instance::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Instance Instance::Clone() const {
  Instance out;
  out.names_ = names_;
  out.name_to_id_ = name_to_id_;
  out.sets_ = sets_;
  out.text_ = text_;
  out.word_index_ = word_index_;
  out.synthetic_w_ = synthetic_w_;
  return out;
}

Status Instance::AddRegionSet(const std::string& name, RegionSet regions) {
  if (name_to_id_.count(name) > 0) {
    return Status::AlreadyExists("region name '" + name + "' already defined");
  }
  name_to_id_[name] = names_.size();
  names_.push_back(name);
  sets_.push_back(std::move(regions));
  tree_built_ = false;
  ++epoch_;
  return Status::OK();
}

void Instance::SetRegionSet(const std::string& name, RegionSet regions) {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) {
    name_to_id_[name] = names_.size();
    names_.push_back(name);
    sets_.push_back(std::move(regions));
  } else {
    sets_[it->second] = std::move(regions);
  }
  tree_built_ = false;
  ++epoch_;
}

Result<const RegionSet*> Instance::Get(const std::string& name) const {
  auto it = name_to_id_.find(name);
  if (it == name_to_id_.end()) {
    return Status::NotFound("region name '" + name + "' is not defined");
  }
  return &sets_[it->second];
}

bool Instance::Has(const std::string& name) const {
  return name_to_id_.count(name) > 0;
}

RegionSet Instance::AllRegions() const {
  EnsureTree();
  return RegionSet::FromSortedUnique(tree_regions_);
}

size_t Instance::NumRegions() const {
  size_t total = 0;
  for (const RegionSet& s : sets_) total += s.size();
  return total;
}

void Instance::BindText(std::shared_ptr<const Text> text,
                        std::shared_ptr<const WordIndex> index) {
  text_ = std::move(text);
  word_index_ = std::move(index);
  ++epoch_;  // Selections and word matches now answer differently.
}

void Instance::SetSyntheticPattern(const Pattern& p,
                                   RegionSet regions_where_true) {
  synthetic_w_[p.CacheKey()] = std::move(regions_where_true);
  ++epoch_;
}

RegionSet Instance::Select(const RegionSet& r, const Pattern& p) const {
  if (word_index_ != nullptr) {
    return SelectByTokens(r, word_index_->Matches(p));
  }
  auto it = synthetic_w_.find(p.CacheKey());
  if (it == synthetic_w_.end()) return RegionSet();
  return Intersect(r, it->second);
}

bool Instance::W(const Region& r, const Pattern& p) const {
  if (word_index_ != nullptr) {
    return word_index_->Contains(r.left, r.right, p);
  }
  auto it = synthetic_w_.find(p.CacheKey());
  return it != synthetic_w_.end() && it->second.Member(r);
}

Status Instance::Validate() const {
  // Each region in exactly one name: collect all and look for duplicates.
  std::vector<Region> all;
  all.reserve(NumRegions());
  for (const RegionSet& s : sets_) {
    for (const Region& r : s) {
      if (r.left > r.right) {
        return Status::FailedPrecondition("region " + regal::ToString(r) +
                                          " has left > right");
      }
      all.push_back(r);
    }
  }
  std::sort(all.begin(), all.end(), RegionDocumentOrder());
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i] == all[i - 1]) {
      return Status::FailedPrecondition(
          "region " + regal::ToString(all[i]) +
          " appears twice (regions must belong to exactly one name)");
    }
  }
  RegionSet combined = RegionSet::FromSortedUnique(std::move(all));
  if (!combined.IsLaminar()) {
    return Status::FailedPrecondition(
        "instance is not hierarchical: two regions partially overlap");
  }
  return Status::OK();
}

void Instance::EnsureTree() const {
  if (tree_built_) return;
  struct Entry {
    Region region;
    int name_id;
  };
  std::vector<Entry> entries;
  entries.reserve(NumRegions());
  for (size_t id = 0; id < sets_.size(); ++id) {
    for (const Region& r : sets_[id]) {
      entries.push_back(Entry{r, static_cast<int>(id)});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return RegionDocumentOrder()(a.region, b.region);
  });
  const size_t n = entries.size();
  tree_regions_.resize(n);
  tree_name_ids_.resize(n);
  tree_parents_.assign(n, -1);
  tree_depth_ = 0;
  std::vector<int> open;  // Stack of indices of currently-open ancestors.
  for (size_t i = 0; i < n; ++i) {
    tree_regions_[i] = entries[i].region;
    tree_name_ids_[i] = entries[i].name_id;
    while (!open.empty() &&
           tree_regions_[static_cast<size_t>(open.back())].right <
               entries[i].region.left) {
      open.pop_back();
    }
    if (!open.empty()) tree_parents_[i] = open.back();
    open.push_back(static_cast<int>(i));
    tree_depth_ = std::max(tree_depth_, static_cast<int>(open.size()));
  }
  tree_built_ = true;
}

size_t Instance::TreeSize() const {
  EnsureTree();
  return tree_regions_.size();
}

const Region& Instance::TreeRegion(size_t i) const {
  EnsureTree();
  return tree_regions_[i];
}

int Instance::TreeNameId(size_t i) const {
  EnsureTree();
  return tree_name_ids_[i];
}

int Instance::TreeParent(size_t i) const {
  EnsureTree();
  return tree_parents_[i];
}

int Instance::TreeFind(const Region& r) const {
  EnsureTree();
  auto it = std::lower_bound(tree_regions_.begin(), tree_regions_.end(), r,
                             RegionDocumentOrder());
  if (it == tree_regions_.end() || !(*it == r)) return -1;
  return static_cast<int>(it - tree_regions_.begin());
}

int Instance::TreeDepth() const {
  EnsureTree();
  return tree_depth_;
}

Digraph Instance::DeriveRig() const {
  EnsureTree();
  Digraph g;
  for (const std::string& name : names_) g.AddNode(name);
  for (size_t i = 0; i < tree_regions_.size(); ++i) {
    int p = tree_parents_[i];
    if (p >= 0) {
      g.AddEdge(static_cast<Digraph::NodeId>(tree_name_ids_[static_cast<size_t>(p)]),
                static_cast<Digraph::NodeId>(tree_name_ids_[i]));
    }
  }
  return g;
}

Digraph Instance::DeriveRog() const {
  EnsureTree();
  Digraph g;
  for (const std::string& name : names_) g.AddNode(name);
  // Regions sorted by right endpoint, for "everything ending before x".
  std::vector<size_t> by_right(tree_regions_.size());
  for (size_t i = 0; i < by_right.size(); ++i) by_right[i] = i;
  std::sort(by_right.begin(), by_right.end(), [&](size_t a, size_t b) {
    return tree_regions_[a].right < tree_regions_[b].right;
  });
  std::vector<Offset> rights_sorted;
  std::vector<Offset> prefix_max_left;  // Max left among by_right[0..i].
  rights_sorted.reserve(by_right.size());
  Offset running = -1;
  for (size_t i : by_right) {
    rights_sorted.push_back(tree_regions_[i].right);
    running = std::max(running, tree_regions_[i].left);
    prefix_max_left.push_back(running);
  }
  for (size_t s = 0; s < tree_regions_.size(); ++s) {
    const Region& rs = tree_regions_[s];
    // B = regions ending strictly before left(rs); r directly precedes rs
    // iff r in B and right(r) >= L* where L* = max left endpoint in B
    // (otherwise some region lies wholly between r and rs).
    auto hi = std::lower_bound(rights_sorted.begin(), rights_sorted.end(),
                               rs.left);
    if (hi == rights_sorted.begin()) continue;
    size_t count = static_cast<size_t>(hi - rights_sorted.begin());
    Offset l_star = prefix_max_left[count - 1];
    auto lo = std::lower_bound(rights_sorted.begin(), hi, l_star);
    for (auto it = lo; it != hi; ++it) {
      size_t r = by_right[static_cast<size_t>(it - rights_sorted.begin())];
      g.AddEdge(static_cast<Digraph::NodeId>(tree_name_ids_[r]),
                static_cast<Digraph::NodeId>(tree_name_ids_[s]));
    }
  }
  return g;
}

}  // namespace regal
