// Scalar instantiation of the shared kernel body. This is the oracle tier:
// every vector variant must match its output bit for bit and its counters
// exactly, and it is the only tier built on non-x86 targets.

#include "core/simd/simd_variants.h"

#define REGAL_ISA_ATTR
#define REGAL_ISA_NS scalar
#define REGAL_ISA_LEVEL 0

#include "core/simd/kernels_body.inc"
