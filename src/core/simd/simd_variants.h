// Internal: entry points of the per-ISA kernel variant translation units.
// Each namespace below is one inclusion of kernels_body.inc compiled with a
// different (per-function) target attribute; simd_kernels.cc assembles them
// into KernelTables. Only simd_kernels.cc and the variant TUs include this.

#ifndef REGAL_CORE_SIMD_SIMD_VARIANTS_H_
#define REGAL_CORE_SIMD_SIMD_VARIANTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/region.h"
#include "obs/counters.h"

// The SSE4.2 / AVX2 variants exist only where GCC-style per-function target
// attributes and x86 intrinsics do; elsewhere the scalar set serves every
// tier (util::CpuInfo reports no features there, so dispatch never asks for
// more).
#if defined(__x86_64__) && defined(__GNUC__)
#define REGAL_SIMD_X86 1
#endif

namespace regal {
namespace simd {

// The declarations carry the same per-function target attribute as the
// definitions (GCC merges attributes across declarations; keeping them
// identical avoids any ambiguity about which ISA a symbol may use).
#define REGAL_SIMD_DECLARE_VARIANT(ns, attr)                                   \
  namespace ns {                                                               \
  attr void UnionSpan(const Region* rb, const Region* re, const Region* sb,    \
                      const Region* se, std::vector<Region>* out,              \
                      obs::OpCounters* counters);                              \
  attr void IntersectSpan(const Region* rb, const Region* re,                  \
                          const Region* sb, const Region* se,                  \
                          std::vector<Region>* out, obs::OpCounters* counters);\
  attr void DifferenceSpan(const Region* rb, const Region* re,                 \
                           const Region* sb, const Region* se,                 \
                           std::vector<Region>* out,                           \
                           obs::OpCounters* counters);                         \
  attr const Region* GallopLowerBound(const Region* first, const Region* last, \
                                      const Region& v, int64_t* comparisons);  \
  attr void FilterRightBefore(const Region* b, size_t n, Offset bound,         \
                              std::vector<Region>* out);                       \
  attr void FilterLeftAfter(const Region* b, size_t n, Offset bound,           \
                            std::vector<Region>* out);                         \
  attr Offset MinRight(const Region* b, size_t n);                             \
  attr void LowerBoundOffsets(const Offset* arr, size_t n, const Offset* q,    \
                              size_t m, uint32_t* out);                        \
  }  // namespace ns

#define REGAL_SIMD_NO_ATTR

REGAL_SIMD_DECLARE_VARIANT(scalar, REGAL_SIMD_NO_ATTR)
#ifdef REGAL_SIMD_X86
REGAL_SIMD_DECLARE_VARIANT(sse4, __attribute__((target("sse4.2"))))
REGAL_SIMD_DECLARE_VARIANT(avx2, __attribute__((target("avx2"))))
#endif

#undef REGAL_SIMD_NO_ATTR
#undef REGAL_SIMD_DECLARE_VARIANT

}  // namespace simd
}  // namespace regal

#endif  // REGAL_CORE_SIMD_SIMD_VARIANTS_H_
