// SSE4.2 instantiation of the shared kernel body (pcmpgtq for the 64-bit
// document-order key compares, pshufb for left-packing filters). Compiled
// with per-function target attributes, so this TU is safe to link into a
// binary that must also run on pre-SSE4.2 machines: the dispatcher simply
// never calls these symbols there.

#include "core/simd/simd_variants.h"

#ifdef REGAL_SIMD_X86

#include <immintrin.h>

#define REGAL_ISA_ATTR __attribute__((target("sse4.2")))
#define REGAL_ISA_NS sse4
#define REGAL_ISA_LEVEL 1

#include "core/simd/kernels_body.inc"

#endif  // REGAL_SIMD_X86
