// AVX2 instantiation of the shared kernel body: 4 regions per ymm compare,
// 8-wide gathers in the batched lower bound, permutevar8x32 left-packing in
// the endpoint filters. Per-function target attributes keep the rest of the
// binary baseline; util::CpuInfo gates whether these symbols are ever called
// (including the xgetbv check for OS ymm-state support).

#include "core/simd/simd_variants.h"

#ifdef REGAL_SIMD_X86

#include <immintrin.h>

#define REGAL_ISA_ATTR __attribute__((target("avx2")))
#define REGAL_ISA_NS avx2
#define REGAL_ISA_LEVEL 2

#include "core/simd/kernels_body.inc"

#endif  // REGAL_SIMD_X86
