#include "core/simd/simd_kernels.h"

#include <cstdlib>
#include <cstring>

#include "core/simd/simd_variants.h"
#include "util/cpu.h"

namespace regal {
namespace simd {

namespace {

#define REGAL_SIMD_TABLE_ENTRIES(ns)                                        \
  &ns::UnionSpan, &ns::IntersectSpan, &ns::DifferenceSpan,                  \
      &ns::GallopLowerBound, &ns::FilterRightBefore, &ns::FilterLeftAfter,  \
      &ns::MinRight, &ns::LowerBoundOffsets

constexpr KernelTable kScalarTable = {Isa::kScalar, "scalar",
                                      REGAL_SIMD_TABLE_ENTRIES(scalar)};

#ifdef REGAL_SIMD_X86
constexpr KernelTable kSse4Table = {Isa::kSse4, "sse4",
                                    REGAL_SIMD_TABLE_ENTRIES(sse4)};
constexpr KernelTable kAvx2Table = {Isa::kAvx2, "avx2",
                                    REGAL_SIMD_TABLE_ENTRIES(avx2)};
#endif

#undef REGAL_SIMD_TABLE_ENTRIES

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

const KernelTable& KernelsFor(Isa isa) {
#ifdef REGAL_SIMD_X86
  const util::CpuFeatures& f = util::CpuInfo();
  // Degrade to the best tier at or below the request that the CPU supports;
  // the caller never has to care whether the hardware keeps up.
  if (isa == Isa::kAvx2 && f.avx2) return kAvx2Table;
  if (isa >= Isa::kSse4 && f.sse42) return kSse4Table;
#else
  (void)isa;
#endif
  return kScalarTable;
}

Isa ResolveIsa(const char* override_value, const util::CpuFeatures& features) {
  const Isa best = features.avx2   ? Isa::kAvx2
                   : features.sse42 ? Isa::kSse4
                                    : Isa::kScalar;
  if (override_value == nullptr || *override_value == '\0') return best;
  Isa wanted = best;  // Unrecognized values are ignored, not fatal.
  if (std::strcmp(override_value, "scalar") == 0) {
    wanted = Isa::kScalar;
  } else if (std::strcmp(override_value, "sse4") == 0) {
    wanted = Isa::kSse4;
  } else if (std::strcmp(override_value, "avx2") == 0) {
    wanted = Isa::kAvx2;
  }
  // Clamp to hardware: asking for more than the CPU has falls back to best.
  return wanted <= best ? wanted : best;
}

const KernelTable& ActiveKernels() {
  static const KernelTable& table =
      KernelsFor(ResolveIsa(std::getenv("REGAL_SIMD"), util::CpuInfo()));
  return table;
}

}  // namespace simd
}  // namespace regal
