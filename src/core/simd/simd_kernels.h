#ifndef REGAL_CORE_SIMD_SIMD_KERNELS_H_
#define REGAL_CORE_SIMD_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/region.h"
#include "obs/counters.h"
#include "util/cpu.h"

namespace regal {
namespace simd {

/// The vector lanes load Region pairs as raw 64-bit words and reorder them
/// into sortable keys with fixed shuffles, so the kernels are only correct
/// for exactly this layout. A future field addition must fail here at
/// compile time, not silently corrupt SIMD results.
static_assert(sizeof(Region) == 8,
              "SIMD kernels assume Region is exactly {int32 left, int32 "
              "right}; update core/simd before changing the layout");
static_assert(sizeof(Offset) == 4 && std::is_signed_v<Offset>,
              "SIMD kernels assume Offset is a signed 32-bit integer");
static_assert(offsetof(Region, left) == 0 && offsetof(Region, right) == 4,
              "SIMD kernels assume left precedes right within Region");
static_assert(std::is_trivially_copyable_v<Region>,
              "SIMD kernels bulk-copy Region with vector stores");

/// Instruction-set tiers of the kernel layer, worst to best. `kSse4` means
/// SSE4.2 (pcmpgtq is the instruction the 128-bit merges need).
enum class Isa { kScalar = 0, kSse4 = 1, kAvx2 = 2 };

inline const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kSse4:
      return "sse4";
    case Isa::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

/// One resolved set of kernel entry points. Every variant is bit-identical
/// in output and exact in counters to the scalar set: the loop structure
/// (gallop decision points, dense-burst budgets, charge formulas) is shared
/// source compiled per ISA, and only the data-parallel primitives differ.
struct KernelTable {
  Isa isa;
  const char* name;

  /// Sorted-span set merges (see core/algebra_kernels.h for the contract).
  void (*union_span)(const Region* rb, const Region* re, const Region* sb,
                     const Region* se, std::vector<Region>* out,
                     obs::OpCounters* counters);
  void (*intersect_span)(const Region* rb, const Region* re, const Region* sb,
                         const Region* se, std::vector<Region>* out,
                         obs::OpCounters* counters);
  void (*difference_span)(const Region* rb, const Region* re, const Region* sb,
                          const Region* se, std::vector<Region>* out,
                          obs::OpCounters* counters);

  /// Lower bound by document order via exponential search; the binary phase
  /// charges the deterministic ⌈log2(window)⌉ regardless of how it probes.
  const Region* (*gallop_lower_bound)(const Region* first, const Region* last,
                                      const Region& v, int64_t* comparisons);

  /// Order-preserving endpoint filters behind the ordering joins:
  /// keep x with x.right < bound, resp. x.left > bound.
  void (*filter_right_before)(const Region* b, size_t n, Offset bound,
                              std::vector<Region>* out);
  void (*filter_left_after)(const Region* b, size_t n, Offset bound,
                            std::vector<Region>* out);

  /// Minimum right endpoint over [b, b+n); n must be > 0.
  Offset (*min_right)(const Region* b, size_t n);

  /// Batched lower_bound over a sorted Offset array: out[i] = index of the
  /// first element of arr[0, n) that is >= q[i]. The probe loop is uniform
  /// across queries, so wide variants resolve 8 probes per gather.
  void (*lower_bound_offsets)(const Offset* arr, size_t n, const Offset* q,
                              size_t m, uint32_t* out);
};

/// The kernel set for `isa`, degraded to the nearest tier the CPU actually
/// supports (requesting avx2 on an SSE4.2-only machine returns sse4, etc.).
/// Always returns a usable table.
const KernelTable& KernelsFor(Isa isa);

/// The scalar oracle set, unconditionally available.
const KernelTable& ScalarKernels();

/// The process-wide active set: the best CPU-supported tier, overridable
/// with REGAL_SIMD=avx2|sse4|scalar (clamped to what the CPU supports;
/// unrecognized values are ignored). Resolved once on first use.
const KernelTable& ActiveKernels();

/// Pure resolution rule behind ActiveKernels, exposed for tests:
/// `override_value` is the REGAL_SIMD value or nullptr.
Isa ResolveIsa(const char* override_value, const util::CpuFeatures& features);

}  // namespace simd
}  // namespace regal

#endif  // REGAL_CORE_SIMD_SIMD_KERNELS_H_
