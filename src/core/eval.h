#ifndef REGAL_CORE_EVAL_H_
#define REGAL_CORE_EVAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cache/result_cache.h"
#include "core/expr.h"
#include "core/instance.h"
#include "core/region_set.h"
#include "exec/parallel_algebra.h"
#include "obs/trace.h"
#include "safety/context.h"
#include "util/status.h"

namespace regal {

/// Controls the evaluator's use of the exec thread pool. The engine installs
/// a policy only when the optimizer's EstimateCost for the whole plan
/// exceeds its threshold (see QueryEngine::set_parallel_cost_threshold);
/// with no policy the evaluator is strictly sequential.
///
/// Parallel and sequential evaluation return bit-identical RegionSets: the
/// partitioned kernels preserve document order per chunk, and memoization
/// computes every shared node exactly once regardless of which thread gets
/// there first.
struct ParallelEvalPolicy {
  /// Pool for kernels and subtree tasks; nullptr means ThreadPool::Default().
  exec::ThreadPool* pool = nullptr;
  /// Combined operand rows before an operator dispatches to the partitioned
  /// kernels (below this the sequential operator is cheaper).
  size_t min_rows = 1u << 14;
  /// Evaluate the two children of a binary node concurrently when both are
  /// operator subtrees. Automatically disabled under a Tracer (span trees
  /// are strictly nested per thread).
  bool parallel_subtrees = true;
};

/// Knobs for Evaluator. `use_naive` switches every operator to the O(n*m)
/// reference implementation (the oracle used by property tests and the
/// baseline in bench_operators). `bindings`, when set, resolves region
/// names before the instance does — the mechanism behind materialized
/// views (dynamically constructed region sets, footnote 1 of the paper).
/// `tracer`, when set, records one span per expression node (operator,
/// input/output cardinalities, operator work counters, wall time) — the
/// machinery behind `explain analyze`. Null tracer = no tracing work at
/// all beyond one branch per node. `parallel`, when set, dispatches large
/// operators to the partitioned kernels of exec/parallel_algebra.h and
/// runs independent subtrees concurrently. `context`, when set, is the
/// query's governance state (deadline, cancellation, memory budget): the
/// evaluator checks it once per expression node and charges every
/// materialized result against the budget, so a violated limit surfaces as
/// a clean non-OK Status within one operator boundary. Null context = no
/// governance work at all (one branch per node).
struct EvalOptions {
  bool use_naive = false;
  const std::map<std::string, RegionSet>* bindings = nullptr;
  obs::Tracer* tracer = nullptr;
  const ParallelEvalPolicy* parallel = nullptr;
  safety::QueryContext* context = nullptr;
  /// Per-query count of parallel kernels that degraded to their sequential
  /// twins, forwarded to every kernel dispatch; nullptr means untracked.
  std::atomic<int64_t>* kernel_fallbacks = nullptr;
  /// Cross-query result cache (see cache/result_cache.h), keyed by the
  /// instance's (id, epoch) and each subtree's canonical fingerprint. When
  /// set (and use_naive is off — the naive oracle stays pure), the first
  /// arrival at every non-scan node probes the cache and seeds the memo on
  /// a hit, so the subtree short-circuits without re-execution; computed
  /// results are published back unless the query's context has already
  /// tripped (a kernel may have bailed mid-chunk, and a truncated set must
  /// never become visible to other queries). Cache-seeded sets are charged
  /// against `context` exactly like computed ones.
  cache::ResultCache* result_cache = nullptr;
  /// Per-query cache activity for the `explain analyze` cache envelope;
  /// nullptr means untracked.
  cache::CacheQueryStats* cache_stats = nullptr;
};

/// Counters accumulated across Evaluate calls; the optimizer benches read
/// them to show that RIG-based rewrites execute fewer operator evaluations.
/// Deterministic under parallel evaluation (memoization runs every node
/// once, and the sums are order-independent).
struct EvalStats {
  int64_t operator_evals = 0;  // Operator nodes executed (memoized hits excluded).
  int64_t rows_scanned = 0;    // Sum of operand sizes over executed operators.
  int64_t rows_produced = 0;   // Sum of result sizes over executed operators.
};

/// Evaluates region algebra expressions against one Instance
/// (e(I) of Definition 2.3 plus the extended operators).
///
/// Shared subtrees (the expression is a DAG of shared_ptr nodes) are
/// evaluated once per Evaluate call via pointer-keyed memoization — the
/// bounded expansions of Props 5.2/5.4 rely on this. Memoized results are
/// handed around as shared_ptr<const RegionSet>, so a cache hit (and a leaf
/// scan of an instance set) never copies region data.
class Evaluator {
 public:
  explicit Evaluator(const Instance* instance, EvalOptions options = {})
      : instance_(instance), options_(options) {}

  /// e(I). Errors if e mentions a region name not defined in the instance.
  Result<RegionSet> Evaluate(const ExprPtr& e);

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

 private:
  using SharedSet = std::shared_ptr<const RegionSet>;

  /// Memoizing wrapper: first arrival computes via EvalNode, concurrent
  /// arrivals at the same node block until the result is ready.
  Result<SharedSet> Eval(const ExprPtr& e);
  /// Computes one node (children evaluated via Eval). `rows_in` receives the
  /// sum of operand cardinalities (0 for leaves) for the node's span.
  Result<SharedSet> EvalNode(const ExprPtr& e, int64_t* rows_in);
  /// Evaluates both children of a binary node, concurrently when the policy
  /// allows it.
  Status EvalChildren(const ExprPtr& e, SharedSet* a, SharedSet* b);
  bool SubtreeParallelismEnabled() const;

  /// One memo slot per expression node. `ready` flips under mu_ once the
  /// value (or error) is in; waiters sleep on memo_cv_.
  struct MemoEntry {
    bool ready = false;
    SharedSet value;
    Status status;
  };

  const Instance* instance_;
  EvalOptions options_;
  EvalStats stats_;
  // Guards memo_, stats_ and memo_cv_ — uncontended (one lock per node) in
  // sequential evaluation.
  std::mutex mu_;
  std::condition_variable memo_cv_;
  std::unordered_map<const Expr*, MemoEntry> memo_;
  // Cross-query cache plumbing: the canonicalizer memoizes fingerprints
  // per node (guarded separately — canonicalization can be heavy and must
  // not serialize against the memo), and the epoch is snapshotted at
  // Evaluate entry so one call never mixes epochs.
  std::mutex canon_mu_;
  ExprCanonicalizer canonicalizer_;
  uint64_t cache_epoch_ = 0;
};

/// One-shot convenience wrapper.
Result<RegionSet> Evaluate(const Instance& instance, const ExprPtr& e,
                           EvalOptions options = {});

/// Span naming used by the evaluator's tracer, shared with the engine's
/// EXPLAIN plan builder so that estimated and executed plans render alike:
/// operator nodes use their query keyword; leaves become "scan"/"word" with
/// the operand in the detail.
const char* ExprSpanName(const Expr& e);
std::string ExprSpanDetail(const Expr& e);

}  // namespace regal

#endif  // REGAL_CORE_EVAL_H_
