#ifndef REGAL_CORE_EVAL_H_
#define REGAL_CORE_EVAL_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "core/expr.h"
#include "core/instance.h"
#include "core/region_set.h"
#include "obs/trace.h"
#include "util/status.h"

namespace regal {

/// Knobs for Evaluator. `use_naive` switches every operator to the O(n*m)
/// reference implementation (the oracle used by property tests and the
/// baseline in bench_operators). `bindings`, when set, resolves region
/// names before the instance does — the mechanism behind materialized
/// views (dynamically constructed region sets, footnote 1 of the paper).
/// `tracer`, when set, records one span per expression node (operator,
/// input/output cardinalities, operator work counters, wall time) — the
/// machinery behind `explain analyze`. Null tracer = no tracing work at
/// all beyond one branch per node.
struct EvalOptions {
  bool use_naive = false;
  const std::map<std::string, RegionSet>* bindings = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Counters accumulated across Evaluate calls; the optimizer benches read
/// them to show that RIG-based rewrites execute fewer operator evaluations.
struct EvalStats {
  int64_t operator_evals = 0;  // Operator nodes executed (memoized hits excluded).
  int64_t rows_scanned = 0;    // Sum of operand sizes over executed operators.
  int64_t rows_produced = 0;   // Sum of result sizes over executed operators.
};

/// Evaluates region algebra expressions against one Instance
/// (e(I) of Definition 2.3 plus the extended operators).
///
/// Shared subtrees (the expression is a DAG of shared_ptr nodes) are
/// evaluated once per Evaluate call via pointer-keyed memoization — the
/// bounded expansions of Props 5.2/5.4 rely on this.
class Evaluator {
 public:
  explicit Evaluator(const Instance* instance, EvalOptions options = {})
      : instance_(instance), options_(options) {}

  /// e(I). Errors if e mentions a region name not defined in the instance.
  Result<RegionSet> Evaluate(const ExprPtr& e);

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

 private:
  Result<RegionSet> Eval(const ExprPtr& e);

  const Instance* instance_;
  EvalOptions options_;
  EvalStats stats_;
  std::unordered_map<const Expr*, RegionSet> memo_;
};

/// One-shot convenience wrapper.
Result<RegionSet> Evaluate(const Instance& instance, const ExprPtr& e,
                           EvalOptions options = {});

/// Span naming used by the evaluator's tracer, shared with the engine's
/// EXPLAIN plan builder so that estimated and executed plans render alike:
/// operator nodes use their query keyword; leaves become "scan"/"word" with
/// the operand in the detail.
const char* ExprSpanName(const Expr& e);
std::string ExprSpanDetail(const Expr& e);

}  // namespace regal

#endif  // REGAL_CORE_EVAL_H_
