#include "core/algebra_kernels.h"

#include <algorithm>

namespace regal {
namespace kernels {

namespace {

// True when [b, e) is at least kGallopRatio times the other side — the
// switch point where a logarithmic skip beats stepping element-wise.
inline bool Skewed(ptrdiff_t longer, ptrdiff_t shorter) {
  return longer >= kGallopRatio * shorter;
}

}  // namespace

const Region* GallopLowerBound(const Region* first, const Region* last,
                               const Region& v, int64_t* comparisons) {
  RegionDocumentOrder less;
  const size_t n = static_cast<size_t>(last - first);
  // Exponential probe: grow `bound` until first[bound - 1] >= v (or the
  // range is exhausted). Each probe is one comparison.
  size_t bound = 1;
  while (bound <= n) {
    ++*comparisons;
    if (!less(first[bound - 1], v)) break;
    bound *= 2;
  }
  const size_t lo = bound / 2;            // first[lo - 1] < v (or lo == 0).
  const size_t hi = bound <= n ? bound - 1 : n;  // first[hi] >= v (or hi == n).
  return std::lower_bound(first + lo, first + hi, v,
                          [&](const Region& a, const Region& b) {
                            ++*comparisons;
                            return less(a, b);
                          });
}

void UnionSpan(const Region* rb, const Region* re, const Region* sb,
               const Region* se, std::vector<Region>* out,
               obs::OpCounters* counters) {
  RegionDocumentOrder less;
  // Every input element is consumed exactly once by a union.
  counters->merge_steps += (re - rb) + (se - sb);
  while (rb != re && sb != se) {
    if (Skewed(re - rb, se - sb)) {
      const Region* run = GallopLowerBound(rb, re, *sb, &counters->comparisons);
      out->insert(out->end(), rb, run);
      rb = run;
      if (rb == re) break;
    } else if (Skewed(se - sb, re - rb)) {
      const Region* run = GallopLowerBound(sb, se, *rb, &counters->comparisons);
      out->insert(out->end(), sb, run);
      sb = run;
      if (sb == se) break;
    }
    ++counters->comparisons;
    if (*rb == *sb) {
      out->push_back(*rb);
      ++rb;
      ++sb;
    } else if (less(*rb, *sb)) {
      out->push_back(*rb++);
    } else {
      out->push_back(*sb++);
    }
  }
  out->insert(out->end(), rb, re);
  out->insert(out->end(), sb, se);
}

void IntersectSpan(const Region* rb, const Region* re, const Region* sb,
                   const Region* se, std::vector<Region>* out,
                   obs::OpCounters* counters) {
  RegionDocumentOrder less;
  const Region* const r0 = rb;
  const Region* const s0 = sb;
  while (rb != re && sb != se) {
    if (Skewed(re - rb, se - sb)) {
      rb = GallopLowerBound(rb, re, *sb, &counters->comparisons);
      if (rb == re) break;
    } else if (Skewed(se - sb, re - rb)) {
      sb = GallopLowerBound(sb, se, *rb, &counters->comparisons);
      if (sb == se) break;
    }
    ++counters->comparisons;
    if (*rb == *sb) {
      out->push_back(*rb);
      ++rb;
      ++sb;
    } else if (less(*rb, *sb)) {
      ++rb;
    } else {
      ++sb;
    }
  }
  counters->merge_steps += (rb - r0) + (sb - s0);
}

void DifferenceSpan(const Region* rb, const Region* re, const Region* sb,
                    const Region* se, std::vector<Region>* out,
                    obs::OpCounters* counters) {
  RegionDocumentOrder less;
  const Region* const r0 = rb;
  const Region* const s0 = sb;
  while (rb != re) {
    if (sb == se) {
      out->insert(out->end(), rb, re);
      rb = re;
      break;
    }
    if (Skewed(re - rb, se - sb)) {
      // The whole run of R before *sb survives the subtraction.
      const Region* run = GallopLowerBound(rb, re, *sb, &counters->comparisons);
      out->insert(out->end(), rb, run);
      rb = run;
      if (rb == re) break;
    } else if (Skewed(se - sb, re - rb)) {
      sb = GallopLowerBound(sb, se, *rb, &counters->comparisons);
      if (sb == se) continue;  // Tail of R appended at the top of the loop.
    }
    ++counters->comparisons;
    if (less(*rb, *sb)) {
      out->push_back(*rb++);
    } else if (*rb == *sb) {
      ++rb;
      ++sb;
    } else {
      ++sb;
    }
  }
  counters->merge_steps += (rb - r0) + (sb - s0);
}

void FlushCounters(const obs::OpCounters& counters) {
  if (obs::OpCounters* sink = obs::CountersSink()) sink->Add(counters);
}

}  // namespace kernels
}  // namespace regal
