// Dispatching facade over the per-ISA kernel variants in core/simd. The
// merge/search loop bodies that used to live here moved to
// core/simd/kernels_body.inc, where one shared source is compiled per
// instruction set; these wrappers resolve the active table once and forward.
// Each dispatch bumps regal_exec_kernel_dispatch_total{isa=...} so operators
// can be attributed to the tier that actually ran them.

#include "core/algebra_kernels.h"

#include "core/simd/simd_kernels.h"
#include "obs/metrics.h"

namespace regal {
namespace kernels {

namespace {

// The active table and its dispatch counter never change after startup;
// resolve both once so the per-call cost is a load and a relaxed fetch_add.
const simd::KernelTable& Active() {
  static const simd::KernelTable& table = simd::ActiveKernels();
  return table;
}

obs::Counter* DispatchCounter() {
  static obs::Counter* counter = obs::Registry::Default().GetCounter(
      "regal_exec_kernel_dispatch_total", {{"isa", Active().name}});
  return counter;
}

}  // namespace

const Region* GallopLowerBound(const Region* first, const Region* last,
                               const Region& v, int64_t* comparisons) {
  DispatchCounter()->Increment();
  return Active().gallop_lower_bound(first, last, v, comparisons);
}

void UnionSpan(const Region* rb, const Region* re, const Region* sb,
               const Region* se, std::vector<Region>* out,
               obs::OpCounters* counters) {
  DispatchCounter()->Increment();
  Active().union_span(rb, re, sb, se, out, counters);
}

void IntersectSpan(const Region* rb, const Region* re, const Region* sb,
                   const Region* se, std::vector<Region>* out,
                   obs::OpCounters* counters) {
  DispatchCounter()->Increment();
  Active().intersect_span(rb, re, sb, se, out, counters);
}

void DifferenceSpan(const Region* rb, const Region* re, const Region* sb,
                    const Region* se, std::vector<Region>* out,
                    obs::OpCounters* counters) {
  DispatchCounter()->Increment();
  Active().difference_span(rb, re, sb, se, out, counters);
}

void FilterRightBefore(const Region* b, size_t n, Offset bound,
                       std::vector<Region>* out) {
  DispatchCounter()->Increment();
  Active().filter_right_before(b, n, bound, out);
}

void FilterLeftAfter(const Region* b, size_t n, Offset bound,
                     std::vector<Region>* out) {
  DispatchCounter()->Increment();
  Active().filter_left_after(b, n, bound, out);
}

Offset MinRightEndpoint(const Region* b, size_t n) {
  DispatchCounter()->Increment();
  return Active().min_right(b, n);
}

void LowerBoundOffsets(const Offset* arr, size_t n, const Offset* q, size_t m,
                       uint32_t* out) {
  DispatchCounter()->Increment();
  Active().lower_bound_offsets(arr, n, q, m, out);
}

void FlushCounters(const obs::OpCounters& counters) {
  if (obs::OpCounters* sink = obs::CountersSink()) sink->Add(counters);
}

}  // namespace kernels
}  // namespace regal
