#ifndef REGAL_CORE_INSTANCE_H_
#define REGAL_CORE_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/region.h"
#include "core/region_set.h"
#include "graph/digraph.h"
#include "index/word_index.h"
#include "text/pattern.h"
#include "text/text.h"
#include "util/status.h"

namespace regal {

/// An instance I of a region index (Definition 2.1): a mapping from region
/// names R_1..R_n to region sets, together with the word-index predicate
/// W(r, p).
///
/// Content comes in two modes:
///  * *text-backed*: a Text plus a WordIndex; W(r, p) holds iff a token
///    inside r matches p. This is the production path.
///  * *synthetic*: W is an explicit table (pattern key -> region set), the
///    fully general predicate of Definition 2.1. The counterexample
///    machinery of Sections 4-5 and the FMFT model correspondence use this.
///
/// The paper assumes hierarchical instances: every region belongs to exactly
/// one region name, and any two regions are disjoint or strictly nested.
/// Validate() checks exactly that. The global region *tree* (parents by
/// direct inclusion) is built lazily and backs the extended operators.
class Instance {
 public:
  Instance() = default;

  /// Movable but not copyable (the tree holds indices into internal state;
  /// use Clone() for an explicit deep copy).
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  Instance Clone() const;

  /// Defines region name `name` with the given instance. Error if already
  /// defined. Invalidates the tree.
  Status AddRegionSet(const std::string& name, RegionSet regions);

  /// Replaces (or defines) region name `name`. Invalidates the tree.
  void SetRegionSet(const std::string& name, RegionSet regions);

  /// The instance of `name`; NotFound if undefined.
  Result<const RegionSet*> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// All defined region names, in definition order.
  const std::vector<std::string>& names() const { return names_; }

  /// Union of all region sets (the ∪_{T∈I} T of Section 6).
  RegionSet AllRegions() const;

  /// Total number of regions across all names.
  size_t NumRegions() const;

  /// Binds text content: W(r, p) is answered by `index` over `text`.
  void BindText(std::shared_ptr<const Text> text,
                std::shared_ptr<const WordIndex> index);

  /// Declares, in synthetic mode, the exact set of regions for which
  /// W(r, p) holds. Regions must belong to the instance.
  void SetSyntheticPattern(const Pattern& p, RegionSet regions_where_true);

  const Text* text() const { return text_.get(); }

  /// The bound word index, or nullptr in synthetic mode.
  const WordIndex* word_index() const { return word_index_.get(); }

  /// σ_p(R): the regions of R for which W(r, p) holds. Works in both
  /// content modes; in synthetic mode unseen patterns match nothing.
  RegionSet Select(const RegionSet& r, const Pattern& p) const;

  /// W(r, p) for a single region.
  bool W(const Region& r, const Pattern& p) const;

  /// The synthetic W tables (pattern cache key -> regions where W holds);
  /// empty in text-backed mode. Exposed for persistence.
  const std::map<std::string, RegionSet>& synthetic_patterns() const {
    return synthetic_w_;
  }

  /// Checks the hierarchy assumption of Section 2.1: no region in two
  /// names, and the union of all sets is laminar (disjoint-or-nested).
  Status Validate() const;

  // --- Mutation epoch (cross-query result-cache invalidation) ---

  /// Process-unique identity of this instance's content lineage. A fresh
  /// id is drawn on construction and on Clone(), and moves travel with the
  /// data — so (id, epoch) pairs never collide across distinct instances
  /// and a shared cache/result_cache.h can key on them safely.
  uint64_t id() const { return id_; }

  /// Monotone mutation counter: bumped by every operation that can change
  /// a query answer (AddRegionSet, SetRegionSet, BindText,
  /// SetSyntheticPattern). Cached results are keyed by (id, epoch), so a
  /// bump invalidates them without touching the cache.
  uint64_t epoch() const { return epoch_; }

  // --- Global region tree (built on first use, invalidated by mutation) ---

  /// Number of regions in the tree (== NumRegions()).
  size_t TreeSize() const;
  /// i-th region in document order.
  const Region& TreeRegion(size_t i) const;
  /// Name id (index into names()) of the i-th region.
  int TreeNameId(size_t i) const;
  /// Parent index of the i-th region, or -1 for roots. The parent is the
  /// unique region directly including it (Definition of Section 2.2).
  int TreeParent(size_t i) const;
  /// Index of `r` in the tree, or -1 if `r` is not an instance region.
  int TreeFind(const Region& r) const;
  /// Maximum nesting depth (a single root counts 1; empty instance is 0).
  int TreeDepth() const;

  /// The RIG derived from this instance: edge (A, B) iff some A region
  /// directly includes some B region here. Any RIG this instance satisfies
  /// is a supergraph (Definition 2.4).
  Digraph DeriveRig() const;

  /// The ROG derived from this instance: edge (A, B) iff some A region
  /// directly precedes some B region here.
  Digraph DeriveRog() const;

 private:
  void EnsureTree() const;
  static uint64_t NextId();

  uint64_t id_ = NextId();
  uint64_t epoch_ = 0;
  std::vector<std::string> names_;
  std::map<std::string, size_t> name_to_id_;
  std::vector<RegionSet> sets_;

  std::shared_ptr<const Text> text_;
  std::shared_ptr<const WordIndex> word_index_;
  std::map<std::string, RegionSet> synthetic_w_;  // Keyed by Pattern::CacheKey.

  // Lazily built tree over all regions, in document order.
  mutable bool tree_built_ = false;
  mutable std::vector<Region> tree_regions_;
  mutable std::vector<int> tree_name_ids_;
  mutable std::vector<int> tree_parents_;
  mutable int tree_depth_ = 0;
};

}  // namespace regal

#endif  // REGAL_CORE_INSTANCE_H_
