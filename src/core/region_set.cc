#include "core/region_set.h"

#include <algorithm>

namespace regal {

RegionSet RegionSet::FromUnsorted(std::vector<Region> regions) {
  // Hot-path construction: inputs are adopted by move, never copied, and
  // already-ordered inputs (token streams, per-chunk results) skip the sort.
  RegionDocumentOrder less;
  if (!std::is_sorted(regions.begin(), regions.end(), less)) {
    std::sort(regions.begin(), regions.end(), less);
  }
  auto first_dup = std::adjacent_find(regions.begin(), regions.end());
  if (first_dup != regions.end()) {
    regions.erase(std::unique(first_dup, regions.end()), regions.end());
  }
  RegionSet out;
  out.regions_ = std::move(regions);
  return out;
}

RegionSet RegionSet::FromSortedUnique(std::vector<Region> regions) {
  RegionSet out;
  out.regions_ = std::move(regions);
  return out;
}

RegionSet::RegionSet(std::initializer_list<Region> regions)
    : RegionSet(FromUnsorted(std::vector<Region>(regions))) {}

bool RegionSet::Member(const Region& r) const {
  auto it = std::lower_bound(regions_.begin(), regions_.end(), r,
                             RegionDocumentOrder());
  return it != regions_.end() && *it == r;
}

bool RegionSet::IsValid() const {
  RegionDocumentOrder less;
  for (size_t i = 1; i < regions_.size(); ++i) {
    if (!less(regions_[i - 1], regions_[i])) return false;
  }
  return true;
}

bool RegionSet::IsLaminar() const {
  if (!IsValid()) return false;
  // In document order, a region partially overlaps its successor chain only
  // via the nearest "open" ancestors; a stack sweep suffices.
  std::vector<Region> open;
  for (const Region& r : regions_) {
    while (!open.empty() && open.back().right < r.left) open.pop_back();
    if (!open.empty()) {
      const Region& top = open.back();
      if (!StrictlyIncludes(top, r)) return false;  // Overlap or duplicate.
    }
    open.push_back(r);
  }
  return true;
}

std::string RegionSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (i > 0) out += ", ";
    out += regal::ToString(regions_[i]);
  }
  out += "}";
  return out;
}

}  // namespace regal
