#ifndef REGAL_CORE_EXTENDED_H_
#define REGAL_CORE_EXTENDED_H_

#include <string>
#include <vector>

#include "core/expr.h"
#include "core/instance.h"
#include "core/region_set.h"
#include "util/status.h"

namespace regal {

/// The extended operators of Sections 5-6. Each comes in up to three
/// styles, which are each other's oracles in the tests:
///
///  1. *native*: tree-based algorithms using the instance's global region
///     tree (near-linear);
///  2. *loop program*: the paper's Section 6 while-programs, built from
///     base algebra operations only;
///  3. *bounded expansion*: the pure base-algebra expressions of
///     Props 5.2/5.4, valid only under the stated bound.

/// R ⊃_d S = {r ∈ R : ∃s ∈ S, r directly includes s} where "directly"
/// quantifies over all regions of the instance (Section 5.1). Native:
/// O(|S| log n) parent lookups in the instance tree.
RegionSet DirectIncluding(const Instance& instance, const RegionSet& r,
                          const RegionSet& s);

/// R ⊂_d S = {r ∈ R : ∃s ∈ S, s directly includes r}.
RegionSet DirectIncluded(const Instance& instance, const RegionSet& r,
                         const RegionSet& s);

/// R BI (S, T) = {r ∈ R : ∃s ∈ S, t ∈ T, r ⊃ s, r ⊃ t, s < t}
/// (Section 5.2). O((|R| + |S| + |T|) log) via two containment indexes:
/// r qualifies iff the smallest right endpoint of an S region inside r
/// precedes the largest left endpoint of a T region inside r.
RegionSet BothIncluded(const RegionSet& r, const RegionSet& s,
                       const RegionSet& t);

/// O(n*m) reference implementations.
namespace naive {
RegionSet DirectIncluding(const Instance& instance, const RegionSet& r,
                          const RegionSet& s);
RegionSet DirectIncluded(const Instance& instance, const RegionSet& r,
                         const RegionSet& s);
RegionSet BothIncluded(const RegionSet& r, const RegionSet& s,
                       const RegionSet& t);
}  // namespace naive

/// The first while-program of Section 6: computes R1 ⊃_d R2 using only base
/// algebra operations, looping over the nesting layers of R1. `counters`
/// (optional) receives the number of loop iterations executed.
RegionSet DirectIncludingLoop(const Instance& instance, const RegionSet& r1,
                              const RegionSet& r2, int* iterations = nullptr);

/// The second while-program of Section 6: computes the right-grouped chain
///   names[0] ⊃_d names[1] ⊃_d ... ⊃_d names.back()
/// with a single loop. Errors if any name is undefined. When
/// `restrict_all_to` is non-empty, the program's `All` set is built from
/// those names only (the RIG-based optimization discussed after the
/// program; see rig/minimal_set.h for how the name set is chosen).
///
/// REPRODUCTION FINDING (see EXPERIMENTS.md): transcribed literally, the
/// paper's program computes the ⊃_d chain only on instances where no middle
/// name's regions nest within each other and no middle region contains an
/// R1 region. The global set All = ∪_T T(⊂T)^{#_e^T} cannot distinguish a
/// middle region's *relative* nesting depth below the current R1 layer from
/// its global depth, so on self-nesting middles (e.g. Proc_body under
/// nested Procs — the paper's own Figure 1 scenario) it over-blocks
/// witnesses and under-approximates the result. DirectChainStepwise is the
/// exact-semantics oracle; the tests pin down both the agreement on the
/// valid class and the divergence outside it.
Result<RegionSet> DirectChainLoop(
    const Instance& instance, const std::vector<std::string>& names,
    int* iterations = nullptr,
    const std::vector<std::string>& restrict_all_to = {});

/// Naive chain evaluation: applies the single-⊃_d loop program once per
/// chain step (the "very expensive" strategy the paper's single-loop
/// program improves on). The baseline of experiment E6.
Result<RegionSet> DirectChainStepwise(const Instance& instance,
                                      const std::vector<std::string>& names,
                                      int* iterations = nullptr);

/// Prop 5.2: a pure base-algebra expression computing e1 ⊃_d e2 on every
/// instance whose e1-result has nesting depth <= max_depth and whose
/// regions all belong to `catalog_names`. Size O(max_depth * |catalog|).
ExprPtr DirectIncludingBounded(const ExprPtr& e1, const ExprPtr& e2,
                               int max_depth,
                               const std::vector<std::string>& catalog_names);

/// The ⊂_d mirror of Prop 5.2: a pure base-algebra expression computing
/// e1 ⊂_d e2 on instances whose e2-result has nesting depth <= max_depth.
/// Per container layer L_i of e2: (e1 ⊂ L_i) − (e1 ⊂ (All ⊂ L_i)).
ExprPtr DirectIncludedBounded(const ExprPtr& e1, const ExprPtr& e2,
                              int max_depth,
                              const std::vector<std::string>& catalog_names);

/// Prop 5.4 (construction; the paper leaves the details unspecified): a
/// pure base-algebra expression computing BI(r; s, t), valid on instances
/// where (a) the regions of s and t form an antichain (no two nested) and
/// (b) at most `max_width` pairwise disjoint s/t regions exist. This covers
/// the document-retrieval scenario motivating Section 5.2 (s, t select
/// word-level regions) and the Figure 3 family. Size O(max_width^2).
ExprPtr BothIncludedBounded(const ExprPtr& r, const ExprPtr& s,
                            const ExprPtr& t, int max_width);

}  // namespace regal

#endif  // REGAL_CORE_EXTENDED_H_
