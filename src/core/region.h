#ifndef REGAL_CORE_REGION_H_
#define REGAL_CORE_REGION_H_

#include <ostream>
#include <string>

#include "text/text.h"

namespace regal {

/// A text region: a substring of the indexed text identified by the
/// *inclusive* offsets of its first and last byte (Section 2.1 of the
/// paper). Invariant: left <= right (empty regions are not representable,
/// matching the paper where a region is a non-empty substring).
struct Region {
  Offset left = 0;
  Offset right = 0;

  bool operator==(const Region& other) const {
    return left == other.left && right == other.right;
  }
  bool operator!=(const Region& other) const { return !(*this == other); }
};

/// Canonical "document order": by left endpoint ascending, ties broken by
/// right endpoint *descending*, so that in a hierarchical instance every
/// region precedes all regions it strictly includes. All RegionSets are
/// sorted by this order.
struct RegionDocumentOrder {
  bool operator()(const Region& a, const Region& b) const {
    if (a.left != b.left) return a.left < b.left;
    return a.right > b.right;
  }
};

/// r strictly includes s (the paper's `r ⊃ s`):
///   (left(r) < left(s) and right(r) >= right(s)) or
///   (left(r) <= left(s) and right(r) > right(s)).
/// Equivalently: r contains s and r != s.
inline bool StrictlyIncludes(const Region& r, const Region& s) {
  return r.left <= s.left && r.right >= s.right && r != s;
}

/// r contains s allowing equality (not a paper operator; used internally).
inline bool Contains(const Region& r, const Region& s) {
  return r.left <= s.left && r.right >= s.right;
}

/// r precedes s (the paper's `r < s`): right(r) < left(s).
inline bool Precedes(const Region& r, const Region& s) {
  return r.right < s.left;
}

/// r and s overlap without one containing the other. Hierarchical instances
/// never contain such a pair (Section 2.1's nesting assumption).
inline bool PartiallyOverlaps(const Region& r, const Region& s) {
  return !Contains(r, s) && !Contains(s, r) && !Precedes(r, s) &&
         !Precedes(s, r);
}

inline std::ostream& operator<<(std::ostream& os, const Region& r) {
  return os << "[" << r.left << "," << r.right << "]";
}

inline std::string ToString(const Region& r) {
  return "[" + std::to_string(r.left) + "," + std::to_string(r.right) + "]";
}

}  // namespace regal

#endif  // REGAL_CORE_REGION_H_
